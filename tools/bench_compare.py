#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json records and fail on regressions.

The CI bench-regression gate runs this against the previous main build's
artifact. Every record the repo emits is a *modelled* quantity (simulated
seconds, modelled joules, transaction counts), so runs are deterministic and
a change beyond tolerance is a real model/code change, not runner noise.

Schemas understood (see src/profile/profile_json.h and bench/bench_common.cc):

  ksum-bench-v1        points[].pipelines.<name>.{seconds, energy_j.total,
                       l2_transactions, dram_transactions}
  ksum-prof-v1         totals.{seconds, energy_j.total} and per-launch seconds
  ksum-prof-batch-v1   totals.{seconds, energy_j_total} plus every embedded
                       ksum-prof-v1 program record
  ksum-prof-tree-v1    model.{dense_seconds, tree_seconds} and the plan's
                       near_interactions — the treecode planner's modelled
                       split (src/tools/ksum_prof.cc)
  ksum-serve-v1        latency_ms.modelled.{p50, p99} only — the modelled
                       serving latencies are deterministic; wall-clock
                       latencies and gauge fields are reported by the bench
                       but never gated

A metric regresses when current > baseline * (1 + tolerance); lower is
always better for the tracked quantities. Records present only on one side
are reported but do not fail the gate (benches come and go with PRs).

Baselines are keyed by device profile: with --profile NAME every metric key
is namespaced under the profile, and records that belong to a *different*
built-in profile (by their embedded device name or a _<profile> filename
suffix) are excluded — a gtx970 baseline can never be compared against a
titanx-maxwell run, even if the artifact directories get mixed up. The CI
bench-regression matrix passes the active profile and stores one artifact
per profile.

Exit codes: 0 clean (improvements allowed), 1 regression(s), 2 usage error.
"""

import argparse
import json
import sys
from pathlib import Path


def fmt(value):
    return f"{value:.6g}"


def bench_v1_metrics(record, out, prefix):
    for point in record.get("points", []):
        shape = f"{point.get('m')}x{point.get('n')}x{point.get('k')}"
        for pipe, data in sorted(point.get("pipelines", {}).items()):
            base = f"{prefix}/point[{shape}]/{pipe}"
            if "seconds" in data:
                out[f"{base}/seconds"] = data["seconds"]
            total = data.get("energy_j", {}).get("total")
            if total is not None:
                out[f"{base}/energy_j"] = total
            for key in ("l2_transactions", "dram_transactions"):
                if key in data:
                    out[f"{base}/{key}"] = data[key]


def prof_v1_metrics(record, out, prefix):
    totals = record.get("totals", {})
    if "seconds" in totals:
        out[f"{prefix}/totals/seconds"] = totals["seconds"]
    total_energy = totals.get("energy_j", {}).get("total")
    if total_energy is not None:
        out[f"{prefix}/totals/energy_j"] = total_energy
    for i, launch in enumerate(record.get("launches", [])):
        kernel = launch.get("kernel", f"launch{i}")
        if "seconds" in launch:
            out[f"{prefix}/launch[{i}:{kernel}]/seconds"] = launch["seconds"]
        energy = launch.get("energy_j", {}).get("total")
        if energy is not None:
            out[f"{prefix}/launch[{i}:{kernel}]/energy_j"] = energy


def prof_tree_v1_metrics(record, out, prefix):
    model = record.get("model", {})
    for key in ("dense_seconds", "tree_seconds"):
        if key in model:
            out[f"{prefix}/model/{key}"] = model[key]
    near = record.get("plan", {}).get("near_interactions")
    if near is not None:
        out[f"{prefix}/plan/near_interactions"] = near


def serve_v1_metrics(record, out, prefix):
    modelled = record.get("latency_ms", {}).get("modelled", {})
    for key in ("p50", "p99"):
        if key in modelled:
            out[f"{prefix}/latency_ms/modelled/{key}"] = modelled[key]


def extract_metrics(record, out, prefix=""):
    schema = record.get("schema", "")
    if schema == "ksum-bench-v1":
        bench_v1_metrics(record, out, prefix or record.get("bench", "bench"))
    elif schema == "ksum-prof-v1":
        prof_v1_metrics(record, out, prefix or record.get("program", "prof"))
    elif schema == "ksum-prof-batch-v1":
        totals = record.get("totals", {})
        if "seconds" in totals:
            out[f"{prefix}/totals/seconds"] = totals["seconds"]
        if "energy_j_total" in totals:
            out[f"{prefix}/totals/energy_j"] = totals["energy_j_total"]
        for program in record.get("programs", []):
            name = program.get("program", "?")
            prof_v1_metrics(program, out, f"{prefix}/{name}")
    elif schema == "ksum-prof-tree-v1":
        prof_tree_v1_metrics(record, out, prefix or "tree")
    elif schema == "ksum-serve-v1":
        serve_v1_metrics(record, out, prefix or "serve")
    else:
        print(f"note: {prefix}: unknown schema '{schema}', skipped")


# The built-in device profiles (src/config/profiles/) the CI matrix runs.
BUILTIN_PROFILES = ("gtx970", "titanx-maxwell", "modern")


def record_profile(record, stem):
    """The profile a record was produced under, or None when unmarked.

    ksum-prof-v1 records carry the device name; other records are matched
    by the BENCH_<name>_<profile>.json naming convention. Unmarked records
    (the analytic paper benches) belong to the default gtx970 profile.
    """
    device = record.get("device")
    if isinstance(device, dict) and isinstance(device.get("name"), str):
        return device["name"]
    for profile in BUILTIN_PROFILES:
        if stem.endswith("_" + profile):
            return profile
    return None


def load_dir(path, profile=None):
    metrics = {}
    files = sorted(path.glob("BENCH_*.json"))
    loaded = 0
    for f in files:
        try:
            record = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {f}: {e}", file=sys.stderr)
            sys.exit(2)
        if profile is not None:
            marked = record_profile(record, f.stem) or "gtx970"
            if marked != profile:
                print(f"note: {f.name} belongs to profile '{marked}', "
                      f"skipped in the {profile} comparison")
                continue
        prefix = f.stem if profile is None else f"{profile}/{f.stem}"
        extract_metrics(record, metrics, prefix)
        loaded += 1
    return metrics, loaded


def main():
    parser = argparse.ArgumentParser(
        description="fail when current bench records regress past tolerance")
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative increase (default 0.10 = 10%%)")
    parser.add_argument("--profile", default=None,
                        help="device profile this comparison is keyed under; "
                             "records marked for another profile are skipped")
    args = parser.parse_args()

    for d in (args.baseline, args.current):
        if not d.is_dir():
            print(f"error: {d} is not a directory", file=sys.stderr)
            return 2

    baseline, n_base = load_dir(args.baseline, args.profile)
    current, n_cur = load_dir(args.current, args.profile)
    if n_base == 0:
        print("no baseline BENCH_*.json records: nothing to compare "
              "(seeding baseline)")
        return 0
    if n_cur == 0:
        print("error: current run produced no BENCH_*.json records",
              file=sys.stderr)
        return 1

    regressions, improvements, compared = [], [], 0
    for key in sorted(baseline):
        if key not in current:
            print(f"note: metric gone (renamed bench?): {key}")
            continue
        old, new = baseline[key], current[key]
        if not (isinstance(old, (int, float)) and isinstance(new, (int, float))):
            continue
        compared += 1
        if old == 0:
            if new != 0:
                regressions.append((key, old, new, float("inf")))
            continue
        ratio = new / old - 1.0
        if ratio > args.tolerance:
            regressions.append((key, old, new, ratio))
        elif ratio < -args.tolerance:
            improvements.append((key, old, new, ratio))
    for key in sorted(set(current) - set(baseline)):
        print(f"note: new metric (no baseline): {key}")

    for key, old, new, ratio in improvements:
        print(f"improved {ratio:+.1%}: {key}  {fmt(old)} -> {fmt(new)}")
    for key, old, new, ratio in regressions:
        print(f"REGRESSED {ratio:+.1%}: {key}  {fmt(old)} -> {fmt(new)}")

    scope = f" [profile {args.profile}]" if args.profile else ""
    print(f"\ncompared {compared} metrics across {n_cur} record file(s)"
          f"{scope}: {len(regressions)} regression(s), {len(improvements)} "
          f"improvement(s), tolerance {args.tolerance:.0%}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
