// Kernel density estimation — the statistics workload from the paper's
// introduction. Density of an unknown distribution is estimated at query
// points as f̂(β_j) = (1/M·h^K)·Σ_i K(α_i, β_j); the sum is exactly the
// kernel summation primitive, with uniform weights 1/M.
//
// The example estimates a two-cluster mixture at K = 32, sweeps the
// bandwidth, and shows that query points inside a cluster score much higher
// density than points far away — plus what the fused kernel saves over the
// unfused pipeline while doing it.
//
//   build/examples/kde
#include <algorithm>
#include <cstdio>

#include "pipelines/solver.h"
#include "workload/weights.h"

int main() {
  using namespace ksum;

  workload::ProblemSpec spec;
  spec.m = 4096;  // observed samples
  spec.n = 1024;  // query points
  spec.k = 32;
  spec.distribution = workload::Distribution::kGaussianMixture;
  spec.seed = 7;

  // Samples and queries from the same mixture; weights = 1/M.
  workload::Instance instance = workload::make_instance(spec);
  instance.w = workload::generate_weights(spec.n, workload::WeightKind::kOnes,
                                          Rng(1));
  // NOTE on orientation: V is indexed by the M source points and W by the N
  // columns, so to *query at the A points* we use the B set as the sample
  // set here: f̂(α_i) = (1/N)·Σ_j K(α_i, β_j).
  for (float& w : instance.w) w = 1.0f / float(spec.n);

  std::printf("KDE: %zu samples, %zu densities, K=%zu (gaussian mixture)\n\n",
              spec.n, spec.m, spec.k);
  std::printf("%-10s %-14s %-14s %-12s %-12s\n", "bandwidth", "mean density",
              "max density", "time (ms)", "energy (J)");

  for (float h : {0.2f, 0.5f, 1.0f, 2.0f}) {
    core::KernelParams params;
    params.type = core::KernelType::kGaussian;
    params.bandwidth = h;
    const auto result =
        pipelines::solve(instance, params, pipelines::Backend::kSimFused);
    double mean = 0.0, peak = 0.0;
    for (float v : result.v) {
      mean += double(v);
      peak = std::max(peak, double(v));
    }
    mean /= double(result.v.size());
    std::printf("%-10.2f %-14.5f %-14.5f %-12.3f %-12.4f\n", double(h), mean,
                peak, result.report->seconds * 1e3,
                result.report->energy.total());
  }

  // What did fusion buy for this workload?
  core::KernelParams params;
  params.bandwidth = 0.5f;
  const auto fused =
      pipelines::solve(instance, params, pipelines::Backend::kSimFused);
  const auto unfused = pipelines::solve(instance, params,
                                        pipelines::Backend::kSimCublasUnfused);
  std::printf("\nfused vs cuBLAS-unfused: %.2fx speedup, %.1f%% energy saved,"
              " DRAM traffic down to %.1f%%\n",
              unfused.report->seconds / fused.report->seconds,
              100.0 * (1.0 - fused.report->energy.total() /
                                 unfused.report->energy.total()),
              100.0 * double(fused.report->total.dram_total_transactions()) /
                  double(unfused.report->total.dram_total_transactions()));
  return 0;
}
