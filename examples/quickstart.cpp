// Quickstart: evaluate one Gaussian kernel summation with the fused
// simulated-GPU backend, check it against the host oracle, and read the
// per-kernel performance/energy report.
//
//   build/examples/quickstart
#include <cstdio>

#include "blas/vector_ops.h"
#include "pipelines/solver.h"

int main() {
  using namespace ksum;

  // 1. Describe the problem: 2048 source points and 1024 targets in a
  //    32-dimensional space, Gaussian kernel with bandwidth h = 0.8.
  workload::ProblemSpec spec;
  spec.m = 2048;
  spec.n = 1024;
  spec.k = 32;
  spec.bandwidth = 0.8f;
  spec.seed = 2016;

  // 2. Materialise the points and weights (deterministic from the seed).
  const workload::Instance instance = workload::make_instance(spec);
  const core::KernelParams params = core::params_from_spec(spec);

  // 3. Solve with the paper's fused kernel on the simulated GTX970.
  const auto fused =
      pipelines::solve(instance, params, pipelines::Backend::kSimFused);

  // 4. Cross-check against the exact host oracle.
  const auto oracle =
      pipelines::solve(instance, params, pipelines::Backend::kCpuDirect);
  const double err =
      blas::max_rel_diff(fused.v.span(), oracle.v.span(), 1e-3);

  std::printf("problem            : %s\n", spec.to_string().c_str());
  std::printf("max relative error : %.2e (vs double-precision oracle)\n",
              err);

  // 5. The report: modelled device time, efficiency, energy breakdown.
  const auto& report = *fused.report;
  std::printf("modelled time      : %.3f ms  (FLOP efficiency %.1f%%)\n",
              report.seconds * 1e3, 100.0 * report.flop_efficiency);
  std::printf("energy             : %.4f J  (DRAM share %.1f%%)\n",
              report.energy.total(), 100.0 * report.energy.dram_share());
  std::printf("DRAM transactions  : %llu\n",
              static_cast<unsigned long long>(
                  report.total.dram_total_transactions()));
  for (const auto& kernel : report.kernels) {
    std::printf("  kernel %-12s  %8.1f us  bound by %s\n",
                kernel.name.c_str(),
                kernel.timing.seconds(pipelines::RunOptions{}.device) * 1e6,
                kernel.timing.bound.c_str());
  }
  return err < 1e-2 ? 0 : 1;
}
