// Kernel ridge regression — the machine-learning workload from the paper's
// related-work section. Training solves (K + λI)·α = y on the train set;
// prediction evaluates ŷ(β) = Σ_i α_i·K(α_i, β). Both steps are built
// entirely out of kernel summations: the conjugate-gradient solver below
// performs its matrix-vector product K·p as one fused kernel-summation
// launch per iteration (train points as both sources and targets).
//
//   build/examples/ridge
#include <cmath>
#include <cstdio>

#include "blas/vector_ops.h"
#include "pipelines/solver.h"

namespace {

using namespace ksum;

// Smooth ground-truth function the regression has to learn.
float target_function(const Matrix& points, std::size_t row) {
  float s = 0.0f;
  for (std::size_t d = 0; d < points.cols(); ++d) {
    s += points.at(row, d);
  }
  return std::sin(0.7f * s);
}

// One kernel summation V = K(sources=train, targets=train)·w on the
// simulated device.
Vector kernel_matvec(const workload::Instance& train,
                     const core::KernelParams& params, const Vector& w) {
  workload::Instance op = train;
  op.w = w;
  return pipelines::solve(op, params, pipelines::Backend::kSimFused).v;
}

}  // namespace

int main() {
  const std::size_t n_train = 512;
  const std::size_t n_test = 256;
  const std::size_t dim = 8;
  const float lambda = 0.1f;

  // Train set: sources AND targets are the same points (square K matrix).
  workload::ProblemSpec train_spec;
  train_spec.m = n_train;
  train_spec.n = n_train;
  train_spec.k = dim;
  train_spec.seed = 3;
  workload::Instance train = workload::make_instance(train_spec);
  // Make targets identical to sources: K[i,j] = K(α_i, α_j), SPD.
  for (std::size_t j = 0; j < n_train; ++j) {
    for (std::size_t d = 0; d < dim; ++d) {
      train.b.at(d, j) = train.a.at(j, d);
    }
  }

  core::KernelParams params;
  params.type = core::KernelType::kGaussian;
  params.bandwidth = 1.0f;

  Vector y(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    y[i] = target_function(train.a, i);
  }

  // Conjugate gradients on (K + λI)α = y; each iteration costs one fused
  // kernel-summation launch for K·p.
  Vector alpha(n_train), r = y, p = y;
  double rs_old = blas::dot(r.span(), r.span());
  const double rs0 = rs_old;
  int iterations = 0;
  for (int iter = 0; iter < 50 && rs_old > 1e-10 * rs0; ++iter) {
    Vector kp = kernel_matvec(train, params, p);
    blas::axpy(lambda, p.span(), kp.span());  // (K + λI)p
    const double curvature = blas::dot(p.span(), kp.span());
    const float a = float(rs_old / curvature);
    blas::axpy(a, p.span(), alpha.span());
    blas::axpy(-a, kp.span(), r.span());
    const double rs_new = blas::dot(r.span(), r.span());
    const float beta = float(rs_new / rs_old);
    for (std::size_t i = 0; i < n_train; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
    iterations = iter + 1;
    if (iter % 10 == 0) {
      std::printf("cg iter %2d: |r| = %.2e\n", iter, std::sqrt(rs_old));
    }
  }

  // Prediction at held-out points: one more kernel summation with the test
  // points as sources and the train points (weighted by α) as targets.
  workload::ProblemSpec test_spec = train_spec;
  test_spec.m = n_test;
  test_spec.seed = 4;
  workload::Instance test = workload::make_instance(test_spec);
  test.b = std::move(train.b);  // targets: train points
  test.w = std::move(alpha);    // weights: dual coefficients

  const auto pred =
      pipelines::solve(test, params, pipelines::Backend::kSimFused);

  double mse = 0.0, var = 0.0, mean = 0.0;
  for (std::size_t i = 0; i < n_test; ++i) {
    mean += double(target_function(test.a, i));
  }
  mean /= double(n_test);
  for (std::size_t i = 0; i < n_test; ++i) {
    const double truth = target_function(test.a, i);
    mse += (double(pred.v[i]) - truth) * (double(pred.v[i]) - truth);
    var += (truth - mean) * (truth - mean);
  }
  mse /= double(n_test);
  var /= double(n_test);

  std::printf("\nkernel ridge regression: %zu train / %zu test, K=%zu, "
              "%d CG iterations\n",
              n_train, n_test, dim, iterations);
  std::printf("test MSE %.4f (variance %.4f, R^2 = %.3f)\n", mse, var,
              1.0 - mse / var);
  std::printf("every CG iteration = one fused kernel-summation launch on "
              "the simulated GTX970\n");
  // The fit should explain most of the variance.
  return (1.0 - mse / var) > 0.5 ? 0 : 1;
}
