// k-nearest-neighbour classification with the fused kNN kernel — the
// "other algorithms" extension of the paper's conclusion, exercised as a
// real classifier.
//
// Two Gaussian classes in 16 dimensions; training points are the database,
// test points the queries. Each test point is labelled by majority vote of
// its k nearest training points, found by one fused kNN launch on the
// simulated GTX970.
//
//   build/examples/knn_classify
#include <cstdio>

#include "common/rng.h"
#include "pipelines/knn_pipeline.h"

int main() {
  using namespace ksum;

  const std::size_t n_train = 1024;  // database
  const std::size_t n_test = 512;    // queries
  const std::size_t dim = 16;
  const std::size_t k_nn = 9;

  // Two classes: Gaussian blobs around +0.5·1 and −0.5·1.
  Rng rng(2016);
  auto draw = [&](Matrix& points, std::vector<int>& labels, bool row_major) {
    const std::size_t count = row_major ? points.rows() : points.cols();
    labels.resize(count);
    for (std::size_t p = 0; p < count; ++p) {
      const int label = rng.next_below(2) == 0 ? -1 : 1;
      labels[p] = label;
      for (std::size_t d = 0; d < dim; ++d) {
        const float v = rng.normal(0.5f * float(label), 0.45f);
        if (row_major) {
          points.at(p, d) = v;
        } else {
          points.at(d, p) = v;
        }
      }
    }
  };

  workload::ProblemSpec spec;
  spec.m = n_test;
  spec.n = n_train;
  spec.k = dim;
  workload::Instance instance = workload::make_instance(spec);
  std::vector<int> test_labels, train_labels;
  draw(instance.a, test_labels, /*row_major=*/true);    // queries
  draw(instance.b, train_labels, /*row_major=*/false);  // database

  // One fused kNN launch answers every query.
  const auto report = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kFused, instance, k_nn);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < n_test; ++i) {
    int vote = 0;
    for (std::size_t rank = 0; rank < k_nn; ++rank) {
      vote += train_labels[report.result.index(i, rank)];
    }
    if ((vote > 0 ? 1 : -1) == test_labels[i]) ++correct;
  }
  const double accuracy = double(correct) / double(n_test);

  std::printf("kNN classification: %zu train / %zu test, K=%zu, k=%zu\n",
              n_train, n_test, dim, k_nn);
  std::printf("accuracy            : %.1f%%\n", 100.0 * accuracy);
  std::printf("simulated time      : %.3f ms, energy %.4f J\n",
              report.seconds * 1e3, report.energy.total());

  const auto unfused = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kUnfused, instance, k_nn);
  std::printf("fused vs unfused    : %.2fx faster, DRAM traffic %.1f%%\n",
              unfused.seconds / report.seconds,
              100.0 * double(report.total.dram_total_transactions()) /
                  double(unfused.total.dram_total_transactions()));
  // The classes are well separated; anything below 85% means the neighbour
  // lists are wrong.
  return accuracy > 0.85 ? 0 : 1;
}
