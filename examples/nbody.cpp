// Direct N-body potential evaluation — the computational-physics workload
// from the paper's introduction. The gravitational potential at a body i is
//   Φ(α_i) = −G · Σ_j  m_j / (‖α_i − β_j‖ + ε)
// i.e. a kernel summation with the softened reciprocal-distance (Laplace)
// kernel, masses as weights.
//
// The example evaluates the potential induced by a clustered particle set
// on a separate set of tracer points (3-D, embedded in the K=8 tile
// granularity with zero-padded coordinates), validates against the exact
// host oracle, and reports the simulated-device cost.
//
//   build/examples/nbody
#include <cstdio>

#include "blas/vector_ops.h"
#include "pipelines/solver.h"
#include "workload/weights.h"

int main() {
  using namespace ksum;

  // 3-D particles; the tile pipeline wants K a multiple of 8, so the points
  // carry five zero coordinates — the distance is unaffected.
  workload::ProblemSpec spec;
  spec.m = 2048;  // tracer points where the potential is evaluated
  spec.n = 1024;  // massive particles
  spec.k = 8;
  spec.distribution = workload::Distribution::kGaussianMixture;
  spec.seed = 99;
  workload::Instance instance = workload::make_instance(spec);
  for (std::size_t i = 0; i < spec.m; ++i) {
    for (std::size_t d = 3; d < spec.k; ++d) instance.a.at(i, d) = 0.0f;
  }
  for (std::size_t j = 0; j < spec.n; ++j) {
    for (std::size_t d = 3; d < spec.k; ++d) instance.b.at(d, j) = 0.0f;
  }
  // Masses: positive, spread over two decades.
  Rng rng(5);
  for (float& w : instance.w) w = rng.uniform(0.01f, 1.0f);

  core::KernelParams params;
  params.type = core::KernelType::kLaplace3d;
  params.softening = 1e-2f;  // Plummer softening

  const auto fused =
      pipelines::solve(instance, params, pipelines::Backend::kSimFused);
  const auto oracle =
      pipelines::solve(instance, params, pipelines::Backend::kCpuDirect);
  const double err =
      blas::max_rel_diff(fused.v.span(), oracle.v.span(), 1e-3);

  double total_mass = 0.0;
  for (float w : instance.w) total_mass += double(w);
  double mean_phi = 0.0;
  for (float v : fused.v) mean_phi += double(v);
  mean_phi /= double(fused.v.size());

  std::printf("N-body potential: %zu particles (total mass %.1f) on %zu "
              "tracers\n",
              spec.n, total_mass, spec.m);
  std::printf("mean potential      : %.4f  (softening %.0e)\n", mean_phi,
              double(params.softening));
  std::printf("max relative error  : %.2e vs exact summation\n", err);
  std::printf("simulated time      : %.3f ms, energy %.4f J\n",
              fused.report->seconds * 1e3, fused.report->energy.total());

  // The classic trade: direct summation is exact but O(M·N); the paper's
  // fused kernel makes the constant small on GPU-class hardware.
  const auto unfused = pipelines::solve(
      instance, params, pipelines::Backend::kSimCublasUnfused);
  std::printf("fused vs unfused    : %.2fx faster, %.1f%% energy saved\n",
              unfused.report->seconds / fused.report->seconds,
              100.0 * (1.0 - fused.report->energy.total() /
                                 unfused.report->energy.total()));
  return err < 1e-2 ? 0 : 1;
}
