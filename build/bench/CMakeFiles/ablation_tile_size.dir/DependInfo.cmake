
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_tile_size.cc" "bench/CMakeFiles/ablation_tile_size.dir/ablation_tile_size.cc.o" "gcc" "bench/CMakeFiles/ablation_tile_size.dir/ablation_tile_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ksum_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ksum_report.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/ksum_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/pipelines/CMakeFiles/ksum_pipelines.dir/DependInfo.cmake"
  "/root/repo/build/src/gpukernels/CMakeFiles/ksum_gpukernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/ksum_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ksum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/ksum_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ksum_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ksum_config.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
