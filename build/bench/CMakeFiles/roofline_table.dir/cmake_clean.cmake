file(REMOVE_RECURSE
  "CMakeFiles/roofline_table.dir/roofline_table.cc.o"
  "CMakeFiles/roofline_table.dir/roofline_table.cc.o.d"
  "roofline_table"
  "roofline_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roofline_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
