# Empty compiler generated dependencies file for roofline_table.
# This may be replaced when dependencies are built.
