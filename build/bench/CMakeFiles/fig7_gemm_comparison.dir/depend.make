# Empty dependencies file for fig7_gemm_comparison.
# This may be replaced when dependencies are built.
