file(REMOVE_RECURSE
  "CMakeFiles/fig7_gemm_comparison.dir/fig7_gemm_comparison.cc.o"
  "CMakeFiles/fig7_gemm_comparison.dir/fig7_gemm_comparison.cc.o.d"
  "fig7_gemm_comparison"
  "fig7_gemm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gemm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
