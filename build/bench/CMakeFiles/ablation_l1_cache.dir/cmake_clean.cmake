file(REMOVE_RECURSE
  "CMakeFiles/ablation_l1_cache.dir/ablation_l1_cache.cc.o"
  "CMakeFiles/ablation_l1_cache.dir/ablation_l1_cache.cc.o.d"
  "ablation_l1_cache"
  "ablation_l1_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l1_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
