# Empty compiler generated dependencies file for sensitivity_bandwidth.
# This may be replaced when dependencies are built.
