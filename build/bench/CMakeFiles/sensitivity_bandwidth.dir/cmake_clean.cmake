file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_bandwidth.dir/sensitivity_bandwidth.cc.o"
  "CMakeFiles/sensitivity_bandwidth.dir/sensitivity_bandwidth.cc.o.d"
  "sensitivity_bandwidth"
  "sensitivity_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
