# Empty compiler generated dependencies file for fig2_l2_mpki.
# This may be replaced when dependencies are built.
