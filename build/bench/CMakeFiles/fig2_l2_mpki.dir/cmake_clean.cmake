file(REMOVE_RECURSE
  "CMakeFiles/fig2_l2_mpki.dir/fig2_l2_mpki.cc.o"
  "CMakeFiles/fig2_l2_mpki.dir/fig2_l2_mpki.cc.o.d"
  "fig2_l2_mpki"
  "fig2_l2_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_l2_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
