# Empty compiler generated dependencies file for fig1_energy_breakdown_cublas.
# This may be replaced when dependencies are built.
