file(REMOVE_RECURSE
  "CMakeFiles/fig1_energy_breakdown_cublas.dir/fig1_energy_breakdown_cublas.cc.o"
  "CMakeFiles/fig1_energy_breakdown_cublas.dir/fig1_energy_breakdown_cublas.cc.o.d"
  "fig1_energy_breakdown_cublas"
  "fig1_energy_breakdown_cublas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_energy_breakdown_cublas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
