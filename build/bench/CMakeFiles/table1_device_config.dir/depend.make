# Empty dependencies file for table1_device_config.
# This may be replaced when dependencies are built.
