file(REMOVE_RECURSE
  "CMakeFiles/ablation_smem_layout.dir/ablation_smem_layout.cc.o"
  "CMakeFiles/ablation_smem_layout.dir/ablation_smem_layout.cc.o.d"
  "ablation_smem_layout"
  "ablation_smem_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smem_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
