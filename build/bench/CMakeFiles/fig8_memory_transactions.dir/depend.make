# Empty dependencies file for fig8_memory_transactions.
# This may be replaced when dependencies are built.
