file(REMOVE_RECURSE
  "CMakeFiles/fig8_memory_transactions.dir/fig8_memory_transactions.cc.o"
  "CMakeFiles/fig8_memory_transactions.dir/fig8_memory_transactions.cc.o.d"
  "fig8_memory_transactions"
  "fig8_memory_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_memory_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
