file(REMOVE_RECURSE
  "CMakeFiles/fig6_exec_time_speedup.dir/fig6_exec_time_speedup.cc.o"
  "CMakeFiles/fig6_exec_time_speedup.dir/fig6_exec_time_speedup.cc.o.d"
  "fig6_exec_time_speedup"
  "fig6_exec_time_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_exec_time_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
