file(REMOVE_RECURSE
  "CMakeFiles/fig9_energy_breakdown.dir/fig9_energy_breakdown.cc.o"
  "CMakeFiles/fig9_energy_breakdown.dir/fig9_energy_breakdown.cc.o.d"
  "fig9_energy_breakdown"
  "fig9_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
