file(REMOVE_RECURSE
  "libksum_bench_common.a"
)
