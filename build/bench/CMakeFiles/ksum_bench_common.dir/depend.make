# Empty dependencies file for ksum_bench_common.
# This may be replaced when dependencies are built.
