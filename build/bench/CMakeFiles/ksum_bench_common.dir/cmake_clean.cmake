file(REMOVE_RECURSE
  "CMakeFiles/ksum_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ksum_bench_common.dir/bench_common.cc.o.d"
  "libksum_bench_common.a"
  "libksum_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
