# Empty compiler generated dependencies file for micro_host_blas.
# This may be replaced when dependencies are built.
