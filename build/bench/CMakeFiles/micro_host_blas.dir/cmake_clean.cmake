file(REMOVE_RECURSE
  "CMakeFiles/micro_host_blas.dir/micro_host_blas.cc.o"
  "CMakeFiles/micro_host_blas.dir/micro_host_blas.cc.o.d"
  "micro_host_blas"
  "micro_host_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_host_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
