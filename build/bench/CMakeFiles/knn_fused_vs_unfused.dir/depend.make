# Empty dependencies file for knn_fused_vs_unfused.
# This may be replaced when dependencies are built.
