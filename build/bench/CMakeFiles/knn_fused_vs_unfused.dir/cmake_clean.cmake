file(REMOVE_RECURSE
  "CMakeFiles/knn_fused_vs_unfused.dir/knn_fused_vs_unfused.cc.o"
  "CMakeFiles/knn_fused_vs_unfused.dir/knn_fused_vs_unfused.cc.o.d"
  "knn_fused_vs_unfused"
  "knn_fused_vs_unfused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_fused_vs_unfused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
