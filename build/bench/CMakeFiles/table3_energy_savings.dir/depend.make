# Empty dependencies file for table3_energy_savings.
# This may be replaced when dependencies are built.
