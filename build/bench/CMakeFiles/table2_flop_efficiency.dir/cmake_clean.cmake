file(REMOVE_RECURSE
  "CMakeFiles/table2_flop_efficiency.dir/table2_flop_efficiency.cc.o"
  "CMakeFiles/table2_flop_efficiency.dir/table2_flop_efficiency.cc.o.d"
  "table2_flop_efficiency"
  "table2_flop_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_flop_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
