# Empty dependencies file for table2_flop_efficiency.
# This may be replaced when dependencies are built.
