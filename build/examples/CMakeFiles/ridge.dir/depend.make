# Empty dependencies file for ridge.
# This may be replaced when dependencies are built.
