file(REMOVE_RECURSE
  "CMakeFiles/ridge.dir/ridge.cpp.o"
  "CMakeFiles/ridge.dir/ridge.cpp.o.d"
  "ridge"
  "ridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
