file(REMOVE_RECURSE
  "CMakeFiles/kde.dir/kde.cpp.o"
  "CMakeFiles/kde.dir/kde.cpp.o.d"
  "kde"
  "kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
