# Empty compiler generated dependencies file for kde.
# This may be replaced when dependencies are built.
