# Empty dependencies file for ksum_report.
# This may be replaced when dependencies are built.
