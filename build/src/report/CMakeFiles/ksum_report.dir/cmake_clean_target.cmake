file(REMOVE_RECURSE
  "libksum_report.a"
)
