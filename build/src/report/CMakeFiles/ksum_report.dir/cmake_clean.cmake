file(REMOVE_RECURSE
  "CMakeFiles/ksum_report.dir/paper_report.cc.o"
  "CMakeFiles/ksum_report.dir/paper_report.cc.o.d"
  "CMakeFiles/ksum_report.dir/pipeline_printer.cc.o"
  "CMakeFiles/ksum_report.dir/pipeline_printer.cc.o.d"
  "libksum_report.a"
  "libksum_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
