file(REMOVE_RECURSE
  "CMakeFiles/ksum_pipelines.dir/knn_pipeline.cc.o"
  "CMakeFiles/ksum_pipelines.dir/knn_pipeline.cc.o.d"
  "CMakeFiles/ksum_pipelines.dir/pipeline.cc.o"
  "CMakeFiles/ksum_pipelines.dir/pipeline.cc.o.d"
  "CMakeFiles/ksum_pipelines.dir/solver.cc.o"
  "CMakeFiles/ksum_pipelines.dir/solver.cc.o.d"
  "libksum_pipelines.a"
  "libksum_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
