file(REMOVE_RECURSE
  "libksum_pipelines.a"
)
