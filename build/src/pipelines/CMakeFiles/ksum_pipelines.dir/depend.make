# Empty dependencies file for ksum_pipelines.
# This may be replaced when dependencies are built.
