# Empty compiler generated dependencies file for ksum-cli.
# This may be replaced when dependencies are built.
