file(REMOVE_RECURSE
  "CMakeFiles/ksum-cli.dir/ksum_cli.cc.o"
  "CMakeFiles/ksum-cli.dir/ksum_cli.cc.o.d"
  "ksum-cli"
  "ksum-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
