file(REMOVE_RECURSE
  "libksum_config.a"
)
