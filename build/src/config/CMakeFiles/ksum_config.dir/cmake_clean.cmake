file(REMOVE_RECURSE
  "CMakeFiles/ksum_config.dir/device_spec.cc.o"
  "CMakeFiles/ksum_config.dir/device_spec.cc.o.d"
  "CMakeFiles/ksum_config.dir/energy_spec.cc.o"
  "CMakeFiles/ksum_config.dir/energy_spec.cc.o.d"
  "CMakeFiles/ksum_config.dir/timing_spec.cc.o"
  "CMakeFiles/ksum_config.dir/timing_spec.cc.o.d"
  "libksum_config.a"
  "libksum_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
