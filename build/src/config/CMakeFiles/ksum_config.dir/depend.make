# Empty dependencies file for ksum_config.
# This may be replaced when dependencies are built.
