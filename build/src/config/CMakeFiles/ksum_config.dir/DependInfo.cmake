
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/device_spec.cc" "src/config/CMakeFiles/ksum_config.dir/device_spec.cc.o" "gcc" "src/config/CMakeFiles/ksum_config.dir/device_spec.cc.o.d"
  "/root/repo/src/config/energy_spec.cc" "src/config/CMakeFiles/ksum_config.dir/energy_spec.cc.o" "gcc" "src/config/CMakeFiles/ksum_config.dir/energy_spec.cc.o.d"
  "/root/repo/src/config/timing_spec.cc" "src/config/CMakeFiles/ksum_config.dir/timing_spec.cc.o" "gcc" "src/config/CMakeFiles/ksum_config.dir/timing_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
