file(REMOVE_RECURSE
  "libksum_gpusim.a"
)
