
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cache.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/cache.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/cache.cc.o.d"
  "/root/repo/src/gpusim/coalescer.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/coalescer.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/coalescer.cc.o.d"
  "/root/repo/src/gpusim/counters.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/counters.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/counters.cc.o.d"
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/energy.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/energy.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/energy.cc.o.d"
  "/root/repo/src/gpusim/global_memory.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/global_memory.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/global_memory.cc.o.d"
  "/root/repo/src/gpusim/occupancy.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/occupancy.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/occupancy.cc.o.d"
  "/root/repo/src/gpusim/shared_memory.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/shared_memory.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/shared_memory.cc.o.d"
  "/root/repo/src/gpusim/timing.cc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/timing.cc.o" "gcc" "src/gpusim/CMakeFiles/ksum_gpusim.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ksum_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
