# Empty dependencies file for ksum_gpusim.
# This may be replaced when dependencies are built.
