file(REMOVE_RECURSE
  "CMakeFiles/ksum_gpusim.dir/cache.cc.o"
  "CMakeFiles/ksum_gpusim.dir/cache.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/coalescer.cc.o"
  "CMakeFiles/ksum_gpusim.dir/coalescer.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/counters.cc.o"
  "CMakeFiles/ksum_gpusim.dir/counters.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/device.cc.o"
  "CMakeFiles/ksum_gpusim.dir/device.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/energy.cc.o"
  "CMakeFiles/ksum_gpusim.dir/energy.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/global_memory.cc.o"
  "CMakeFiles/ksum_gpusim.dir/global_memory.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/occupancy.cc.o"
  "CMakeFiles/ksum_gpusim.dir/occupancy.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/shared_memory.cc.o"
  "CMakeFiles/ksum_gpusim.dir/shared_memory.cc.o.d"
  "CMakeFiles/ksum_gpusim.dir/timing.cc.o"
  "CMakeFiles/ksum_gpusim.dir/timing.cc.o.d"
  "libksum_gpusim.a"
  "libksum_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
