file(REMOVE_RECURSE
  "CMakeFiles/ksum_analytic.dir/calibration.cc.o"
  "CMakeFiles/ksum_analytic.dir/calibration.cc.o.d"
  "CMakeFiles/ksum_analytic.dir/dram_model.cc.o"
  "CMakeFiles/ksum_analytic.dir/dram_model.cc.o.d"
  "CMakeFiles/ksum_analytic.dir/pipeline_model.cc.o"
  "CMakeFiles/ksum_analytic.dir/pipeline_model.cc.o.d"
  "libksum_analytic.a"
  "libksum_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
