file(REMOVE_RECURSE
  "libksum_analytic.a"
)
