# Empty dependencies file for ksum_analytic.
# This may be replaced when dependencies are built.
