file(REMOVE_RECURSE
  "CMakeFiles/ksum_blas.dir/gemm.cc.o"
  "CMakeFiles/ksum_blas.dir/gemm.cc.o.d"
  "CMakeFiles/ksum_blas.dir/gemv.cc.o"
  "CMakeFiles/ksum_blas.dir/gemv.cc.o.d"
  "CMakeFiles/ksum_blas.dir/vector_ops.cc.o"
  "CMakeFiles/ksum_blas.dir/vector_ops.cc.o.d"
  "libksum_blas.a"
  "libksum_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
