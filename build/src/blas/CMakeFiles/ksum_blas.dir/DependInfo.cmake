
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/gemm.cc" "src/blas/CMakeFiles/ksum_blas.dir/gemm.cc.o" "gcc" "src/blas/CMakeFiles/ksum_blas.dir/gemm.cc.o.d"
  "/root/repo/src/blas/gemv.cc" "src/blas/CMakeFiles/ksum_blas.dir/gemv.cc.o" "gcc" "src/blas/CMakeFiles/ksum_blas.dir/gemv.cc.o.d"
  "/root/repo/src/blas/vector_ops.cc" "src/blas/CMakeFiles/ksum_blas.dir/vector_ops.cc.o" "gcc" "src/blas/CMakeFiles/ksum_blas.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
