# Empty dependencies file for ksum_blas.
# This may be replaced when dependencies are built.
