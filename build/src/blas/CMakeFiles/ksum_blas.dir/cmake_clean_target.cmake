file(REMOVE_RECURSE
  "libksum_blas.a"
)
