file(REMOVE_RECURSE
  "libksum_workload.a"
)
