file(REMOVE_RECURSE
  "CMakeFiles/ksum_workload.dir/paper_sweeps.cc.o"
  "CMakeFiles/ksum_workload.dir/paper_sweeps.cc.o.d"
  "CMakeFiles/ksum_workload.dir/point_generators.cc.o"
  "CMakeFiles/ksum_workload.dir/point_generators.cc.o.d"
  "CMakeFiles/ksum_workload.dir/problem_spec.cc.o"
  "CMakeFiles/ksum_workload.dir/problem_spec.cc.o.d"
  "CMakeFiles/ksum_workload.dir/weights.cc.o"
  "CMakeFiles/ksum_workload.dir/weights.cc.o.d"
  "libksum_workload.a"
  "libksum_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
