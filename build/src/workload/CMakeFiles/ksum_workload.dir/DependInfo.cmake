
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/paper_sweeps.cc" "src/workload/CMakeFiles/ksum_workload.dir/paper_sweeps.cc.o" "gcc" "src/workload/CMakeFiles/ksum_workload.dir/paper_sweeps.cc.o.d"
  "/root/repo/src/workload/point_generators.cc" "src/workload/CMakeFiles/ksum_workload.dir/point_generators.cc.o" "gcc" "src/workload/CMakeFiles/ksum_workload.dir/point_generators.cc.o.d"
  "/root/repo/src/workload/problem_spec.cc" "src/workload/CMakeFiles/ksum_workload.dir/problem_spec.cc.o" "gcc" "src/workload/CMakeFiles/ksum_workload.dir/problem_spec.cc.o.d"
  "/root/repo/src/workload/weights.cc" "src/workload/CMakeFiles/ksum_workload.dir/weights.cc.o" "gcc" "src/workload/CMakeFiles/ksum_workload.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
