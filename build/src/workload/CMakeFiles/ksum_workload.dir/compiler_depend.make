# Empty compiler generated dependencies file for ksum_workload.
# This may be replaced when dependencies are built.
