# Empty dependencies file for ksum_common.
# This may be replaced when dependencies are built.
