file(REMOVE_RECURSE
  "libksum_common.a"
)
