file(REMOVE_RECURSE
  "CMakeFiles/ksum_common.dir/csv.cc.o"
  "CMakeFiles/ksum_common.dir/csv.cc.o.d"
  "CMakeFiles/ksum_common.dir/error.cc.o"
  "CMakeFiles/ksum_common.dir/error.cc.o.d"
  "CMakeFiles/ksum_common.dir/flags.cc.o"
  "CMakeFiles/ksum_common.dir/flags.cc.o.d"
  "CMakeFiles/ksum_common.dir/rng.cc.o"
  "CMakeFiles/ksum_common.dir/rng.cc.o.d"
  "CMakeFiles/ksum_common.dir/string_util.cc.o"
  "CMakeFiles/ksum_common.dir/string_util.cc.o.d"
  "CMakeFiles/ksum_common.dir/table.cc.o"
  "CMakeFiles/ksum_common.dir/table.cc.o.d"
  "libksum_common.a"
  "libksum_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
