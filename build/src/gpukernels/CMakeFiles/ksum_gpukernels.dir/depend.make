# Empty dependencies file for ksum_gpukernels.
# This may be replaced when dependencies are built.
