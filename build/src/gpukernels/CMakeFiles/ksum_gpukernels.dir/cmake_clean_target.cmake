file(REMOVE_RECURSE
  "libksum_gpukernels.a"
)
