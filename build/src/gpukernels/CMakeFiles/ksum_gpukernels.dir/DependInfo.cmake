
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpukernels/device_workspace.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/device_workspace.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/device_workspace.cc.o.d"
  "/root/repo/src/gpukernels/fused_ksum.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/fused_ksum.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/fused_ksum.cc.o.d"
  "/root/repo/src/gpukernels/gemm_cublas_model.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemm_cublas_model.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemm_cublas_model.cc.o.d"
  "/root/repo/src/gpukernels/gemm_cudac.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemm_cudac.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemm_cudac.cc.o.d"
  "/root/repo/src/gpukernels/gemm_mainloop.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemm_mainloop.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemm_mainloop.cc.o.d"
  "/root/repo/src/gpukernels/gemv_summation.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemv_summation.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/gemv_summation.cc.o.d"
  "/root/repo/src/gpukernels/kernel_eval.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/kernel_eval.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/kernel_eval.cc.o.d"
  "/root/repo/src/gpukernels/knn.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/knn.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/knn.cc.o.d"
  "/root/repo/src/gpukernels/norms.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/norms.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/norms.cc.o.d"
  "/root/repo/src/gpukernels/smem_layout.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/smem_layout.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/smem_layout.cc.o.d"
  "/root/repo/src/gpukernels/tile_loader.cc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/tile_loader.cc.o" "gcc" "src/gpukernels/CMakeFiles/ksum_gpukernels.dir/tile_loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/ksum_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ksum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/ksum_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ksum_config.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ksum_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
