file(REMOVE_RECURSE
  "CMakeFiles/ksum_gpukernels.dir/device_workspace.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/device_workspace.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/fused_ksum.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/fused_ksum.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/gemm_cublas_model.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/gemm_cublas_model.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/gemm_cudac.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/gemm_cudac.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/gemm_mainloop.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/gemm_mainloop.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/gemv_summation.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/gemv_summation.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/kernel_eval.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/kernel_eval.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/knn.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/knn.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/norms.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/norms.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/smem_layout.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/smem_layout.cc.o.d"
  "CMakeFiles/ksum_gpukernels.dir/tile_loader.cc.o"
  "CMakeFiles/ksum_gpukernels.dir/tile_loader.cc.o.d"
  "libksum_gpukernels.a"
  "libksum_gpukernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_gpukernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
