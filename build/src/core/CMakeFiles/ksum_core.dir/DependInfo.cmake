
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exact.cc" "src/core/CMakeFiles/ksum_core.dir/exact.cc.o" "gcc" "src/core/CMakeFiles/ksum_core.dir/exact.cc.o.d"
  "/root/repo/src/core/kernels.cc" "src/core/CMakeFiles/ksum_core.dir/kernels.cc.o" "gcc" "src/core/CMakeFiles/ksum_core.dir/kernels.cc.o.d"
  "/root/repo/src/core/knn_exact.cc" "src/core/CMakeFiles/ksum_core.dir/knn_exact.cc.o" "gcc" "src/core/CMakeFiles/ksum_core.dir/knn_exact.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/ksum_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ksum_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
