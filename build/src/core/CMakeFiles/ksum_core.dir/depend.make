# Empty dependencies file for ksum_core.
# This may be replaced when dependencies are built.
