file(REMOVE_RECURSE
  "CMakeFiles/ksum_core.dir/exact.cc.o"
  "CMakeFiles/ksum_core.dir/exact.cc.o.d"
  "CMakeFiles/ksum_core.dir/kernels.cc.o"
  "CMakeFiles/ksum_core.dir/kernels.cc.o.d"
  "CMakeFiles/ksum_core.dir/knn_exact.cc.o"
  "CMakeFiles/ksum_core.dir/knn_exact.cc.o.d"
  "libksum_core.a"
  "libksum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksum_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
