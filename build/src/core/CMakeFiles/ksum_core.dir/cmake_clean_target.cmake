file(REMOVE_RECURSE
  "libksum_core.a"
)
