file(REMOVE_RECURSE
  "CMakeFiles/config_tests.dir/config/device_spec_test.cc.o"
  "CMakeFiles/config_tests.dir/config/device_spec_test.cc.o.d"
  "CMakeFiles/config_tests.dir/config/energy_spec_test.cc.o"
  "CMakeFiles/config_tests.dir/config/energy_spec_test.cc.o.d"
  "CMakeFiles/config_tests.dir/config/timing_spec_test.cc.o"
  "CMakeFiles/config_tests.dir/config/timing_spec_test.cc.o.d"
  "config_tests"
  "config_tests.pdb"
  "config_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
