file(REMOVE_RECURSE
  "CMakeFiles/pipelines_tests.dir/pipelines/pipeline_test.cc.o"
  "CMakeFiles/pipelines_tests.dir/pipelines/pipeline_test.cc.o.d"
  "CMakeFiles/pipelines_tests.dir/pipelines/solver_test.cc.o"
  "CMakeFiles/pipelines_tests.dir/pipelines/solver_test.cc.o.d"
  "pipelines_tests"
  "pipelines_tests.pdb"
  "pipelines_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelines_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
