# Empty dependencies file for pipelines_tests.
# This may be replaced when dependencies are built.
