file(REMOVE_RECURSE
  "CMakeFiles/analytic_tests.dir/analytic/calibration_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/calibration_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/dram_model_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/dram_model_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/pipeline_model_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/pipeline_model_test.cc.o.d"
  "analytic_tests"
  "analytic_tests.pdb"
  "analytic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
