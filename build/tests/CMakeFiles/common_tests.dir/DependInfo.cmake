
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/aligned_buffer_test.cc" "tests/CMakeFiles/common_tests.dir/common/aligned_buffer_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/aligned_buffer_test.cc.o.d"
  "/root/repo/tests/common/csv_test.cc" "tests/CMakeFiles/common_tests.dir/common/csv_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/csv_test.cc.o.d"
  "/root/repo/tests/common/error_test.cc" "tests/CMakeFiles/common_tests.dir/common/error_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/error_test.cc.o.d"
  "/root/repo/tests/common/flags_test.cc" "tests/CMakeFiles/common_tests.dir/common/flags_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/flags_test.cc.o.d"
  "/root/repo/tests/common/math_util_test.cc" "tests/CMakeFiles/common_tests.dir/common/math_util_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/math_util_test.cc.o.d"
  "/root/repo/tests/common/matrix_test.cc" "tests/CMakeFiles/common_tests.dir/common/matrix_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/matrix_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/common_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/string_util_test.cc" "tests/CMakeFiles/common_tests.dir/common/string_util_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/string_util_test.cc.o.d"
  "/root/repo/tests/common/table_test.cc" "tests/CMakeFiles/common_tests.dir/common/table_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/ksum_report.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/ksum_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/pipelines/CMakeFiles/ksum_pipelines.dir/DependInfo.cmake"
  "/root/repo/build/src/gpukernels/CMakeFiles/ksum_gpukernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/ksum_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ksum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/ksum_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ksum_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ksum_config.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ksum_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
