file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/aligned_buffer_test.cc.o"
  "CMakeFiles/common_tests.dir/common/aligned_buffer_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/csv_test.cc.o"
  "CMakeFiles/common_tests.dir/common/csv_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/error_test.cc.o"
  "CMakeFiles/common_tests.dir/common/error_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/flags_test.cc.o"
  "CMakeFiles/common_tests.dir/common/flags_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/math_util_test.cc.o"
  "CMakeFiles/common_tests.dir/common/math_util_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/matrix_test.cc.o"
  "CMakeFiles/common_tests.dir/common/matrix_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/string_util_test.cc.o"
  "CMakeFiles/common_tests.dir/common/string_util_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/table_test.cc.o"
  "CMakeFiles/common_tests.dir/common/table_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
