file(REMOVE_RECURSE
  "CMakeFiles/blas_tests.dir/blas/gemm_test.cc.o"
  "CMakeFiles/blas_tests.dir/blas/gemm_test.cc.o.d"
  "CMakeFiles/blas_tests.dir/blas/gemv_test.cc.o"
  "CMakeFiles/blas_tests.dir/blas/gemv_test.cc.o.d"
  "CMakeFiles/blas_tests.dir/blas/vector_ops_test.cc.o"
  "CMakeFiles/blas_tests.dir/blas/vector_ops_test.cc.o.d"
  "blas_tests"
  "blas_tests.pdb"
  "blas_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blas_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
