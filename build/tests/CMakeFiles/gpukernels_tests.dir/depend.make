# Empty dependencies file for gpukernels_tests.
# This may be replaced when dependencies are built.
