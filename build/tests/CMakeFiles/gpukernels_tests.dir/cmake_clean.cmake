file(REMOVE_RECURSE
  "CMakeFiles/gpukernels_tests.dir/gpukernels/fused_ksum_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/fused_ksum_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemm_cublas_model_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemm_cublas_model_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemm_cudac_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemm_cudac_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemm_mainloop_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemm_mainloop_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemv_summation_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/gemv_summation_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/kernel_eval_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/kernel_eval_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/knn_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/knn_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/norms_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/norms_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/smem_layout_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/smem_layout_test.cc.o.d"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/tile_loader_test.cc.o"
  "CMakeFiles/gpukernels_tests.dir/gpukernels/tile_loader_test.cc.o.d"
  "gpukernels_tests"
  "gpukernels_tests.pdb"
  "gpukernels_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpukernels_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
