file(REMOVE_RECURSE
  "CMakeFiles/gpusim_tests.dir/gpusim/cache_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/cache_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/coalescer_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/coalescer_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/counters_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/counters_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/device_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/device_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/energy_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/energy_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/global_memory_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/global_memory_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/l1_cache_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/l1_cache_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/occupancy_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/occupancy_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/shared_memory_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/shared_memory_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/timing_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/timing_test.cc.o.d"
  "CMakeFiles/gpusim_tests.dir/gpusim/warp_access_test.cc.o"
  "CMakeFiles/gpusim_tests.dir/gpusim/warp_access_test.cc.o.d"
  "gpusim_tests"
  "gpusim_tests.pdb"
  "gpusim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
