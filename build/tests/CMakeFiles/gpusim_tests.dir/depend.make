# Empty dependencies file for gpusim_tests.
# This may be replaced when dependencies are built.
