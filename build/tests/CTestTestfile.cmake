# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/config_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/blas_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/gpusim_tests[1]_include.cmake")
include("/root/repo/build/tests/gpukernels_tests[1]_include.cmake")
include("/root/repo/build/tests/pipelines_tests[1]_include.cmake")
include("/root/repo/build/tests/analytic_tests[1]_include.cmake")
include("/root/repo/build/tests/report_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
