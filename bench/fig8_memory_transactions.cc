// Fig. 8a/8b: L2 and DRAM transaction counts of Fused and CUDA-Unfused
// normalised to cuBLAS-Unfused. The DRAM panel is the paper's strongest
// claim: fused stays below 10% everywhere at scale.
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& points = bench::bench_sweep(model);
  bench::emit(report::fig8a_l2_transactions(points), "fig8a_l2_transactions");
  bench::emit(report::fig8b_dram_transactions(points),
              "fig8b_dram_transactions");
  bench::write_bench_json("fig8_memory_transactions", points);
  return 0;
}
