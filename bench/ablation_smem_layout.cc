// Ablation: the Fig.-5 shared-memory track layout vs the paper's
// "intuitive" placement. Quantifies what the data repositioning buys —
// shared-memory replays and the resulting modelled time, per K group.
#include "bench_common.h"
#include "common/string_util.h"

int main() {
  using namespace ksum;

  pipelines::RunOptions naive_options;
  naive_options.mainloop.layout = gpukernels::TileLayout::kNaive;
  analytic::PipelineModel fig5_model;
  analytic::PipelineModel naive_model(naive_options);

  Table t("Ablation — Fig.5 layout vs naive track placement "
          "(Fused, N=1024, M=131072)");
  t.header({"K", "smem txn (Fig.5)", "smem txn (naive)", "replay overhead",
            "time (Fig.5)", "time (naive)", "slowdown"});
  for (std::size_t k : workload::paper_dimensions()) {
    const auto fig5 =
        fig5_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
    const auto naive =
        naive_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
    t.row({str_format("%zu", k), format_si(fig5.total.smem_transactions),
           format_si(naive.total.smem_transactions),
           format_percent(naive.total.smem_transactions /
                              fig5.total.smem_transactions -
                          1.0),
           str_format("%.3f ms", fig5.seconds * 1e3),
           str_format("%.3f ms", naive.seconds * 1e3),
           str_format("%.2fx", naive.seconds / fig5.seconds)});
  }
  bench::emit(t, "ablation_smem_layout");
  bench::write_bench_json("ablation_smem_layout", {});
  return 0;
}
