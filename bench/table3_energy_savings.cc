// Table III: total-energy savings of Fused over cuBLAS-Unfused (paper:
// 31.3–32.5% at K=32 down to 3.5–8.5% at K=256).
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& points = bench::bench_sweep(model);
  bench::emit(report::table3_energy_savings(points), "table3_energy_savings");
  bench::write_bench_json("table3_energy_savings", points);
  return 0;
}
