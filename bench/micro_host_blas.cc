// google-benchmark timings of the host BLAS (the numerical oracle layer).
// Wall-clock here is host CPU time, not simulated device time — useful to
// keep the oracle fast enough for the property suites.
#include <benchmark/benchmark.h>

#include "blas/gemm.h"
#include "blas/gemv.h"
#include "blas/vector_ops.h"
#include "common/rng.h"

namespace {

using namespace ksum;

Matrix random_matrix(std::size_t rows, std::size_t cols, Layout layout,
                     std::uint64_t seed) {
  Matrix m(rows, cols, layout);
  Rng rng(seed);
  for (float& x : m.span()) x = rng.uniform(-1.0f, 1.0f);
  return m;
}

void BM_SgemmNaive(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  Matrix a = random_matrix(n, n, Layout::kRowMajor, 1);
  Matrix b = random_matrix(n, n, Layout::kColMajor, 2);
  Matrix c(n, n, Layout::kRowMajor);
  for (auto _ : state) {
    blas::sgemm_naive(1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(2 * n * n * n));
}
BENCHMARK(BM_SgemmNaive)->Arg(64)->Arg(128);

void BM_SgemmBlocked(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  Matrix a = random_matrix(n, n, Layout::kRowMajor, 1);
  Matrix b = random_matrix(n, n, Layout::kColMajor, 2);
  Matrix c(n, n, Layout::kRowMajor);
  for (auto _ : state) {
    blas::sgemm_blocked(1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(2 * n * n * n));
}
BENCHMARK(BM_SgemmBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmParallel(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  Matrix a = random_matrix(n, n, Layout::kRowMajor, 1);
  Matrix b = random_matrix(n, n, Layout::kColMajor, 2);
  Matrix c(n, n, Layout::kRowMajor);
  for (auto _ : state) {
    blas::sgemm_parallel(1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(2 * n * n * n));
}
BENCHMARK(BM_SgemmParallel)->Arg(128)->Arg(256);

void BM_Sgemv(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  Matrix a = random_matrix(n, n, Layout::kRowMajor, 3);
  AlignedBuffer<float> x(n), y(n);
  for (float& v : x) v = 0.5f;
  for (auto _ : state) {
    blas::sgemv(1.0f, a, x.span(), 0.0f, y.span());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(2 * n * n));
}
BENCHMARK(BM_Sgemv)->Arg(256)->Arg(1024);

void BM_RowSquaredNorms(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  Matrix a = random_matrix(n, 64, Layout::kRowMajor, 4);
  for (auto _ : state) {
    auto norms = blas::row_squared_norms(a);
    benchmark::DoNotOptimize(norms.data());
  }
}
BENCHMARK(BM_RowSquaredNorms)->Arg(1024)->Arg(8192);

}  // namespace
