// Traffic replay for the ksum-serve daemon (docs/SERVING.md).
//
// Three phases against an in-process serve::Server:
//
//   1. Admission — a paused-worker burst twice the queue capacity must shed
//      exactly burst−capacity requests with `overloaded` (load-shedding is
//      deterministic, not racy).
//   2. Deterministic replay — a seeded mixed trace (five shapes, injected
//      faults, hopeless deadlines, malformed lines) replayed with 1 worker
//      and with many must produce byte-identical sorted reply sets and the
//      same counters; the many-worker run's ksum-serve-v1 record is written
//      as BENCH_traffic_replay.json. Its modelled percentiles are a pure
//      function of the trace, so bench_compare.py gates p50/p99; the wall
//      summary rides along unguarded.
//   3. Open-loop arrival — the same request mix fed at a fixed arrival
//      interval (timers, not backpressure) for an operator-facing wall
//      latency table. Real clock, machine-dependent, never gated.
//
// Environment: KSUM_BENCH_FAST=1 shrinks the trace; KSUM_CSV_DIR mirrors
// tables; KSUM_BENCH_JSON_DIR places the JSON record; KSUM_BENCH_THREADS
// sets the many-worker count (default: hardware concurrency).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "exec/thread_pool.h"
#include "serve/server.h"
#include "serve/stats.h"

namespace {

using namespace ksum;

int bench_threads() {
  const char* env = std::getenv("KSUM_BENCH_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1 && n <= exec::ThreadPool::kMaxThreads) return n;
  }
  return exec::ThreadPool::hardware_threads();
}

// The seeded request mix. Index-derived, so every replay (and every worker
// count) sees the identical byte stream.
std::vector<std::string> make_trace(std::size_t count) {
  static const struct {
    std::size_t m, n, k;
  } kShapes[] = {
      {128, 128, 8}, {256, 128, 8}, {100, 90, 8}, {128, 256, 16},
      {256, 256, 8},
  };
  std::vector<std::string> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 53 == 7) {
      trace.push_back("malformed request #" + std::to_string(i));
      continue;
    }
    const auto& shape = kShapes[i % (sizeof(kShapes) / sizeof(kShapes[0]))];
    std::string line = "{\"op\":\"solve\",\"id\":\"r" + std::to_string(i) +
                       "\",\"m\":" + std::to_string(shape.m) +
                       ",\"n\":" + std::to_string(shape.n) +
                       ",\"k\":" + std::to_string(shape.k);
    if (i % 4 == 0) {
      line += ",\"fault_rate\":" + str_format("%g", 0.01 * double(1 + i % 3)) +
              ",\"fault_seed\":" + std::to_string(1000 + i);
    }
    if (i % 37 == 5) line += ",\"deadline_ms\":0.000001";
    line += "}";
    trace.push_back(std::move(line));
  }
  return trace;
}

struct ReplayResult {
  std::vector<std::string> replies;  // sorted
  profile::Json record;
  std::uint64_t ok = 0, invalid = 0, timeout = 0, internal = 0;
  double wall_seconds = 0;
};

ReplayResult replay(const std::vector<std::string>& trace, int workers,
                    double arrival_ms) {
  auto lines = std::make_shared<std::vector<std::string>>();
  auto mutex = std::make_shared<std::mutex>();
  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = trace.size() + 1;  // replay never sheds
  options.max_attempts = 2;
  serve::Server server(options, [lines, mutex](const std::string& line) {
    std::lock_guard<std::mutex> lock(*mutex);
    lines->push_back(line);
  });

  const auto begin = std::chrono::steady_clock::now();
  server.start();
  for (const std::string& line : trace) {
    server.handle_line(line);
    if (arrival_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(arrival_ms));
    }
  }
  server.drain();

  ReplayResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  result.replies = *lines;
  std::sort(result.replies.begin(), result.replies.end());
  result.record = server.stats_json();
  result.ok = server.stats().by_status(StatusCode::kOk);
  result.invalid = server.stats().by_status(StatusCode::kInvalid);
  result.timeout = server.stats().by_status(StatusCode::kTimeout);
  result.internal = server.stats().by_status(StatusCode::kInternal);
  return result;
}

std::string latency_cell(const profile::Json& record, const char* which,
                         const char* key) {
  return str_format(
      "%.4f", record.at("latency_ms").at(which).at(key).as_double());
}

}  // namespace

int main() {
  const bool fast = std::getenv("KSUM_BENCH_FAST") != nullptr;
  const std::size_t trace_size = fast ? 48 : 200;
  const int many = std::max(2, bench_threads());
  bool pass = true;

  // ---- 1. Admission: deterministic shedding ------------------------------
  {
    constexpr std::size_t kCapacity = 8;
    const auto burst = make_trace(2 * kCapacity);
    std::size_t shed_replies = 0;
    serve::ServerOptions options;
    options.workers = 1;
    options.queue_capacity = kCapacity;
    serve::Server server(options, [&](const std::string& line) {
      if (line.find("\"overloaded\"") != std::string::npos) ++shed_replies;
    });
    // Workers are not started: the queue fills synchronously and the
    // overflow sheds before any solve completes.
    std::size_t solves = 0;
    for (const auto& line : burst) {
      if (line.find("malformed") == std::string::npos) ++solves;
      server.handle_line(line);
    }
    server.start();
    server.drain();
    const std::size_t expected = solves - kCapacity;
    std::printf("admission burst: %zu/%zu requests shed (expected %zu)\n",
                shed_replies, solves, expected);
    pass = pass && shed_replies == expected &&
           server.stats().by_status(StatusCode::kOverloaded) == expected;
  }

  // ---- 2. Deterministic replay across worker counts ----------------------
  const auto trace = make_trace(trace_size);
  const ReplayResult base = replay(trace, 1, 0);
  const ReplayResult wide = replay(trace, many, 0);

  Table table(str_format(
      "Traffic replay — %zu-request mixed trace (faults, deadlines, "
      "malformed lines)", trace_size));
  table.header({"workers", "ok", "invalid", "timeout", "internal",
                "modelled p50 ms", "modelled p99 ms", "wall p99 ms",
                "replay s"});
  for (const ReplayResult* r : {&base, &wide}) {
    table.row({str_format("%d", r == &base ? 1 : many),
               str_format("%llu", (unsigned long long)r->ok),
               str_format("%llu", (unsigned long long)r->invalid),
               str_format("%llu", (unsigned long long)r->timeout),
               str_format("%llu", (unsigned long long)r->internal),
               latency_cell(r->record, "modelled", "p50"),
               latency_cell(r->record, "modelled", "p99"),
               latency_cell(r->record, "wall", "p99"),
               str_format("%.2f", r->wall_seconds)});
  }
  bench::emit(table, "traffic_replay");

  const bool identical = base.replies == wide.replies;
  std::printf("reply sets 1 vs %d workers: %s\n", many,
              identical ? "byte-identical" : "DIVERGED");
  pass = pass && identical && base.internal == 0 && wide.internal == 0 &&
         base.replies.size() == trace.size();

  // ---- 3. Open-loop arrival ----------------------------------------------
  // Requests arrive on a timer rather than back-to-back; wall latency now
  // includes genuine queueing. Reported for operators, never gated.
  const std::size_t open_count = fast ? 16 : 64;
  const ReplayResult open_loop = replay(make_trace(open_count), 2, 2.0);
  Table open_table(str_format(
      "Traffic replay — open-loop arrival (%zu requests, 2 ms spacing, "
      "2 workers)", open_count));
  open_table.header({"wall p50 ms", "wall p90 ms", "wall p99 ms",
                     "wall max ms"});
  open_table.row({latency_cell(open_loop.record, "wall", "p50"),
                  latency_cell(open_loop.record, "wall", "p90"),
                  latency_cell(open_loop.record, "wall", "p99"),
                  latency_cell(open_loop.record, "wall", "max")});
  bench::emit(open_table, "traffic_replay_open_loop");

  // The gated artifact: the many-worker replay's ksum-serve-v1 record.
  const char* json_dir = std::getenv("KSUM_BENCH_JSON_DIR");
  const std::string path = std::string(json_dir != nullptr ? json_dir : ".") +
                           "/BENCH_traffic_replay.json";
  std::ofstream out(path);
  if (out) {
    out << wide.record.dump();
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("cannot write %s\n", path.c_str());
    pass = false;
  }

  std::printf("traffic replay: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
