// Fig. 7: standalone GEMM comparison — our CUDA-C kernel vs the modelled
// cuBLAS SGEMM (paper band: 1.5–2.0× slower).
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  bench::emit(report::fig7_gemm_comparison(model, bench::bench_specs()),
              "fig7_gemm_comparison");
  bench::write_bench_json("fig7_gemm_comparison", {});
  return 0;
}
