// Fig. 9: per-component energy (compute / shared memory / L2 / DRAM /
// static) for all three solutions.
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& points = bench::bench_sweep(model);
  bench::emit(report::fig9_energy_breakdown(points), "fig9_energy_breakdown");
  bench::write_bench_json("fig9_energy_breakdown", points);
  return 0;
}
