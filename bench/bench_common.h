// Shared plumbing for the reproduction harness binaries.
//
// Every figure/table binary sweeps the analytic pipeline model over the
// paper's grid, prints the paper-style table, and drops a machine-readable
// "ksum-bench-v1" record (BENCH_<name>.json) so CI can archive the
// performance trajectory run over run. Environment knobs:
//   KSUM_BENCH_FAST=1       — use the three-M table grid instead of the full
//                             ten-M figure grid (used by CI-style smoke runs).
//   KSUM_CSV_DIR=path       — additionally mirror each table as CSV rows.
//   KSUM_BENCH_JSON_DIR=path— where write_bench_json() puts BENCH_<name>.json
//                             (default: the working directory).
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "profile/json.h"
#include "report/paper_report.h"

namespace ksum::bench {

/// The sweep grid selected by KSUM_BENCH_FAST.
std::vector<workload::ProblemSpec> bench_specs();

/// Evaluates the standard three-solution sweep once (cached per process).
const std::vector<report::SweepPoint>& bench_sweep(
    analytic::PipelineModel& model);

/// Prints the table to stdout, mirrors it to KSUM_CSV_DIR/<name>.csv when
/// that variable is set, and records it for write_bench_json().
void emit(const Table& table, const std::string& csv_name);

/// Writes BENCH_<name>.json — a "ksum-bench-v1" record carrying the sweep
/// points (per-pipeline seconds, energy breakdown, L2/DRAM traffic) and
/// every table emit()ed so far (as CSV text). The record is validated
/// against the schema before it is written; pass an empty point list for
/// benches that only produce tables. Returns the path written.
std::string write_bench_json(const std::string& name,
                             const std::vector<report::SweepPoint>& points);

/// Same record, but with a caller-built points array — for benches that
/// measure the simulated pipelines directly (e.g. bench/shard_scaling)
/// instead of evaluating the analytic sweep. Each element must carry the
/// schema's point shape: {"m", "n", "k", "pipelines": {<name>: {"seconds",
/// "energy_j", "l2_transactions", "dram_transactions"}}}; the record is
/// validated before it is written.
std::string write_bench_json_points(const std::string& name,
                                    profile::Json points);

}  // namespace ksum::bench
