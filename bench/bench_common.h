// Shared plumbing for the reproduction harness binaries.
//
// Every figure/table binary sweeps the analytic pipeline model over the
// paper's grid and prints the paper-style table. Environment knobs:
//   KSUM_BENCH_FAST=1  — use the three-M table grid instead of the full
//                        ten-M figure grid (used by CI-style smoke runs).
//   KSUM_CSV_DIR=path  — additionally mirror each table as CSV rows there.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "report/paper_report.h"

namespace ksum::bench {

/// The sweep grid selected by KSUM_BENCH_FAST.
std::vector<workload::ProblemSpec> bench_specs();

/// Evaluates the standard three-solution sweep once (cached per process).
const std::vector<report::SweepPoint>& bench_sweep(
    analytic::PipelineModel& model);

/// Prints the table to stdout and mirrors it to KSUM_CSV_DIR/<name>.csv
/// when that variable is set.
void emit(const Table& table, const std::string& csv_name);

}  // namespace ksum::bench
