// Ablations of the remaining §III design choices:
//   * double buffering vs single-buffered tiles (barrier count / time);
//   * atomic inter-CTA reduction vs the two-pass staged scheme the paper
//     rejects (extra DRAM traffic of the partial vectors).
#include "bench_common.h"
#include "common/string_util.h"

int main() {
  using namespace ksum;

  analytic::PipelineModel base_model;

  {
    pipelines::RunOptions sb;
    sb.mainloop.double_buffer = false;
    analytic::PipelineModel sb_model(sb);
    Table t("Ablation — double buffering (Fused, N=1024, M=131072)");
    t.header({"K", "barriers (double)", "barriers (single)", "time (double)",
              "time (single)", "slowdown"});
    for (std::size_t k : workload::paper_dimensions()) {
      const auto db =
          base_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
      const auto single =
          sb_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
      t.row({str_format("%zu", k),
             format_si(double(db.kernels[2].scalable.barriers)),
             format_si(double(single.kernels[2].scalable.barriers)),
             str_format("%.3f ms", db.seconds * 1e3),
             str_format("%.3f ms", single.seconds * 1e3),
             str_format("%.2fx", single.seconds / db.seconds)});
    }
    bench::emit(t, "ablation_double_buffering");
  }

  {
    pipelines::RunOptions staged;
    staged.atomic_reduction = false;
    analytic::PipelineModel staged_model(staged);
    Table t("Ablation — atomic vs two-pass staged reduction "
            "(Fused, N=1024, M=131072)");
    t.header({"K", "DRAM txn (atomic)", "DRAM txn (staged)", "extra traffic",
              "time (atomic)", "time (staged)"});
    for (std::size_t k : workload::paper_dimensions()) {
      const auto atomic =
          base_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
      const auto st =
          staged_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
      t.row({str_format("%zu", k), format_si(atomic.dram_transactions()),
             format_si(st.dram_transactions()),
             format_percent(st.dram_transactions() /
                                atomic.dram_transactions() -
                            1.0),
             str_format("%.3f ms", atomic.seconds * 1e3),
             str_format("%.3f ms", st.seconds * 1e3)});
    }
    bench::emit(t, "ablation_reduction");
  }

  {
    // Beyond the paper: fold the norm computation into the fused kernel.
    pipelines::RunOptions fn;
    fn.fuse_norms = true;
    analytic::PipelineModel fn_model(fn);
    Table t("Extension — norms fused into the kernel "
            "(Fused, N=1024, M=131072)");
    t.header({"K", "kernels (paper)", "kernels (fused norms)",
              "DRAM txn (paper)", "DRAM txn (fused norms)", "time (paper)",
              "time (fused norms)", "speedup"});
    for (std::size_t k : workload::paper_dimensions()) {
      const auto paper =
          base_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
      const auto fused =
          fn_model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
      t.row({str_format("%zu", k), str_format("%zu", paper.kernels.size()),
             str_format("%zu", fused.kernels.size()),
             format_si(paper.dram_transactions()),
             format_si(fused.dram_transactions()),
             str_format("%.3f ms", paper.seconds * 1e3),
             str_format("%.3f ms", fused.seconds * 1e3),
             str_format("%.2fx", paper.seconds / fused.seconds)});
    }
    bench::emit(t, "ablation_fused_norms");
  }
  bench::write_bench_json("ablation_tiling", {});
  return 0;
}
