// Treecode-vs-dense scaling study (docs/TREECODE.md).
//
// A clustered Gaussian-summation workload — sources and queries drawn from
// 16 tight blobs in the unit square, the regime hierarchical summation
// exists for — solved at M=2048, K=2, h=0.01, ε=1e-4 while N sweeps an
// order of magnitude per point:
//
//   dense curve — the analytic pipeline model's fused estimate, the
//                 O(M·N) wall every dense run pays regardless of geometry;
//   tree curve  — pipelines::solve actually executes the treecode (near
//                 blocks through the simulated fused tile kernel, far
//                 boxes through the truncated series) and reports modelled
//                 device seconds.
//
// The bench fails when the tree falls back dense at any point, when the
// achieved error vs the exact host oracle exceeds ε (checked at the N
// where the O(M·N) oracle is affordable), or when the largest point has
// N ≥ 10^6 and the win is below the 5× the acceptance gate demands.
//
// Environment: KSUM_BENCH_FAST=1 drops the 10^6 point (CI smoke),
// KSUM_CSV_DIR mirrors the table, KSUM_BENCH_JSON_DIR receives
// BENCH_tree_scaling.json (schema ksum-bench-v1; pipelines "dense_model"
// and "tree" per point).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analytic/pipeline_model.h"
#include "bench_common.h"
#include "common/string_util.h"
#include "core/exact.h"
#include "core/kernels.h"
#include "pipelines/solver.h"
#include "profile/profile_json.h"
#include "tree/types.h"
#include "workload/padding.h"
#include "workload/point_generators.h"

namespace {

using namespace ksum;

constexpr std::size_t kM = 2048, kK = 2;
constexpr double kEps = 1e-4;
constexpr float kBandwidth = 0.01f;
constexpr std::size_t kBlobs = 16;
// Verify against the exact host oracle only where O(M·N) stays cheap.
constexpr std::size_t kOracleMaxN = 10'000;
constexpr double kMinWinAtMillion = 5.0;

bool bench_fast() {
  const char* fast = std::getenv("KSUM_BENCH_FAST");
  return fast != nullptr && fast[0] == '1';
}

/// Deterministic uniform in [0, 1) — splitmix-style, so point i of blob c
/// is a pure function of (stream, i).
float unit_hash(std::uint64_t stream, std::uint64_t i) {
  std::uint64_t x = stream * 0x9e3779b97f4a7c15ULL + i + 1;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<float>(x >> 40) / static_cast<float>(1ULL << 24);
}

/// Sources and queries drawn from the same 16 blob centers (σ ≈ 0.01,
/// center separation ≫ h), so most box pairs are far at ε=1e-4. Weights
/// keep the generator's distribution.
workload::Instance make_clustered(std::size_t n) {
  workload::ProblemSpec spec;
  spec.m = kM;
  spec.n = n;
  spec.k = kK;
  spec.bandwidth = kBandwidth;
  spec.seed = 7;
  workload::Instance instance = workload::make_instance(spec);
  float centers[kBlobs][kK];
  for (std::size_t c = 0; c < kBlobs; ++c) {
    for (std::size_t d = 0; d < kK; ++d) {
      centers[c][d] = 0.1f + 0.8f * unit_hash(c * kK + d, 0);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t c = j % kBlobs;
    for (std::size_t d = 0; d < kK; ++d) {
      instance.b.at(d, j) =
          centers[c][d] + 0.02f * (unit_hash(100 + d, j) - 0.5f);
    }
  }
  for (std::size_t i = 0; i < kM; ++i) {
    const std::size_t c = i % kBlobs;
    for (std::size_t d = 0; d < kK; ++d) {
      instance.a.at(i, d) =
          centers[c][d] + 0.02f * (unit_hash(200 + d, i) - 0.5f);
    }
  }
  return instance;
}

struct PointResult {
  std::size_t n = 0;
  analytic::PipelineEstimate dense;
  pipelines::SolveResult run;
  double max_abs_err = -1;  // vs the host oracle; -1 = not checked
  double err_allowed = 0;
};

}  // namespace

int main() {
  std::vector<std::size_t> grid = {10'000, 100'000};
  if (!bench_fast()) grid.push_back(1'000'000);

  pipelines::RunOptions model_options;
  analytic::PipelineModel model(model_options);

  std::vector<PointResult> points;
  bool ok = true;
  for (const std::size_t n : grid) {
    const workload::Instance instance = make_clustered(n);
    const core::KernelParams params = core::params_from_spec(instance.spec);

    PointResult point;
    point.n = n;
    // The model wants CTA-aligned shapes; price the padded problem the
    // dense fused kernel would actually launch.
    point.dense = model.estimate(pipelines::Solution::kFused, kM,
                                 workload::round_up(n, 128),
                                 workload::round_up(kK, 8));

    pipelines::RunOptions options;
    options.tree.eps = kEps;
    options.tree.box_leaf = 256;
    options.tree.row_leaf = 128;
    point.run = pipelines::solve(instance, params,
                                 pipelines::Backend::kSimFused, options);
    if (!point.run.tree.has_value() || !point.run.tree->used_tree) {
      std::printf("tree_scaling: N=%zu fell back dense (%s)\n", n,
                  point.run.tree.has_value()
                      ? point.run.tree->fallback_reason.c_str()
                      : "no tree report");
      ok = false;
    }

    if (n <= kOracleMaxN) {
      const pipelines::SolveResult oracle = pipelines::solve(
          instance, params, pipelines::Backend::kCpuDirect);
      double err = 0, slack = 0;
      for (std::size_t i = 0; i < kM; ++i) {
        const double o = static_cast<double>(oracle.v[i]);
        err = std::max(err,
                       std::abs(static_cast<double>(point.run.v[i]) - o));
        slack = std::max(slack, 5e-3 * std::max(0.01, std::abs(o)));
      }
      point.max_abs_err = err;
      // ε bounds the series truncation; float round-off rides on top,
      // bounded by the repo-wide dense agreement tolerance (the ε
      // contract, docs/TREECODE.md).
      point.err_allowed = kEps + slack;
      if (err > point.err_allowed) {
        std::printf("tree_scaling: N=%zu error %.3e exceeds eps budget "
                    "%.3e\n", n, err, point.err_allowed);
        ok = false;
      }
    }
    points.push_back(std::move(point));
  }

  Table table(str_format(
      "Treecode scaling — clustered sources, M=%zu K=%zu h=%.2f eps=%g "
      "(dense seconds are the analytic fused model; tree seconds are the "
      "executed treecode)",
      kM, kK, static_cast<double>(kBandwidth), kEps));
  table.header({"N", "dense (ms)", "tree (ms)", "speedup", "near %",
                "bound", "|err|inf"});
  for (const PointResult& point : points) {
    const double tree_seconds = point.run.report->seconds;
    const tree::TreeReport& rep =
        point.run.tree.has_value() ? *point.run.tree : tree::TreeReport{};
    table.row({str_format("%zu", point.n),
               str_format("%.3f", point.dense.seconds * 1e3),
               str_format("%.3f", tree_seconds * 1e3),
               str_format("%.2fx", point.dense.seconds / tree_seconds),
               str_format("%.1f%%", 100.0 * rep.near_fraction(kM, point.n)),
               str_format("%.2e", rep.bound_total),
               point.max_abs_err < 0
                   ? std::string("(modelled bound only)")
                   : str_format("%.2e <= %.2e", point.max_abs_err,
                                point.err_allowed)});
  }
  bench::emit(table, "tree_scaling");

  // The acceptance gate: at N >= 10^6 the treecode must beat the dense
  // fused model by at least 5x modelled seconds.
  const PointResult& last = points.back();
  const double last_win = last.dense.seconds / last.run.report->seconds;
  if (last.n >= 1'000'000 && last_win < kMinWinAtMillion) {
    std::printf("tree_scaling: N=%zu win %.2fx is below the %.0fx gate\n",
                last.n, last_win, kMinWinAtMillion);
    ok = false;
  }

  profile::Json point_array = profile::Json::array();
  for (const PointResult& point : points) {
    const pipelines::PipelineReport& rep = *point.run.report;
    profile::Json pipelines_json = profile::Json::object();
    profile::Json dense = profile::Json::object();
    dense.set("seconds", point.dense.seconds);
    dense.set("energy_j", profile::energy_breakdown_json(point.dense.energy));
    dense.set("l2_transactions", point.dense.l2_transactions());
    dense.set("dram_transactions", point.dense.dram_transactions());
    pipelines_json.set("dense_model", std::move(dense));
    profile::Json tree_json = profile::Json::object();
    tree_json.set("seconds", rep.seconds);
    tree_json.set("energy_j", profile::energy_breakdown_json(rep.energy));
    tree_json.set("l2_transactions", rep.total.l2_total_transactions());
    tree_json.set("dram_transactions", rep.total.dram_total_transactions());
    pipelines_json.set("tree", std::move(tree_json));
    profile::Json entry = profile::Json::object();
    entry.set("m", static_cast<std::uint64_t>(kM));
    entry.set("n", static_cast<std::uint64_t>(point.n));
    entry.set("k", static_cast<std::uint64_t>(kK));
    entry.set("pipelines", std::move(pipelines_json));
    point_array.push_back(std::move(entry));
  }
  const std::string path =
      bench::write_bench_json_points("tree_scaling", std::move(point_array));

  std::printf("tree scaling: %s (largest point N=%zu, %.2fx vs the dense "
              "model)\nwrote %s\n",
              ok ? "PASS" : "FAIL", last.n, last_win, path.c_str());
  return ok ? 0 : 1;
}
