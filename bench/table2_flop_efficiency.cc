// Table II: achieved fraction of peak single-precision FLOP/s for the
// cuBLAS-Unfused and Fused solutions (the fused kernel wins below K=128 and
// loses at K=256, the paper's crossover).
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& points = bench::bench_sweep(model);
  bench::emit(report::table2_flop_efficiency(points),
              "table2_flop_efficiency");
  bench::write_bench_json("table2_flop_efficiency", points);
  return 0;
}
