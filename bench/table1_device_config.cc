// Table I of the paper: the device configuration actually used by the
// simulated GTX970 (so any drift between the paper's table and the model is
// visible in the output, not hidden in a header).
#include "bench_common.h"

int main() {
  using namespace ksum;
  bench::emit(report::table1_device_config(config::DeviceSpec::gtx970()),
              "table1_device_config");
  bench::write_bench_json("table1_device_config", {});
  return 0;
}
