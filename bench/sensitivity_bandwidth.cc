// What-if sensitivity of the paper's headline results to the memory system:
// the fused kernel's advantage is a function of how expensive DRAM traffic
// is. Halving the modelled bandwidth (a narrower bus) widens the fused
// speedup; doubling it (HBM-class) erodes it — the quantitative version of
// the paper's premise that fusion pays where memory is the bottleneck.
#include "bench_common.h"
#include "common/string_util.h"

int main() {
  using namespace ksum;

  Table t("Sensitivity — fused vs cuBLAS-Unfused under scaled DRAM "
          "bandwidth (N=1024, M=131072)");
  t.header({"bandwidth", "K", "speedup", "energy saved",
            "cuBLAS-Unf bound (GEMM)"});
  for (double scale : {0.5, 1.0, 2.0}) {
    pipelines::RunOptions options;
    options.device.dram_bandwidth_gb_s *= scale;
    analytic::PipelineModel model(options);
    for (std::size_t k : {32u, 256u}) {
      const auto fused =
          model.estimate(pipelines::Solution::kFused, 131072, 1024, k);
      const auto unfused = model.estimate(
          pipelines::Solution::kCublasUnfused, 131072, 1024, k);
      t.row({str_format("%.0f GB/s", options.device.dram_bandwidth_gb_s),
             str_format("%zu", k),
             str_format("%.2fx", unfused.seconds / fused.seconds),
             format_percent(1.0 -
                            fused.energy.total() / unfused.energy.total()),
             unfused.kernels[2].timing.bound});
    }
    t.separator();
  }
  bench::emit(t, "sensitivity_bandwidth");

  Table t2("Sensitivity — energy savings vs static power share "
           "(K=32, N=1024, M=131072)");
  t2.header({"static power", "fused speedup", "energy saved"});
  for (double watts : {0.0, 8.0, 32.0}) {
    pipelines::RunOptions options;
    options.energy.static_power_w = watts;
    analytic::PipelineModel model(options);
    const auto fused =
        model.estimate(pipelines::Solution::kFused, 131072, 1024, 32);
    const auto unfused =
        model.estimate(pipelines::Solution::kCublasUnfused, 131072, 1024, 32);
    t2.row({str_format("%.0f W", watts),
            str_format("%.2fx", unfused.seconds / fused.seconds),
            format_percent(1.0 -
                           fused.energy.total() / unfused.energy.total())});
  }
  bench::emit(t2, "sensitivity_static_power");
  bench::write_bench_json("sensitivity_bandwidth", {});
  return 0;
}
