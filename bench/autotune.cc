// Autotuner record for the paper's operating shapes: for each
// (M=N, K) point the tuner enumerates the tile-geometry grid, prunes it
// against the GTX 970's resource budgets, executes the survivors on the
// simulated device, and re-models the winner at the real shape. The table
// compares the winner's modelled time against the paper's fixed
// 128×128/8×8 geometry — at K=8 the tuner reproduces the paper's choice;
// at K=250 it finds the deeper 16-element k-tiles that amortise the loop
// overhead the simulator actually counts. KSUM_BENCH_FAST trims the sweep
// to M=N=4096.
#include <cstdlib>

#include "bench_common.h"
#include "common/string_util.h"
#include "tune/tuner.h"

int main() {
  using namespace ksum;

  const bool fast = std::getenv("KSUM_BENCH_FAST") != nullptr;
  std::vector<std::size_t> sizes = {4096};
  if (!fast) {
    sizes.push_back(8192);
    sizes.push_back(16384);
  }

  Table t("Tile-geometry autotuning — paper shapes, fused pipeline");
  t.header({"shape", "best", "modelled time", "paper geometry",
            "speedup vs paper"});
  tune::TuneOptions options;
  options.threads = 8;
  for (const std::size_t size : sizes) {
    for (const std::size_t k : {std::size_t{8}, std::size_t{250}}) {
      tune::TuneRequest request;
      request.m = size;
      request.n = size;
      request.k = k;
      request.backend = pipelines::Backend::kSimFused;
      const auto report = tune::tune(request, options);

      double paper_seconds = 0;
      for (const auto& meas : report.measurements) {
        if (meas.executed && meas.verdict.geometry.is_paper()) {
          paper_seconds = meas.scaled_seconds;
        }
      }
      t.row({str_format("%zux%zu K=%zu", size, size, k),
             report.best.to_string(),
             str_format("%.3f ms", report.best_scaled_seconds * 1e3),
             str_format("%.3f ms", paper_seconds * 1e3),
             str_format("%.3fx", paper_seconds / report.best_scaled_seconds)});
    }
  }
  bench::emit(t, "autotune");
  bench::write_bench_json("autotune", {});
  return 0;
}
