// Fig. 2: L2 misses per kilo instruction of the cuBLAS-Unfused pipeline —
// highest at K=32, the locality loss fusion removes.
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& points = bench::bench_sweep(model);
  bench::emit(report::fig2_l2_mpki(points), "fig2_l2_mpki");
  bench::write_bench_json("fig2_l2_mpki", points);
  return 0;
}
