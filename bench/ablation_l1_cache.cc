// Ablation: caching global loads in the per-SM L1 (§II-C's
// -Xptxas -dlcm=ca). The CUDA-C tile loader's float4 track loads touch
// every input sector twice; the L1 absorbs the second touch and pulls the
// kernels' L2 pressure toward the cuBLAS texture-path behaviour.
// Functional execution (exact counts) at moderate sizes.
#include "bench_common.h"
#include "common/string_util.h"
#include "pipelines/pipeline.h"

int main() {
  using namespace ksum;

  Table t("Ablation — global loads cached in L1 (-dlcm=ca), Fused pipeline "
          "(N=512, functional simulation)");
  t.header({"config", "L2 txn (off)", "L2 txn (on)", "L2 reduction",
            "L1 hit rate", "DRAM txn (off)", "DRAM txn (on)"});
  for (std::size_t k : {16u, 64u}) {
    for (std::size_t m : {512u, 1024u}) {
      workload::ProblemSpec spec;
      spec.m = m;
      spec.n = 512;
      spec.k = k;
      spec.seed = 2016;
      const auto inst = workload::make_instance(spec);
      const auto params = core::params_from_spec(spec);

      pipelines::RunOptions off;
      pipelines::RunOptions on;
      on.device.cache_globals_in_l1 = true;
      const auto r_off = pipelines::run_pipeline(
          pipelines::Solution::kFused, inst, params, off);
      const auto r_on = pipelines::run_pipeline(
          pipelines::Solution::kFused, inst, params, on);

      const double hit_rate =
          double(r_on.total.l1_read_hits) /
          double(r_on.total.l1_read_transactions);
      t.row({str_format("K=%zu M=%zu", k, m),
             format_si(double(r_off.total.l2_total_transactions())),
             format_si(double(r_on.total.l2_total_transactions())),
             format_percent(1.0 -
                            double(r_on.total.l2_total_transactions()) /
                                double(r_off.total.l2_total_transactions())),
             format_percent(hit_rate),
             format_si(double(r_off.total.dram_total_transactions())),
             format_si(double(r_on.total.dram_total_transactions()))});
    }
  }
  bench::emit(t, "ablation_l1_cache");
  bench::write_bench_json("ablation_l1_cache", {});
  return 0;
}
