// Design-space table behind the paper's §III-A tile-size discussion — now
// measured, not hand-modelled: every (submatrixC, microtileC) candidate at
// the paper's 8-deep k-tiles goes through the autotuner's full pass
// (structural rules, named resource budgets, occupancy, bank-conflict lint,
// then an actual simulated run of the fused pipeline re-modelled at the
// ablation shape). The paper's choice — 128×128 tiles with 8×8 microtiles —
// is the configuration that reaches 2 CTAs/SM while minimising input
// reloads; the rows show its neighbours, including the 4×4-microtile
// variant the paper explicitly rejects ("occupancy is still two thread
// blocks per SM due to the device limit of 2048 threads per SM").
#include "bench_common.h"
#include "common/string_util.h"
#include "tune/tuner.h"

int main() {
  using namespace ksum;

  tune::TuneRequest request;
  request.m = 131072;
  request.n = 1024;
  request.k = 64;
  request.backend = pipelines::Backend::kSimFused;
  tune::TuneOptions options;
  options.threads = 8;
  const auto report = tune::tune(request, options);

  Table t("Design space — submatrixC / microtileC blocking, measured "
          "through the autotuner (K=64, N=1024, M=131072, tileK=8)");
  t.header({"tile", "micro", "threads", "regs/thr", "smem", "CTAs/SM",
            "limiter", "input bytes/flop", "proxy time", "modelled time",
            "note"});
  const double m = double(request.m), n = double(request.n),
               k = double(request.k);
  for (const auto& meas : report.measurements) {
    const auto& g = meas.verdict.geometry;
    if (g.tile_k != 8) continue;  // §III-A fixes the k-depth at 8
    // A is reloaded N/tile_n times, B M/tile_m times (§III-A's argument
    // for coarse tiles).
    const double input_bytes =
        4.0 * (m * k * (n / g.tile_n) + k * n * (m / g.tile_m));
    const double flops = 2.0 * m * n * k;
    std::string note;
    if (g.is_paper()) {
      note = "the paper's choice";
    } else if (g == report.best) {
      note = "tuner's pick";
    } else if (!meas.verdict.viable) {
      note = meas.verdict.reasons.front();
    }
    t.row({str_format("%dx%d", g.tile_m, g.tile_n),
           str_format("%dx%d", g.micro, g.micro),
           str_format("%d", g.threads()),
           meas.verdict.regs_per_thread > 0
               ? str_format("%d", meas.verdict.regs_per_thread)
               : "-",
           meas.verdict.smem_bytes > 0
               ? str_format("%uKB", meas.verdict.smem_bytes / 1024)
               : "-",
           meas.verdict.blocks_per_sm > 0
               ? str_format("%d", meas.verdict.blocks_per_sm)
               : "-",
           meas.verdict.limiter.empty() ? "-" : meas.verdict.limiter,
           str_format("%.3f", input_bytes / flops),
           meas.executed ? str_format("%.3f ms", meas.proxy_seconds * 1e3)
                         : "-",
           meas.executed ? str_format("%.3f ms", meas.scaled_seconds * 1e3)
                         : "-",
           note});
  }
  bench::emit(t, "ablation_tile_size");
  bench::write_bench_json("ablation_tile_size", {});
  return 0;
}
