// Design-space table behind the paper's §III-A tile-size discussion: for
// each candidate (submatrixC, microtileC) blocking, the register/shared
// memory footprint, the resulting CTA occupancy, and the input data volume
// per FLOP. The paper's choice — 128×128 tiles with 8×8 microtiles — is the
// configuration that reaches 2 CTAs/SM while minimising input reloads;
// this bench shows its neighbours, including the 4×4-microtile variant the
// paper explicitly rejects ("occupancy is still two thread blocks per SM
// due to the device limit of 2048 threads per SM").
#include "bench_common.h"
#include "common/string_util.h"
#include "gpusim/occupancy.h"

int main() {
  using namespace ksum;
  const auto device = config::DeviceSpec::gtx970();

  struct TileConfig {
    int tile_m, tile_n;   // submatrixC
    int micro;            // microtileC is micro×micro
    const char* note;
  };
  const TileConfig configs[] = {
      {64, 64, 4, ""},
      {128, 64, 8, ""},
      {64, 128, 8, ""},
      {128, 128, 8, "the paper's choice"},
      {128, 128, 4, "rejected: 1024 threads, same occupancy"},
      {256, 128, 8, "rejected: exceeds the register file"},
  };

  Table t("Design space — submatrixC / microtileC blocking (K=64, N=1024, "
          "M=131072)");
  t.header({"tile", "micro", "threads", "regs/thr", "smem", "CTAs/SM",
            "limiter", "input bytes/flop", "note"});
  const double m = 131072, n = 1024, k = 64;
  for (const auto& c : configs) {
    const int threads = (c.tile_m / c.micro) * (c.tile_n / c.micro);
    // Accumulators + two operand vectors + bookkeeping, the §III-A budget
    // (the 8×8 kernel carries double-buffer pointers and wider address
    // arithmetic; a 4×4 inner kernel is leaner).
    const int regs =
        c.micro * c.micro + 2 * c.micro + (c.micro >= 8 ? 48 : 8);
    const std::uint32_t smem =
        std::uint32_t(2 * (c.tile_m * 8 + 8 * c.tile_n) * 4);

    std::string occupancy = "n/a";
    std::string limiter = "launch impossible";
    if (threads <= device.max_threads_per_block) {
      try {
        gpusim::LaunchConfig cfg;
        cfg.threads_per_block = threads;
        cfg.regs_per_thread = regs;
        cfg.smem_bytes_per_block = smem;
        const auto occ = gpusim::compute_occupancy(device, cfg);
        occupancy = str_format("%d", occ.blocks_per_sm);
        limiter = gpusim::to_string(occ.limiter);
      } catch (const Error&) {
        // keep the "impossible" marker
      }
    } else {
      limiter = "threads per block";
    }

    // A is reloaded N/tile_n times, B M/tile_m times (§III-A's argument for
    // coarse tiles).
    const double input_bytes =
        4.0 * (m * k * (n / c.tile_n) + k * n * (m / c.tile_m));
    const double flops = 2.0 * m * n * k;
    t.row({str_format("%dx%d", c.tile_m, c.tile_n),
           str_format("%dx%d", c.micro, c.micro), str_format("%d", threads),
           str_format("%d", regs), str_format("%uKB", smem / 1024),
           occupancy, limiter, str_format("%.3f", input_bytes / flops),
           c.note});
  }
  bench::emit(t, "ablation_tile_size");
  bench::write_bench_json("ablation_tile_size", {});
  return 0;
}
