// Roofline placement of every kernel in the three pipelines: arithmetic
// intensity against DRAM traffic, the attainable ceiling
// min(peak, AI × bandwidth), and how much of it the modelled kernel
// achieves. This is the analytical backbone of the paper's story — the
// unfused pipeline's eval/GEMV passes sit deep in the memory-bound region
// the fused kernel never enters.
#include "bench_common.h"
#include "common/string_util.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& device = model.options().device;
  const double peak = device.peak_sp_flops();
  const double bw = device.dram_bandwidth_gb_s * 1e9;

  Table t("Roofline — per-kernel arithmetic intensity vs DRAM "
          "(N=1024, M=131072)");
  t.header({"solution", "K", "kernel", "flops", "DRAM bytes", "AI (flop/B)",
            "attainable", "achieved", "of ceiling"});
  for (std::size_t k : {32u, 256u}) {
    for (auto solution :
         {pipelines::Solution::kFused, pipelines::Solution::kCublasUnfused}) {
      const auto est = model.estimate(solution, 131072, 1024, k);
      for (const auto& kernel : est.kernels) {
        const double flops = kernel.useful_flops;
        const double bytes = kernel.cost.dram_transactions * 32.0;
        if (flops <= 0.0) continue;
        const double ai = bytes > 0 ? flops / bytes : 1e9;
        const double attainable = std::min(peak, ai * bw);
        const double achieved = flops / kernel.timing.seconds(device);
        t.row({pipelines::to_string(solution), str_format("%zu", k),
               kernel.name, format_si(flops), format_si(bytes),
               bytes > 0 ? str_format("%.1f", ai) : std::string("inf"),
               str_format("%.2f TF/s", attainable / 1e12),
               str_format("%.2f TF/s", achieved / 1e12),
               format_percent(achieved / attainable)});
      }
      t.separator();
    }
  }
  bench::emit(t, "roofline_table");
  bench::write_bench_json("roofline_table", {});
  return 0;
}
