// Fig. 6: normalised execution time of Fused and CUDA-Unfused against
// cuBLAS-Unfused, with the fused speedups (measured and the paper's
// projected assembly-grade variant) on the secondary axis.
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& points = bench::bench_sweep(model);
  bench::emit(report::fig6_execution_time(points), "fig6_exec_time_speedup");
  bench::write_bench_json("fig6_exec_time_speedup", points);
  return 0;
}
