// google-benchmark timings of the simulator itself: how fast the functional
// device executes tile programs and how cheap the analytic model is. These
// bound the cost of the test suite and of the reproduction sweeps.
#include <benchmark/benchmark.h>

#include "analytic/pipeline_model.h"
#include "gpukernels/device_workspace.h"
#include "gpukernels/fused_ksum.h"
#include "gpukernels/gemm_cudac.h"
#include "gpukernels/norms.h"
#include "gpusim/cache.h"
#include "gpusim/shared_memory.h"
#include "workload/point_generators.h"

namespace {

using namespace ksum;

void BM_SmemTransactionCount(benchmark::State& state) {
  gpusim::SharedWarpAccess access;
  for (int l = 0; l < 32; ++l) {
    access.set_lane(l, gpusim::SharedAddr((l % 4) * 128));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpusim::SharedMemory::transactions_for(access));
  }
}
BENCHMARK(BM_SmemTransactionCount);

void BM_L2SectorStream(benchmark::State& state) {
  std::uint64_t reads = 0, hits = 0, misses = 0;
  gpusim::SectoredCache cache(
      gpusim::CacheGeometry{},
      gpusim::CacheCounters{&reads, &hits, &misses, nullptr, nullptr});
  const auto sectors = std::size_t(state.range(0));
  std::size_t next = 0;
  for (auto _ : state) {
    cache.read_sector(gpusim::GlobalAddr(next) * 32);
    next = (next + 1) % sectors;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_L2SectorStream)->Arg(1024)->Arg(262144);

void BM_FunctionalFusedKernel(benchmark::State& state) {
  const std::size_t k = std::size_t(state.range(0));
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = k;
  const auto inst = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);
  for (auto _ : state) {
    gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
    auto ws = gpukernels::allocate_workspace(device, 128, 128, k, false);
    gpukernels::upload_instance(device, ws, inst);
    gpukernels::run_norms_a(device, ws);
    gpukernels::run_norms_b(device, ws);
    gpukernels::run_fused_ksum(device, ws, params);
    benchmark::DoNotOptimize(device.counters().fma_ops);
  }
  // Simulated lane-FMAs per wall second.
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(128 * 128 * k));
}
BENCHMARK(BM_FunctionalFusedKernel)->Arg(32)->Arg(128);

void BM_FunctionalGemmCta(benchmark::State& state) {
  const std::size_t k = std::size_t(state.range(0));
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = k;
  const auto inst = workload::make_instance(spec);
  for (auto _ : state) {
    gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
    auto ws = gpukernels::allocate_workspace(device, 128, 128, k, true);
    gpukernels::upload_instance(device, ws, inst);
    gpukernels::run_gemm_cudac(device, ws.a, ws.b, ws.c, 128, 128, k,
                               gpukernels::GemmOptions{});
    benchmark::DoNotOptimize(device.counters().fma_ops);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(128 * 128 * k));
}
BENCHMARK(BM_FunctionalGemmCta)->Arg(32)->Arg(128);

void BM_AnalyticPipelineEstimate(benchmark::State& state) {
  analytic::PipelineModel model;
  // Warm the calibration cache so the loop measures the estimate itself.
  model.estimate(pipelines::Solution::kFused, 1024, 1024, 32);
  std::size_t m = 1024;
  for (auto _ : state) {
    auto est = model.estimate(pipelines::Solution::kFused, m, 1024, 32);
    benchmark::DoNotOptimize(est.seconds);
    m = m == 524288 ? 1024 : m * 2;
  }
}
BENCHMARK(BM_AnalyticPipelineEstimate);

}  // namespace
