// Fault-injection campaign for the ABFT subsystem (docs/ROBUSTNESS.md).
//
// Three experiments on a fixed 512×512×16 Gaussian problem:
//
//   1. Detection coverage — for every fault site, sweep the injection rate
//      and run many independently-seeded trials without recovery, counting
//      how often the checks flag a run that received faults, how many of
//      the *harmful* faults (result actually wrong vs the exact oracle)
//      slip through silently, and whether any fault-free trial is flagged
//      (false positives).
//   2. Recovery — the same sites through pipelines::solve() with the
//      detect→retry→fallback policy, verifying the returned result against
//      the oracle.
//   3. Overhead — checks on vs off with no injector attached: the modelled
//      time and energy cost of the second atomic path and (unfused) the
//      colsum audit pass.
//
// Environment: KSUM_BENCH_FAST=1 shrinks the trial counts; KSUM_CSV_DIR
// mirrors each table as CSV; KSUM_BENCH_THREADS sets the worker count for
// the detection-coverage trials (default: hardware concurrency). Each trial
// seeds its own FaultPlan and builds private Devices inside run_pipeline,
// so trials run on the exec::ThreadPool and are folded into the table in
// submission order — the printed rows are identical for any thread count.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "blas/vector_ops.h"
#include "common/string_util.h"
#include "core/exact.h"
#include "exec/batch_engine.h"
#include "pipelines/solver.h"
#include "robust/fault_plan.h"

namespace {

using namespace ksum;

constexpr std::size_t kM = 512, kN = 512, kK = 16;

// A result further than this from the double-precision oracle is *harmful*
// corruption (the clean pipelines land around 1e-3).
constexpr double kHarmTol = 1e-2;

struct SiteSetup {
  gpusim::FaultSite site;
  pipelines::Solution solution;  // pipeline that exercises the site
  double base_rate;              // ≈2 expected faults per run at 1×
};

workload::Instance make_campaign_instance() {
  workload::ProblemSpec spec;
  spec.m = kM;
  spec.n = kN;
  spec.k = kK;
  spec.seed = 2024;
  return workload::make_instance(spec);
}

double rel_error(const Vector& v, const Vector& oracle) {
  return blas::max_rel_diff(v.span(), oracle.span(), 1e-3);
}

int bench_threads() {
  const char* env = std::getenv("KSUM_BENCH_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1 && n <= exec::ThreadPool::kMaxThreads) return n;
  }
  return exec::ThreadPool::hardware_threads();
}

// What one detection-coverage trial observed; the fold into counters
// happens on the main thread, in trial order.
struct TrialOutcome {
  bool injected = false;
  bool flagged = false;
  bool harmed = false;
};

}  // namespace

int main() {
  const bool fast = std::getenv("KSUM_BENCH_FAST") != nullptr;
  const int trials = fast ? 8 : 24;

  const auto instance = make_campaign_instance();
  core::KernelParams params;  // gaussian, h=1
  const Vector oracle = core::solve_direct(instance, params);

  // The atomic sites only exist in the fused pipeline's inter-CTA
  // reduction; the global-store site is best exercised by the unfused
  // pipeline, whose C and V stores are both audited. Base rates are tuned
  // to ≈2 expected faults per run given each site's opportunity count.
  const std::vector<SiteSetup> sites = {
      {gpusim::FaultSite::kSharedMemory, pipelines::Solution::kFused, 2e-5},
      {gpusim::FaultSite::kGlobalMemory, pipelines::Solution::kCublasUnfused,
       4e-6},
      {gpusim::FaultSite::kTileLoad, pipelines::Solution::kFused, 3e-5},
      {gpusim::FaultSite::kAtomicDrop, pipelines::Solution::kFused, 2.5e-2},
      {gpusim::FaultSite::kAtomicDouble, pipelines::Solution::kFused,
       2.5e-2},
  };
  const std::vector<double> rate_scales = {1.0, 4.0};

  // ---- 1. Detection coverage ---------------------------------------------
  Table coverage(
      str_format("Fault campaign — detection coverage (M=%zu N=%zu K=%zu, "
                 "%d trials/row)",
                 kM, kN, kK, trials));
  coverage.header({"site", "pipeline", "rate", "faulty runs", "detected",
                   "coverage", "harmful", "silent harm", "false pos"});

  exec::ThreadPool pool(bench_threads());
  int atomic_faulty = 0, atomic_detected = 0;
  int clean_flagged = 0;
  for (const SiteSetup& setup : sites) {
    for (double scale : rate_scales) {
      const double rate = setup.base_rate * scale;
      // Trials are seeded by trial index (never worker id) and share nothing
      // mutable, so any pool size yields the same outcomes.
      const auto outcomes = exec::map_ordered(
          pool, std::size_t(trials), [&](std::size_t trial) {
            robust::FaultPlan plan(robust::FaultPlanConfig::single_site(
                std::uint64_t(trial) + 1, setup.site, rate));
            pipelines::RunOptions options;
            options.checks.enabled = true;
            options.fault_injector = &plan;
            const auto report = pipelines::run_pipeline(
                setup.solution, instance, params, options);
            TrialOutcome out;
            out.injected = plan.total_injected() > 0;
            out.flagged = report.robustness.fault_detected();
            out.harmed = rel_error(report.result, oracle) > kHarmTol;
            return out;
          });
      int faulty = 0, detected = 0, harmful = 0, silent_harm = 0;
      int false_pos = 0;
      for (const TrialOutcome& out : outcomes) {
        if (out.injected) {
          ++faulty;
          if (out.flagged) ++detected;
          if (out.harmed) {
            ++harmful;
            if (!out.flagged) ++silent_harm;
          }
        } else if (out.flagged) {
          ++false_pos;
          ++clean_flagged;
        }
        const bool atomic_site =
            setup.site == gpusim::FaultSite::kAtomicDrop ||
            setup.site == gpusim::FaultSite::kAtomicDouble;
        if (atomic_site && out.injected) {
          ++atomic_faulty;
          if (out.flagged) ++atomic_detected;
        }
      }
      coverage.row(
          {gpusim::to_string(setup.site),
           pipelines::to_string(setup.solution),
           str_format("%.1e", rate), str_format("%d", faulty),
           str_format("%d", detected),
           faulty > 0 ? format_percent(double(detected) / double(faulty))
                      : std::string("n/a"),
           str_format("%d", harmful), str_format("%d", silent_harm),
           str_format("%d", false_pos)});
    }
  }
  bench::emit(coverage, "fault_campaign_coverage");

  // ---- 2. Recovery through solve() ---------------------------------------
  Table recovery(
      "Fault campaign — detect/retry/fallback recovery (fused backend)");
  recovery.header({"site", "rate", "attempts", "faulty attempts", "fallback",
                   "outcome", "err vs oracle"});
  int unrecovered = 0;
  for (const SiteSetup& setup : sites) {
    const double rate = setup.base_rate;
    robust::FaultPlan plan(robust::FaultPlanConfig::single_site(
        /*seed=*/99, setup.site, rate));
    pipelines::RunOptions options;
    options.fault_injector = &plan;
    options.recovery.enabled = true;
    const auto backend = setup.solution == pipelines::Solution::kFused
                             ? pipelines::Backend::kSimFused
                             : pipelines::Backend::kSimCublasUnfused;
    const auto result = pipelines::solve(instance, params, backend, options);
    const double err = rel_error(result.v, oracle);
    const bool ok = !result.recovery.gave_up && err <= kHarmTol;
    if (result.recovery.faults_detected > 0 && !ok) ++unrecovered;
    recovery.row({gpusim::to_string(setup.site), str_format("%.1e", rate),
                  str_format("%d", result.recovery.attempts),
                  str_format("%d", result.recovery.faults_detected),
                  result.recovery.fallback_used ? "yes" : "no",
                  result.recovery.gave_up
                      ? "GAVE UP"
                      : (result.recovery.faults_detected > 0 ? "recovered"
                                                             : "clean"),
                  str_format("%.2e%s", err, err <= kHarmTol ? "" : " (BAD)")});
  }
  bench::emit(recovery, "fault_campaign_recovery");

  // ---- 3. Checking overhead ----------------------------------------------
  Table overhead("Fault campaign — ABFT checking overhead (no faults)");
  overhead.header({"pipeline", "time off", "time on", "overhead",
                   "energy off", "energy on"});
  for (const auto solution : {pipelines::Solution::kFused,
                              pipelines::Solution::kCublasUnfused}) {
    pipelines::RunOptions off;
    pipelines::RunOptions on;
    on.checks.enabled = true;
    const auto base = pipelines::run_pipeline(solution, instance, params, off);
    const auto checked =
        pipelines::run_pipeline(solution, instance, params, on);
    overhead.row({pipelines::to_string(solution),
                  str_format("%.3f ms", base.seconds * 1e3),
                  str_format("%.3f ms", checked.seconds * 1e3),
                  format_percent(checked.seconds / base.seconds - 1.0),
                  str_format("%.4f J", base.energy.total()),
                  str_format("%.4f J", checked.energy.total())});
  }
  bench::emit(overhead, "fault_campaign_overhead");

  // ---- Acceptance summary -------------------------------------------------
  const double atomic_cov =
      atomic_faulty > 0 ? double(atomic_detected) / double(atomic_faulty)
                        : 1.0;
  std::printf(
      "\natomic-site coverage: %d/%d (%.0f%%), false positives on clean "
      "runs: %d, unrecovered detected faults: %d\n",
      atomic_detected, atomic_faulty, atomic_cov * 100.0, clean_flagged,
      unrecovered);
  const bool pass = atomic_cov >= 0.9 && clean_flagged == 0 && unrecovered == 0;
  std::printf("fault campaign: %s\n", pass ? "PASS" : "FAIL");
  bench::write_bench_json("fault_campaign", {});
  return pass ? 0 : 1;
}
