// Fault-injection campaign for the ABFT subsystem (docs/ROBUSTNESS.md).
//
// Four experiments on a fixed 512×512×16 Gaussian problem:
//
//   1. Detection coverage — for every fault site, sweep the injection rate
//      and run many independently-seeded trials without recovery, counting
//      how often the checks flag a run that received faults, how many of
//      the *harmful* faults (result actually wrong vs the exact oracle)
//      slip through silently, and whether any fault-free trial is flagged
//      (false positives).
//   2. Recovery — the same sites through pipelines::solve() with the
//      detect→retry→fallback policy, verifying the returned result against
//      the oracle.
//   3. Overhead — checks on vs off with no injector attached: the modelled
//      time and energy cost of the second atomic path and (unfused) the
//      colsum audit pass.
//   4. Shard-level localization — the request split over 4 shards with a
//      fault in exactly one: detection stays on that shard, only it is
//      re-dispatched, and the recovered merge is bit-identical to the
//      unsharded run (docs/SHARDING.md).
//
// Environment: KSUM_BENCH_FAST=1 shrinks the trial counts; KSUM_CSV_DIR
// mirrors each table as CSV; KSUM_BENCH_THREADS sets the worker count for
// the detection-coverage trials (default: hardware concurrency). Each trial
// seeds its own FaultPlan and builds private Devices inside run_pipeline,
// so trials run on the exec::ThreadPool and are folded into the table in
// submission order — the printed rows are identical for any thread count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "blas/vector_ops.h"
#include "common/string_util.h"
#include "core/exact.h"
#include "exec/batch_engine.h"
#include "pipelines/solver.h"
#include "robust/fault_plan.h"
#include "shard/types.h"

namespace {

using namespace ksum;

constexpr std::size_t kM = 512, kN = 512, kK = 16;

// A result further than this from the double-precision oracle is *harmful*
// corruption (the clean pipelines land around 1e-3).
constexpr double kHarmTol = 1e-2;

struct SiteSetup {
  gpusim::FaultSite site;
  pipelines::Solution solution;  // pipeline that exercises the site
  double base_rate;              // ≈2 expected faults per run at 1×
};

workload::Instance make_campaign_instance() {
  workload::ProblemSpec spec;
  spec.m = kM;
  spec.n = kN;
  spec.k = kK;
  spec.seed = 2024;
  return workload::make_instance(spec);
}

double rel_error(const Vector& v, const Vector& oracle) {
  return blas::max_rel_diff(v.span(), oracle.span(), 1e-3);
}

int bench_threads() {
  const char* env = std::getenv("KSUM_BENCH_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1 && n <= exec::ThreadPool::kMaxThreads) return n;
  }
  return exec::ThreadPool::hardware_threads();
}

// What one detection-coverage trial observed; the fold into counters
// happens on the main thread, in trial order.
struct TrialOutcome {
  bool injected = false;
  bool flagged = false;
  bool harmed = false;
};

}  // namespace

int main() {
  const bool fast = std::getenv("KSUM_BENCH_FAST") != nullptr;
  const int trials = fast ? 8 : 24;

  const auto instance = make_campaign_instance();
  core::KernelParams params;  // gaussian, h=1
  const Vector oracle = core::solve_direct(instance, params);

  // The atomic sites only exist in the fused pipeline's inter-CTA
  // reduction; the global-store site is best exercised by the unfused
  // pipeline, whose C and V stores are both audited. Base rates are tuned
  // to ≈2 expected faults per run given each site's opportunity count.
  const std::vector<SiteSetup> sites = {
      {gpusim::FaultSite::kSharedMemory, pipelines::Solution::kFused, 2e-5},
      {gpusim::FaultSite::kGlobalMemory, pipelines::Solution::kCublasUnfused,
       4e-6},
      {gpusim::FaultSite::kTileLoad, pipelines::Solution::kFused, 3e-5},
      {gpusim::FaultSite::kAtomicDrop, pipelines::Solution::kFused, 2.5e-2},
      {gpusim::FaultSite::kAtomicDouble, pipelines::Solution::kFused,
       2.5e-2},
  };
  const std::vector<double> rate_scales = {1.0, 4.0};

  // ---- 1. Detection coverage ---------------------------------------------
  Table coverage(
      str_format("Fault campaign — detection coverage (M=%zu N=%zu K=%zu, "
                 "%d trials/row)",
                 kM, kN, kK, trials));
  coverage.header({"site", "pipeline", "rate", "faulty runs", "detected",
                   "coverage", "harmful", "silent harm", "false pos"});

  exec::ThreadPool pool(bench_threads());
  int atomic_faulty = 0, atomic_detected = 0;
  int clean_flagged = 0;
  for (const SiteSetup& setup : sites) {
    for (double scale : rate_scales) {
      const double rate = setup.base_rate * scale;
      // Trials are seeded by trial index (never worker id) and share nothing
      // mutable, so any pool size yields the same outcomes.
      const auto outcomes = exec::map_ordered(
          pool, std::size_t(trials), [&](std::size_t trial) {
            robust::FaultPlan plan(robust::FaultPlanConfig::single_site(
                std::uint64_t(trial) + 1, setup.site, rate));
            pipelines::RunOptions options;
            options.checks.enabled = true;
            options.fault_injector = &plan;
            const auto report = pipelines::run_pipeline(
                setup.solution, instance, params, options);
            TrialOutcome out;
            out.injected = plan.total_injected() > 0;
            out.flagged = report.robustness.fault_detected();
            out.harmed = rel_error(report.result, oracle) > kHarmTol;
            return out;
          });
      int faulty = 0, detected = 0, harmful = 0, silent_harm = 0;
      int false_pos = 0;
      for (const TrialOutcome& out : outcomes) {
        if (out.injected) {
          ++faulty;
          if (out.flagged) ++detected;
          if (out.harmed) {
            ++harmful;
            if (!out.flagged) ++silent_harm;
          }
        } else if (out.flagged) {
          ++false_pos;
          ++clean_flagged;
        }
        const bool atomic_site =
            setup.site == gpusim::FaultSite::kAtomicDrop ||
            setup.site == gpusim::FaultSite::kAtomicDouble;
        if (atomic_site && out.injected) {
          ++atomic_faulty;
          if (out.flagged) ++atomic_detected;
        }
      }
      coverage.row(
          {gpusim::to_string(setup.site),
           pipelines::to_string(setup.solution),
           str_format("%.1e", rate), str_format("%d", faulty),
           str_format("%d", detected),
           faulty > 0 ? format_percent(double(detected) / double(faulty))
                      : std::string("n/a"),
           str_format("%d", harmful), str_format("%d", silent_harm),
           str_format("%d", false_pos)});
    }
  }
  bench::emit(coverage, "fault_campaign_coverage");

  // ---- 2. Recovery through solve() ---------------------------------------
  Table recovery(
      "Fault campaign — detect/retry/fallback recovery (fused backend)");
  recovery.header({"site", "rate", "attempts", "faulty attempts", "fallback",
                   "outcome", "err vs oracle"});
  int unrecovered = 0;
  for (const SiteSetup& setup : sites) {
    const double rate = setup.base_rate;
    robust::FaultPlan plan(robust::FaultPlanConfig::single_site(
        /*seed=*/99, setup.site, rate));
    pipelines::RunOptions options;
    options.fault_injector = &plan;
    options.recovery.enabled = true;
    const auto backend = setup.solution == pipelines::Solution::kFused
                             ? pipelines::Backend::kSimFused
                             : pipelines::Backend::kSimCublasUnfused;
    const auto result = pipelines::solve(instance, params, backend, options);
    const double err = rel_error(result.v, oracle);
    const bool ok = !result.recovery.gave_up && err <= kHarmTol;
    if (result.recovery.faults_detected > 0 && !ok) ++unrecovered;
    recovery.row({gpusim::to_string(setup.site), str_format("%.1e", rate),
                  str_format("%d", result.recovery.attempts),
                  str_format("%d", result.recovery.faults_detected),
                  result.recovery.fallback_used ? "yes" : "no",
                  result.recovery.gave_up
                      ? "GAVE UP"
                      : (result.recovery.faults_detected > 0 ? "recovered"
                                                             : "clean"),
                  str_format("%.2e%s", err, err <= kHarmTol ? "" : " (BAD)")});
  }
  bench::emit(recovery, "fault_campaign_recovery");

  // ---- 3. Checking overhead ----------------------------------------------
  Table overhead("Fault campaign — ABFT checking overhead (no faults)");
  overhead.header({"pipeline", "time off", "time on", "overhead",
                   "energy off", "energy on"});
  for (const auto solution : {pipelines::Solution::kFused,
                              pipelines::Solution::kCublasUnfused}) {
    pipelines::RunOptions off;
    pipelines::RunOptions on;
    on.checks.enabled = true;
    const auto base = pipelines::run_pipeline(solution, instance, params, off);
    const auto checked =
        pipelines::run_pipeline(solution, instance, params, on);
    overhead.row({pipelines::to_string(solution),
                  str_format("%.3f ms", base.seconds * 1e3),
                  str_format("%.3f ms", checked.seconds * 1e3),
                  format_percent(checked.seconds / base.seconds - 1.0),
                  str_format("%.4f J", base.energy.total()),
                  str_format("%.4f J", checked.energy.total())});
  }
  bench::emit(overhead, "fault_campaign_overhead");

  // ---- 4. Shard-level fault localization ---------------------------------
  // The request splits over 4 shards; exactly one (shard 2, dispatch 0)
  // gets a faulty device. Detection must localize there, only that shard
  // may be re-dispatched, and the recovered merge must reproduce the
  // unsharded run bit for bit. Every printed field is a pure function of
  // the injector factory, so the table is identical for any worker count.
  Table shard_table(
      "Fault campaign — shard-level localization (4 shards, fault in s2)");
  shard_table.header(
      {"shard", "rows", "dispatches", "attempts", "faults", "verdict"});
  bool shard_ok = true;
  {
    const auto unsharded =
        pipelines::solve(instance, params, pipelines::Backend::kSimFused);
    pipelines::RunOptions options;
    options.shards.count = 4;
    options.shards.axis = shard::ShardAxis::kM;
    options.shards.workers = bench_threads();
    // Rate 0.5 rather than 1.0: dropping every atomicAdd would zero the
    // checksum path too and pass the check; 0.5 decorrelates the paths.
    options.shards.injector_factory =
        [](std::size_t s, int d) -> std::shared_ptr<gpusim::FaultInjector> {
      if (s != 2 || d != 0) return nullptr;
      return std::make_shared<robust::FaultPlan>(
          robust::FaultPlanConfig::single_site(
              shard::shard_fault_seed(/*base=*/2024, s, d),
              gpusim::FaultSite::kAtomicDrop, 0.5));
    };
    options.recovery.enabled = true;
    options.recovery.max_retries = 0;  // force the re-dispatch path
    options.recovery.fallback_to_unfused = false;
    const auto run = pipelines::solve(instance, params,
                                      pipelines::Backend::kSimFused, options);
    const bool bit_identical =
        run.v.size() == unsharded.v.size() &&
        std::memcmp(run.v.data(), unsharded.v.data(),
                    run.v.size() * sizeof(float)) == 0;
    if (!run.shards.has_value()) {
      shard_ok = false;
    } else {
      for (const auto& slice : run.shards->slices) {
        const bool faulty_shard = slice.index == 2;
        const bool localized =
            faulty_shard
                ? slice.dispatches == 2 && slice.recovery.faults_detected > 0 &&
                      !slice.recovery.gave_up
                : slice.dispatches == 1 && slice.recovery.faults_detected == 0;
        shard_ok = shard_ok && localized;
        shard_table.row(
            {str_format("s%zu", slice.index),
             str_format("[%zu, %zu)", slice.begin, slice.end),
             str_format("%d", slice.dispatches),
             str_format("%d", slice.recovery.attempts),
             str_format("%d", slice.recovery.faults_detected),
             localized ? (faulty_shard ? "recovered elsewhere" : "clean")
                       : "UNEXPECTED"});
      }
    }
    shard_ok = shard_ok && bit_identical && !run.recovery.gave_up;
    std::printf("shard fault localization: %s (merge %s unsharded run)\n",
                shard_ok ? "PASS" : "FAIL",
                bit_identical ? "bit-identical to" : "DIVERGED from");
  }
  bench::emit(shard_table, "fault_campaign_shard");

  // ---- Acceptance summary -------------------------------------------------
  const double atomic_cov =
      atomic_faulty > 0 ? double(atomic_detected) / double(atomic_faulty)
                        : 1.0;
  std::printf(
      "\natomic-site coverage: %d/%d (%.0f%%), false positives on clean "
      "runs: %d, unrecovered detected faults: %d\n",
      atomic_detected, atomic_faulty, atomic_cov * 100.0, clean_flagged,
      unrecovered);
  const bool pass = atomic_cov >= 0.9 && clean_flagged == 0 &&
                    unrecovered == 0 && shard_ok;
  std::printf("fault campaign: %s\n", pass ? "PASS" : "FAIL");
  bench::write_bench_json("fault_campaign", {});
  return pass ? 0 : 1;
}
