// Shard-scaling study for the multi-device runner (docs/SHARDING.md).
//
// One fixed 1024×1024×16 Gaussian problem solved with the fused pipeline,
// unsharded and then split over {2, 4, 8} warm devices along each axis:
//
//   axis m — rows of A (and V) are partitioned; shards are independent and
//            the merge is pure concatenation.
//   axis n — columns of B (and W) are partitioned; each shard produces
//            staged partials and the merge replays the device's reduction
//            fold, so the sum order is exactly the single-device order.
//
// For every configuration the merged result must be bit-identical to the
// unsharded oracle (memcmp, not a tolerance) — a divergence fails the
// bench. The table reports the modelled wall time (max over shards, since
// each shard owns a device), total energy and memory traffic, showing the
// near-linear time scaling and the flat-to-rising energy cost that makes
// sharding a latency lever, not an efficiency one.
//
// Environment: KSUM_BENCH_THREADS caps the worker pool (default: hardware
// concurrency; results are bit-identical for any value), KSUM_CSV_DIR
// mirrors the table, KSUM_BENCH_JSON_DIR receives BENCH_shard_scaling.json
// (schema ksum-bench-v1, one point whose pipelines are the sharding
// configurations: "unsharded", "m_shards2", ..., "n_shards8").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/kernels.h"
#include "exec/batch_engine.h"
#include "pipelines/solver.h"
#include "profile/profile_json.h"
#include "shard/types.h"
#include "workload/point_generators.h"

namespace {

using namespace ksum;

constexpr std::size_t kM = 1024, kN = 1024, kK = 16;

int bench_threads() {
  const char* env = std::getenv("KSUM_BENCH_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1 && n <= exec::ThreadPool::kMaxThreads) return n;
  }
  return exec::ThreadPool::hardware_threads();
}

struct ConfigResult {
  std::string name;  // pipelines key in the bench record
  std::string axis;  // "-", "m" or "n"
  std::size_t shards = 1;
  pipelines::SolveResult run;
  bool bit_identical = true;
};

}  // namespace

int main() {
  workload::ProblemSpec spec;
  spec.m = kM;
  spec.n = kN;
  spec.k = kK;
  spec.seed = 7;
  const auto instance = workload::make_instance(spec);
  core::KernelParams params;  // gaussian, h=1

  // The single-device oracle every sharded run must reproduce bit for bit.
  // Kept outside `configs` so the comparisons below never reference into a
  // vector that push_back may reallocate.
  const pipelines::SolveResult baseline =
      pipelines::solve(instance, params, pipelines::Backend::kSimFused);
  const Vector& oracle = baseline.v;

  std::vector<ConfigResult> configs;
  {
    ConfigResult base;
    base.name = "unsharded";
    base.axis = "-";
    base.run = baseline;
    configs.push_back(std::move(base));
  }

  const std::vector<std::size_t> counts = {2, 4, 8};
  for (const shard::ShardAxis axis :
       {shard::ShardAxis::kM, shard::ShardAxis::kN}) {
    for (const std::size_t count : counts) {
      pipelines::RunOptions options;
      options.shards.count = count;
      options.shards.axis = axis;
      options.shards.workers = bench_threads();
      ConfigResult cfg;
      cfg.axis = shard::to_string(axis);
      cfg.name = cfg.axis + "_shards" + std::to_string(count);
      cfg.run = pipelines::solve(instance, params,
                                 pipelines::Backend::kSimFused, options);
      cfg.shards = cfg.run.shards.has_value() ? cfg.run.shards->count()
                                              : std::size_t{0};
      cfg.bit_identical =
          cfg.run.v.size() == oracle.size() &&
          std::memcmp(cfg.run.v.data(), oracle.data(),
                      oracle.size() * sizeof(float)) == 0;
      configs.push_back(std::move(cfg));
    }
  }

  const double base_seconds = configs.front().run.report->seconds;
  Table table(str_format(
      "Shard scaling — fused pipeline, M=%zu N=%zu K=%zu (time is the max "
      "over shards; each shard owns a device)",
      kM, kN, kK));
  table.header({"axis", "shards", "time (ms)", "speedup", "energy (J)",
                "DRAM txn", "L2 txn", "merge"});
  bool all_identical = true;
  for (const ConfigResult& cfg : configs) {
    const pipelines::PipelineReport& rep = *cfg.run.report;
    all_identical = all_identical && cfg.bit_identical;
    table.row({cfg.axis, str_format("%zu", cfg.shards),
               str_format("%.3f", rep.seconds * 1e3),
               str_format("%.2fx", base_seconds / rep.seconds),
               str_format("%.4f", rep.energy.total()),
               str_format("%llu", static_cast<unsigned long long>(
                                      rep.total.dram_total_transactions())),
               str_format("%llu", static_cast<unsigned long long>(
                                      rep.total.l2_total_transactions())),
               cfg.bit_identical ? "bit-identical" : "DIVERGED"});
  }
  bench::emit(table, "shard_scaling");

  // One ksum-bench-v1 point: the sharding configurations play the role of
  // pipelines, so tools/bench_compare.py gates their time/energy/traffic.
  profile::Json pipelines_json = profile::Json::object();
  for (const ConfigResult& cfg : configs) {
    const pipelines::PipelineReport& rep = *cfg.run.report;
    profile::Json pipe = profile::Json::object();
    pipe.set("seconds", rep.seconds);
    pipe.set("energy_j", profile::energy_breakdown_json(rep.energy));
    pipe.set("l2_transactions", rep.total.l2_total_transactions());
    pipe.set("dram_transactions", rep.total.dram_total_transactions());
    pipelines_json.set(cfg.name, std::move(pipe));
  }
  profile::Json point = profile::Json::object();
  point.set("m", static_cast<std::uint64_t>(kM));
  point.set("n", static_cast<std::uint64_t>(kN));
  point.set("k", static_cast<std::uint64_t>(kK));
  point.set("pipelines", std::move(pipelines_json));
  const std::string path = bench::write_bench_json_points(
      "shard_scaling", profile::Json::array().push_back(std::move(point)));

  std::printf("shard scaling: %s (7 configurations vs the unsharded "
              "oracle)\nwrote %s\n",
              all_identical ? "PASS" : "FAIL", path.c_str());
  return all_identical ? 0 : 1;
}
