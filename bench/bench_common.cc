#include "bench_common.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/csv.h"
#include "common/error.h"
#include "profile/profile_json.h"

namespace ksum::bench {

namespace {

struct CapturedTable {
  std::string name;
  std::string csv;
};

// Tables emit()ed so far, in order, for write_bench_json().
std::vector<CapturedTable>& captured_tables() {
  static std::vector<CapturedTable> tables;
  return tables;
}

profile::Json point_json(const report::SweepPoint& point) {
  profile::Json j = profile::Json::object();
  j.set("m", static_cast<std::uint64_t>(point.m));
  j.set("n", static_cast<std::uint64_t>(point.n));
  j.set("k", static_cast<std::uint64_t>(point.k));
  profile::Json pipelines = profile::Json::object();
  const std::pair<const char*, const analytic::PipelineEstimate*> entries[] =
      {{"fused", &point.fused},
       {"cuda_unfused", &point.cuda_unfused},
       {"cublas_unfused", &point.cublas_unfused},
       {"fused_projected", &point.fused_projected}};
  for (const auto& [name, estimate] : entries) {
    profile::Json pipe = profile::Json::object();
    pipe.set("seconds", estimate->seconds);
    pipe.set("energy_j", profile::energy_breakdown_json(estimate->energy));
    pipe.set("l2_transactions", estimate->l2_transactions());
    pipe.set("dram_transactions", estimate->dram_transactions());
    pipelines.set(name, std::move(pipe));
  }
  j.set("pipelines", std::move(pipelines));
  return j;
}

}  // namespace

std::vector<workload::ProblemSpec> bench_specs() {
  const char* fast = std::getenv("KSUM_BENCH_FAST");
  if (fast != nullptr && std::string(fast) == "1") {
    return workload::paper_table_sweep();
  }
  return workload::paper_figure_sweep();
}

const std::vector<report::SweepPoint>& bench_sweep(
    analytic::PipelineModel& model) {
  static const std::vector<report::SweepPoint> points =
      report::evaluate_sweep(model, bench_specs());
  return points;
}

void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  std::cout << std::endl;

  std::string csv_text;
  for (const auto& row : table.export_rows()) {
    csv_text += CsvWriter::to_line(row);
    csv_text += '\n';
  }
  captured_tables().push_back({csv_name, csv_text});

  const char* dir = std::getenv("KSUM_CSV_DIR");
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  CsvWriter writer(std::string(dir) + "/" + csv_name + ".csv");
  for (const auto& row : table.export_rows()) {
    writer.write_row(row);
  }
}

std::string write_bench_json(const std::string& name,
                             const std::vector<report::SweepPoint>& points) {
  profile::Json point_array = profile::Json::array();
  for (const report::SweepPoint& point : points) {
    point_array.push_back(point_json(point));
  }
  return write_bench_json_points(name, std::move(point_array));
}

std::string write_bench_json_points(const std::string& name,
                                    profile::Json points) {
  KSUM_REQUIRE(points.is_array(), "bench points must be a JSON array");
  profile::Json record = profile::Json::object();
  record.set("schema", "ksum-bench-v1");
  record.set("bench", name);
  record.set("points", std::move(points));

  profile::Json table_array = profile::Json::array();
  for (const CapturedTable& table : captured_tables()) {
    profile::Json t = profile::Json::object();
    t.set("name", table.name);
    t.set("csv", table.csv);
    table_array.push_back(std::move(t));
  }
  record.set("tables", std::move(table_array));

  // Never publish a record the schema validator would reject.
  profile::validate_bench_json(record);

  const char* dir = std::getenv("KSUM_BENCH_JSON_DIR");
  std::string path = dir != nullptr ? std::string(dir) : std::string(".");
  std::filesystem::create_directories(path);
  path += "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary);
  KSUM_REQUIRE(static_cast<bool>(out),
               "cannot open " + path + " for writing");
  out << record.dump();
  KSUM_REQUIRE(static_cast<bool>(out), "write to " + path + " failed");
  return path;
}

}  // namespace ksum::bench
