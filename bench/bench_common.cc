#include "bench_common.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/csv.h"

namespace ksum::bench {

std::vector<workload::ProblemSpec> bench_specs() {
  const char* fast = std::getenv("KSUM_BENCH_FAST");
  if (fast != nullptr && std::string(fast) == "1") {
    return workload::paper_table_sweep();
  }
  return workload::paper_figure_sweep();
}

const std::vector<report::SweepPoint>& bench_sweep(
    analytic::PipelineModel& model) {
  static const std::vector<report::SweepPoint> points =
      report::evaluate_sweep(model, bench_specs());
  return points;
}

void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  std::cout << std::endl;
  const char* dir = std::getenv("KSUM_CSV_DIR");
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  CsvWriter writer(std::string(dir) + "/" + csv_name + ".csv");
  for (const auto& row : table.export_rows()) {
    writer.write_row(row);
  }
}

}  // namespace ksum::bench
