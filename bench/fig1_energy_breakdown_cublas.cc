// Fig. 1: energy breakdown of the cuBLAS-Unfused kernel summation, N=1024.
// The paper's headline motivation: 10–30% of total energy goes to DRAM.
#include "bench_common.h"

int main() {
  using namespace ksum;
  analytic::PipelineModel model;
  const auto& points = bench::bench_sweep(model);
  bench::emit(report::fig1_energy_breakdown_cublas(points),
              "fig1_energy_breakdown_cublas");
  bench::write_bench_json("fig1_energy_breakdown_cublas", points);
  return 0;
}
