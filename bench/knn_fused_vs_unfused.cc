// Extension bench (paper §VI: "steps similar to those implemented in this
// paper can be applied to other algorithms"): fused k-nearest-neighbour
// search vs the unfused baseline that streams the M×N distance matrix
// through DRAM. Functional execution (exact counts), moderate sizes.
#include "bench_common.h"
#include "common/string_util.h"
#include "pipelines/knn_pipeline.h"

int main() {
  using namespace ksum;

  Table t("Extension — fused vs unfused kNN (N=512, k=8 neighbours, "
          "functional simulation)");
  t.header({"config", "DRAM txn (unfused)", "DRAM txn (fused)", "ratio",
            "time (unfused)", "time (fused)", "speedup",
            "energy saved"});
  for (std::size_t k : {16u, 64u}) {
    for (std::size_t m : {512u, 1024u}) {
      workload::ProblemSpec spec;
      spec.m = m;
      spec.n = 512;
      spec.k = k;
      spec.seed = 2016;
      const auto inst = workload::make_instance(spec);
      const auto fused = pipelines::run_knn_pipeline(
          pipelines::KnnSolution::kFused, inst, 8);
      const auto unfused = pipelines::run_knn_pipeline(
          pipelines::KnnSolution::kUnfused, inst, 8);
      t.row({str_format("K=%zu M=%zu", k, m),
             format_si(double(unfused.total.dram_total_transactions())),
             format_si(double(fused.total.dram_total_transactions())),
             format_percent(
                 double(fused.total.dram_total_transactions()) /
                 double(unfused.total.dram_total_transactions())),
             str_format("%.3f ms", unfused.seconds * 1e3),
             str_format("%.3f ms", fused.seconds * 1e3),
             str_format("%.2fx", unfused.seconds / fused.seconds),
             format_percent(1.0 - fused.energy.total() /
                                      unfused.energy.total())});
    }
  }
  bench::emit(t, "knn_fused_vs_unfused");
  bench::write_bench_json("knn_fused_vs_unfused", {});
  return 0;
}
