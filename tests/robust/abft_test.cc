#include "robust/abft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace ksum::robust {
namespace {

workload::Instance small_instance() {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  spec.seed = 5;
  return workload::make_instance(spec);
}

TEST(AbftTest, FiniteCheckPassesOnCleanData) {
  const std::vector<float> v{1.0f, -2.5f, 0.0f};
  EXPECT_TRUE(check_finite(v).passed);
}

TEST(AbftTest, FiniteCheckCatchesNanAndInf) {
  const std::vector<float> with_nan{
      1.0f, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_FALSE(check_finite(with_nan).passed);
  const std::vector<float> with_inf{std::numeric_limits<float>::infinity()};
  EXPECT_FALSE(check_finite(with_inf).passed);
}

TEST(AbftTest, KernelValueBoundPerKernel) {
  core::KernelParams params;
  params.type = core::KernelType::kGaussian;
  EXPECT_DOUBLE_EQ(kernel_value_bound(params), 1.0);
  params.type = core::KernelType::kLaplace3d;
  params.softening = 0.5f;
  EXPECT_DOUBLE_EQ(kernel_value_bound(params), 2.0);
  params.type = core::KernelType::kPolynomial2;
  EXPECT_FALSE(std::isfinite(kernel_value_bound(params)));
}

TEST(AbftTest, BoundCheckFlagsImpossiblePotential) {
  core::KernelParams params;  // gaussian: K ≤ 1
  const std::vector<float> w{0.5f, -0.5f, 1.0f};  // Σ|W| = 2
  const std::vector<float> ok{1.9f, -1.9f};
  EXPECT_TRUE(check_kernel_bound(ok, w, params, 1e-3).passed);
  const std::vector<float> bad{2.5f};
  EXPECT_FALSE(check_kernel_bound(bad, w, params, 1e-3).passed);
}

TEST(AbftTest, BoundCheckNotApplicableForPolynomial) {
  core::KernelParams params;
  params.type = core::KernelType::kPolynomial2;
  const std::vector<float> w{1.0f};
  const std::vector<float> v{1e20f};
  const auto result = check_kernel_bound(v, w, params, 1e-3);
  EXPECT_FALSE(result.applicable);
}

TEST(AbftTest, BlockChecksumPassesWhenConsistent) {
  // Two blocks of 128 rows; checksum cells hold the exact block sums.
  std::vector<float> v(256);
  std::vector<float> sums(4, 0.0f);  // [2 signed | 2 abs]
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = (i % 3 == 0 ? -1.0f : 1.0f) * float(i % 7) * 0.125f;
    const std::size_t b = i / 128;
    sums[b] += v[i];
    sums[2 + b] += std::fabs(v[i]);
  }
  const auto result = check_block_checksums(v, sums, 1e-3);
  EXPECT_TRUE(result.passed) << result.metric;
}

TEST(AbftTest, BlockChecksumCatchesSingleBlockDrift) {
  std::vector<float> v(256, 0.5f);
  std::vector<float> sums{64.0f, 64.0f, 64.0f, 64.0f};
  v[200] += 1.0f;  // one row of block 1 corrupted after the fork
  const auto result = check_block_checksums(v, sums, 1e-3);
  EXPECT_FALSE(result.passed);
  EXPECT_GT(result.metric, result.threshold);
}

TEST(AbftTest, BlockChecksumNanChecksumFails) {
  std::vector<float> v(128, 1.0f);
  std::vector<float> sums{std::numeric_limits<float>::quiet_NaN(), 128.0f};
  EXPECT_FALSE(check_block_checksums(v, sums, 1e-3).passed);
}

TEST(AbftTest, BlockChecksumToleratesSignedCancellation) {
  // Block sum ≈ 0 but absolute mass large: a tolerance scaled only by the
  // signed sum would false-positive on rounding noise; the abs companion
  // cell must keep this clean.
  std::vector<float> v(128);
  float sum = 0.0f, abs_sum = 0.0f;
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = (i % 2 == 0 ? 1.0f : -1.0f) * 100.0f;
    sum += v[i];
    abs_sum += std::fabs(v[i]);
  }
  // Simulate reorder noise in the second path.
  const std::vector<float> sums{sum + 1e-3f, abs_sum};
  EXPECT_TRUE(check_block_checksums(v, sums, 1e-3).passed);
}

TEST(AbftTest, GemmColsumAgreesWithReference) {
  const auto inst = small_instance();
  const std::size_t m = inst.spec.m, n = inst.spec.n, k = inst.spec.k;
  // Measured colsums of C = AᵀB computed directly from the instance.
  std::vector<float> colsums(2 * n, 0.0f);
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0, abs_sum = 0;
    for (std::size_t i = 0; i < m; ++i) {
      double dot = 0;
      for (std::size_t c = 0; c < k; ++c) {
        dot += double(inst.a.at(i, c)) * double(inst.b.at(c, j));
      }
      sum += dot;
      abs_sum += std::fabs(dot);
    }
    colsums[j] = float(sum);
    colsums[n + j] = float(abs_sum);
  }
  EXPECT_TRUE(check_gemm_colsums(inst, colsums, 1e-3).passed);

  colsums[n / 2] += 0.5f * colsums[n + n / 2] + 1.0f;
  EXPECT_FALSE(check_gemm_colsums(inst, colsums, 1e-3).passed);
}

TEST(AbftTest, EvaluateChecksSkipsMissingArtefacts) {
  const auto inst = small_instance();
  core::KernelParams params;
  const std::vector<float> v(inst.spec.m, 0.1f);
  CheckConfig config;
  config.enabled = true;
  const auto report = evaluate_checks(config, inst, params, v, {}, {});
  EXPECT_TRUE(report.checks_enabled);
  EXPECT_EQ(report.checks.size(), 2u);  // finite + bound only
  EXPECT_FALSE(report.fault_detected());
}

TEST(AbftTest, DisabledConfigReportsNoChecks) {
  const auto inst = small_instance();
  core::KernelParams params;
  const std::vector<float> v(inst.spec.m, 0.1f);
  const auto report = evaluate_checks(CheckConfig{}, inst, params, v, {}, {});
  EXPECT_FALSE(report.checks_enabled);
  EXPECT_TRUE(report.checks.empty());
  EXPECT_FALSE(report.fault_detected());
}

TEST(AbftTest, ReportToStringNamesFailedCheck) {
  RobustnessReport report;
  report.checks_enabled = true;
  CheckResult bad;
  bad.name = "block-checksum";
  bad.passed = false;
  bad.metric = 0.5;
  bad.threshold = 1e-3;
  report.checks.push_back(bad);
  EXPECT_NE(report.to_string().find("block-checksum"), std::string::npos);
  EXPECT_TRUE(report.fault_detected());
}

}  // namespace
}  // namespace ksum::robust
