// End-to-end fault campaign acceptance tests: injected accumulator/atomic
// faults are detected by the ABFT checks, detection drives the solver's
// retry/fallback recovery to a correct result, and a fault-free run never
// false-positives.
#include <gtest/gtest.h>

#include <limits>

#include "blas/vector_ops.h"
#include "pipelines/solver.h"
#include "robust/fault_plan.h"

namespace ksum::robust {
namespace {

using gpusim::FaultSite;
using pipelines::run_pipeline;
using pipelines::RunOptions;
using pipelines::Solution;
using pipelines::to_string;

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = 77;
  return workload::make_instance(spec);
}

double error_vs_oracle(const Vector& v, const workload::Instance& inst,
                       const core::KernelParams& params) {
  const Vector oracle = core::solve_direct(inst, params);
  return blas::max_rel_diff(v.span(), oracle.span(), 1e-3);
}

TEST(RobustPipelineTest, CleanRunHasNoFalsePositives) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  for (const auto solution :
       {Solution::kFused, Solution::kCudaUnfused, Solution::kCublasUnfused}) {
    RunOptions options;
    options.checks.enabled = true;
    const auto report = run_pipeline(solution, inst, params, options);
    EXPECT_FALSE(report.robustness.fault_detected())
        << to_string(solution) << ": " << report.robustness.to_string();
    EXPECT_EQ(report.total.faults_injected_total(), 0u);
  }
}

TEST(RobustPipelineTest, ChecksOffProducesEmptyReport) {
  const auto inst = instance_for(128, 128, 8);
  const auto params = core::params_from_spec(inst.spec);
  const auto report = run_pipeline(Solution::kFused, inst, params);
  EXPECT_FALSE(report.robustness.checks_enabled);
  EXPECT_TRUE(report.robustness.checks.empty());
}

TEST(RobustPipelineTest, ChecksDoNotChangeTheResult) {
  const auto inst = instance_for(256, 128, 16);
  const auto params = core::params_from_spec(inst.spec);
  RunOptions off;
  RunOptions on;
  on.checks.enabled = true;
  for (const auto solution : {Solution::kFused, Solution::kCublasUnfused}) {
    const auto base = run_pipeline(solution, inst, params, off);
    const auto checked = run_pipeline(solution, inst, params, on);
    ASSERT_EQ(base.result.size(), checked.result.size());
    for (std::size_t i = 0; i < base.result.size(); ++i) {
      EXPECT_EQ(base.result[i], checked.result[i]) << i;
    }
    // ... but the checking work itself must be costed.
    EXPECT_GT(checked.seconds, base.seconds);
  }
}

// Every injected atomic fault (dropped or doubled warp-atomicAdd in the
// fused reduction) must trip the block checksum — the ≥90% acceptance bar
// of the fault campaign, here enforced at 100% on a deterministic seed set.
TEST(RobustPipelineTest, AtomicFaultsAreDetected) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  for (const auto site :
       {FaultSite::kAtomicDrop, FaultSite::kAtomicDouble}) {
    int faulty = 0, detected = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      FaultPlan plan(FaultPlanConfig::single_site(seed, site, 0.05));
      RunOptions options;
      options.checks.enabled = true;
      options.fault_injector = &plan;
      const auto report =
          run_pipeline(Solution::kFused, inst, params, options);
      if (plan.total_injected() == 0) continue;
      ++faulty;
      if (report.robustness.fault_detected()) ++detected;
    }
    ASSERT_GT(faulty, 0) << gpusim::to_string(site);
    EXPECT_EQ(detected, faulty) << gpusim::to_string(site);
  }
}

TEST(RobustPipelineTest, GemmCorruptionIsDetectedByColsum) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  int faulty = 0, detected = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // Global-store bit flips land in C (and V); the colsum audit or the
    // block checksum must notice. A flip in the mantissa tail is smaller
    // than the tolerance-scaled threshold (by design — it is also smaller
    // than the float rounding noise), so drive several flips per run to
    // make each run's detection probability saturate.
    FaultPlan plan(FaultPlanConfig::single_site(
        seed, FaultSite::kGlobalMemory, 8e-5));
    RunOptions options;
    options.checks.enabled = true;
    options.fault_injector = &plan;
    const auto report =
        run_pipeline(Solution::kCublasUnfused, inst, params, options);
    if (plan.total_injected() == 0) continue;
    ++faulty;
    if (report.robustness.fault_detected()) ++detected;
  }
  ASSERT_GT(faulty, 0);
  // Mantissa-tail flips can stay below tolerance; require strong majority.
  EXPECT_GE(double(detected), 0.7 * double(faulty));
}

TEST(RobustPipelineTest, SolverRetriesAndRecovers) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  bool saw_recovery = false;
  for (std::uint64_t seed = 1; seed <= 8 && !saw_recovery; ++seed) {
    FaultPlan plan(FaultPlanConfig::single_site(
        seed, FaultSite::kAtomicDrop, 0.05));
    RunOptions options;
    options.fault_injector = &plan;
    options.recovery.enabled = true;
    const auto result = pipelines::solve(
        inst, params, pipelines::Backend::kSimFused, options);
    if (result.recovery.faults_detected == 0) continue;
    saw_recovery = true;
    EXPECT_FALSE(result.recovery.gave_up);
    EXPECT_GT(result.recovery.attempts, 1);
    EXPECT_LT(error_vs_oracle(result.v, inst, params), 1e-2);
  }
  EXPECT_TRUE(saw_recovery) << "no seed produced a detectable fault";
}

TEST(RobustPipelineTest, RecoveryForcesChecksOn) {
  const auto inst = instance_for(128, 128, 8);
  const auto params = core::params_from_spec(inst.spec);
  RunOptions options;
  options.recovery.enabled = true;  // checks left disabled on purpose
  const auto result = pipelines::solve(
      inst, params, pipelines::Backend::kSimFused, options);
  ASSERT_TRUE(result.report.has_value());
  EXPECT_TRUE(result.report->robustness.checks_enabled);
}

TEST(RobustPipelineTest, FaultCountersSurfaceInPipelineTotals) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  FaultPlan plan(FaultPlanConfig::single_site(
      /*seed=*/4, FaultSite::kSharedMemory, 1e-4));
  RunOptions options;
  options.fault_injector = &plan;
  const auto report = run_pipeline(Solution::kFused, inst, params, options);
  EXPECT_EQ(report.total.faults_smem_bitflips, plan.total_injected());
  EXPECT_GT(plan.total_injected(), 0u);
}

TEST(RobustPipelineTest, RejectsDegenerateInputs) {
  const auto inst = instance_for(128, 128, 8);
  core::KernelParams params = core::params_from_spec(inst.spec);
  params.bandwidth = 0.0f;
  EXPECT_THROW(run_pipeline(Solution::kFused, inst, params), ksum::Error);
  params.bandwidth = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(run_pipeline(Solution::kFused, inst, params), ksum::Error);
}

}  // namespace
}  // namespace ksum::robust
