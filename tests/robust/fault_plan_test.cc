#include "robust/fault_plan.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

namespace ksum::robust {
namespace {

using gpusim::AtomicFate;
using gpusim::FaultSite;

// Replays `n` corrupt_word opportunities of `site` and returns the outputs.
std::vector<float> replay(FaultPlan& plan, FaultSite site, int n) {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(plan.corrupt_word(site, 1.0f));
  }
  return out;
}

TEST(FaultPlanTest, SameSeedReplaysIdentically) {
  const auto config = FaultPlanConfig::uniform(/*seed=*/7, /*rate=*/0.01);
  FaultPlan a(config);
  FaultPlan b(config);
  EXPECT_EQ(replay(a, FaultSite::kSharedMemory, 4096),
            replay(b, FaultSite::kSharedMemory, 4096));
  for (int i = 0; i < 512; ++i) {
    EXPECT_EQ(static_cast<int>(a.atomic_fate()),
              static_cast<int>(b.atomic_fate()));
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(FaultPlanTest, BeginAttemptZeroReproducesConstructionState) {
  const auto config = FaultPlanConfig::uniform(9, 0.02);
  FaultPlan a(config);
  const auto first = replay(a, FaultSite::kGlobalMemory, 2048);
  a.begin_attempt(0);
  EXPECT_EQ(replay(a, FaultSite::kGlobalMemory, 2048), first);
}

TEST(FaultPlanTest, DifferentAttemptsDrawDifferentFaults) {
  const auto config = FaultPlanConfig::uniform(9, 0.02);
  FaultPlan a(config);
  const auto attempt0 = replay(a, FaultSite::kGlobalMemory, 4096);
  a.begin_attempt(1);
  EXPECT_NE(replay(a, FaultSite::kGlobalMemory, 4096), attempt0);
}

TEST(FaultPlanTest, SitesDrawIndependentStreams) {
  // Consuming opportunities on one site must not perturb another site's
  // sequence — the property that makes single-site campaigns composable.
  const auto config = FaultPlanConfig::uniform(11, 0.01);
  FaultPlan undisturbed(config);
  FaultPlan disturbed(config);
  (void)replay(disturbed, FaultSite::kTileLoad, 999);
  EXPECT_EQ(replay(undisturbed, FaultSite::kSharedMemory, 4096),
            replay(disturbed, FaultSite::kSharedMemory, 4096));
}

TEST(FaultPlanTest, SingleSiteOnlyFaultsThatSite) {
  FaultPlan plan(
      FaultPlanConfig::single_site(3, FaultSite::kSharedMemory, 0.05));
  for (int i = 0; i < 2048; ++i) {
    EXPECT_EQ(plan.corrupt_word(FaultSite::kGlobalMemory, 2.0f), 2.0f);
    EXPECT_EQ(plan.corrupt_word(FaultSite::kTileLoad, 2.0f), 2.0f);
    EXPECT_EQ(static_cast<int>(plan.atomic_fate()),
              static_cast<int>(AtomicFate::kApply));
    (void)plan.corrupt_word(FaultSite::kSharedMemory, 2.0f);
  }
  EXPECT_GT(plan.injected(FaultSite::kSharedMemory), 0u);
  EXPECT_EQ(plan.injected(FaultSite::kGlobalMemory), 0u);
  EXPECT_EQ(plan.injected(FaultSite::kTileLoad), 0u);
  EXPECT_EQ(plan.injected(FaultSite::kAtomicDrop), 0u);
  EXPECT_EQ(plan.injected(FaultSite::kAtomicDouble), 0u);
}

TEST(FaultPlanTest, CorruptionFlipsExactlyOneBit) {
  FaultPlan plan(FaultPlanConfig::uniform(17, 1.0));  // fault every word
  for (int i = 0; i < 64; ++i) {
    const float in = 3.25f;
    const float out = plan.corrupt_word(FaultSite::kGlobalMemory, in);
    const std::uint32_t diff =
        std::bit_cast<std::uint32_t>(in) ^ std::bit_cast<std::uint32_t>(out);
    EXPECT_EQ(std::popcount(diff), 1) << "word " << i;
  }
  EXPECT_EQ(plan.injected(FaultSite::kGlobalMemory), 64u);
  EXPECT_EQ(plan.opportunities(FaultSite::kGlobalMemory), 64u);
}

TEST(FaultPlanTest, RateZeroNeverInjects) {
  FaultPlan plan(/*seed=*/1, /*rate_all_sites=*/0.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(plan.corrupt_word(FaultSite::kSharedMemory, 1.5f), 1.5f);
    EXPECT_EQ(static_cast<int>(plan.atomic_fate()),
              static_cast<int>(AtomicFate::kApply));
  }
  EXPECT_EQ(plan.total_injected(), 0u);
}

TEST(FaultPlanTest, InjectionRateMatchesConfiguredProbability) {
  const double rate = 0.01;
  FaultPlan plan(FaultPlanConfig::single_site(
      23, FaultSite::kSharedMemory, rate));
  const int n = 200000;
  (void)replay(plan, FaultSite::kSharedMemory, n);
  const double observed =
      double(plan.injected(FaultSite::kSharedMemory)) / double(n);
  // 2000 expected hits; 5 sigma ≈ ±0.0011.
  EXPECT_NEAR(observed, rate, 1.2e-3);
}

}  // namespace
}  // namespace ksum::robust
