// The shard-level fault scenario from bench/fault_campaign.cc experiment 4
// as a deterministic regression: a request split over 4 shards with a
// faulty device behind exactly one of them must localize detection to that
// shard, re-dispatch only it, and merge to the unsharded bytes
// (docs/SHARDING.md §Faults). The exhaustive runner semantics live in
// tests/shard/shard_runner_test.cc; this pins the robustness-facing
// contract next to the other ABFT suites.
#include <cstring>

#include <gtest/gtest.h>

#include "pipelines/solver.h"
#include "robust/fault_plan.h"
#include "shard/types.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;
using pipelines::RunOptions;

TEST(ShardFaultTest, FaultInOneShardLocalizesAndRecovers) {
  workload::ProblemSpec spec;
  spec.m = 512;
  spec.n = 512;
  spec.k = 16;
  spec.seed = 2024;
  const workload::Instance instance = workload::make_instance(spec);
  const core::KernelParams params;
  const auto unsharded =
      pipelines::solve(instance, params, Backend::kSimFused);

  RunOptions options;
  options.shards.count = 4;
  options.shards.axis = shard::ShardAxis::kM;
  // Rate 0.5, not 1.0: dropping every atomicAdd would also zero the ABFT
  // checksum path and the (totally wrong) result would pass its own check.
  options.shards.injector_factory =
      [](std::size_t s, int d) -> std::shared_ptr<gpusim::FaultInjector> {
    if (s != 2 || d != 0) return nullptr;
    return std::make_shared<robust::FaultPlan>(
        robust::FaultPlanConfig::single_site(
            shard::shard_fault_seed(2024, s, d),
            gpusim::FaultSite::kAtomicDrop, 0.5));
  };
  options.recovery.enabled = true;
  options.recovery.max_retries = 0;  // exercise the cross-device re-dispatch
  options.recovery.fallback_to_unfused = false;
  const auto run =
      pipelines::solve(instance, params, Backend::kSimFused, options);

  ASSERT_TRUE(run.shards.has_value());
  for (const auto& slice : run.shards->slices) {
    if (slice.index == 2) {
      EXPECT_EQ(slice.dispatches, 2);
      EXPECT_GE(slice.recovery.faults_detected, 1);
      EXPECT_FALSE(slice.recovery.gave_up);
    } else {
      EXPECT_EQ(slice.dispatches, 1) << "shard " << slice.index;
      EXPECT_EQ(slice.recovery.faults_detected, 0) << "shard " << slice.index;
    }
  }
  EXPECT_FALSE(run.recovery.gave_up);
  ASSERT_EQ(run.v.size(), unsharded.v.size());
  EXPECT_EQ(std::memcmp(run.v.data(), unsharded.v.data(),
                        run.v.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace ksum
