// The autotuner's search space and pruning: the fixed candidate grid, the
// structural closure rules, the named resource budgets, and the analytic
// bank-conflict lint.
#include "tune/tile_search.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "config/device_spec.h"
#include "gpukernels/smem_layout.h"
#include "gpukernels/tile_geometry.h"

namespace ksum {
namespace {

using gpukernels::TileGeometry;
using gpukernels::TileLayout;

TEST(TileSearchTest, GridIsFixedAndDeterministic) {
  const auto grid = tune::enumerate_candidates();
  // blockX, blockY ∈ {8, 16, 32} × micro ∈ {4, 8} × tileK ∈ {4, 8, 16}.
  EXPECT_EQ(grid.size(), 54u);
  const auto again = tune::enumerate_candidates();
  ASSERT_EQ(again.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i], again[i]) << "enumeration order changed at " << i;
  }
  bool has_paper = false;
  for (const auto& g : grid) has_paper = has_paper || g.is_paper();
  EXPECT_TRUE(has_paper) << "the paper geometry must be in the grid";
}

TEST(TileSearchTest, PaperGeometryIsViableOnGtx970) {
  const auto verdict =
      tune::evaluate_candidate(config::DeviceSpec::gtx970(), TileGeometry{});
  EXPECT_TRUE(verdict.viable);
  EXPECT_TRUE(verdict.reasons.empty());
  EXPECT_EQ(verdict.regs_per_thread, 128);
  EXPECT_EQ(verdict.blocks_per_sm, 2);  // the paper's 2 CTAs/SM claim
  EXPECT_EQ(verdict.bank_conflicts, 0u);
}

TEST(TileSearchTest, ReasonsNameTheViolatedBudget) {
  // 32×32 threads at 8×8 microtiles: 1024 threads × 128 regs = 131072
  // registers — past the 65536-register file. (tileK = 16 keeps the
  // reduction-scratch closure rules satisfied so only budgets fire.)
  TileGeometry g;
  g.block_x = 32;
  g.block_y = 32;
  g.micro = 8;
  g.tile_m = g.block_y * g.micro;  // 256
  g.tile_n = g.block_x * g.micro;  // 256
  g.tile_k = 16;
  ASSERT_TRUE(g.structurally_valid());
  const auto verdict =
      tune::evaluate_candidate(config::DeviceSpec::gtx970(), g);
  EXPECT_FALSE(verdict.viable);
  ASSERT_FALSE(verdict.reasons.empty());
  bool names_registers = false;
  for (const auto& reason : verdict.reasons) {
    names_registers =
        names_registers || reason.find("register-file budget") != std::string::npos;
  }
  EXPECT_TRUE(names_registers)
      << "first reason: " << verdict.reasons.front();
}

TEST(TileSearchTest, StructurallyInvalidCandidatesCarryTheRuleText) {
  TileGeometry g;
  g.micro = 12;  // 12 does not divide the 128-row tile
  const auto verdict =
      tune::evaluate_candidate(config::DeviceSpec::gtx970(), g);
  EXPECT_FALSE(verdict.viable);
  ASSERT_FALSE(verdict.reasons.empty());
  EXPECT_EQ(verdict.reasons, g.structural_violations());
}

TEST(TileSearchTest, VerdictInvariantsHoldAcrossTheGrid) {
  const auto verdicts =
      tune::evaluate_candidates(config::DeviceSpec::gtx970());
  ASSERT_EQ(verdicts.size(), 54u);
  std::size_t viable = 0;
  for (const auto& v : verdicts) {
    EXPECT_EQ(v.viable, v.reasons.empty()) << v.geometry.to_string();
    if (v.viable) {
      ++viable;
      EXPECT_TRUE(v.geometry.structurally_valid());
      EXPECT_GT(v.blocks_per_sm, 0) << v.geometry.to_string();
      EXPECT_EQ(v.bank_conflicts, 0u)
          << "a viable Fig.-5 geometry must stage conflict-free: "
          << v.geometry.to_string();
    }
  }
  EXPECT_GE(viable, 10u);
  EXPECT_LT(viable, verdicts.size());  // pruning must reject something
}

TEST(TileSearchTest, StagingIsConflictFreeInBothLayouts) {
  // Both layouts scatter one warp's stores across 32 distinct banks
  // (smem_layout.h — the naive layout pays in compute *loads*, which the
  // simulator charges at run time, not in staging). The lint's job is to
  // prove this holds for every candidate the tuner is about to execute.
  const TileGeometry paper;
  EXPECT_EQ(tune::count_layout_conflicts(paper, TileLayout::kFig5), 0u);
  EXPECT_EQ(tune::count_layout_conflicts(paper, TileLayout::kNaive), 0u);
  EXPECT_THROW(tune::count_layout_conflicts(
                   [] {
                     TileGeometry g;
                     g.micro = 12;  // structurally invalid
                     return g;
                   }(),
                   TileLayout::kFig5),
               Error)
      << "the lint refuses geometries the kernels cannot execute";
}

}  // namespace
}  // namespace ksum
