// ksum-tune-v1 records and their executable schema: the grid and tune
// record assemblers must produce records their own validator accepts, and
// the validator must reject records whose winner or viability bookkeeping
// does not recompose from the measurements.
#include "tune/tune_json.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "config/device_spec.h"
#include "tune/tile_search.h"
#include "tune/tuner.h"

namespace ksum {
namespace {

const std::vector<tune::CandidateVerdict>& grid() {
  static const auto kGrid =
      tune::evaluate_candidates(config::DeviceSpec::gtx970());
  return kGrid;
}

const tune::TuneReport& report() {
  static const tune::TuneReport kReport = [] {
    tune::TuneRequest request;
    request.m = 256;
    request.n = 256;
    request.k = 8;
    tune::TuneOptions options;
    options.threads = 4;
    return tune::tune(request, options);
  }();
  return kReport;
}

TEST(TuneJsonTest, GridRecordValidates) {
  const auto record = tune::tune_grid_record("prune", grid());
  tune::validate_tune_json(record);  // must not throw
  EXPECT_EQ(record.at("schema").as_string(), "ksum-tune-v1");
  EXPECT_EQ(record.at("command").as_string(), "prune");
  EXPECT_EQ(record.at("candidates").size(), grid().size());
  EXPECT_THROW(tune::tune_grid_record("best", grid()), Error)
      << "the verdict form only serialises list/prune";
}

TEST(TuneJsonTest, TuneRecordValidates) {
  const auto record = tune::tune_record("best", {report()});
  tune::validate_tune_json(record);
  EXPECT_EQ(record.at("command").as_string(), "best");
  const auto& t = record.at("tunes").at(std::size_t{0});
  EXPECT_EQ(t.at("shape").at("m").as_double(), 256);
  EXPECT_EQ(t.at("best").at("geometry").as_string(),
            report().best.to_string());
  EXPECT_THROW(tune::tune_record("list", {report()}), Error);
}

TEST(TuneJsonTest, ValidatorRejectsViabilityLies) {
  // Flip one candidate's "viable" flag without touching its reasons: the
  // reasons-iff-not-viable invariant must catch it.
  auto record = tune::tune_grid_record("prune", grid());
  const std::string text = record.dump();
  std::size_t flipped = std::string::npos;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text.compare(i, 15, "\"viable\": false") == 0) {
      flipped = i;
      break;
    }
  }
  ASSERT_NE(flipped, std::string::npos);
  std::string tampered = text;
  tampered.replace(flipped, 15, "\"viable\": true ");
  EXPECT_THROW(tune::validate_tune_json(profile::Json::parse(tampered)),
               Error);
}

TEST(TuneJsonTest, ValidatorRejectsAWrongWinner) {
  // The winner-recomposition checks: a "best" whose modelled time or
  // geometry does not recompose from the record's own measurements is
  // rejected.
  {
    auto record = tune::tune_record("best", {report()});
    auto t0 = record.at("tunes").at(std::size_t{0});
    t0.set("best_scaled_seconds",
           profile::Json(t0.at("best_scaled_seconds").as_double() * 2.0));
    auto tunes = profile::Json::array();
    tunes.push_back(t0);
    record.set("tunes", tunes);
    EXPECT_THROW(tune::validate_tune_json(record), Error);
  }
  {
    // Point the best geometry at an executed loser.
    auto record = tune::tune_record("best", {report()});
    auto t0 = record.at("tunes").at(std::size_t{0});
    const std::string best = t0.at("best").at("geometry").as_string();
    const auto& candidates = t0.at("candidates");
    auto fake_best = t0.at("best");
    bool found = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto& c = candidates.at(i);
      if (!c.at("executed").as_bool() ||
          c.at("geometry").as_string() == best) {
        continue;
      }
      for (const char* field : {"geometry", "tile_m", "tile_n", "tile_k",
                                "block_x", "block_y", "micro"}) {
        fake_best.set(field, c.at(field));
      }
      found = true;
      break;
    }
    ASSERT_TRUE(found);
    t0.set("best", fake_best);
    auto tunes = profile::Json::array();
    tunes.push_back(t0);
    record.set("tunes", tunes);
    EXPECT_THROW(tune::validate_tune_json(record), Error);
  }
}

TEST(TuneJsonTest, ValidatorRejectsTheWrongSchemaTag) {
  auto record = tune::tune_grid_record("list", grid());
  record.set("schema", profile::Json("ksum-tune-v0"));
  EXPECT_THROW(tune::validate_tune_json(record), Error);
}

}  // namespace
}  // namespace ksum
