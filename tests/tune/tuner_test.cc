// The enumerate → prune → execute → score pass: winner selection, the
// re-modelled scoring invariants, and the error contract for requests the
// tuner cannot serve.
#include "tune/tuner.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "pipelines/solver.h"

namespace ksum {
namespace {

using pipelines::Backend;

// One tune, shared across the assertions below (each full pass simulates
// every surviving candidate, so run it once).
const tune::TuneReport& paper_shape_report() {
  static const tune::TuneReport report = [] {
    tune::TuneRequest request;
    request.m = 4096;
    request.n = 4096;
    request.k = 8;
    request.backend = Backend::kSimFused;
    tune::TuneOptions options;
    options.threads = 4;
    return tune::tune(request, options);
  }();
  return report;
}

TEST(TunerTest, SimulatedBackendsOnly) {
  EXPECT_TRUE(tune::is_simulated(Backend::kSimFused));
  EXPECT_TRUE(tune::is_simulated(Backend::kSimCudaUnfused));
  EXPECT_TRUE(tune::is_simulated(Backend::kSimCublasUnfused));
  EXPECT_FALSE(tune::is_simulated(Backend::kCpuDirect));
  EXPECT_FALSE(tune::is_simulated(Backend::kCpuExpansion));
}

TEST(TunerTest, RejectsHostBackendsAndEmptyShapes) {
  tune::TuneRequest request;
  request.m = 128;
  request.n = 128;
  request.k = 8;
  request.backend = Backend::kCpuDirect;
  EXPECT_THROW(tune::tune(request), Error);

  request.backend = Backend::kSimFused;
  request.m = 0;
  EXPECT_THROW(tune::tune(request), Error);
}

TEST(TunerTest, PaperShapeSelectsThePaperGeometry) {
  // The acceptance bar: at the paper's operating point (M=N=4096, K=8) the
  // tuner must rediscover the paper's 128×128/8×8 blocking.
  const auto& report = paper_shape_report();
  EXPECT_TRUE(report.best.is_paper()) << "picked " << report.best.to_string();
  EXPECT_GT(report.best_scaled_seconds, 0.0);
  EXPECT_GT(report.best_proxy_seconds, 0.0);
}

TEST(TunerTest, ExactlyTheViableCandidatesExecute) {
  const auto& report = paper_shape_report();
  ASSERT_EQ(report.measurements.size(), 54u);  // full enumeration order
  for (const auto& m : report.measurements) {
    EXPECT_EQ(m.executed, m.verdict.viable) << m.verdict.geometry.to_string();
    if (m.executed) {
      EXPECT_GT(m.proxy_seconds, 0.0);
      EXPECT_GT(m.proxy_energy_j, 0.0);
      EXPECT_GT(m.scaled_seconds, 0.0);
      // Every survivor's proxy run is checked against the host oracle —
      // a geometry that computes the wrong V must never win on speed.
      EXPECT_LT(m.oracle_rel_error, 5e-3) << m.verdict.geometry.to_string();
    } else {
      EXPECT_EQ(m.proxy_seconds, 0.0);
      EXPECT_EQ(m.scaled_seconds, 0.0);
    }
  }
}

TEST(TunerTest, WinnerHasTheMinimumScaledSeconds) {
  const auto& report = paper_shape_report();
  double best = 0;
  bool found = false;
  for (const auto& m : report.measurements) {
    if (!m.executed) continue;
    if (!found || m.scaled_seconds < best) best = m.scaled_seconds;
    found = true;
    if (m.verdict.geometry == report.best) {
      EXPECT_DOUBLE_EQ(m.scaled_seconds, report.best_scaled_seconds);
      EXPECT_DOUBLE_EQ(m.proxy_seconds, report.best_proxy_seconds);
    }
  }
  ASSERT_TRUE(found);
  EXPECT_DOUBLE_EQ(report.best_scaled_seconds, best);
}

TEST(TunerTest, DeepKTilesWinTheLongAccumulation) {
  // At K=250 the loop-overhead instructions the simulator actually counts
  // favour 16-deep k-tiles; the winner must at least match the paper's
  // modelled time (strictly better on this grid).
  tune::TuneRequest request;
  request.m = 4096;
  request.n = 4096;
  request.k = 250;
  request.backend = Backend::kSimFused;
  tune::TuneOptions options;
  options.threads = 4;
  const auto report = tune::tune(request, options);
  double paper_seconds = 0;
  for (const auto& m : report.measurements) {
    if (m.executed && m.verdict.geometry.is_paper()) {
      paper_seconds = m.scaled_seconds;
    }
  }
  ASSERT_GT(paper_seconds, 0.0);
  EXPECT_LE(report.best_scaled_seconds, paper_seconds);
  EXPECT_EQ(report.best.tile_k, 16) << report.best.to_string();
}

}  // namespace
}  // namespace ksum
