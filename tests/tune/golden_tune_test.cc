// Golden snapshots of the autotuner's serialised records: the vetted
// candidate grid (`ksum-tune prune --json`), a full tune record
// (`ksum-tune best --json`), and the ksum-tune-cache-v1 cache file. The
// tuner is a pure function of (shape, backend, options) and the records
// carry no clocks or host state, so any byte diff is a real behaviour
// change — a new candidate, a different winner, a drifted model.
//
// To regenerate after an intentional change:
//   KSUM_UPDATE_GOLDEN=1 ./tests/tune_tests --gtest_filter='GoldenTuneTest.*'
// and commit the rewritten files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "config/device_spec.h"
#include "pipelines/solver.h"
#include "tune/tile_search.h"
#include "tune/tune_json.h"
#include "tune/tuning_cache.h"

#ifndef KSUM_GOLDEN_DIR
#error "KSUM_GOLDEN_DIR must be defined by the build"
#endif

namespace ksum {
namespace {

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path =
      std::string(KSUM_GOLDEN_DIR) + "/" + name + ".json";
  const char* update = std::getenv("KSUM_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with KSUM_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << name << " drifted from its golden snapshot; if the change is "
      << "intentional, regenerate with KSUM_UPDATE_GOLDEN=1";
}

tune::TuneOptions options() {
  tune::TuneOptions o;
  o.threads = 4;  // the records must not depend on this
  return o;
}

TEST(GoldenTuneTest, PruneGridJson) {
  const auto grid = tune::evaluate_candidates(config::DeviceSpec::gtx970());
  check_golden("tune_prune_grid",
               tune::tune_grid_record("prune", grid).dump());
}

TEST(GoldenTuneTest, BestRecordJson) {
  tune::TuneRequest request;
  request.m = 256;
  request.n = 256;
  request.k = 8;
  request.backend = pipelines::Backend::kSimFused;
  const auto report = tune::tune(request, options());
  check_golden("tune_best_record",
               tune::tune_record("best", {report}).dump());
}

TEST(GoldenTuneTest, CacheFileJson) {
  tune::TuningCache cache;
  cache.get_or_tune(256, 256, 8, pipelines::Backend::kSimFused, options());
  cache.get_or_tune(200, 200, 16, pipelines::Backend::kSimFused, options());
  check_golden("tune_cache", cache.to_json().dump());
}

}  // namespace
}  // namespace ksum
