// The tuner's memoization layer: lookup semantics, the resolver contract
// the solver consults, and the ksum-tune-cache-v1 determinism contract
// (sorted serialisation, validating loads, file round-trip).
#include "tune/tuning_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.h"
#include "gpukernels/tile_geometry.h"
#include "pipelines/solver.h"

namespace ksum {
namespace {

using gpukernels::TileGeometry;
using pipelines::Backend;
using pipelines::Solution;

TileGeometry small_square() {
  TileGeometry g;
  g.tile_m = 32;
  g.tile_n = 32;
  g.tile_k = 8;
  g.block_x = 8;
  g.block_y = 8;
  g.micro = 4;
  return g;
}

tune::TuningCache::Entry entry_of(const TileGeometry& g, double scaled,
                                  double proxy) {
  tune::TuningCache::Entry e;
  e.geometry = g;
  e.scaled_seconds = scaled;
  e.proxy_seconds = proxy;
  return e;
}

TEST(TuningCacheTest, SolutionOfMapsTheSimulatedBackends) {
  EXPECT_EQ(tune::solution_of(Backend::kSimFused), Solution::kFused);
  EXPECT_EQ(tune::solution_of(Backend::kSimCudaUnfused),
            Solution::kCudaUnfused);
  EXPECT_EQ(tune::solution_of(Backend::kSimCublasUnfused),
            Solution::kCublasUnfused);
  EXPECT_THROW(tune::solution_of(Backend::kCpuDirect), Error);
  EXPECT_THROW(tune::solution_of(Backend::kCpuExpansion), Error);
}

TEST(TuningCacheTest, InsertFindResolve) {
  tune::TuningCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(64, 64, 8, Solution::kFused).has_value());
  EXPECT_FALSE(cache.resolve(64, 64, 8, Solution::kFused).has_value());

  cache.insert(64, 64, 8, Solution::kFused,
               entry_of(small_square(), 1e-3, 2e-3));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.find(64, 64, 8, Solution::kFused);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->geometry, small_square());
  EXPECT_DOUBLE_EQ(hit->scaled_seconds, 1e-3);

  const auto resolved = cache.resolve(64, 64, 8, Solution::kFused);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, small_square());

  // The key is (m, n, k, solution) — the same shape under another pipeline
  // is a distinct entry.
  EXPECT_FALSE(cache.find(64, 64, 8, Solution::kCudaUnfused).has_value());
  cache.insert(64, 64, 8, Solution::kCudaUnfused,
               entry_of(TileGeometry{}, 3e-3, 4e-3));
  EXPECT_EQ(cache.size(), 2u);

  // Replacing a key keeps the size and updates the value.
  cache.insert(64, 64, 8, Solution::kFused,
               entry_of(TileGeometry{}, 5e-3, 6e-3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.find(64, 64, 8, Solution::kFused)->geometry.is_paper());
}

TEST(TuningCacheTest, ProfileIsPartOfTheKey) {
  // Regression for the multi-architecture cache: the same (m, n, k,
  // solution) tuned under two profiles must be two distinct entries, and
  // the resolver must only ever serve the active profile's winner — a
  // geometry tuned for gtx970's 13 SMs must never reach a 128-SM part.
  tune::TuningCache cache;
  EXPECT_EQ(cache.profile(), "gtx970");

  TileGeometry wide;
  wide.tile_m = 64;
  wide.tile_n = 128;
  wide.tile_k = 8;
  wide.block_x = 16;
  wide.block_y = 8;
  wide.micro = 8;

  cache.insert(64, 64, 8, Solution::kFused,
               entry_of(small_square(), 1e-3, 2e-3));  // default = gtx970
  cache.insert(64, 64, 8, Solution::kFused, entry_of(wide, 3e-3, 4e-3),
               "titanx-maxwell");
  EXPECT_EQ(cache.size(), 2u);

  const auto gtx = cache.find(64, 64, 8, Solution::kFused);
  const auto titanx = cache.find(64, 64, 8, Solution::kFused,
                                 "titanx-maxwell");
  ASSERT_TRUE(gtx.has_value());
  ASSERT_TRUE(titanx.has_value());
  EXPECT_EQ(gtx->geometry, small_square());
  EXPECT_EQ(titanx->geometry, wide);
  EXPECT_FALSE(cache.find(64, 64, 8, Solution::kFused, "modern")
                   .has_value());

  // The TileGeometryResolver interface carries no profile of its own; it
  // resolves against the cache's active profile.
  EXPECT_EQ(*cache.resolve(64, 64, 8, Solution::kFused), small_square());
  cache.set_profile("titanx-maxwell");
  EXPECT_EQ(cache.profile(), "titanx-maxwell");
  EXPECT_EQ(*cache.resolve(64, 64, 8, Solution::kFused), wide);
  cache.set_profile("modern");
  EXPECT_FALSE(cache.resolve(64, 64, 8, Solution::kFused).has_value());

  // The profile survives serialisation: both entries round-trip and stay
  // distinct.
  const auto record = cache.to_json();
  tune::validate_tune_cache_json(record);
  tune::TuningCache loaded;
  loaded.load_json(record);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.to_json().dump(), record.dump());
  EXPECT_EQ(loaded.find(64, 64, 8, Solution::kFused, "titanx-maxwell")
                ->geometry,
            wide);
}

TEST(TuningCacheTest, SerialisationIsSortedAndRoundTrips) {
  tune::TuningCache cache;
  // Insert in descending key order; the record must come out ascending.
  cache.insert(512, 512, 16, Solution::kFused,
               entry_of(TileGeometry{}, 2e-3, 2e-3));
  cache.insert(128, 256, 8, Solution::kCublasUnfused,
               entry_of(TileGeometry{}, 1e-3, 1e-3));
  cache.insert(128, 128, 8, Solution::kFused,
               entry_of(small_square(), 5e-4, 5e-4));

  const auto record = cache.to_json();
  tune::validate_tune_cache_json(record);
  EXPECT_EQ(record.at("schema").as_string(), "ksum-tune-cache-v1");
  const auto& entries = record.at("entries");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.at(std::size_t{0}).at("m").as_double(), 128);
  EXPECT_EQ(entries.at(std::size_t{0}).at("n").as_double(), 128);
  EXPECT_EQ(entries.at(std::size_t{2}).at("m").as_double(), 512);

  tune::TuningCache loaded;
  loaded.load_json(record);
  EXPECT_EQ(loaded.size(), cache.size());
  EXPECT_EQ(loaded.to_json().dump(), record.dump())
      << "load → dump must be byte-identical";
  EXPECT_EQ(*loaded.resolve(128, 128, 8, Solution::kFused), small_square());
}

TEST(TuningCacheTest, FileRoundTrip) {
  tune::TuningCache cache;
  cache.insert(200, 200, 8, Solution::kFused,
               entry_of(small_square(), 1e-3, 2e-3));
  const std::string path =
      testing::TempDir() + "/ksum_tuning_cache_test.json";
  cache.save(path);

  tune::TuningCache loaded;
  loaded.load(path);
  EXPECT_EQ(loaded.to_json().dump(), cache.to_json().dump());
  std::remove(path.c_str());

  EXPECT_THROW(loaded.load("/no/such/dir/cache.json"), Error);
}

TEST(TuningCacheTest, ValidatorRejectsBrokenRecords) {
  tune::TuningCache cache;
  cache.insert(128, 128, 8, Solution::kFused,
               entry_of(TileGeometry{}, 1e-3, 1e-3));
  cache.insert(256, 128, 8, Solution::kFused,
               entry_of(TileGeometry{}, 1e-3, 1e-3));
  const auto good = cache.to_json();
  const std::string text = good.dump();

  {
    auto bad = profile::Json::parse(text);
    bad.set("schema", profile::Json("ksum-tune-cache-v2"));
    EXPECT_THROW(tune::validate_tune_cache_json(bad), Error);
  }
  {
    // Swap the two entries: ordering violation.
    auto bad = profile::Json::object();
    bad.set("schema", profile::Json("ksum-tune-cache-v1"));
    auto entries = profile::Json::array();
    entries.push_back(good.at("entries").at(std::size_t{1}));
    entries.push_back(good.at("entries").at(std::size_t{0}));
    bad.set("entries", entries);
    EXPECT_THROW(tune::validate_tune_cache_json(bad), Error);
  }
  {
    // Duplicate key.
    auto bad = profile::Json::object();
    bad.set("schema", profile::Json("ksum-tune-cache-v1"));
    auto entries = profile::Json::array();
    entries.push_back(good.at("entries").at(std::size_t{0}));
    entries.push_back(good.at("entries").at(std::size_t{0}));
    bad.set("entries", entries);
    EXPECT_THROW(tune::validate_tune_cache_json(bad), Error);
  }
  {
    // Structurally invalid geometry (micro does not divide the tile).
    auto bad = profile::Json::parse(text);
    // Rebuild with a corrupted first entry.
    auto entries = profile::Json::array();
    auto first = bad.at("entries").at(std::size_t{0});
    first.set("micro", profile::Json(12.0));
    entries.push_back(first);
    auto outer = profile::Json::object();
    outer.set("schema", profile::Json("ksum-tune-cache-v1"));
    outer.set("entries", entries);
    EXPECT_THROW(tune::validate_tune_cache_json(outer), Error);
  }
}

}  // namespace
}  // namespace ksum
