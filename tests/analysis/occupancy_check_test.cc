// Negative case for the occupancy / register-budget checker: an oversized
// microtile must be rejected against the architectural register cap, a
// declared budget below the model estimate must be flagged as a silent
// spill, and the paper's actual configuration must pass at 2 CTAs/SM.
#include "analysis/occupancy_check.h"

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "config/device_spec.h"
#include "gpukernels/tile_geometry.h"
#include "gpusim/device.h"

namespace ksum::analysis {
namespace {

TEST(OccupancyCheckTest, OversizedMicrotileBreaksTheRegisterBudget) {
  const auto spec = config::DeviceSpec::gtx970();
  TileResourceModel model;
  model.micro = 16;  // 256 accumulators + 32 operands + 16 bookkeeping
  ASSERT_EQ(model.estimated_regs(), 304);

  const Diagnostics findings = check_tile_resources(
      spec, gpukernels::gemm_launch_config(false), model, "gemm_16x16");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  const std::string text = findings[0].to_string();
  EXPECT_NE(text.find("gemm_16x16"), std::string::npos) << text;
  EXPECT_NE(text.find("304 registers per thread"), std::string::npos)
      << text;
  EXPECT_NE(text.find("255-register architectural cap"), std::string::npos)
      << text;
}

TEST(OccupancyCheckTest, DeclaringFewerRegistersThanTheModelIsASilentSpill) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::LaunchConfig cfg = gpukernels::gemm_launch_config(false);
  cfg.regs_per_thread = 64;  // below the 8×8 model's 96-register estimate

  const Diagnostics findings =
      check_tile_resources(spec, cfg, TileResourceModel{}, "gemm_spilling");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("silently spill"), std::string::npos)
      << findings[0].message;
}

TEST(OccupancyCheckTest, PaperConfigurationPassesAtTwoCtasPerSm) {
  const auto spec = config::DeviceSpec::gtx970();
  for (const bool fused : {false, true}) {
    const auto cfg = gpukernels::gemm_launch_config(fused);
    EXPECT_TRUE(check_tile_resources(spec, cfg, TileResourceModel{},
                                     fused ? "fused_ksum" : "gemm_cudac")
                    .empty());
    EXPECT_EQ(gpusim::compute_occupancy(spec, cfg).blocks_per_sm, 2);
  }
}

TEST(OccupancyCheckTest, TileFamilyLaunchBelowTwoCtasIsReported) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  // An over-provisioned fused_ksum: 160 registers per thread only fits one
  // 256-thread CTA in the 64K register file.
  gpusim::LaunchConfig cfg = gpukernels::gemm_launch_config(true);
  cfg.regs_per_thread = 160;
  device.launch("fused_ksum", {1, 1}, {16, 16}, cfg,
                [](gpusim::BlockContext&) {});

  bool saw = false;
  for (const auto& d : session.occupancy().diagnostics()) {
    if (d.severity == Severity::kError) {
      saw = true;
      EXPECT_NE(d.message.find("exactly 2 CTAs/SM"), std::string::npos)
          << d.message;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(OccupancyCheckTest, FusedKnnMayTradeRegistersWithinTheEnvelope) {
  EXPECT_TRUE(is_tile_family("fused_knn"));
  EXPECT_FALSE(expects_exact_two_ctas("fused_knn"));
  EXPECT_TRUE(expects_exact_two_ctas("fused_ksum"));
  EXPECT_TRUE(expects_exact_two_ctas("gemm_cudac"));
  EXPECT_FALSE(is_tile_family("norms_a"));
}

}  // namespace
}  // namespace ksum::analysis
