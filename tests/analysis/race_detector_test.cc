// Negative and positive cases for the barrier-epoch race detector: each
// racy tile program must produce exactly the expected diagnostic, and the
// same program with correct synchronisation must produce none.
#include "analysis/race_detector.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.h"
#include "config/device_spec.h"
#include "gpusim/access_site.h"
#include "gpusim/device.h"

namespace ksum::analysis {
namespace {

gpusim::LaunchConfig test_config(int threads) {
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = threads;
  cfg.regs_per_thread = 32;
  cfg.smem_bytes_per_block = 4096;
  return cfg;
}

gpusim::SharedWarpAccess warp_rows(int warp, gpusim::SiteId site) {
  gpusim::SharedWarpAccess access;
  access.site = site;
  access.warp = warp;
  for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
    access.set_lane(lane, static_cast<gpusim::SharedAddr>(lane * 4));
  }
  return access;
}

Diagnostics race_errors(const Diagnostics& all) {
  Diagnostics out;
  for (const auto& d : all) {
    if (d.analyzer == "race" && d.severity == Severity::kError) {
      out.push_back(d);
    }
  }
  return out;
}

TEST(RaceDetectorTest, CrossWarpStoreThenLoadWithoutBarrierIsReported) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  device.launch("racy_smem", {1, 1}, {64, 1}, test_config(64),
                [](gpusim::BlockContext& ctx) {
                  const auto store = warp_rows(
                      0, KSUM_ACCESS_SITE("racy producer store"));
                  std::array<float, 32> ones{};
                  ones.fill(1.0f);
                  ctx.smem().store_warp(store, ones);
                  // Warp 1 reads the words warp 0 just wrote — no barrier.
                  const auto load =
                      warp_rows(1, KSUM_ACCESS_SITE("racy consumer load"));
                  (void)ctx.smem().load_warp(load);
                });

  const Diagnostics errors = race_errors(session.finish());
  ASSERT_EQ(errors.size(), 1u);
  const std::string text = errors[0].to_string();
  EXPECT_NE(text.find("intra-CTA load/store hazard on shared"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("racy consumer load"), std::string::npos) << text;
  EXPECT_NE(text.find("racy producer store"), std::string::npos) << text;
  EXPECT_NE(text.find("barrier epoch 0"), std::string::npos) << text;
}

TEST(RaceDetectorTest, BarrierBetweenStoreAndLoadClearsTheHazard) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  device.launch("synced_smem", {1, 1}, {64, 1}, test_config(64),
                [](gpusim::BlockContext& ctx) {
                  const auto store = warp_rows(
                      0, KSUM_ACCESS_SITE("synced producer store"));
                  std::array<float, 32> ones{};
                  ones.fill(1.0f);
                  ctx.smem().store_warp(store, ones);
                  ctx.barrier();
                  const auto load = warp_rows(
                      1, KSUM_ACCESS_SITE("synced consumer load"));
                  (void)ctx.smem().load_warp(load);
                });

  EXPECT_TRUE(race_errors(session.finish()).empty());
}

TEST(RaceDetectorTest, CrossWarpWriteWriteIsReported) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  device.launch("waw_smem", {1, 1}, {64, 1}, test_config(64),
                [](gpusim::BlockContext& ctx) {
                  std::array<float, 32> ones{};
                  ones.fill(1.0f);
                  ctx.smem().store_warp(
                      warp_rows(0, KSUM_ACCESS_SITE("waw first store")),
                      ones);
                  ctx.smem().store_warp(
                      warp_rows(1, KSUM_ACCESS_SITE("waw second store")),
                      ones);
                });

  const Diagnostics errors = race_errors(session.finish());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(
      errors[0].to_string().find("intra-CTA write-write hazard on shared"),
      std::string::npos)
      << errors[0].to_string();
}

TEST(RaceDetectorTest, InterCtaNonAtomicGlobalWriteWriteIsReported) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  const auto buffer = device.memory().allocate(4096, "shared_output");
  AnalysisSession session(device, spec);

  device.launch("inter_cta_ww", {2, 1}, {32, 1}, test_config(32),
                [&](gpusim::BlockContext& ctx) {
                  gpusim::GlobalWarpAccess access;
                  access.site =
                      KSUM_ACCESS_SITE("inter-CTA colliding store");
                  access.active_mask = 1;  // one lane, same word in each CTA
                  access.set_lane(0, buffer.addr_of_float(0));
                  std::array<float, 32> values{};
                  values[0] = static_cast<float>(ctx.bx());
                  ctx.global_store(access, values);
                });

  const Diagnostics errors = race_errors(session.finish());
  ASSERT_EQ(errors.size(), 1u);
  const std::string text = errors[0].to_string();
  EXPECT_NE(text.find("inter-CTA write-write hazard on global"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("inter-CTA colliding store"), std::string::npos)
      << text;
}

TEST(RaceDetectorTest, AtomicAccumulationAcrossCtasIsExempt) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  const auto buffer = device.memory().allocate(4096, "atomic_output");
  device.memory().fill(buffer, 0.0f);
  AnalysisSession session(device, spec);

  device.launch("inter_cta_atomic", {2, 1}, {32, 1}, test_config(32),
                [&](gpusim::BlockContext& ctx) {
                  gpusim::GlobalWarpAccess access;
                  access.site = KSUM_ACCESS_SITE("atomic accumulate");
                  access.active_mask = 1;
                  access.set_lane(0, buffer.addr_of_float(0));
                  std::array<float, 32> values{};
                  values[0] = 1.0f;
                  ctx.global_atomic_add(access, values);
                });

  EXPECT_TRUE(race_errors(session.finish()).empty());
}

TEST(RaceDetectorTest, AnnotatedSiteDowngradesToSuppressedInfo) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  device.launch(
      "benign_smem", {1, 1}, {64, 1}, test_config(64),
      [](gpusim::BlockContext& ctx) {
        std::array<float, 32> ones{};
        ones.fill(1.0f);
        ctx.smem().store_warp(
            warp_rows(0, KSUM_ACCESS_SITE_ANNOTATED(
                             "reviewed benign store",
                             ::ksum::gpusim::kSiteAllowRace,
                             "idempotent flag write; all threads store the "
                             "same value")),
            ones);
        ctx.smem().store_warp(
            warp_rows(1, KSUM_ACCESS_SITE("second benign store")), ones);
      });

  const Diagnostics all = session.finish();
  EXPECT_TRUE(race_errors(all).empty());
  bool saw_suppressed = false;
  for (const auto& d : all) {
    if (d.analyzer == "race" && d.severity == Severity::kInfo) {
      saw_suppressed = true;
      EXPECT_NE(d.message.find("suppressed: idempotent flag write"),
                std::string::npos)
          << d.message;
    }
  }
  EXPECT_TRUE(saw_suppressed);
}

}  // namespace
}  // namespace ksum::analysis
