// Negative case for the coalescing lint: a strided global load that leaves
// touched sectors mostly unused must be an error with the exact efficiency;
// unit-stride loads and sector-filling sweeps must pass.
#include "analysis/coalescing_lint.h"

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "config/device_spec.h"
#include "gpusim/access_site.h"
#include "gpusim/device.h"

namespace ksum::analysis {
namespace {

gpusim::LaunchConfig test_config() {
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 32;
  cfg.smem_bytes_per_block = 0;
  return cfg;
}

gpusim::GlobalWarpAccess strided_access(const gpusim::DeviceBuffer& buffer,
                                        std::size_t stride_floats,
                                        std::size_t offset_floats,
                                        gpusim::SiteId site) {
  gpusim::GlobalWarpAccess access;
  access.site = site;
  for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
    access.set_lane(lane, buffer.addr_of_float(
                              offset_floats +
                              static_cast<std::size_t>(lane) * stride_floats));
  }
  return access;
}

TEST(CoalescingLintTest, StridedLoadIsAnError) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  const auto buffer = device.memory().allocate(32 * 128, "strided_input");
  device.memory().fill(buffer, 1.0f);
  AnalysisSession session(device, spec);

  device.launch("strided_reader", {1, 1}, {32, 1}, test_config(),
                [&](gpusim::BlockContext& ctx) {
                  // One float per lane, 128 bytes apart: every request pulls
                  // 32 sectors to use 4 bytes of each.
                  (void)ctx.global_load(strided_access(
                      buffer, 32, 0, KSUM_ACCESS_SITE("strided row load")));
                });

  const Diagnostics findings = session.coalescing().diagnostics();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  const std::string text = findings[0].to_string();
  EXPECT_NE(text.find("sector efficiency 0.125"), std::string::npos) << text;
  EXPECT_NE(text.find("strided row load"), std::string::npos) << text;
  EXPECT_NE(text.find("128 distinct bytes spread over 32 32-byte sectors"),
            std::string::npos)
      << text;
}

TEST(CoalescingLintTest, UnitStrideLoadIsClean) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  const auto buffer = device.memory().allocate(4096, "dense_input");
  device.memory().fill(buffer, 1.0f);
  AnalysisSession session(device, spec);

  device.launch("dense_reader", {1, 1}, {32, 1}, test_config(),
                [&](gpusim::BlockContext& ctx) {
                  (void)ctx.global_load(strided_access(
                      buffer, 1, 0, KSUM_ACCESS_SITE("dense row load")));
                });

  EXPECT_TRUE(session.coalescing().diagnostics().empty());
}

TEST(CoalescingLintTest, SweepThatFillsSectorsIsReplayInfoNotError) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  const auto buffer = device.memory().allocate(4096, "swept_input");
  device.memory().fill(buffer, 1.0f);
  AnalysisSession session(device, spec);

  device.launch(
      "sweeping_reader", {1, 1}, {32, 1}, test_config(),
      [&](gpusim::BlockContext& ctx) {
        // Each request reads every other word (half of each sector); the
        // two-phase sweep consumes the touched sectors completely, like the
        // staged partial-V gather in the fused kernel.
        const gpusim::SiteId site = KSUM_ACCESS_SITE("two-phase sweep load");
        (void)ctx.global_load(strided_access(buffer, 2, 0, site));
        (void)ctx.global_load(strided_access(buffer, 2, 1, site));
      });

  const Diagnostics findings = session.coalescing().diagnostics();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_NE(findings[0].message.find("replay factor 2.000"),
            std::string::npos)
      << findings[0].message;
}

TEST(CoalescingLintTest, AnnotatedStridedLoadIsSuppressedToInfo) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  const auto buffer = device.memory().allocate(32 * 128, "annotated_input");
  device.memory().fill(buffer, 1.0f);
  AnalysisSession session(device, spec);

  device.launch(
      "annotated_reader", {1, 1}, {32, 1}, test_config(),
      [&](gpusim::BlockContext& ctx) {
        (void)ctx.global_load(strided_access(
            buffer, 32, 0,
            KSUM_ACCESS_SITE_ANNOTATED(
                "reviewed strided load",
                ::ksum::gpusim::kSiteAllowUncoalesced,
                "one scalar per row by construction")));
      });

  const Diagnostics findings = session.coalescing().diagnostics();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_NE(
      findings[0].message.find("suppressed: one scalar per row"),
      std::string::npos)
      << findings[0].message;
}

TEST(CoalescingLintTest, ImperfectStoreIsInfoOnly) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  const auto buffer = device.memory().allocate(32 * 128, "store_output");
  AnalysisSession session(device, spec);

  device.launch("strided_writer", {1, 1}, {32, 1}, test_config(),
                [&](gpusim::BlockContext& ctx) {
                  std::array<float, 32> values{};
                  ctx.global_store(
                      strided_access(buffer, 32, 0,
                                     KSUM_ACCESS_SITE("strided row store")),
                      values);
                });

  const Diagnostics findings = session.coalescing().diagnostics();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
}

}  // namespace
}  // namespace ksum::analysis
