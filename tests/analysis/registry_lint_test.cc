// The shipped kernels must lint clean: every registered program runs under
// the full analysis session with zero errors and zero warnings — no
// barrier-epoch hazards, no unannotated bank conflicts with the Fig-5
// layout, full coalescing on the gated load sites, and the paper's
// occupancy operating point. The naive-layout ablation is the control that
// proves the lint actually fires on the same kernels.
#include "analysis/program_registry.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.h"
#include "config/device_spec.h"
#include "gpusim/access_site.h"
#include "gpusim/device.h"

namespace ksum::analysis {
namespace {

Diagnostics lint(const RegisteredProgram& program,
                 const ProgramOptions& options) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, registry_device_bytes());
  AnalysisSession session(device, spec);
  program.run(device, options);
  return session.finish();
}

TEST(RegistryLintTest, EveryRegisteredProgramIsCleanWithTheFig5Layout) {
  ASSERT_GE(registered_programs().size(), 12u);
  for (const auto& program : registered_programs()) {
    const Diagnostics findings = lint(program, ProgramOptions{});
    for (const auto& d : findings) {
      EXPECT_NE(d.severity, Severity::kError)
          << program.name << ": " << d.to_string();
      EXPECT_NE(d.severity, Severity::kWarning)
          << program.name << ": " << d.to_string();
    }
  }
}

TEST(RegistryLintTest, NaiveLayoutTripsTheBankConflictLint) {
  const auto* program = find_program("gemm_cudac");
  ASSERT_NE(program, nullptr);
  ProgramOptions options;
  options.layout = gpukernels::TileLayout::kNaive;

  const Diagnostics findings = lint(*program, options);
  bool saw_mainloop_conflict = false;
  auto& registry = gpusim::SiteRegistry::instance();
  for (const auto& d : findings) {
    if (d.analyzer == "bank-conflict" && d.severity == Severity::kError) {
      const std::string label = registry.site(d.site).label;
      EXPECT_NE(label.find("mainloop"), std::string::npos) << label;
      saw_mainloop_conflict = true;
    }
  }
  EXPECT_TRUE(saw_mainloop_conflict);
}

TEST(RegistryLintTest, FindProgramIsExactAndReportsUnknown) {
  EXPECT_NE(find_program("fused_ksum"), nullptr);
  EXPECT_EQ(find_program("fused"), nullptr);
  EXPECT_EQ(find_program(""), nullptr);
}

}  // namespace
}  // namespace ksum::analysis
