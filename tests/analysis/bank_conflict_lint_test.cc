// Negative case for the bank-conflict lint: a column-major shared-memory
// walk serialises into 32 row transactions per request and must be reported
// with its exact degree; the row-major layout of the same data is clean.
#include "analysis/bank_conflict_lint.h"

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "config/device_spec.h"
#include "gpusim/access_site.h"
#include "gpusim/device.h"

namespace ksum::analysis {
namespace {

gpusim::LaunchConfig test_config() {
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 32;
  cfg.smem_bytes_per_block = 16 * 1024;
  return cfg;
}

TEST(BankConflictLintTest, ColumnMajorStoreReportsDegree32) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  device.launch("column_major_stage", {1, 1}, {32, 1}, test_config(),
                [](gpusim::BlockContext& ctx) {
                  // Column-major staging of a 32×32 float tile: lane L
                  // stores column element (L, 0), i.e. byte L·128 — every
                  // lane in a different 128-byte row.
                  gpusim::SharedWarpAccess access;
                  access.site =
                      KSUM_ACCESS_SITE("column-major tile stage store");
                  for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
                    access.set_lane(
                        lane, static_cast<gpusim::SharedAddr>(lane * 128));
                  }
                  std::array<float, 32> values{};
                  ctx.smem().store_warp(access, values);
                });

  const auto& stats = session.bank_conflicts().stats();
  ASSERT_EQ(stats.size(), 1u);
  const BankSiteStats& s = stats.begin()->second;
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.worst_transactions, 32);
  EXPECT_EQ(s.transactions, 32u);
  EXPECT_EQ(s.ideal_transactions, 1u);

  const Diagnostics findings = session.bank_conflicts().diagnostics();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  const std::string text = findings[0].to_string();
  EXPECT_NE(text.find("degree-32 bank conflict"), std::string::npos) << text;
  EXPECT_NE(text.find("column-major tile stage store"), std::string::npos)
      << text;
  EXPECT_NE(text.find("1 requests cost 32 transactions (minimum 1)"),
            std::string::npos)
      << text;
}

TEST(BankConflictLintTest, RowMajorStoreIsConflictFree) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  device.launch("row_major_stage", {1, 1}, {32, 1}, test_config(),
                [](gpusim::BlockContext& ctx) {
                  gpusim::SharedWarpAccess access;
                  access.site =
                      KSUM_ACCESS_SITE("row-major tile stage store");
                  for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
                    access.set_lane(
                        lane, static_cast<gpusim::SharedAddr>(lane * 4));
                  }
                  std::array<float, 32> values{};
                  ctx.smem().store_warp(access, values);
                });

  EXPECT_TRUE(session.bank_conflicts().diagnostics().empty());
}

TEST(BankConflictLintTest, AnnotatedConflictIsSuppressedToInfo) {
  const auto spec = config::DeviceSpec::gtx970();
  gpusim::Device device(spec, 1 << 20);
  AnalysisSession session(device, spec);

  device.launch(
      "annotated_stage", {1, 1}, {32, 1}, test_config(),
      [](gpusim::BlockContext& ctx) {
        gpusim::SharedWarpAccess access;
        access.site = KSUM_ACCESS_SITE_ANNOTATED(
            "reviewed scatter store", ::ksum::gpusim::kSiteAllowBankConflicts,
            "one-off epilogue scatter");
        for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
          access.set_lane(lane,
                          static_cast<gpusim::SharedAddr>(lane * 256));
        }
        std::array<float, 32> values{};
        ctx.smem().store_warp(access, values);
      });

  const Diagnostics findings = session.bank_conflicts().diagnostics();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_NE(findings[0].message.find("suppressed: one-off epilogue scatter"),
            std::string::npos)
      << findings[0].message;
}

}  // namespace
}  // namespace ksum::analysis
