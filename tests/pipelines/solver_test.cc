#include "pipelines/solver.h"

#include <gtest/gtest.h>

#include "blas/vector_ops.h"

namespace ksum::pipelines {
namespace {

workload::Instance small_instance() {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 16;
  spec.bandwidth = 0.8f;
  return workload::make_instance(spec);
}

class SolverBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(SolverBackendTest, AllBackendsAgree) {
  const auto inst = small_instance();
  const auto params = core::params_from_spec(inst.spec);
  const auto ref = solve(inst, params, Backend::kCpuDirect);
  const auto out = solve(inst, params, GetParam());
  ASSERT_EQ(out.v.size(), inst.spec.m);
  EXPECT_LT(blas::max_rel_diff(out.v.span(), ref.v.span(), 1e-3), 2e-3)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, SolverBackendTest,
                         ::testing::Values(Backend::kCpuDirect,
                                           Backend::kCpuExpansion,
                                           Backend::kSimFused,
                                           Backend::kSimCudaUnfused,
                                           Backend::kSimCublasUnfused));

TEST(SolverTest, SimBackendsCarryReports) {
  const auto inst = small_instance();
  const auto params = core::params_from_spec(inst.spec);
  const auto sim = solve(inst, params, Backend::kSimFused);
  ASSERT_TRUE(sim.report.has_value());
  EXPECT_EQ(sim.report->solution, Solution::kFused);
  EXPECT_GT(sim.report->seconds, 0.0);

  const auto host = solve(inst, params, Backend::kCpuDirect);
  EXPECT_FALSE(host.report.has_value());
  EXPECT_GE(host.host_seconds, 0.0);
}

TEST(SolverTest, BackendNames) {
  EXPECT_EQ(to_string(Backend::kCpuDirect), "cpu-direct");
  EXPECT_EQ(to_string(Backend::kSimFused), "sim-fused");
  EXPECT_EQ(to_string(Backend::kSimCublasUnfused), "sim-cublas-unfused");
}

}  // namespace
}  // namespace ksum::pipelines
