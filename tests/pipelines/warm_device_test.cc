// Warm-device reuse: run_pipeline on a reset() pre-constructed Device must
// be bit-identical to a fresh-device run — the serving layer's per-worker
// warm devices rely on this.
#include <gtest/gtest.h>

#include "gpusim/device.h"
#include "pipelines/pipeline.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

workload::Instance small_instance(std::uint64_t seed = 7) {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  spec.seed = seed;
  return workload::make_instance(spec);
}

void expect_bit_identical(const pipelines::PipelineReport& a,
                          const pipelines::PipelineReport& b) {
  ASSERT_EQ(a.result.size(), b.result.size());
  for (std::size_t i = 0; i < a.result.size(); ++i) {
    EXPECT_EQ(a.result[i], b.result[i]) << "V diverges at " << i;
  }
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.total.dram_read_transactions, b.total.dram_read_transactions);
  EXPECT_EQ(a.total.dram_write_transactions, b.total.dram_write_transactions);
  EXPECT_EQ(a.total.l2_read_transactions, b.total.l2_read_transactions);
}

TEST(WarmDevice, ReusedDeviceMatchesFreshRun) {
  const auto instance = small_instance();
  const auto params = core::params_from_spec(instance.spec);

  const auto fresh = pipelines::run_pipeline(pipelines::Solution::kFused,
                                             instance, params, {});

  pipelines::RunOptions options;
  const std::size_t arena = pipelines::required_device_bytes(
      256, 256, 64, /*with_intermediate=*/true, /*tile_n=*/32);
  gpusim::Device warm(options.device, arena);
  options.warm_device = &warm;

  // Dirty the device with an unrelated run, then reuse it: reset() must
  // erase every trace of the first problem.
  const auto dirty = small_instance(/*seed=*/99);
  (void)pipelines::run_pipeline(pipelines::Solution::kCublasUnfused, dirty,
                                core::params_from_spec(dirty.spec), options);
  const auto reused = pipelines::run_pipeline(pipelines::Solution::kFused,
                                              instance, params, options);
  expect_bit_identical(fresh, reused);
}

TEST(WarmDevice, TooSmallWarmDeviceFallsBackToFresh) {
  const auto instance = small_instance();
  const auto params = core::params_from_spec(instance.spec);

  pipelines::RunOptions options;
  gpusim::Device tiny(options.device, 1u << 12);  // far too small
  options.warm_device = &tiny;
  const auto via_fallback = pipelines::run_pipeline(
      pipelines::Solution::kFused, instance, params, options);

  const auto fresh = pipelines::run_pipeline(pipelines::Solution::kFused,
                                             instance, params, {});
  expect_bit_identical(fresh, via_fallback);
}

TEST(WarmDevice, RepeatedReuseStaysStable) {
  const auto instance = small_instance();
  const auto params = core::params_from_spec(instance.spec);

  pipelines::RunOptions options;
  const std::size_t arena = pipelines::required_device_bytes(
      256, 256, 64, true, 32);
  gpusim::Device warm(options.device, arena);
  options.warm_device = &warm;

  const auto first = pipelines::run_pipeline(pipelines::Solution::kFused,
                                             instance, params, options);
  for (int round = 0; round < 3; ++round) {
    const auto again = pipelines::run_pipeline(pipelines::Solution::kFused,
                                               instance, params, options);
    expect_bit_identical(first, again);
  }
}

}  // namespace
}  // namespace ksum
