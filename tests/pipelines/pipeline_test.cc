#include "pipelines/pipeline.h"

#include <gtest/gtest.h>

#include "blas/vector_ops.h"

namespace ksum::pipelines {
namespace {

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k,
                                std::uint64_t seed = 51) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  spec.bandwidth = 0.9f;
  return workload::make_instance(spec);
}

struct PipelineCase {
  Solution solution;
  std::size_t m, n, k;
};

class PipelineAgreementTest : public ::testing::TestWithParam<PipelineCase> {
};

TEST_P(PipelineAgreementTest, MatchesDirectOracle) {
  const auto p = GetParam();
  const auto inst = instance_for(p.m, p.n, p.k);
  const auto params = core::params_from_spec(inst.spec);
  const Vector ref = core::solve_direct(inst, params);
  const auto report = run_pipeline(p.solution, inst, params);
  EXPECT_LT(blas::max_rel_diff(report.result.span(), ref.span(), 1e-3),
            2e-3)
      << to_string(p.solution);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolutionsAndShapes, PipelineAgreementTest,
    ::testing::Values(
        PipelineCase{Solution::kFused, 128, 128, 16},
        PipelineCase{Solution::kFused, 384, 256, 32},
        PipelineCase{Solution::kCudaUnfused, 128, 128, 16},
        PipelineCase{Solution::kCudaUnfused, 384, 256, 32},
        PipelineCase{Solution::kCublasUnfused, 128, 128, 16},
        PipelineCase{Solution::kCublasUnfused, 384, 256, 32}));

TEST(PipelineReportTest, KernelSequenceMatchesSolution) {
  const auto inst = instance_for(128, 128, 16);
  const auto params = core::params_from_spec(inst.spec);

  const auto fused = run_pipeline(Solution::kFused, inst, params);
  ASSERT_EQ(fused.kernels.size(), 3u);
  EXPECT_EQ(fused.kernels[0].name, "norms_a");
  EXPECT_EQ(fused.kernels[1].name, "norms_b");
  EXPECT_EQ(fused.kernels[2].name, "fused_ksum");

  const auto cuda = run_pipeline(Solution::kCudaUnfused, inst, params);
  ASSERT_EQ(cuda.kernels.size(), 5u);
  EXPECT_EQ(cuda.kernels[2].name, "gemm_cudac");
  EXPECT_EQ(cuda.kernels[3].name, "kernel_eval");
  EXPECT_EQ(cuda.kernels[4].name, "gemv_summation");

  const auto cublas = run_pipeline(Solution::kCublasUnfused, inst, params);
  ASSERT_EQ(cublas.kernels.size(), 5u);
  EXPECT_EQ(cublas.kernels[2].name, "gemm_cublas");
}

TEST(PipelineReportTest, TimingAndEnergyArePositive) {
  const auto inst = instance_for(256, 128, 16);
  const auto params = core::params_from_spec(inst.spec);
  const auto report = run_pipeline(Solution::kFused, inst, params);
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_GT(report.energy.total(), 0.0);
  EXPECT_GT(report.flop_efficiency, 0.0);
  EXPECT_LT(report.flop_efficiency, 1.0);
  double kernel_seconds = 0;
  for (const auto& k : report.kernels) {
    kernel_seconds += k.timing.seconds(RunOptions{}.device);
  }
  EXPECT_LE(kernel_seconds, report.seconds + 1e-12);
}

TEST(PipelineReportTest, FusedAvoidsIntermediateDram) {
  const auto inst = instance_for(384, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  const auto fused = run_pipeline(Solution::kFused, inst, params);
  const auto unfused = run_pipeline(Solution::kCublasUnfused, inst, params);
  EXPECT_LT(fused.total.dram_total_transactions(),
            unfused.total.dram_total_transactions() / 2);
}

TEST(PipelineReportTest, StagedReductionOptionPropagates) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  RunOptions options;
  options.atomic_reduction = false;
  const auto report = run_pipeline(Solution::kFused, inst, params, options);
  ASSERT_EQ(report.kernels.size(), 4u);
  EXPECT_EQ(report.kernels[3].name, "fused_partial_reduce");
  const Vector ref = core::solve_direct(inst, params);
  EXPECT_LT(blas::max_rel_diff(report.result.span(), ref.span(), 1e-3),
            2e-3);
}

TEST(PipelineReportTest, UsefulFlopsAccounting) {
  EXPECT_DOUBLE_EQ(
      pipeline_useful_flops(128, 128, 8),
      2.0 * 128 * 128 * 8 + 8.0 * 128 * 128 + 2.0 * (128 + 128) * 8);
}

}  // namespace
}  // namespace ksum::pipelines
