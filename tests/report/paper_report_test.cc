#include "report/paper_report.h"

#include <gtest/gtest.h>

namespace ksum::report {
namespace {

// One shared sweep over a reduced grid (full K range, three M values) so the
// suite stays fast; the claims themselves are scale-stable per the model
// tests.
class ReportFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new analytic::PipelineModel();
    specs_ = workload::paper_table_sweep();
    points_ = new std::vector<SweepPoint>(evaluate_sweep(*model_, specs_));
  }
  static void TearDownTestSuite() {
    delete points_;
    delete model_;
    points_ = nullptr;
    model_ = nullptr;
  }

  static analytic::PipelineModel* model_;
  static std::vector<workload::ProblemSpec> specs_;
  static std::vector<SweepPoint>* points_;
};

analytic::PipelineModel* ReportFixture::model_ = nullptr;
std::vector<workload::ProblemSpec> ReportFixture::specs_;
std::vector<SweepPoint>* ReportFixture::points_ = nullptr;

TEST_F(ReportFixture, SweepCoversGrid) {
  EXPECT_EQ(points_->size(), specs_.size());
}

TEST_F(ReportFixture, AllTablesRenderNonEmpty) {
  EXPECT_GT(fig1_energy_breakdown_cublas(*points_).num_rows(), 0u);
  EXPECT_GT(fig2_l2_mpki(*points_).num_rows(), 0u);
  EXPECT_GT(fig6_execution_time(*points_).num_rows(), 0u);
  EXPECT_GT(table2_flop_efficiency(*points_).num_rows(), 0u);
  EXPECT_GT(fig8a_l2_transactions(*points_).num_rows(), 0u);
  EXPECT_GT(fig8b_dram_transactions(*points_).num_rows(), 0u);
  EXPECT_GT(table3_energy_savings(*points_).num_rows(), 0u);
  EXPECT_GT(fig9_energy_breakdown(*points_).num_rows(), 0u);
  EXPECT_GT(table1_device_config(config::DeviceSpec::gtx970()).num_rows(),
            0u);
}

TEST_F(ReportFixture, Fig7Renders) {
  const auto t = fig7_gemm_comparison(*model_, specs_);
  EXPECT_EQ(t.num_rows(), specs_.size());
}

TEST_F(ReportFixture, SpeedupHelpersConsistent) {
  for (const auto& p : *points_) {
    EXPECT_NEAR(p.speedup_vs_cublas(),
                p.cublas_unfused.seconds / p.fused.seconds, 1e-12);
    EXPECT_GT(p.speedup_vs_cuda(), p.speedup_vs_cublas());
    EXPECT_GT(p.projected_speedup(), p.speedup_vs_cublas());
  }
}

}  // namespace
}  // namespace ksum::report
