// Golden snapshots of the headline report output (Table II, Table III,
// Fig. 9) on the deterministic Table-II grid. Any formatting or model drift
// shows up as a byte diff against tests/report/golden/*.txt.
//
// To regenerate after an intentional change:
//   KSUM_UPDATE_GOLDEN=1 ./tests/report_tests \
//       --gtest_filter='GoldenReportTest.*'
// and commit the rewritten files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "report/paper_report.h"

#ifndef KSUM_GOLDEN_DIR
#error "KSUM_GOLDEN_DIR must be defined by the build"
#endif

namespace ksum::report {
namespace {

const std::vector<SweepPoint>& golden_points() {
  static analytic::PipelineModel model;
  static const std::vector<SweepPoint> points =
      evaluate_sweep(model, workload::paper_table_sweep());
  return points;
}

std::string render(const Table& table) {
  std::ostringstream out;
  table.print(out);
  return out.str();
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(KSUM_GOLDEN_DIR) + "/" + name + ".txt";
  const char* update = std::getenv("KSUM_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with KSUM_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << name << " drifted from its golden snapshot; if the change is "
      << "intentional, regenerate with KSUM_UPDATE_GOLDEN=1";
}

TEST(GoldenReportTest, Table2FlopEfficiency) {
  check_golden("table2_flop_efficiency",
               render(table2_flop_efficiency(golden_points())));
}

TEST(GoldenReportTest, Table3EnergySavings) {
  check_golden("table3_energy_savings",
               render(table3_energy_savings(golden_points())));
}

TEST(GoldenReportTest, Fig9EnergyBreakdown) {
  check_golden("fig9_energy_breakdown",
               render(fig9_energy_breakdown(golden_points())));
}

}  // namespace
}  // namespace ksum::report
