#include "report/pipeline_printer.h"

#include <gtest/gtest.h>

namespace ksum::report {
namespace {

pipelines::PipelineReport sample_report() {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 16;
  const auto inst = workload::make_instance(spec);
  return pipelines::run_pipeline(pipelines::Solution::kFused, inst,
                                 core::params_from_spec(spec));
}

TEST(PipelinePrinterTest, KernelTableListsEveryKernel) {
  const auto report = sample_report();
  const Table t = pipeline_kernel_table(report);
  EXPECT_EQ(t.num_rows(), report.kernels.size());
  const std::string s = t.to_string();
  EXPECT_NE(s.find("fused_ksum"), std::string::npos);
  EXPECT_NE(s.find("norms_a"), std::string::npos);
  EXPECT_NE(s.find("M=128 N=128 K=16"), std::string::npos);
}

TEST(PipelinePrinterTest, SummaryTableHasEnergyBreakdown) {
  const std::string s = pipeline_summary_table(sample_report()).to_string();
  EXPECT_NE(s.find("FLOP efficiency"), std::string::npos);
  EXPECT_NE(s.find("DRAM"), std::string::npos);
  EXPECT_NE(s.find("static"), std::string::npos);
}

TEST(PipelinePrinterTest, KnnTable) {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 16;
  const auto inst = workload::make_instance(spec);
  const auto report = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kFused, inst, 4);
  const std::string s = knn_kernel_table(report).to_string();
  EXPECT_NE(s.find("fused_knn"), std::string::npos);
  EXPECT_NE(s.find("knn_merge"), std::string::npos);
  EXPECT_NE(s.find("k=4"), std::string::npos);
}

}  // namespace
}  // namespace ksum::report
