// Oracle-equivalence suite for sharded execution (docs/SHARDING.md): merged
// V must be bit-identical to the single-device run for every shard count,
// axis, worker count, and backend the planner admits. These tests pin the
// whole determinism contract — including the one hardware fact the N-axis
// merge rides on: atomic and staged reductions produce the same bits under
// the simulator's sequential CTA execution.
#include <cstring>

#include <gtest/gtest.h>

#include "pipelines/solver.h"
#include "robust/fault_plan.h"
#include "shard/merge.h"
#include "shard/plan.h"
#include "shard/runner.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;
using pipelines::RunOptions;
using pipelines::SolveResult;
using shard::ShardAxis;

workload::Instance make_case(std::size_t m, std::size_t n, std::size_t k,
                             std::uint64_t seed) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  spec.distribution = workload::Distribution::kUniformCube;
  return workload::make_instance(spec);
}

bool bitwise_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// The N-axis merge replays the staged (non-atomic) reduction, while the
// default single-device oracle runs the atomic one. They agree bit for bit
// because the simulator executes CTAs sequentially in ascending bx order
// and atomicAdd applies per lane in that order over a zeroed V — the exact
// left fold run_partial_reduce performs. This probe pins that equivalence
// on its own, so a failure here (and not in the merge tests) points at the
// reduction semantics, not the shard layer.
TEST(ShardOracleTest, AtomicAndStagedReductionsAgreeBitwise) {
  const std::size_t shapes[][3] = {{128, 128, 8}, {200, 384, 16}, {96, 250, 9}};
  for (const auto& s : shapes) {
    const workload::Instance instance = make_case(s[0], s[1], s[2], 11);
    const core::KernelParams params;
    RunOptions atomic_opts;
    RunOptions staged_opts;
    staged_opts.atomic_reduction = false;
    const SolveResult a =
        pipelines::solve(instance, params, Backend::kSimFused, atomic_opts);
    const SolveResult b =
        pipelines::solve(instance, params, Backend::kSimFused, staged_opts);
    EXPECT_TRUE(bitwise_equal(a.v, b.v))
        << "atomic vs staged mismatch at " << s[0] << "x" << s[1] << "x"
        << s[2];
  }
}

TEST(ShardOracleTest, MergedVBitIdenticalAcrossCountsAndAxes) {
  const core::KernelParams params;
  const std::size_t shapes[][3] = {
      {1024, 512, 16},  // 8 M-blocks, 4 N-blocks
      {1000, 900, 9},   // ragged in every dimension
  };
  for (const auto& s : shapes) {
    const workload::Instance instance = make_case(s[0], s[1], s[2], 42);
    const SolveResult oracle =
        pipelines::solve(instance, params, Backend::kSimFused, RunOptions{});
    for (const ShardAxis axis : {ShardAxis::kM, ShardAxis::kN}) {
      for (const std::size_t count : {1u, 2u, 3u, 5u, 8u}) {
        RunOptions options;
        options.shards.count = count;
        options.shards.axis = axis;
        const SolveResult sharded =
            pipelines::solve(instance, params, Backend::kSimFused, options);
        EXPECT_TRUE(bitwise_equal(oracle.v, sharded.v))
            << s[0] << "x" << s[1] << "x" << s[2] << " axis "
            << shard::to_string(axis) << " count " << count;
        if (count == 1) {
          // count == 1 means "unsharded": the request takes the ordinary
          // single-device path and carries no shard report.
          EXPECT_FALSE(sharded.shards.has_value());
          continue;
        }
        ASSERT_TRUE(sharded.shards.has_value());
        EXPECT_EQ(sharded.shards->axis, axis);
        EXPECT_LE(sharded.shards->count(), count);
      }
    }
  }
}

// M-axis concatenation works for the unfused backends too (their per-row
// results are independent of the CTA row grouping).
TEST(ShardOracleTest, UnfusedBackendsShardOnM) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(640, 384, 8, 7);
  for (const Backend backend :
       {Backend::kSimCudaUnfused, Backend::kSimCublasUnfused}) {
    const SolveResult oracle =
        pipelines::solve(instance, params, backend, RunOptions{});
    RunOptions options;
    options.shards.count = 4;
    options.shards.axis = ShardAxis::kM;
    const SolveResult sharded =
        pipelines::solve(instance, params, backend, options);
    EXPECT_TRUE(bitwise_equal(oracle.v, sharded.v))
        << "backend " << pipelines::to_string(backend);
  }
}

// The worker count is pure scheduling: any number of workers produces the
// same bytes and the same merged event counters.
TEST(ShardOracleTest, WorkerCountInvariance) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(1000, 640, 16, 99);
  for (const ShardAxis axis : {ShardAxis::kM, ShardAxis::kN}) {
    std::optional<SolveResult> reference;
    for (const int workers : {1, 2, 4}) {
      RunOptions options;
      options.shards.count = 4;
      options.shards.axis = axis;
      options.shards.workers = workers;
      SolveResult run =
          pipelines::solve(instance, params, Backend::kSimFused, options);
      ASSERT_TRUE(run.report.has_value());
      if (!reference.has_value()) {
        reference = std::move(run);
        continue;
      }
      EXPECT_TRUE(bitwise_equal(reference->v, run.v))
          << "axis " << shard::to_string(axis) << " workers " << workers;
      EXPECT_TRUE(reference->report->total == run.report->total)
          << "merged counters changed with worker count";
      EXPECT_EQ(reference->recovery.attempts, run.recovery.attempts);
    }
  }
}

// Auto planning: a constrained per-device budget forces a real split, and
// the result still matches the oracle bit for bit.
TEST(ShardOracleTest, AutoCountSplitsToFitBudgetAndMatchesOracle) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(1024, 384, 8, 5);
  const SolveResult oracle =
      pipelines::solve(instance, params, Backend::kSimFused, RunOptions{});
  RunOptions options;
  options.shards.count = 0;  // auto
  options.shards.axis = ShardAxis::kM;
  // Big enough for a couple of row blocks, far too small for all eight.
  options.shards.max_device_bytes = pipelines::required_device_bytes(
      256, 384, 8, /*with_intermediate=*/false, 128);
  const SolveResult sharded =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(sharded.shards.has_value());
  EXPECT_GE(sharded.shards->count(), 4u);
  EXPECT_TRUE(bitwise_equal(oracle.v, sharded.v));
}

// Counts clamp to the block count: a single-block problem runs as one
// shard no matter what was requested.
TEST(ShardOracleTest, CountClampsToBlocks) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(100, 120, 8, 3);
  const SolveResult oracle =
      pipelines::solve(instance, params, Backend::kSimFused, RunOptions{});
  RunOptions options;
  options.shards.count = 8;
  options.shards.axis = ShardAxis::kM;
  const SolveResult sharded =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(sharded.shards.has_value());
  EXPECT_EQ(sharded.shards->count(), 1u);
  EXPECT_TRUE(bitwise_equal(oracle.v, sharded.v));
}

// Merged-report composition: kernels concatenate in shard order with the
// "s<i>/" prefix, modelled time is the max over shards, and the energy and
// counter totals are the per-shard sums.
TEST(ShardOracleTest, MergedReportComposition) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(512, 256, 8, 21);
  RunOptions options;
  options.shards.count = 4;
  options.shards.axis = ShardAxis::kM;
  const SolveResult sharded =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(sharded.report.has_value());
  ASSERT_TRUE(sharded.shards.has_value());
  EXPECT_EQ(sharded.shards->count(), 4u);
  EXPECT_EQ(sharded.report->m, 512u);
  ASSERT_FALSE(sharded.report->kernels.empty());
  EXPECT_EQ(sharded.report->kernels.front().name.rfind("s0/", 0), 0u);
  EXPECT_EQ(sharded.report->kernels.back().name.rfind("s3/", 0), 0u);
  EXPECT_GT(sharded.report->seconds, 0.0);
  EXPECT_GT(sharded.report->total.kernel_launches, 0u);
  // Ranges partition [0, m).
  std::size_t covered = 0;
  for (const auto& slice : sharded.shards->slices) {
    EXPECT_EQ(slice.begin, covered);
    covered = slice.end;
    EXPECT_EQ(slice.dispatches, 1);
  }
  EXPECT_EQ(covered, 512u);
}

// Usage errors surface as ksum::Error, not silent misbehaviour.
TEST(ShardOracleTest, UsageErrors) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(256, 256, 8, 1);
  {
    // N-axis sharding needs the staged reduction of the fused kernel.
    RunOptions options;
    options.shards.count = 2;
    options.shards.axis = ShardAxis::kN;
    EXPECT_THROW(pipelines::solve(instance, params,
                                  Backend::kSimCublasUnfused, options),
                 Error);
  }
  {
    // A single injector cannot name the faulty device.
    robust::FaultPlan plan(robust::FaultPlanConfig::uniform(1, 1e-6));
    RunOptions options;
    options.shards.count = 2;
    options.fault_injector = &plan;
    EXPECT_THROW(
        pipelines::solve(instance, params, Backend::kSimFused, options),
        Error);
  }
  {
    // Host backends do not shard.
    RunOptions options;
    options.shards.count = 2;
    EXPECT_THROW(
        pipelines::solve(instance, params, Backend::kCpuDirect, options),
        Error);
  }
}

}  // namespace
}  // namespace ksum
