// Runner semantics: per-shard fault injection, localized retries, the
// banned-worker re-dispatch, and give-up propagation (docs/SHARDING.md
// §Runner). These are the deterministic single-process versions of the
// shard fault campaign (bench/fault_campaign.cc, experiment 4).
#include <cstring>

#include <gtest/gtest.h>

#include "pipelines/solver.h"
#include "robust/fault_plan.h"
#include "shard/runner.h"
#include "shard/types.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;
using pipelines::RunOptions;
using pipelines::SolveResult;
using shard::ShardAxis;

workload::Instance make_case(std::size_t m, std::size_t n, std::size_t k,
                             std::uint64_t seed) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  return workload::make_instance(spec);
}

bool bitwise_equal(const Vector& a, const Vector& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// A factory that drops atomicAdds of exactly one (shard, dispatch) and
// runs everything else clean. The rate must NOT be 1.0: dropping every
// atomicAdd also drops the ABFT checksum path's adds, so V and its
// checksum are consistently zero and the check passes — a total fault
// that is invisible by construction. Rate 0.5 decorrelates the two
// accumulation paths (each add draws independently), which on a
// 128-row shard makes detection certain in practice — and the simulator
// is deterministic for a fixed seed, so the test is too.
shard::ShardInjectorFactory fault_one(std::size_t faulty_shard,
                                      int faulty_dispatch) {
  return [faulty_shard, faulty_dispatch](std::size_t s, int d)
             -> std::shared_ptr<gpusim::FaultInjector> {
    if (s != faulty_shard || d != faulty_dispatch) return nullptr;
    return std::make_shared<robust::FaultPlan>(
        robust::FaultPlanConfig::single_site(
            shard::shard_fault_seed(2024, s, d),
            gpusim::FaultSite::kAtomicDrop, 0.5));
  };
}

TEST(ShardRunnerTest, SingleShardFaultRetriesOnlyThatShard) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(512, 256, 16, 77);
  const SolveResult oracle =
      pipelines::solve(instance, params, Backend::kSimFused, RunOptions{});

  for (const int workers : {1, 2, 4}) {
    RunOptions options;
    options.shards.count = 4;
    options.shards.axis = ShardAxis::kM;
    options.shards.workers = workers;
    options.shards.injector_factory = fault_one(/*shard=*/2, /*dispatch=*/0);
    options.recovery.enabled = true;
    options.recovery.max_retries = 0;        // one attempt per dispatch
    options.recovery.fallback_to_unfused = false;
    const SolveResult run =
        pipelines::solve(instance, params, Backend::kSimFused, options);

    ASSERT_TRUE(run.shards.has_value());
    ASSERT_EQ(run.shards->count(), 4u);
    for (const auto& slice : run.shards->slices) {
      if (slice.index == 2) {
        // Detection localized here: this shard gave up on dispatch 0 and
        // was re-dispatched once, coming back clean.
        EXPECT_EQ(slice.dispatches, 2) << "workers=" << workers;
        EXPECT_EQ(slice.recovery.attempts, 2);
        EXPECT_GE(slice.recovery.faults_detected, 1);
        EXPECT_FALSE(slice.recovery.gave_up);
      } else {
        EXPECT_EQ(slice.dispatches, 1) << "shard " << slice.index;
        EXPECT_EQ(slice.recovery.attempts, 1);
        EXPECT_EQ(slice.recovery.faults_detected, 0);
      }
    }
    // Only the faulty shard retried: 4 clean + 1 extra dispatch.
    EXPECT_EQ(run.recovery.attempts, 5);
    EXPECT_FALSE(run.recovery.gave_up);
    // The recovered output is the oracle, bit for bit.
    EXPECT_TRUE(bitwise_equal(oracle.v, run.v)) << "workers=" << workers;
  }
}

TEST(ShardRunnerTest, PersistentFaultExhaustsDispatchesAndGivesUp) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(384, 256, 16, 31);
  RunOptions options;
  options.shards.count = 3;
  options.shards.axis = ShardAxis::kM;
  options.shards.max_dispatches = 2;
  // Shard 1 is faulty on every dispatch — no device is safe.
  options.shards.injector_factory =
      [](std::size_t s, int d) -> std::shared_ptr<gpusim::FaultInjector> {
    if (s != 1) return nullptr;
    return std::make_shared<robust::FaultPlan>(
        robust::FaultPlanConfig::single_site(
            shard::shard_fault_seed(7, s, d),
            gpusim::FaultSite::kAtomicDrop, 0.5));
  };
  options.recovery.enabled = true;
  options.recovery.max_retries = 0;
  options.recovery.fallback_to_unfused = false;
  const SolveResult run =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(run.shards.has_value());
  const auto& faulty = run.shards->slices[1];
  EXPECT_EQ(faulty.dispatches, 2);
  EXPECT_TRUE(faulty.recovery.gave_up);
  EXPECT_TRUE(run.recovery.gave_up);  // whole-request verdict
  // The merge still completes: V has full length even though one shard's
  // last attempt stayed flagged.
  EXPECT_EQ(run.v.size(), 384u);
}

// Per-shard recovery (retries within one dispatch) composes with the
// factory: a transient fault recovered inside the shard never triggers a
// re-dispatch.
TEST(ShardRunnerTest, InShardRecoveryAvoidsRedispatch) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(512, 256, 16, 13);
  RunOptions options;
  options.shards.count = 4;
  options.shards.axis = ShardAxis::kM;
  options.shards.injector_factory = fault_one(/*shard=*/1, /*dispatch=*/0);
  options.recovery.enabled = true;  // default retry budget
  const SolveResult run =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(run.shards.has_value());
  const auto& slice = run.shards->slices[1];
  // The shard recovered on its own device (the retry re-seeds the
  // injector stream; the aggressive drop rate still fires, but detection
  // plus retries either recover or give up — in both cases dispatches
  // stay within budget and other shards never retry).
  EXPECT_GE(slice.recovery.attempts, 2);
  for (const auto& other : run.shards->slices) {
    if (other.index != 1) {
      EXPECT_EQ(other.recovery.attempts, 1) << "shard " << other.index;
    }
  }
}

// N-axis sharding disables the unfused fallback (there is no staged
// reduction to replay) but keeps detection and retries.
TEST(ShardRunnerTest, NAxisShardsKeepRecoveryWithoutFallback) {
  const core::KernelParams params;
  const workload::Instance instance = make_case(256, 512, 16, 19);
  const SolveResult oracle =
      pipelines::solve(instance, params, Backend::kSimFused, RunOptions{});
  RunOptions options;
  options.shards.count = 4;
  options.shards.axis = ShardAxis::kN;
  // N shards run the staged (non-atomic) reduction, so fault the global
  // store datapath instead — dense enough that detection is certain.
  options.shards.injector_factory =
      [](std::size_t s, int d) -> std::shared_ptr<gpusim::FaultInjector> {
    if (s != 3 || d != 0) return nullptr;
    return std::make_shared<robust::FaultPlan>(
        robust::FaultPlanConfig::single_site(
            shard::shard_fault_seed(5, s, d),
            gpusim::FaultSite::kGlobalMemory, 0.5));
  };
  options.recovery.enabled = true;
  options.recovery.max_retries = 0;
  const SolveResult run =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(run.shards.has_value());
  EXPECT_EQ(run.shards->axis, ShardAxis::kN);
  EXPECT_FALSE(run.shards->slices[3].recovery.fallback_used);
  EXPECT_FALSE(run.recovery.gave_up);
  EXPECT_TRUE(bitwise_equal(oracle.v, run.v));
}

}  // namespace
}  // namespace ksum
