// Planner unit tests: block-aligned cuts, even partition with ragged tail,
// auto axis/count selection, and the admission-side helper.
#include <gtest/gtest.h>

#include "shard/plan.h"

namespace ksum {
namespace {

using pipelines::RunOptions;
using pipelines::Solution;
using shard::ShardAxis;
using shard::ShardPlan;

ShardPlan plan_for(std::size_t m, std::size_t n, std::size_t k,
                   std::size_t count, ShardAxis axis,
                   Solution solution = Solution::kFused,
                   std::size_t budget = 0) {
  RunOptions options;
  options.shards.count = count;
  options.shards.axis = axis;
  options.shards.max_device_bytes = budget;
  return shard::plan_shards(m, n, k, options, solution);
}

TEST(ShardPlanTest, RangesPartitionTheAxisOnAlignedBoundaries) {
  // Default geometry: tile 128 → align 128. 1000 rows = 8 blocks.
  const ShardPlan plan = plan_for(1000, 256, 8, 3, ShardAxis::kM);
  ASSERT_EQ(plan.count(), 3u);
  EXPECT_EQ(plan.align, 128u);
  std::size_t covered = 0;
  for (const auto& range : plan.ranges) {
    EXPECT_EQ(range.begin, covered);
    EXPECT_GT(range.end, range.begin);
    covered = range.end;
  }
  EXPECT_EQ(covered, 1000u);
  // Interior boundaries are block aligned; earlier shards take the extra
  // block (8 = 3+3+2), the last shard carries the ragged tail.
  EXPECT_EQ(plan.ranges[0].end, 384u);
  EXPECT_EQ(plan.ranges[1].end, 768u);
  EXPECT_EQ(plan.ranges[2].end, 1000u);
}

TEST(ShardPlanTest, CountClampsToBlockCount) {
  const ShardPlan plan = plan_for(300, 256, 8, 8, ShardAxis::kM);
  EXPECT_EQ(plan.count(), 3u);  // ceil(300/128) blocks
}

TEST(ShardPlanTest, ExplicitNAxisRequiresFused) {
  EXPECT_THROW(
      plan_for(256, 512, 8, 2, ShardAxis::kN, Solution::kCublasUnfused),
      Error);
  EXPECT_NO_THROW(
      plan_for(256, 512, 8, 2, ShardAxis::kN, Solution::kFused));
}

TEST(ShardPlanTest, AutoAxisFollowsReplicatedTraffic) {
  // Tall problem (m >> n): splitting M replicates the small B — cheap.
  EXPECT_EQ(plan_for(4096, 128, 32, 4, ShardAxis::kAuto).axis, ShardAxis::kM);
  // Wide problem (n >> m): splitting N replicates the small A.
  EXPECT_EQ(plan_for(128, 4096, 32, 4, ShardAxis::kAuto).axis, ShardAxis::kN);
  // Unfused solutions never get N, whatever the traffic says.
  EXPECT_EQ(
      plan_for(128, 4096, 32, 4, ShardAxis::kAuto, Solution::kCudaUnfused)
          .axis,
      ShardAxis::kM);
}

TEST(ShardPlanTest, AutoCountPicksSmallestFittingBudget) {
  // Budget that holds two 128-row blocks of a 1024×256 problem.
  const std::size_t budget = pipelines::required_device_bytes(
      256, 256, 8, /*with_intermediate=*/false, 128);
  const ShardPlan plan = plan_for(1024, 256, 8, 0, ShardAxis::kM,
                                  Solution::kFused, budget);
  EXPECT_EQ(plan.count(), 4u);  // 8 blocks / 2 per shard
  // A generous budget keeps it unsharded.
  const ShardPlan one = plan_for(1024, 256, 8, 0, ShardAxis::kM,
                                 Solution::kFused, std::size_t{1} << 40);
  EXPECT_EQ(one.count(), 1u);
  // An impossible budget is a hard error, not a silent clamp.
  EXPECT_THROW(plan_for(1024, 256, 8, 0, ShardAxis::kM, Solution::kFused,
                        std::size_t{1} << 10),
               Error);
}

TEST(ShardPlanTest, ReplicatedBytesModel) {
  // More shards replicate more; count 1 replicates nothing.
  EXPECT_EQ(shard::replicated_bytes(ShardAxis::kM, 512, 512, 32, 128, 1),
            0.0);
  EXPECT_LT(shard::replicated_bytes(ShardAxis::kM, 512, 512, 32, 128, 2),
            shard::replicated_bytes(ShardAxis::kM, 512, 512, 32, 128, 4));
  // Splitting the axis that replicates the smaller operand costs less.
  EXPECT_LT(shard::replicated_bytes(ShardAxis::kN, 128, 4096, 32, 128, 4),
            shard::replicated_bytes(ShardAxis::kM, 128, 4096, 32, 128, 4));
}

TEST(ShardPlanTest, MinShardsForLimit) {
  EXPECT_EQ(shard::min_shards_for_limit(1000, 128, 1024), 1u);
  EXPECT_EQ(shard::min_shards_for_limit(1000, 128, 512), 2u);
  EXPECT_EQ(shard::min_shards_for_limit(1000, 128, 128), 8u);
  // Limit below one block: impossible.
  EXPECT_EQ(shard::min_shards_for_limit(1000, 128, 100), 0u);
  // Small dim fits as one shard even under one block.
  EXPECT_EQ(shard::min_shards_for_limit(100, 128, 100), 1u);
}

}  // namespace
}  // namespace ksum
