// Property tests of the shard layer (tests/common/prop.h): shard-count
// invariance over random shapes (including ragged last shards), merge
// associativity under the fixed tree order, and slice fidelity.
#include <cstring>
#include <numeric>

#include <gtest/gtest.h>

#include "common/prop.h"
#include "pipelines/solver.h"
#include "shard/merge.h"
#include "shard/runner.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;
using pipelines::RunOptions;
using shard::ShardAxis;
using shard::ShardPiece;

struct ShardCase {
  workload::Instance instance;
  std::size_t count = 1;
  ShardAxis axis = ShardAxis::kM;
  int workers = 1;
};

ShardCase make_shard_case(prop::Gen& gen, std::size_t scale) {
  ShardCase c;
  workload::ProblemSpec spec;
  // Scale bounds the shape; ragged sizes are the common case by design.
  spec.m = gen.size_in(1, std::max<std::size_t>(scale, 1));
  spec.n = gen.size_in(1, std::max<std::size_t>(scale, 1));
  spec.k = gen.size_in(1, 24);
  spec.seed = gen.next_u64();
  c.instance = workload::make_instance(spec);
  c.count = gen.size_in(1, 8);
  c.axis = gen.int_in(0, 1) == 0 ? ShardAxis::kM : ShardAxis::kN;
  c.workers = gen.int_in(1, 4);
  return c;
}

// Shard-count invariance: any admissible (count, axis, workers) produces
// exactly the bytes of the unsharded run.
TEST(ShardPropTest, ShardCountInvariance) {
  prop::Config config;
  config.iterations = 8;
  config.max_scale = 512;
  const core::KernelParams params;
  prop::check(
      "shard-count-invariance", config,
      [](prop::Gen& gen, std::size_t scale) {
        return make_shard_case(gen, scale);
      },
      [&](const ShardCase& c) {
        const pipelines::SolveResult oracle = pipelines::solve(
            c.instance, params, Backend::kSimFused, RunOptions{});
        RunOptions options;
        options.shards.count = c.count;
        options.shards.axis = c.axis;
        options.shards.workers = c.workers;
        const pipelines::SolveResult sharded =
            pipelines::solve(c.instance, params, Backend::kSimFused, options);
        if (oracle.v.size() != sharded.v.size()) return false;
        return std::memcmp(oracle.v.data(), sharded.v.data(),
                           oracle.v.size() * sizeof(float)) == 0;
      });
}

struct MergeCase {
  ShardAxis axis = ShardAxis::kM;
  std::vector<ShardPiece> pieces;
  std::size_t total = 0;       // elements along the axis
  std::size_t staged_rows = 0; // kN only
};

MergeCase make_merge_case(prop::Gen& gen, std::size_t scale) {
  MergeCase c;
  c.axis = gen.int_in(0, 1) == 0 ? ShardAxis::kM : ShardAxis::kN;
  const std::size_t pieces = gen.size_in(1, 8);
  c.staged_rows = gen.size_in(1, 16);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < pieces; ++i) {
    ShardPiece p;
    p.index = i;
    p.begin = begin;
    p.end = begin + gen.size_in(1, std::max<std::size_t>(scale / 8, 1));
    if (c.axis == ShardAxis::kM) {
      p.rows.resize(p.end - p.begin);
      for (float& v : p.rows) v = gen.float_in(-4.0f, 4.0f);
    } else {
      p.staged_rows = c.staged_rows;
      p.staged_cols = p.end - p.begin;
      p.staged.resize(p.staged_rows * p.staged_cols);
      for (float& v : p.staged) v = gen.float_in(-4.0f, 4.0f);
    }
    begin = p.end;
    c.pieces.push_back(std::move(p));
  }
  c.total = begin;
  return c;
}

// Tree-merge associativity: the fixed binary tree and a plain left fold
// assemble the same bytes (concatenation is associative; the only float
// arithmetic happens in finalize, after assembly).
TEST(ShardPropTest, TreeMergeMatchesLeftFold) {
  prop::Config config;
  config.iterations = 12;
  config.max_scale = 256;
  prop::check(
      "tree-merge-associativity", config,
      [](prop::Gen& gen, std::size_t scale) {
        return make_merge_case(gen, scale);
      },
      [](const MergeCase& c) {
        const ShardPiece tree = shard::merge_tree(c.axis, c.pieces);
        ShardPiece fold = c.pieces.front();
        for (std::size_t i = 1; i < c.pieces.size(); ++i) {
          fold = shard::merge_pair(c.axis, fold, c.pieces[i]);
        }
        if (c.axis == ShardAxis::kM) {
          return tree.rows == fold.rows;
        }
        const std::size_t rows =
            c.axis == ShardAxis::kN ? c.staged_rows : 0;
        const Vector a = shard::finalize_merge(c.axis, tree, rows);
        const Vector b = shard::finalize_merge(c.axis, fold, rows);
        return tree.staged == fold.staged &&
               std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
      });
}

struct SliceCase {
  workload::Instance instance;
  ShardAxis axis = ShardAxis::kM;
  shard::ShardRange range;
};

SliceCase make_slice_case(prop::Gen& gen, std::size_t scale) {
  SliceCase c;
  workload::ProblemSpec spec;
  spec.m = gen.size_in(2, std::max<std::size_t>(scale, 2));
  spec.n = gen.size_in(2, std::max<std::size_t>(scale, 2));
  spec.k = gen.size_in(1, 16);
  spec.seed = gen.next_u64();
  c.instance = workload::make_instance(spec);
  c.axis = gen.int_in(0, 1) == 0 ? ShardAxis::kM : ShardAxis::kN;
  const std::size_t dim =
      c.axis == ShardAxis::kM ? spec.m : spec.n;
  c.range.begin = gen.size_in(0, dim - 1);
  c.range.end = gen.size_in(c.range.begin + 1, dim);
  return c;
}

// slice_instance copies exactly the rows/columns of its range.
TEST(ShardPropTest, SliceInstanceFidelity) {
  prop::Config config;
  config.iterations = 12;
  config.max_scale = 256;
  prop::check(
      "slice-instance-fidelity", config,
      [](prop::Gen& gen, std::size_t scale) {
        return make_slice_case(gen, scale);
      },
      [](const SliceCase& c) {
        const workload::Instance slice =
            shard::slice_instance(c.instance, c.axis, c.range);
        const std::size_t k = c.instance.spec.k;
        if (c.axis == ShardAxis::kM) {
          if (slice.spec.m != c.range.size() ||
              slice.spec.n != c.instance.spec.n) {
            return false;
          }
          for (std::size_t r = 0; r < slice.spec.m; ++r) {
            for (std::size_t d = 0; d < k; ++d) {
              if (slice.a.at(r, d) != c.instance.a.at(c.range.begin + r, d)) {
                return false;
              }
            }
          }
          return std::memcmp(slice.b.data(), c.instance.b.data(),
                             k * c.instance.spec.n * sizeof(float)) == 0 &&
                 std::memcmp(slice.w.data(), c.instance.w.data(),
                             c.instance.spec.n * sizeof(float)) == 0;
        }
        if (slice.spec.n != c.range.size() ||
            slice.spec.m != c.instance.spec.m) {
          return false;
        }
        for (std::size_t j = 0; j < slice.spec.n; ++j) {
          if (slice.w[j] != c.instance.w[c.range.begin + j]) return false;
          for (std::size_t d = 0; d < k; ++d) {
            if (slice.b.at(d, j) != c.instance.b.at(d, c.range.begin + j)) {
              return false;
            }
          }
        }
        return std::memcmp(slice.a.data(), c.instance.a.data(),
                           c.instance.spec.m * k * sizeof(float)) == 0;
      });
}

}  // namespace
}  // namespace ksum
