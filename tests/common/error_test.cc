#include "common/error.h"

#include <gtest/gtest.h>

namespace ksum {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(KSUM_CHECK(1 + 1 == 2));
}

TEST(ErrorTest, CheckThrowsInternalErrorWithContext) {
  try {
    KSUM_CHECK(1 == 2);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("error_test.cc"), std::string::npos);
  }
}

TEST(ErrorTest, CheckMsgIncludesMessage) {
  try {
    KSUM_CHECK_MSG(false, "the tile is on fire");
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("the tile is on fire"),
              std::string::npos);
  }
}

TEST(ErrorTest, RequireThrowsUserError) {
  EXPECT_THROW(KSUM_REQUIRE(false, "bad argument"), Error);
  EXPECT_NO_THROW(KSUM_REQUIRE(true, "fine"));
}

TEST(ErrorTest, RequireMessagePrefixed) {
  try {
    KSUM_REQUIRE(false, "K must be a multiple of 8");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "ksum: K must be a multiple of 8");
  }
}

TEST(ErrorTest, ErrorIsRuntimeErrorAndInternalIsLogicError) {
  EXPECT_THROW(throw Error("x"), std::runtime_error);
  EXPECT_THROW(throw InternalError("x"), std::logic_error);
}

}  // namespace
}  // namespace ksum
