#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace ksum {
namespace {

TEST(AlignedBufferTest, AllocatesAligned) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBufferAlignment,
            0u);
  EXPECT_EQ(buf.size(), 100u);
}

TEST(AlignedBufferTest, ZeroInitialised) {
  AlignedBuffer<float> buf(1000);
  for (float x : buf) EXPECT_EQ(x, 0.0f);
}

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(AlignedBufferTest, FillAndIndex) {
  AlignedBuffer<float> buf(8);
  buf.fill(2.5f);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 2.5f);
  buf[3] = -1.0f;
  EXPECT_EQ(buf[3], -1.0f);
}

TEST(AlignedBufferTest, CopyIsDeep) {
  AlignedBuffer<float> a(4);
  a[0] = 7.0f;
  AlignedBuffer<float> b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 7.0f);
  EXPECT_EQ(b[0], 9.0f);
}

TEST(AlignedBufferTest, CopyAssign) {
  AlignedBuffer<float> a(4), b(2);
  a[1] = 5.0f;
  b = a;
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[1], 5.0f);
}

TEST(AlignedBufferTest, MoveStealsStorage) {
  AlignedBuffer<float> a(4);
  a[2] = 3.0f;
  const float* p = a.data();
  AlignedBuffer<float> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[2], 3.0f);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBufferTest, SpanCoversBuffer) {
  AlignedBuffer<float> a(16);
  auto s = a.span();
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s.data(), a.data());
}

TEST(AlignedBufferTest, ResizeDiscardsAndZeroes) {
  AlignedBuffer<float> a(4);
  a.fill(1.0f);
  a.resize(8);
  EXPECT_EQ(a.size(), 8u);
  for (float x : a) EXPECT_EQ(x, 0.0f);
}

}  // namespace
}  // namespace ksum
