#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("demo");
  t.header({"k", "speedup"});
  t.row({"32", "1.8"});
  t.row({"64", "1.4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("### demo"), std::string::npos);
  EXPECT_NE(s.find("| k  | speedup |"), std::string::npos);
  EXPECT_NE(s.find("| 32 | 1.8     |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  Table t;
  t.header({"a", "b"});
  t.row({"wide-cell", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a         | b |"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), Error);
}

TEST(TableTest, EmptyHeaderThrows) {
  Table t;
  EXPECT_THROW(t.header({}), Error);
}

TEST(TableTest, SeparatorRendersRule) {
  Table t;
  t.header({"a"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  const std::string s = t.to_string();
  // Header rule + explicit separator.
  std::size_t rules = 0;
  for (std::size_t pos = s.find("|---"); pos != std::string::npos;
       pos = s.find("|---", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TableTest, NoHeaderTableStillPrints) {
  Table t;
  t.row({"x", "y"});
  EXPECT_NE(t.to_string().find("| x | y |"), std::string::npos);
}

}  // namespace
}  // namespace ksum
