#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum {
namespace {

FlagParser make_parser() {
  FlagParser flags;
  flags.declare("m", "rows")
      .declare("h", "bandwidth")
      .declare("name", "label")
      .declare("verify", "check results", /*takes_value=*/false);
  return flags;
}

TEST(FlagsTest, EqualsSyntax) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "--m=128", "--h=0.5", "--name=abc"};
  flags.parse(4, argv);
  EXPECT_EQ(flags.get_size("m", 0), 128u);
  EXPECT_DOUBLE_EQ(flags.get_double("h", 0), 0.5);
  EXPECT_EQ(flags.get_string("name", ""), "abc");
}

TEST(FlagsTest, SpaceSyntax) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "--m", "256"};
  flags.parse(3, argv);
  EXPECT_EQ(flags.get_size("m", 0), 256u);
}

TEST(FlagsTest, BooleanSwitch) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "--verify"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.get_bool("verify"));
  auto flags2 = make_parser();
  const char* argv2[] = {"prog"};
  flags2.parse(1, argv2);
  EXPECT_FALSE(flags2.get_bool("verify"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  auto flags = make_parser();
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_EQ(flags.get_size("m", 42), 42u);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(flags.has("m"));
}

TEST(FlagsTest, UnknownFlagThrows) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(FlagsTest, MissingValueThrows) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "--m"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(FlagsTest, NonNumericValueThrows) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "--m=abc"};
  flags.parse(2, argv);
  EXPECT_THROW(flags.get_size("m", 0), Error);
}

TEST(FlagsTest, PositionalArguments) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "first", "--m=1", "second"};
  flags.parse(4, argv);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "first");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(FlagsTest, ParseOffset) {
  auto flags = make_parser();
  const char* argv[] = {"prog", "subcmd", "--m=7"};
  flags.parse(3, argv, /*first=*/2);
  EXPECT_EQ(flags.get_size("m", 0), 7u);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagsTest, DuplicateDeclarationThrows) {
  FlagParser flags;
  flags.declare("x", "help");
  EXPECT_THROW(flags.declare("x", "again"), Error);
}

TEST(FlagsTest, UsageListsFlags) {
  const auto flags = make_parser();
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--m=<value>"), std::string::npos);
  EXPECT_NE(usage.find("--verify\n"), std::string::npos);
  EXPECT_NE(usage.find("bandwidth"), std::string::npos);
}

TEST(FlagsTest, QueryingUndeclaredFlagThrows) {
  auto flags = make_parser();
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_THROW(flags.get_bool("nope"), Error);
  EXPECT_THROW((void)flags.has("nope"), Error);
}

}  // namespace
}  // namespace ksum
