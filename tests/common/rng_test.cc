#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ksum {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.uniform(-2.5f, 3.5f);
    EXPECT_GE(x, -2.5f);
    EXPECT_LT(x, 3.5f);
  }
}

TEST(RngTest, UniformMeanIsCentred) {
  Rng rng(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += double(rng.uniform(0.0f, 1.0f));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsAreStandard) {
  Rng rng(42);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += double(rng.normal(10.0f, 0.5f));
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(11);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = parent.split(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace ksum
