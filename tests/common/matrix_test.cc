#include "common/matrix.h"

#include <gtest/gtest.h>

namespace ksum {
namespace {

TEST(MatrixTest, RowMajorIndexing) {
  Matrix m(3, 4, Layout::kRowMajor);
  EXPECT_EQ(m.index(0, 0), 0u);
  EXPECT_EQ(m.index(0, 3), 3u);
  EXPECT_EQ(m.index(1, 0), 4u);
  EXPECT_EQ(m.index(2, 3), 11u);
}

TEST(MatrixTest, ColMajorIndexing) {
  Matrix m(3, 4, Layout::kColMajor);
  EXPECT_EQ(m.index(0, 0), 0u);
  EXPECT_EQ(m.index(2, 0), 2u);
  EXPECT_EQ(m.index(0, 1), 3u);
  EXPECT_EQ(m.index(2, 3), 11u);
}

TEST(MatrixTest, AtRoundTripsBothLayouts) {
  for (Layout layout : {Layout::kRowMajor, Layout::kColMajor}) {
    Matrix m(5, 7, layout);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 7; ++c) {
        m.at(r, c) = float(r * 100 + c);
      }
    }
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 7; ++c) {
        EXPECT_EQ(m.at(r, c), float(r * 100 + c));
      }
    }
  }
}

TEST(MatrixTest, LayoutsProduceDistinctLinearOrder) {
  Matrix rm(2, 2, Layout::kRowMajor);
  Matrix cm(2, 2, Layout::kColMajor);
  rm.at(0, 1) = 1.0f;
  cm.at(0, 1) = 1.0f;
  EXPECT_EQ(rm.data()[1], 1.0f);
  EXPECT_EQ(cm.data()[2], 1.0f);
}

TEST(MatrixTest, FillAndSize) {
  Matrix m(4, 4, Layout::kRowMajor);
  m.fill(3.0f);
  EXPECT_EQ(m.size(), 16u);
  for (float x : m.span()) EXPECT_EQ(x, 3.0f);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace ksum
