// Minimal property-based testing harness for the repo's gtest suites.
//
// A property is checked over `iterations` generated cases. Each iteration
// derives its own seed from the config seed, so a failure report names the
// exact seed to replay. Cases are built by a caller-supplied factory
// `make(gen, scale)` where `scale` bounds the case size; on a failure the
// harness shrinks by halving `scale` and regenerating from the SAME seed,
// and reports the smallest scale that still falsifies the property —
// deterministic shrinking without storing intermediate cases.
//
//   prop::Config config;           // seed, iterations, max_scale
//   prop::check("w-linearity", config,
//               [](prop::Gen& g, std::size_t scale) { return make_case(g, scale); },
//               [](const Case& c) { return holds(c); });
//
// The harness never reuses RNG state across iterations or scales: every
// (seed, scale) pair regenerates the case from scratch, so a reported
// failure is replayable with two numbers.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace ksum::prop {

/// Deterministic case generator — a thin veneer over the repo Rng with the
/// bounded draws property tests want.
class Gen {
 public:
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  std::uint64_t next_u64() { return rng_.next_u64(); }

  /// Uniform integer in [lo, hi], inclusive.
  std::size_t size_in(std::size_t lo, std::size_t hi) {
    KSUM_DCHECK(lo <= hi);
    return lo + rng_.next_below(hi - lo + 1);
  }

  int int_in(int lo, int hi) {
    return lo + static_cast<int>(
                    rng_.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  float float_in(float lo, float hi) { return rng_.uniform(lo, hi); }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    KSUM_DCHECK(!items.empty());
    return items[rng_.next_below(items.size())];
  }

 private:
  Rng rng_;
};

struct Config {
  std::uint64_t seed = 1;
  int iterations = 10;
  /// Upper bound handed to the case factory; shrinking halves it.
  std::size_t max_scale = 256;
};

/// Checks `property(make(gen, scale))` over `config.iterations` seeded
/// cases. `make` must be a pure function of (gen, scale) and `property`
/// must return true when the case satisfies the property. On the first
/// falsified case the harness shrinks scale by halving (regenerating from
/// the same seed each time), emits one gtest failure naming the seed and
/// the smallest failing scale, and returns.
template <typename MakeCase, typename Property>
void check(const std::string& name, const Config& config,
           const MakeCase& make, const Property& property) {
  for (int it = 0; it < config.iterations; ++it) {
    const std::uint64_t seed =
        config.seed ^ (std::uint64_t{0x9e3779b97f4a7c15} *
                       static_cast<std::uint64_t>(it + 1));
    const auto holds_at = [&](std::size_t scale) {
      Gen gen(seed);
      return property(make(gen, scale));
    };
    if (holds_at(config.max_scale)) continue;

    std::size_t failing = config.max_scale;
    for (std::size_t scale = config.max_scale / 2; scale >= 1; scale /= 2) {
      if (holds_at(scale)) break;  // passes smaller — previous scale is minimal
      failing = scale;
      if (scale == 1) break;
    }
    ADD_FAILURE() << name << ": falsified at iteration " << it << ", seed "
                  << seed << "; smallest failing scale " << failing << " (of "
                  << config.max_scale << ") — replay with prop::Gen(" << seed
                  << ") at scale " << failing;
    return;
  }
}

}  // namespace ksum::prop
