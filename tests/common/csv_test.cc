#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace ksum {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ksum_csv_test.csv";
};

TEST_F(CsvTest, WritesRows) {
  {
    CsvWriter w(path_);
    w.write_row({"k", "m", "speedup"});
    w.write_row({"32", "1024", "1.8"});
  }
  EXPECT_EQ(read_file(path_), "k,m,speedup\n32,1024,1.8\n");
  std::remove(path_.c_str());
}

TEST_F(CsvTest, EscapesCommasAndQuotes) {
  {
    CsvWriter w(path_);
    w.write_row({"a,b", "say \"hi\"", "line\nbreak"});
  }
  EXPECT_EQ(read_file(path_), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
  std::remove(path_.c_str());
}

TEST_F(CsvTest, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), Error);
}

}  // namespace
}  // namespace ksum
