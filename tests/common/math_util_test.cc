#include "common/math_util.h"

#include <gtest/gtest.h>

namespace ksum {
namespace {

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div<std::size_t>(524288, 128), 4096u);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(round_up(0, 128), 0);
  EXPECT_EQ(round_up(1, 128), 128);
  EXPECT_EQ(round_up(128, 128), 128);
  EXPECT_EQ(round_up(129, 128), 256);
}

TEST(MathUtilTest, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1536));
}

TEST(MathUtilTest, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(2), 1);
  EXPECT_EQ(log2_exact(32), 5);
  EXPECT_EQ(log2_exact(131072), 17);
}

TEST(MathUtilTest, RelErr) {
  EXPECT_DOUBLE_EQ(rel_err(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_err(1.1, 1.0), 0.1, 1e-12);
  // Near-zero reference uses the floor, not a division by ~0.
  EXPECT_LT(rel_err(1e-31, 0.0, 1e-30), 1.0);
}

class CeilDivPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CeilDivPropertyTest, InverseOfMultiplication) {
  const int b = GetParam();
  for (int a = 0; a < 300; ++a) {
    const int q = ceil_div(a, b);
    EXPECT_GE(q * b, a);
    EXPECT_LT((q - 1) * b, a) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, CeilDivPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 8, 32, 128));

}  // namespace
}  // namespace ksum
