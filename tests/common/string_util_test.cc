#include "common/string_util.h"

#include <gtest/gtest.h>

namespace ksum {
namespace {

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(str_format("x=%d", 42), "x=42");
  EXPECT_EQ(str_format("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(str_format("empty"), "empty");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  const std::string big(500, 'x');
  EXPECT_EQ(str_format("%s", big.c_str()).size(), 500u);
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(format_fixed(1.8349, 2), "1.83");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(StringUtilTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.325), "32.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(0.08349, 2), "8.35%");
}

TEST(StringUtilTest, FormatSi) {
  EXPECT_EQ(format_si(950.0), "950.00");
  EXPECT_EQ(format_si(1234.0), "1.23K");
  EXPECT_EQ(format_si(5.2e9), "5.20G");
  EXPECT_EQ(format_si(-2000.0), "-2.00K");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 4), "abcde");
  EXPECT_EQ(pad_right("abcde", 4), "abcde");
}

}  // namespace
}  // namespace ksum
