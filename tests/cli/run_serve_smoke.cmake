# Drives a stdin-fed daemon run and asserts on exit code and output.
#
#   cmake -DCMD="<prog> <args...>" -DINPUT_FILE=<trace.jsonl>
#         -DEXPECT_RC=<n> [-DEXPECT_OUTPUTS=<substr>|<substr>|...]
#         [-DFORBID_OUTPUTS=<substr>|...] -P run_serve_smoke.cmake
#
# Like expect_exit.cmake, but the command reads the trace file on stdin
# (ksum-serve --stdio drains at EOF) and multiple literal substrings can be
# required at once, '|'-separated — a full protocol smoke in one process.
separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(
  COMMAND ${cmd_list}
  INPUT_FILE ${INPUT_FILE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc STREQUAL "${EXPECT_RC}")
  message(FATAL_ERROR
    "expected exit code ${EXPECT_RC}, got ${rc}\n--- command: ${CMD}\n"
    "--- stdout:\n${out}\n--- stderr:\n${err}")
endif()

if(DEFINED EXPECT_OUTPUTS)
  string(REPLACE "|" ";" expect_list "${EXPECT_OUTPUTS}")
  foreach(needle IN LISTS expect_list)
    string(FIND "${out}${err}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR
        "output does not contain \"${needle}\"\n--- command: ${CMD}\n"
        "--- stdout:\n${out}\n--- stderr:\n${err}")
    endif()
  endforeach()
endif()

if(DEFINED FORBID_OUTPUTS)
  string(REPLACE "|" ";" forbid_list "${FORBID_OUTPUTS}")
  foreach(needle IN LISTS forbid_list)
    string(FIND "${out}${err}" "${needle}" found)
    if(NOT found EQUAL -1)
      message(FATAL_ERROR
        "output must not contain \"${needle}\"\n--- command: ${CMD}\n"
        "--- stdout:\n${out}\n--- stderr:\n${err}")
    endif()
  endforeach()
endif()
