# Runs a command line and asserts on its exit code and output.
#
#   cmake -DCMD="<prog> <args...>" -DEXPECT_RC=<n> [-DEXPECT_OUTPUT=<substr>]
#         -P expect_exit.cmake
#
# EXPECT_OUTPUT is a literal substring searched for in stdout+stderr (no
# regex, so usage strings with brackets compare verbatim). The CLI exit-code
# contract under test: 0 ok, 1 verification/recovery failure, 2 invalid
# input or usage, 3 internal error.
separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(
  COMMAND ${cmd_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc STREQUAL "${EXPECT_RC}")
  message(FATAL_ERROR
    "expected exit code ${EXPECT_RC}, got ${rc}\n--- command: ${CMD}\n"
    "--- stdout:\n${out}\n--- stderr:\n${err}")
endif()

if(DEFINED EXPECT_OUTPUT)
  string(FIND "${out}${err}" "${EXPECT_OUTPUT}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "output does not contain \"${EXPECT_OUTPUT}\"\n--- command: ${CMD}\n"
      "--- stdout:\n${out}\n--- stderr:\n${err}")
  endif()
endif()
