// The device-profile subsystem: built-in registry (names, order, gtx970
// bit-identity with the config factories), the ksum-device-profile-v1
// schema (strict validation, unknown-key rejection, byte-identical
// round-trip), file loading, and the resolve() surface the --profile flags
// share. Every built-in must also actually run a solve — a profile that
// validates but cannot launch the paper kernels would be useless.
#include "config/profiles/device_profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.h"
#include "core/exact.h"
#include "pipelines/solver.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using config::profiles::DeviceProfile;

TEST(DeviceProfileTest, BuiltinNamesAreTheFixedCiOrder) {
  const auto& names = config::profiles::builtin_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "gtx970");
  EXPECT_EQ(names[1], "titanx-maxwell");
  EXPECT_EQ(names[2], "modern");
  for (const auto& name : names) {
    EXPECT_TRUE(config::profiles::is_builtin(name)) << name;
  }
  EXPECT_FALSE(config::profiles::is_builtin("gtx980"));
  EXPECT_FALSE(config::profiles::is_builtin(""));
}

TEST(DeviceProfileTest, Gtx970IsBitIdenticalToTheConfigFactories) {
  // The default profile must reproduce the paper machine exactly: a profile
  // assembled from the pre-profile factories serialises to the same bytes.
  const auto builtin = config::profiles::gtx970();
  DeviceProfile factory;
  factory.name = builtin.name;
  factory.description = builtin.description;
  factory.device = config::DeviceSpec::gtx970();
  factory.timing = config::TimingSpec::gtx970();
  factory.energy = config::EnergySpec::gtx970_mcpat();
  EXPECT_EQ(config::profiles::to_json(builtin).dump(),
            config::profiles::to_json(factory).dump());
}

TEST(DeviceProfileTest, BuiltinsValidateAndDiffer) {
  const auto gtx = config::profiles::builtin("gtx970");
  const auto titanx = config::profiles::builtin("titanx-maxwell");
  const auto modern = config::profiles::builtin("modern");
  EXPECT_NO_THROW(gtx.validate());
  EXPECT_NO_THROW(titanx.validate());
  EXPECT_NO_THROW(modern.validate());
  // Architecturally distinct machines, not renamed copies.
  EXPECT_GT(titanx.device.num_sms, gtx.device.num_sms);
  EXPECT_GT(modern.device.num_sms, titanx.device.num_sms);
  EXPECT_NE(config::profiles::to_json(gtx).dump(),
            config::profiles::to_json(titanx).dump());
  EXPECT_NE(config::profiles::to_json(titanx).dump(),
            config::profiles::to_json(modern).dump());
}

TEST(DeviceProfileTest, UnknownBuiltinErrorListsTheOptions) {
  try {
    config::profiles::builtin("gtx980");
    FAIL() << "expected ksum::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gtx970"), std::string::npos) << what;
    EXPECT_NE(what.find("titanx-maxwell"), std::string::npos) << what;
    EXPECT_NE(what.find("modern"), std::string::npos) << what;
  }
}

TEST(DeviceProfileTest, ValidateRejectsBadNames) {
  auto p = config::profiles::gtx970();
  p.name = "";
  EXPECT_THROW(p.validate(), Error);
  p.name = "has space";
  EXPECT_THROW(p.validate(), Error);
  p.name = "tab\tname";
  EXPECT_THROW(p.validate(), Error);
  p.name = "custom-4.2_ok";
  EXPECT_NO_THROW(p.validate());
}

TEST(DeviceProfileTest, JsonRoundTripIsByteIdenticalForEveryBuiltin) {
  for (const auto& name : config::profiles::builtin_names()) {
    const auto profile = config::profiles::builtin(name);
    const auto once = config::profiles::to_json(profile);
    const auto reloaded = config::profiles::from_json(once);
    const auto twice = config::profiles::to_json(reloaded);
    EXPECT_EQ(once.dump(), twice.dump())
        << name << ": to_json ∘ from_json ∘ to_json must be the identity";
    EXPECT_EQ(reloaded.name, profile.name);
    EXPECT_EQ(once.at("schema").as_string(), "ksum-device-profile-v1");
  }
}

TEST(DeviceProfileTest, ValidatorRejectsUnknownAndMissingKeys) {
  const auto good = config::profiles::to_json(config::profiles::gtx970());
  EXPECT_NO_THROW(config::profiles::validate_device_profile_json(good));
  {
    auto bad = profile::Json::parse(good.dump());
    bad.set("vendor", profile::Json("nvidia"));  // unknown top-level key
    EXPECT_THROW(config::profiles::validate_device_profile_json(bad), Error);
  }
  {
    auto device = profile::Json::parse(good.dump()).at("device");
    device.set("chiplets", profile::Json(2.0));  // unknown nested key
    auto bad = profile::Json::parse(good.dump());
    bad.set("device", device);
    EXPECT_THROW(config::profiles::validate_device_profile_json(bad), Error);
  }
  {
    // Every field is required: rebuild without "timing".
    auto bad = profile::Json::object();
    bad.set("schema", good.at("schema"));
    bad.set("name", good.at("name"));
    bad.set("description", good.at("description"));
    bad.set("device", good.at("device"));
    bad.set("energy", good.at("energy"));
    EXPECT_THROW(config::profiles::validate_device_profile_json(bad), Error);
  }
  {
    auto bad = profile::Json::parse(good.dump());
    bad.set("schema", profile::Json("ksum-device-profile-v2"));
    EXPECT_THROW(config::profiles::validate_device_profile_json(bad), Error);
  }
}

TEST(DeviceProfileTest, FileRoundTripAndResolve) {
  const auto titanx = config::profiles::builtin("titanx-maxwell");
  const std::string path = testing::TempDir() + "/ksum_profile_test.json";
  config::profiles::save(titanx, path);

  const auto loaded = config::profiles::load(path);
  EXPECT_EQ(config::profiles::to_json(loaded).dump(),
            config::profiles::to_json(titanx).dump());

  // resolve() takes a built-in name or a file path.
  const auto by_name = config::profiles::resolve("titanx-maxwell");
  const auto by_path = config::profiles::resolve(path);
  EXPECT_EQ(config::profiles::to_json(by_name).dump(),
            config::profiles::to_json(by_path).dump());
  std::remove(path.c_str());

  EXPECT_THROW(config::profiles::load("/no/such/profile.json"), Error);
  try {
    config::profiles::resolve("no-such-profile");
    FAIL() << "expected ksum::Error";
  } catch (const Error& e) {
    // The CLI surfaces this message; it must list the built-ins.
    EXPECT_NE(std::string(e.what()).find("gtx970"), std::string::npos);
  }
}

TEST(DeviceProfileTest, LoadRejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/ksum_profile_bad.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"schema\":\"ksum-device-profile-v1\",\"name\":\"x\"}";
  }
  EXPECT_THROW(config::profiles::load(path), Error);
  {
    std::ofstream out(path, std::ios::binary);
    out << "not json at all";
  }
  EXPECT_THROW(config::profiles::load(path), Error);
  std::remove(path.c_str());
}

TEST(DeviceProfileTest, EveryBuiltinRunsTheFusedPipeline) {
  // The smoke contract behind the CI matrix: each built-in's specs must
  // carry a real solve end to end, and the functional result must not
  // depend on the architecture (the simulator is bit-deterministic; only
  // time and energy move across profiles).
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  spec.seed = 42;
  const auto instance = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);
  const auto oracle =
      pipelines::solve(instance, params, pipelines::Backend::kCpuDirect);

  for (const auto& name : config::profiles::builtin_names()) {
    const auto profile = config::profiles::builtin(name);
    pipelines::RunOptions options;
    options.device = profile.device;
    options.timing = profile.timing;
    options.energy = profile.energy;
    const auto result = pipelines::solve(instance, params,
                                         pipelines::Backend::kSimFused,
                                         options);
    ASSERT_EQ(result.v.size(), spec.m) << name;
    ASSERT_TRUE(result.report.has_value()) << name;
    EXPECT_GT(result.report->seconds, 0) << name;
    EXPECT_GT(result.report->energy.total(), 0) << name;
    for (std::size_t i = 0; i < result.v.size(); ++i) {
      ASSERT_NEAR(result.v[i], oracle.v[i], 5e-3f * std::abs(oracle.v[i]) +
                                                1e-2f)
          << name << " diverged from the host oracle at V[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace ksum
