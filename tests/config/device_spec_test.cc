#include "config/device_spec.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum::config {
namespace {

TEST(DeviceSpecTest, Gtx970MatchesPaperTableI) {
  const DeviceSpec spec = DeviceSpec::gtx970();
  EXPECT_EQ(spec.num_sms, 13);
  EXPECT_EQ(spec.max_threads_per_block, 1024);
  EXPECT_EQ(spec.warp_size, 32);
  EXPECT_EQ(spec.max_threads_per_sm, 2048);
  EXPECT_EQ(spec.registers_per_sm, 64 * 1024);
  EXPECT_EQ(spec.max_registers_per_thread, 255);
  EXPECT_EQ(spec.smem_per_sm_bytes, 96u * 1024u);
  EXPECT_EQ(spec.smem_bank_width_bytes, 4);
  EXPECT_EQ(spec.smem_num_banks, 32);
  EXPECT_EQ(spec.num_warp_schedulers, 4);
  EXPECT_EQ(spec.l2_bytes, 1792u * 1024u);  // 1.75 MB
}

TEST(DeviceSpecTest, PeakFlopsIsLanesTimesTwoTimesClock) {
  const DeviceSpec spec = DeviceSpec::gtx970();
  // 13 SMs × 128 lanes × 2 × 1.05 GHz ≈ 3.49 TFLOP/s.
  EXPECT_NEAR(spec.peak_sp_flops(), 3.494e12, 1e10);
}

TEST(DeviceSpecTest, DerivedRates) {
  const DeviceSpec spec = DeviceSpec::gtx970();
  EXPECT_DOUBLE_EQ(spec.fma_slots_per_cycle(), 13.0 * 128.0);
  EXPECT_NEAR(spec.dram_bytes_per_cycle(), 196.0 / 1.05, 1e-9);
  EXPECT_DOUBLE_EQ(spec.smem_bytes_per_cycle_per_sm(), 128.0);
}

TEST(DeviceSpecTest, ValidateRejectsBadConfigs) {
  DeviceSpec spec = DeviceSpec::gtx970();
  spec.num_sms = 0;
  EXPECT_THROW(spec.validate(), Error);

  spec = DeviceSpec::gtx970();
  spec.warp_size = 33;
  EXPECT_THROW(spec.validate(), Error);

  spec = DeviceSpec::gtx970();
  spec.max_threads_per_block = 1000;  // not warp aligned
  EXPECT_THROW(spec.validate(), Error);

  spec = DeviceSpec::gtx970();
  spec.l2_line_bytes = 100;  // not whole sectors
  EXPECT_THROW(spec.validate(), Error);

  spec = DeviceSpec::gtx970();
  spec.core_clock_ghz = 0.0;
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
}  // namespace ksum::config
