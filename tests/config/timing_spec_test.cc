#include "config/timing_spec.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum::config {
namespace {

TEST(TimingSpecTest, DefaultIsValid) {
  EXPECT_NO_THROW(TimingSpec::gtx970());
}

TEST(TimingSpecTest, GradesOrdered) {
  const KernelGrade cuda = KernelGrade::cuda_c();
  const KernelGrade sass = KernelGrade::assembly();
  // The hand-scheduled grade must dominate on every axis — this is what
  // produces the paper's Fig. 7 gap.
  EXPECT_LT(cuda.base_issue_efficiency, sass.base_issue_efficiency);
  EXPECT_GT(cuda.prologue_equiv_iters, sass.prologue_equiv_iters);
  EXPECT_LE(cuda.single_cta_penalty, sass.single_cta_penalty);
}

TEST(TimingSpecTest, GradeEfficienciesAreFractions) {
  for (const KernelGrade& g :
       {KernelGrade::cuda_c(), KernelGrade::assembly()}) {
    EXPECT_GT(g.base_issue_efficiency, 0.0);
    EXPECT_LE(g.base_issue_efficiency, 1.0);
    EXPECT_GT(g.single_cta_penalty, 0.0);
    EXPECT_LE(g.single_cta_penalty, 1.0);
    EXPECT_GE(g.prologue_equiv_iters, 0.0);
  }
}

TEST(TimingSpecTest, ValidateRejectsBadDramEfficiency) {
  TimingSpec spec = TimingSpec::gtx970();
  spec.dram_efficiency = 0.0;
  EXPECT_THROW(spec.validate(), Error);
  spec.dram_efficiency = 1.5;
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
}  // namespace ksum::config
