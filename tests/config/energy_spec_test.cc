#include "config/energy_spec.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum::config {
namespace {

TEST(EnergySpecTest, DefaultIsValid) {
  EXPECT_NO_THROW(EnergySpec::gtx970_mcpat());
}

TEST(EnergySpecTest, CostsOrderedByHierarchyLevel) {
  const EnergySpec spec = EnergySpec::gtx970_mcpat();
  // Moving data further costs more — the premise of the whole paper.
  EXPECT_LT(spec.smem_access_pj, spec.l2_access_pj);
  EXPECT_LT(spec.l2_access_pj, spec.dram_access_pj);
}

TEST(EnergySpecTest, ValidateRejectsInvertedHierarchy) {
  EnergySpec spec = EnergySpec::gtx970_mcpat();
  spec.dram_access_pj = spec.l2_access_pj / 2;
  EXPECT_THROW(spec.validate(), Error);
}

TEST(EnergySpecTest, ValidateRejectsNonPositiveEnergies) {
  EnergySpec spec = EnergySpec::gtx970_mcpat();
  spec.fma_pj = 0.0;
  EXPECT_THROW(spec.validate(), Error);

  spec = EnergySpec::gtx970_mcpat();
  spec.static_power_w = -1.0;
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
}  // namespace ksum::config
