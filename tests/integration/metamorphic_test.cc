// Metamorphic properties of the kernel summation V_i = Σ_j K(α_i, β_j)·W_j,
// checked through the property-based harness (tests/common/prop.h) across
// the simulated backends, the host oracle, and autotuner-vetted tile
// geometries that differ from the paper default:
//
//   * permuting the targets (with their weights) leaves V unchanged,
//   * scaling W by α scales V by α,
//   * as h → ∞ the Gaussian kernel flattens to 1 and V_i → Σ_j W_j,
//   * duplicating every target (with its weight) doubles V.
//
// Transformed runs change the float accumulation order, so agreement is to
// round-off, not bit-exact: max_rel_diff with the 1e-2 absolute floor,
// bounded at the repo-wide 5e-3 (docs/TESTING.md). Shapes are deliberately
// ragged — the generator draws any m, n in [1, scale] — so every property
// also crosses the lcm padding path with non-paper tile geometries.
#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "blas/vector_ops.h"
#include "common/prop.h"
#include "core/exact.h"
#include "pipelines/solver.h"
#include "tune/tile_search.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;

constexpr double kTol = 5e-3;

struct Runner {
  std::string name;
  Backend backend;
  gpukernels::TileGeometry geometry;  // only read by the simulated backends
};

// The backends × geometries every property runs under: host oracle, the
// unfused pipeline, and the fused pipeline at the paper geometry plus two
// autotuner-vetted non-paper geometries (one small square tile, one
// rectangular) — all verified viable against the GTX 970 budgets so the
// pipelines would actually launch.
const std::vector<Runner>& runners() {
  static const std::vector<Runner> kRunners = [] {
    std::vector<Runner> r;
    r.push_back({"cpu-direct", Backend::kCpuDirect, {}});
    r.push_back({"cuda-unfused", Backend::kSimCudaUnfused, {}});
    r.push_back({"fused/paper", Backend::kSimFused, {}});
    const auto device = config::DeviceSpec::gtx970();
    for (const auto& verdict : tune::evaluate_candidates(device)) {
      const auto& g = verdict.geometry;
      if (!verdict.viable || g.is_paper()) continue;
      const bool small_square = g.tile_m == 32 && g.tile_n == 32;
      const bool rectangular = g.tile_m == 128 && g.tile_n == 64;
      if ((small_square || rectangular) && g.tile_k == 8) {
        r.push_back({"fused/" + g.to_string(), Backend::kSimFused, g});
      }
    }
    EXPECT_EQ(r.size(), 5u) << "expected two non-paper tuned geometries";
    return r;
  }();
  return kRunners;
}

struct Case {
  workload::Instance instance;
  core::KernelParams params;
  float alpha = 1.0f;  // W-scaling factor drawn by the generator
};

Case make_case(prop::Gen& gen, std::size_t scale) {
  workload::ProblemSpec spec;
  spec.m = gen.size_in(1, scale);
  spec.n = gen.size_in(1, scale);
  spec.k = gen.size_in(1, 16);
  spec.seed = gen.next_u64() % 100000;
  spec.bandwidth = gen.float_in(0.5f, 4.0f);
  Case c;
  c.instance = workload::make_instance(spec);
  c.params = core::params_from_spec(spec);
  c.alpha = gen.float_in(0.25f, 4.0f);
  return c;
}

Vector run(const Runner& runner, const workload::Instance& instance,
           const core::KernelParams& params) {
  pipelines::RunOptions options;
  options.mainloop.geometry = runner.geometry;
  return pipelines::solve(instance, params, runner.backend, options).v;
}

double diff(const Vector& a, const Vector& b) {
  return blas::max_rel_diff(a.span(), b.span(), 1e-2);
}

// Permutes the targets and their weights with a deterministic stride
// coprime to n (a cyclic relabeling — every j moves unless n == 1).
workload::Instance permute_targets(const workload::Instance& in) {
  const std::size_t n = in.spec.n, k = in.spec.k;
  std::size_t stride = 1;
  for (const std::size_t s : {std::size_t{7}, std::size_t{5}, std::size_t{3},
                              std::size_t{2}}) {
    if (n % s != 0) {
      stride = s;
      break;
    }
  }
  workload::Instance out;
  out.spec = in.spec;
  out.a = in.a;
  out.b = Matrix(k, n, Layout::kColMajor);
  out.w = Vector(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = (j * stride) % n;
    for (std::size_t r = 0; r < k; ++r) out.b.at(r, j) = in.b.at(r, src);
    out.w[j] = in.w[src];
  }
  return out;
}

workload::Instance scale_weights(const workload::Instance& in, float alpha) {
  workload::Instance out;
  out.spec = in.spec;
  out.a = in.a;
  out.b = in.b;
  out.w = Vector(in.spec.n);
  for (std::size_t j = 0; j < in.spec.n; ++j) out.w[j] = in.w[j] * alpha;
  return out;
}

// Every target appears twice, weights copied along — V must double.
workload::Instance duplicate_targets(const workload::Instance& in) {
  const std::size_t n = in.spec.n, k = in.spec.k;
  workload::Instance out;
  out.spec = in.spec;
  out.spec.n = 2 * n;
  out.a = in.a;
  out.b = Matrix(k, 2 * n, Layout::kColMajor);
  out.w = Vector(2 * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t r = 0; r < k; ++r) {
      out.b.at(r, j) = in.b.at(r, j);
      out.b.at(r, n + j) = in.b.at(r, j);
    }
    out.w[j] = in.w[j];
    out.w[n + j] = in.w[j];
  }
  return out;
}

prop::Config config() {
  prop::Config c;
  c.seed = 20260806;
  c.iterations = 8;
  c.max_scale = 192;
  return c;
}

TEST(MetamorphicTest, TargetPermutationLeavesVUnchanged) {
  for (const auto& runner : runners()) {
    prop::check(
        "permutation/" + runner.name, config(), make_case,
        [&](const Case& c) {
          const auto base = run(runner, c.instance, c.params);
          const auto permuted =
              run(runner, permute_targets(c.instance), c.params);
          return diff(base, permuted) < kTol;
        });
  }
}

TEST(MetamorphicTest, WeightScalingIsLinear) {
  for (const auto& runner : runners()) {
    prop::check(
        "w-linearity/" + runner.name, config(), make_case,
        [&](const Case& c) {
          auto base = run(runner, c.instance, c.params);
          const auto scaled =
              run(runner, scale_weights(c.instance, c.alpha), c.params);
          for (std::size_t i = 0; i < base.size(); ++i) base[i] *= c.alpha;
          return diff(base, scaled) < kTol;
        });
  }
}

TEST(MetamorphicTest, InfiniteBandwidthSumsTheWeights) {
  for (const auto& runner : runners()) {
    prop::check(
        "h-limit/" + runner.name, config(), make_case,
        [&](const Case& c) {
          auto params = c.params;
          params.bandwidth = 1e6f;  // exp(-d²/h²) ≈ 1 to float precision
          const auto v = run(runner, c.instance, params);
          double wsum = 0;
          for (std::size_t j = 0; j < c.instance.spec.n; ++j) {
            wsum += double(c.instance.w[j]);
          }
          Vector expected(c.instance.spec.m);
          for (std::size_t i = 0; i < expected.size(); ++i) {
            expected[i] = float(wsum);
          }
          return diff(v, expected) < kTol;
        });
  }
}

TEST(MetamorphicTest, DuplicatedTargetsDoubleV) {
  for (const auto& runner : runners()) {
    prop::check(
        "duplication/" + runner.name, config(), make_case,
        [&](const Case& c) {
          auto base = run(runner, c.instance, c.params);
          const auto doubled =
              run(runner, duplicate_targets(c.instance), c.params);
          for (std::size_t i = 0; i < base.size(); ++i) base[i] *= 2.0f;
          return diff(base, doubled) < kTol;
        });
  }
}

// The harness itself: a deliberately broken property must shrink to the
// smallest failing scale and report the seed — checked here by running the
// shrink loop manually (we cannot assert on ADD_FAILURE from inside gtest
// without EXPECT_NONFATAL_FAILURE).
TEST(PropHarnessTest, ShrinksToSmallestFailingScale) {
  EXPECT_NONFATAL_FAILURE(
      {
        prop::Config c;
        c.seed = 7;
        c.iterations = 1;
        c.max_scale = 64;
        prop::check(
            "always-false-above-3", c,
            [](prop::Gen& gen, std::size_t scale) {
              return gen.size_in(scale, scale);  // the case IS the scale
            },
            [](std::size_t scale) { return scale < 4; });
      },
      "smallest failing scale 4");
}

TEST(PropHarnessTest, PassingPropertyReportsNothing) {
  prop::Config c;
  c.iterations = 4;
  prop::check(
      "tautology", c,
      [](prop::Gen& gen, std::size_t scale) { return gen.size_in(1, scale); },
      [](std::size_t) { return true; });
}

TEST(PropHarnessTest, GenIsDeterministicPerSeed) {
  prop::Gen a(123), b(123), c(124);
  const auto x = a.next_u64();
  EXPECT_EQ(x, b.next_u64());
  EXPECT_NE(x, c.next_u64());
  EXPECT_GE(a.size_in(3, 9), 3u);
  EXPECT_LE(b.size_in(3, 9), 9u);
}

}  // namespace
}  // namespace ksum
