// Cross-module integration: every backend on the same problems, adversarial
// workloads, and consistency between the solver facade and the raw
// pipelines.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/vector_ops.h"
#include "pipelines/solver.h"
#include "workload/weights.h"

namespace ksum {
namespace {

using pipelines::Backend;

workload::Instance make_inst(std::size_t m, std::size_t n, std::size_t k,
                             workload::Distribution dist,
                             workload::WeightKind weights) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.distribution = dist;
  spec.seed = 81;
  spec.bandwidth = 0.75f;
  auto inst = workload::make_instance(spec);
  inst.w = workload::generate_weights(n, weights, Rng(spec.seed).split(9));
  return inst;
}

struct E2ECase {
  workload::Distribution dist;
  workload::WeightKind weights;
};

class EndToEndTest : public ::testing::TestWithParam<E2ECase> {};

TEST_P(EndToEndTest, AllBackendsAgreeOnAdversarialWorkloads) {
  const auto p = GetParam();
  const auto inst = make_inst(256, 128, 16, p.dist, p.weights);
  const auto params = core::params_from_spec(inst.spec);
  const auto ref = pipelines::solve(inst, params, Backend::kCpuDirect);

  for (Backend backend : {Backend::kCpuExpansion, Backend::kSimFused,
                          Backend::kSimCudaUnfused,
                          Backend::kSimCublasUnfused}) {
    const auto out = pipelines::solve(inst, params, backend);
    // Alternating weights cancel heavily; compare with an absolute floor
    // sized to the summation magnitude.
    const double tol =
        p.weights == workload::WeightKind::kAlternating ? 2e-2 : 5e-3;
    EXPECT_LT(blas::max_rel_diff(out.v.span(), ref.v.span(), 1e-2), tol)
        << to_string(backend) << " on " << workload::to_string(p.dist)
        << " / " << workload::to_string(p.weights);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EndToEndTest,
    ::testing::Values(
        E2ECase{workload::Distribution::kUniformCube,
                workload::WeightKind::kUniform},
        E2ECase{workload::Distribution::kGaussianMixture,
                workload::WeightKind::kUniform},
        E2ECase{workload::Distribution::kUnitSphere,
                workload::WeightKind::kOnes},
        E2ECase{workload::Distribution::kGrid,
                workload::WeightKind::kUniform},
        E2ECase{workload::Distribution::kUniformCube,
                workload::WeightKind::kAlternating},
        E2ECase{workload::Distribution::kGaussianMixture,
                workload::WeightKind::kOnes}));

TEST(EndToEndTest, TinyWeightsDoNotUnderflowToGarbage) {
  const auto inst = make_inst(128, 128, 8, workload::Distribution::kUniformCube,
                              workload::WeightKind::kTiny);
  const auto params = core::params_from_spec(inst.spec);
  const auto ref = pipelines::solve(inst, params, Backend::kCpuDirect);
  const auto out = pipelines::solve(inst, params, Backend::kSimFused);
  for (std::size_t i = 0; i < out.v.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.v[i]));
  }
  // Relative agreement at the tiny scale.
  EXPECT_LT(blas::max_rel_diff(out.v.span(), ref.v.span(), 1e-35), 1e-2);
}

TEST(EndToEndTest, WideBandwidthSweep) {
  // Very small h → kernel matrix is nearly diagonal-zero (all far points
  // collapse to 0); very large h → all-ones. Both ends must stay accurate.
  for (float h : {0.05f, 0.5f, 5.0f, 100.0f}) {
    workload::ProblemSpec spec;
    spec.m = 128;
    spec.n = 128;
    spec.k = 8;
    spec.bandwidth = h;
    const auto inst = workload::make_instance(spec);
    const auto params = core::params_from_spec(spec);
    const auto ref = pipelines::solve(inst, params, Backend::kCpuDirect);
    const auto out = pipelines::solve(inst, params, Backend::kSimFused);
    EXPECT_LT(blas::max_rel_diff(out.v.span(), ref.v.span(), 1e-3), 1e-2)
        << "h=" << h;
  }
}

TEST(EndToEndTest, RepeatedRunsAreBitwiseStable) {
  const auto inst = make_inst(256, 128, 16, workload::Distribution::kUniformCube,
                              workload::WeightKind::kUniform);
  const auto params = core::params_from_spec(inst.spec);
  const auto a = pipelines::solve(inst, params, Backend::kSimFused);
  const auto b = pipelines::solve(inst, params, Backend::kSimFused);
  for (std::size_t i = 0; i < a.v.size(); ++i) EXPECT_EQ(a.v[i], b.v[i]);
  // And the counters are identical too.
  EXPECT_EQ(a.report->total.l2_total_transactions(),
            b.report->total.l2_total_transactions());
  EXPECT_EQ(a.report->total.dram_total_transactions(),
            b.report->total.dram_total_transactions());
}

TEST(EndToEndTest, SimulatedSolutionsAgreeWithEachOther) {
  const auto inst = make_inst(384, 256, 24, workload::Distribution::kUniformCube,
                              workload::WeightKind::kUniform);
  const auto params = core::params_from_spec(inst.spec);
  const auto fused = pipelines::solve(inst, params, Backend::kSimFused);
  const auto unfused =
      pipelines::solve(inst, params, Backend::kSimCublasUnfused);
  EXPECT_LT(blas::max_rel_diff(fused.v.span(), unfused.v.span(), 1e-3),
            1e-3);
}

}  // namespace
}  // namespace ksum
