// Differential fuzzing across the solver backends on seeded random shapes,
// deliberately including sizes that are not multiples of the 128×128 tile
// or the rank-8 mainloop step (the padding path in pipelines::solve).
//
// Tolerance: the simulated kernels and the host oracle evaluate the same
// float32 expression in different association orders, so results agree to
// accumulation round-off, not bit-exactly. We bound max_rel_diff with a
// 1e-2 absolute floor (entries below the floor are compared absolutely) at
// 5e-3 — the repo-wide bound for non-cancelling workloads, a few hundred
// float32 ULPs at these summation lengths (documented in docs/TESTING.md).
//
// The combos are embarrassingly parallel (each worker's pipelines build
// private Devices), so they run on the exec::ThreadPool: workers only
// compute per-case records into their own slot (exec::map_ordered), and all
// gtest assertions happen on the main thread afterwards, in submission
// order. KSUM_TEST_THREADS overrides the worker count (default: hardware
// concurrency) — results are identical for any value, only wall-clock
// changes. This suite is also the TSan job's main workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "blas/vector_ops.h"
#include "common/rng.h"
#include "config/device_spec.h"
#include "config/profiles/device_profile.h"
#include "core/exact.h"
#include "exec/batch_engine.h"
#include "pipelines/solver.h"
#include "shard/types.h"
#include "tune/tile_search.h"
#include "tune/tuning_cache.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;

int test_threads() {
  const char* env = std::getenv("KSUM_TEST_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1 && n <= exec::ThreadPool::kMaxThreads) return n;
  }
  return exec::ThreadPool::hardware_threads();
}

struct FuzzCase {
  std::size_t m, n, k;
  std::uint64_t seed;
};

// Full cross of the ragged/aligned extremes: 6 × 6 × 4 = 144 seeded combos
// (well past the 50 the test plan requires); each gets its own seed.
std::vector<FuzzCase> fuzz_cases() {
  const std::size_t ms[] = {1, 7, 127, 129, 200, 1000};
  const std::size_t ns[] = {1, 7, 127, 129, 200, 1000};
  const std::size_t ks[] = {1, 8, 9, 250};
  std::vector<FuzzCase> cases;
  std::uint64_t seed = 1000;
  for (std::size_t m : ms) {
    for (std::size_t n : ns) {
      for (std::size_t k : ks) {
        cases.push_back({m, n, k, seed++});
      }
    }
  }
  return cases;
}

double diff(const Vector& a, const Vector& b) {
  return blas::max_rel_diff(a.span(), b.span(), 1e-2);
}

constexpr double kTol = 5e-3;

// Everything a worker measures for one combo; gtest never runs off the main
// thread, so the workers fill these and the assertions replay them in order.
struct AgreeOutcome {
  std::string what;
  std::string unfused_name;
  std::size_t oracle_size = 0;
  std::size_t fused_size = 0;
  double fused_vs_oracle = 0;
  double unfused_vs_oracle = 0;
  double fused_vs_unfused = 0;
};

TEST(DifferentialFuzzTest, BackendsAgreeOnSeededRandomShapes) {
  const auto cases = fuzz_cases();
  ASSERT_GE(cases.size(), 50u);
  exec::ThreadPool pool(test_threads());
  const auto outcomes = exec::map_ordered(
      pool, cases.size(), [&](std::size_t index) {
        const FuzzCase& c = cases[index];
        workload::ProblemSpec spec;
        spec.m = c.m;
        spec.n = c.n;
        spec.k = c.k;
        spec.seed = c.seed;
        spec.bandwidth = 0.9f;
        const auto instance = workload::make_instance(spec);
        const auto params = core::params_from_spec(spec);

        AgreeOutcome out;
        out.what = spec.to_string();

        const auto oracle = pipelines::solve(instance, params,
                                             Backend::kCpuDirect);
        out.oracle_size = oracle.v.size();

        const auto fused = pipelines::solve(instance, params,
                                            Backend::kSimFused);
        out.fused_size = fused.v.size();
        out.fused_vs_oracle = diff(fused.v, oracle.v);

        // Alternate the unfused pipelines so every combo checks fused vs one
        // unfused vs the host oracle while the suite stays well under budget.
        const Backend unfused = index % 2 == 0 ? Backend::kSimCudaUnfused
                                               : Backend::kSimCublasUnfused;
        const auto baseline = pipelines::solve(instance, params, unfused);
        out.unfused_name = to_string(unfused);
        out.unfused_vs_oracle = diff(baseline.v, oracle.v);
        out.fused_vs_unfused = diff(fused.v, baseline.v);
        return out;
      });

  ASSERT_EQ(outcomes.size(), cases.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const AgreeOutcome& out = outcomes[i];
    ASSERT_EQ(out.oracle_size, cases[i].m) << out.what;
    ASSERT_EQ(out.fused_size, cases[i].m) << out.what;
    EXPECT_LT(out.fused_vs_oracle, kTol) << "fused on " << out.what;
    EXPECT_LT(out.unfused_vs_oracle, kTol)
        << out.unfused_name << " on " << out.what;
    EXPECT_LT(out.fused_vs_unfused, kTol)
        << "fused vs " << out.unfused_name << " on " << out.what;
  }
}

struct RobustOutcome {
  std::string what;
  bool has_report = false;
  bool checks_enabled = false;
  bool fault_detected = false;
  int attempts = 0;
  bool sizes_match = false;
  // -1 when the checksum fork left every element bit-identical, else the
  // first perturbed index.
  std::ptrdiff_t first_mismatch = -1;
};

TEST(DifferentialFuzzTest, RobustForkMatchesAndStaysQuiet) {
  // Every 4th combo re-runs fused with the ABFT checks + recovery policy
  // enabled on a fault-free device: the checksum fork must not perturb the
  // result and must raise no false positives (ragged shapes included — the
  // checks audit the padded run).
  const auto cases = fuzz_cases();
  std::vector<FuzzCase> picked;
  for (std::size_t i = 0; i < cases.size(); i += 4) picked.push_back(cases[i]);
  ASSERT_GE(picked.size(), 30u);

  exec::ThreadPool pool(test_threads());
  const auto outcomes = exec::map_ordered(
      pool, picked.size(), [&](std::size_t index) {
        const FuzzCase& c = picked[index];
        workload::ProblemSpec spec;
        spec.m = c.m;
        spec.n = c.n;
        spec.k = c.k;
        spec.seed = c.seed;
        spec.bandwidth = 0.9f;
        const auto instance = workload::make_instance(spec);
        const auto params = core::params_from_spec(spec);

        RobustOutcome out;
        out.what = spec.to_string();

        const auto plain =
            pipelines::solve(instance, params, Backend::kSimFused);

        pipelines::RunOptions robust;
        robust.recovery.enabled = true;  // forces checks on, as the CLI does
        const auto checked =
            pipelines::solve(instance, params, Backend::kSimFused, robust);

        out.has_report = checked.report.has_value();
        if (out.has_report) {
          out.checks_enabled = checked.report->robustness.checks_enabled;
          out.fault_detected = checked.report->robustness.fault_detected();
        }
        out.attempts = checked.recovery.attempts;
        out.sizes_match = checked.v.size() == plain.v.size();
        if (out.sizes_match) {
          for (std::size_t j = 0; j < plain.v.size(); ++j) {
            if (checked.v[j] != plain.v[j]) {
              out.first_mismatch = static_cast<std::ptrdiff_t>(j);
              break;
            }
          }
        }
        return out;
      });

  ASSERT_EQ(outcomes.size(), picked.size());
  for (const RobustOutcome& out : outcomes) {
    ASSERT_TRUE(out.has_report) << out.what;
    EXPECT_TRUE(out.checks_enabled) << out.what;
    EXPECT_FALSE(out.fault_detected)
        << "false positive on fault-free " << out.what;
    EXPECT_EQ(out.attempts, 1) << out.what;  // clean first try
    ASSERT_TRUE(out.sizes_match) << out.what;
    EXPECT_EQ(out.first_mismatch, -1)
        << "checksum fork perturbed V[" << out.first_mismatch << "] on "
        << out.what;
  }
}

struct GeometryOutcome {
  std::string what;
  std::string geometry;
  std::size_t fused_size = 0;
  double fused_vs_oracle = 0;
};

TEST(DifferentialFuzzTest, FusedMatchesOracleUnderRandomTunedGeometries) {
  // Every 3rd combo re-runs fused with a seeded-random tile geometry drawn
  // from the autotuner's viable set (the 24 survivors of the GTX 970
  // budgets), so the fuzz surface covers the whole launchable design space,
  // not just the paper default — including the lcm padding each non-128
  // tile forces.
  std::vector<gpukernels::TileGeometry> viable;
  for (const auto& verdict :
       tune::evaluate_candidates(config::DeviceSpec::gtx970())) {
    if (verdict.viable) viable.push_back(verdict.geometry);
  }
  ASSERT_GE(viable.size(), 10u);

  const auto cases = fuzz_cases();
  std::vector<FuzzCase> picked;
  for (std::size_t i = 0; i < cases.size(); i += 3) picked.push_back(cases[i]);
  ASSERT_GE(picked.size(), 40u);

  exec::ThreadPool pool(test_threads());
  const auto outcomes = exec::map_ordered(
      pool, picked.size(), [&](std::size_t index) {
        const FuzzCase& c = picked[index];
        workload::ProblemSpec spec;
        spec.m = c.m;
        spec.n = c.n;
        spec.k = c.k;
        spec.seed = c.seed;
        spec.bandwidth = 0.9f;
        const auto instance = workload::make_instance(spec);
        const auto params = core::params_from_spec(spec);

        // Per-case seeded draw keeps the geometry a pure function of the
        // case, independent of worker scheduling.
        Rng rng(c.seed * 7919 + 13);
        const auto& geometry = viable[rng.next_below(viable.size())];

        GeometryOutcome out;
        out.what = spec.to_string();
        out.geometry = geometry.to_string();

        const auto oracle =
            pipelines::solve(instance, params, Backend::kCpuDirect);
        pipelines::RunOptions options;
        options.mainloop.geometry = geometry;
        const auto fused =
            pipelines::solve(instance, params, Backend::kSimFused, options);
        out.fused_size = fused.v.size();
        out.fused_vs_oracle = diff(fused.v, oracle.v);
        return out;
      });

  ASSERT_EQ(outcomes.size(), picked.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const GeometryOutcome& out = outcomes[i];
    ASSERT_EQ(out.fused_size, picked[i].m)
        << out.what << " @ " << out.geometry;
    EXPECT_LT(out.fused_vs_oracle, kTol)
        << "fused @ " << out.geometry << " on " << out.what;
  }
}

struct ProfileOutcome {
  std::string what;
  std::size_t fused_size = 0;
  double fused_vs_oracle = 0;
  bool matches_gtx970 = true;
  bool report_present = false;
  double titanx_seconds = 0;
  double gtx970_seconds = 0;
};

TEST(DifferentialFuzzTest, FusedMatchesOracleUnderNonDefaultProfile) {
  // Every 4th combo (offset 2, so the subset differs from the robust leg)
  // re-runs fused under the titanx-maxwell profile. The functional
  // contract is architecture-independence: the simulated kernels compute
  // the same float32 expression in the same order whatever the device
  // geometry, so the result must stay within the oracle tolerance AND be
  // byte-identical to the gtx970 run — only modelled time and energy may
  // move with the profile.
  const auto titanx = config::profiles::builtin("titanx-maxwell");
  const auto cases = fuzz_cases();
  std::vector<FuzzCase> picked;
  for (std::size_t i = 2; i < cases.size(); i += 4) {
    picked.push_back(cases[i]);
  }
  ASSERT_GE(picked.size(), 30u);

  exec::ThreadPool pool(test_threads());
  const auto outcomes = exec::map_ordered(
      pool, picked.size(), [&](std::size_t index) {
        const FuzzCase& c = picked[index];
        workload::ProblemSpec spec;
        spec.m = c.m;
        spec.n = c.n;
        spec.k = c.k;
        spec.seed = c.seed;
        spec.bandwidth = 0.9f;
        const auto instance = workload::make_instance(spec);
        const auto params = core::params_from_spec(spec);

        ProfileOutcome out;
        out.what = spec.to_string();

        const auto oracle =
            pipelines::solve(instance, params, Backend::kCpuDirect);
        const auto reference =
            pipelines::solve(instance, params, Backend::kSimFused);

        pipelines::RunOptions options;
        options.device = titanx.device;
        options.timing = titanx.timing;
        options.energy = titanx.energy;
        const auto fused =
            pipelines::solve(instance, params, Backend::kSimFused, options);
        out.fused_size = fused.v.size();
        out.fused_vs_oracle = diff(fused.v, oracle.v);
        out.matches_gtx970 =
            fused.v.size() == reference.v.size() &&
            std::memcmp(fused.v.data(), reference.v.data(),
                        reference.v.size() * sizeof(float)) == 0;
        if (fused.report.has_value() && reference.report.has_value()) {
          out.report_present = true;
          out.titanx_seconds = fused.report->seconds;
          out.gtx970_seconds = reference.report->seconds;
        }
        return out;
      });

  ASSERT_EQ(outcomes.size(), picked.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ProfileOutcome& out = outcomes[i];
    ASSERT_EQ(out.fused_size, picked[i].m) << out.what;
    EXPECT_LT(out.fused_vs_oracle, kTol)
        << "fused@titanx-maxwell on " << out.what;
    EXPECT_TRUE(out.matches_gtx970)
        << out.what << ": changing the device profile perturbed the "
        << "functional result";
    ASSERT_TRUE(out.report_present) << out.what;
    EXPECT_GT(out.titanx_seconds, 0) << out.what;
    EXPECT_NE(out.titanx_seconds, out.gtx970_seconds)
        << out.what << ": 24-SM timing identical to 13-SM timing — the "
        << "profile did not reach the timing model";
  }
}

struct ShardOutcome {
  std::string what;
  std::size_t shard_count = 0;
  // One entry per worker count {1, 2, 8}.
  std::array<bool, 3> byte_identical{};
  std::array<bool, 3> counters_match{};
};

TEST(DifferentialFuzzTest, ShardedRunsMatchUnshardedByteForByte) {
  // Every 4th combo re-runs fused through the shard layer (counts cycling
  // 2/3/8, axes alternating M/N) at 1, 2, and 8 workers. The contract is
  // stronger than the cross-backend tolerance above: sharding the SAME
  // backend must reproduce the unsharded bytes exactly, and the merged
  // event-counter totals must not depend on the worker count
  // (docs/SHARDING.md §Determinism).
  const auto cases = fuzz_cases();
  std::vector<FuzzCase> picked;
  for (std::size_t i = 0; i < cases.size(); i += 4) picked.push_back(cases[i]);
  ASSERT_GE(picked.size(), 30u);

  const std::size_t shard_counts[] = {2, 3, 8};
  const int worker_counts[] = {1, 2, 8};

  exec::ThreadPool pool(test_threads());
  const auto outcomes = exec::map_ordered(
      pool, picked.size(), [&](std::size_t index) {
        const FuzzCase& c = picked[index];
        workload::ProblemSpec spec;
        spec.m = c.m;
        spec.n = c.n;
        spec.k = c.k;
        spec.seed = c.seed;
        spec.bandwidth = 0.9f;
        const auto instance = workload::make_instance(spec);
        const auto params = core::params_from_spec(spec);

        ShardOutcome out;
        out.shard_count = shard_counts[index % 3];
        const shard::ShardAxis axis = index % 2 == 0 ? shard::ShardAxis::kM
                                                     : shard::ShardAxis::kN;
        out.what = spec.to_string();
        out.what += " shards=";
        out.what += std::to_string(out.shard_count);
        out.what += " axis=";
        out.what += shard::to_string(axis);

        const auto oracle =
            pipelines::solve(instance, params, Backend::kSimFused);

        std::optional<gpusim::Counters> reference_total;
        for (std::size_t w = 0; w < 3; ++w) {
          pipelines::RunOptions options;
          options.shards.count = out.shard_count;
          options.shards.axis = axis;
          options.shards.workers = worker_counts[w];
          const auto sharded =
              pipelines::solve(instance, params, Backend::kSimFused, options);
          out.byte_identical[w] =
              sharded.v.size() == oracle.v.size() &&
              std::memcmp(sharded.v.data(), oracle.v.data(),
                          oracle.v.size() * sizeof(float)) == 0;
          if (!sharded.report.has_value()) continue;
          if (!reference_total.has_value()) {
            reference_total = sharded.report->total;
            out.counters_match[w] = true;
          } else {
            out.counters_match[w] =
                *reference_total == sharded.report->total;
          }
        }
        return out;
      });

  ASSERT_EQ(outcomes.size(), picked.size());
  for (const ShardOutcome& out : outcomes) {
    for (std::size_t w = 0; w < 3; ++w) {
      EXPECT_TRUE(out.byte_identical[w])
          << out.what << " diverged from the unsharded run at workers="
          << (w == 0 ? 1 : (w == 1 ? 2 : 8));
      EXPECT_TRUE(out.counters_match[w])
          << out.what << " merged counters changed with the worker count";
    }
  }
}

struct TreeOutcome {
  std::string what;
  // One entry per ε in {1e-2, 1e-4, 1e-6}: the achieved ∞-norm error vs
  // the host oracle and the float-round-off slack the dense paths already
  // get (kTol against the 1e-2 floor — docs/TESTING.md).
  std::array<bool, 3> has_report{};
  std::array<double, 3> max_abs_err{};
  double slack = 0;
  // Determinism at the cycled ε: shard count 3 at 1/2/8 workers plus the
  // explicit 1-shard run, all against the unsharded reference bytes.
  std::array<bool, 4> byte_identical{};
  // The cycled-ε run repeated under each built-in device profile: profiles
  // move the timing/energy model only, so V — and with it the ε contract
  // just asserted — must be byte-identical on all three.
  std::array<bool, 3> profile_identical{};
};

TEST(DifferentialFuzzTest, TreecodeMeetsEpsAgainstTheOracle) {
  // Every 4th combo (offset 1 — disjoint from the robust and profile legs)
  // re-runs fused through the treecode at ε ∈ {1e-2, 1e-4, 1e-6}. The
  // ε contract is |V_tree − V_oracle|∞ ≤ ε plus the repo-wide float slack;
  // on shapes where every pair is near the solver falls back dense and the
  // bound holds trivially. A small bandwidth (vs the dense legs' 0.9)
  // and small boxes make real tree routes common, and high-K combos are
  // skipped — in 250 dimensions nothing is ever far. Replies must also be
  // byte-identical across worker counts {1, 2, 8} and shard counts {1, 3}.
  const auto cases = fuzz_cases();
  std::vector<FuzzCase> picked;
  for (std::size_t i = 1; i < cases.size(); i += 4) {
    if (cases[i].k <= 9) picked.push_back(cases[i]);
  }
  ASSERT_GE(picked.size(), 25u);

  const double eps_ladder[] = {1e-2, 1e-4, 1e-6};
  const int worker_counts[] = {1, 2, 8};

  exec::ThreadPool pool(test_threads());
  const auto outcomes = exec::map_ordered(
      pool, picked.size(), [&](std::size_t index) {
        const FuzzCase& c = picked[index];
        workload::ProblemSpec spec;
        spec.m = c.m;
        spec.n = c.n;
        spec.k = c.k;
        spec.seed = c.seed;
        spec.bandwidth = 0.05f;
        const auto instance = workload::make_instance(spec);
        const auto params = core::params_from_spec(spec);

        TreeOutcome out;
        out.what = spec.to_string();

        const auto oracle =
            pipelines::solve(instance, params, Backend::kCpuDirect);
        for (std::size_t j = 0; j < oracle.v.size(); ++j) {
          const double o = static_cast<double>(oracle.v[j]);
          out.slack =
              std::max(out.slack, kTol * std::max(1e-2, std::abs(o)));
        }

        const auto tree_options = [](double eps) {
          pipelines::RunOptions options;
          options.tree.eps = eps;
          options.tree.box_leaf = 32;
          options.tree.row_leaf = 64;
          return options;
        };

        std::optional<pipelines::SolveResult> reference;
        const std::size_t cycled = index % 3;
        for (std::size_t e = 0; e < 3; ++e) {
          const auto result = pipelines::solve(
              instance, params, Backend::kSimFused, tree_options(eps_ladder[e]));
          out.has_report[e] = result.tree.has_value();
          for (std::size_t j = 0; j < result.v.size(); ++j) {
            out.max_abs_err[e] = std::max(
                out.max_abs_err[e],
                std::abs(static_cast<double>(result.v[j]) -
                         static_cast<double>(oracle.v[j])));
          }
          if (e == cycled) reference = result;
        }

        const auto identical = [&](const pipelines::SolveResult& run) {
          return run.v.size() == reference->v.size() &&
                 std::memcmp(run.v.data(), reference->v.data(),
                             reference->v.size() * sizeof(float)) == 0;
        };
        for (std::size_t w = 0; w < 3; ++w) {
          auto options = tree_options(eps_ladder[cycled]);
          options.shards.count = 3;
          options.shards.workers = worker_counts[w];
          out.byte_identical[w] = identical(pipelines::solve(
              instance, params, Backend::kSimFused, options));
        }
        out.byte_identical[3] = identical(pipelines::solve(
            instance, params, Backend::kSimFused,
            tree_options(eps_ladder[cycled])));
        const char* profile_names[] = {"gtx970", "titanx-maxwell", "modern"};
        for (std::size_t p = 0; p < 3; ++p) {
          const auto dev = config::profiles::resolve(profile_names[p]);
          auto options = tree_options(eps_ladder[cycled]);
          options.device = dev.device;
          options.timing = dev.timing;
          options.energy = dev.energy;
          out.profile_identical[p] = identical(pipelines::solve(
              instance, params, Backend::kSimFused, options));
        }
        return out;
      });

  ASSERT_EQ(outcomes.size(), picked.size());
  for (const TreeOutcome& out : outcomes) {
    for (std::size_t e = 0; e < 3; ++e) {
      const double eps = eps_ladder[e];
      ASSERT_TRUE(out.has_report[e]) << out.what << " eps=" << eps;
      EXPECT_LE(out.max_abs_err[e], eps + out.slack)
          << out.what << " eps=" << eps;
    }
    for (std::size_t w = 0; w < 3; ++w) {
      EXPECT_TRUE(out.byte_identical[w])
          << out.what << " diverged at shards=3 workers=" << worker_counts[w];
    }
    EXPECT_TRUE(out.byte_identical[3])
        << out.what << " diverged between two identical unsharded runs";
    const char* profile_names[] = {"gtx970", "titanx-maxwell", "modern"};
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_TRUE(out.profile_identical[p])
          << out.what << " diverged under --profile=" << profile_names[p];
    }
  }
}

TEST(DifferentialFuzzTest, TuningCacheReplayIsThreadCountInvariant) {
  // The tuner's survivors execute on the thread pool, but the winner — and
  // therefore the serialised cache — must be a pure function of the
  // requests: replaying the same shapes at 1, 2, and 8 tuner threads has to
  // produce byte-identical cache JSON (the same contract solve_many's
  // deterministic aggregation pins for batch results).
  struct Shape {
    std::size_t m, n, k;
  };
  const std::vector<Shape> shapes = {{200, 200, 8}, {129, 127, 9}};

  std::vector<std::string> dumps;
  for (const int threads : {1, 2, 8}) {
    tune::TuningCache cache;
    tune::TuneOptions options;
    options.threads = threads;
    for (const Shape& s : shapes) {
      const auto entry = cache.get_or_tune(s.m, s.n, s.k,
                                           Backend::kSimFused, options);
      EXPECT_TRUE(entry.geometry.structurally_valid());
    }
    // Memoization: re-tuning the first shape must be a pure lookup that
    // agrees with the stored winner and adds no entry.
    const auto again = cache.get_or_tune(shapes[0].m, shapes[0].n, shapes[0].k,
                                         Backend::kSimFused, options);
    EXPECT_EQ(cache.size(), shapes.size());
    const auto resolved =
        cache.resolve(shapes[0].m, shapes[0].n, shapes[0].k,
                      pipelines::Solution::kFused);
    ASSERT_TRUE(resolved.has_value());
    EXPECT_EQ(*resolved, again.geometry);
    EXPECT_FALSE(cache.resolve(1, 2, 3, pipelines::Solution::kFused)
                     .has_value());
    dumps.push_back(cache.to_json().dump());
  }

  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_EQ(dumps[0], dumps[1]) << "1-thread vs 2-thread cache diverged";
  EXPECT_EQ(dumps[0], dumps[2]) << "1-thread vs 8-thread cache diverged";
}

}  // namespace
}  // namespace ksum
