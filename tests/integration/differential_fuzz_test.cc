// Differential fuzzing across the solver backends on seeded random shapes,
// deliberately including sizes that are not multiples of the 128×128 tile
// or the rank-8 mainloop step (the padding path in pipelines::solve).
//
// Tolerance: the simulated kernels and the host oracle evaluate the same
// float32 expression in different association orders, so results agree to
// accumulation round-off, not bit-exactly. We bound max_rel_diff with a
// 1e-2 absolute floor (entries below the floor are compared absolutely) at
// 5e-3 — the repo-wide bound for non-cancelling workloads, a few hundred
// float32 ULPs at these summation lengths (documented in docs/TESTING.md).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "blas/vector_ops.h"
#include "core/exact.h"
#include "pipelines/solver.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;

struct FuzzCase {
  std::size_t m, n, k;
  std::uint64_t seed;
};

// Full cross of the ragged/aligned extremes: 6 × 6 × 4 = 144 seeded combos
// (well past the 50 the test plan requires); each gets its own seed.
std::vector<FuzzCase> fuzz_cases() {
  const std::size_t ms[] = {1, 7, 127, 129, 200, 1000};
  const std::size_t ns[] = {1, 7, 127, 129, 200, 1000};
  const std::size_t ks[] = {1, 8, 9, 250};
  std::vector<FuzzCase> cases;
  std::uint64_t seed = 1000;
  for (std::size_t m : ms) {
    for (std::size_t n : ns) {
      for (std::size_t k : ks) {
        cases.push_back({m, n, k, seed++});
      }
    }
  }
  return cases;
}

double diff(const Vector& a, const Vector& b) {
  return blas::max_rel_diff(a.span(), b.span(), 1e-2);
}

constexpr double kTol = 5e-3;

TEST(DifferentialFuzzTest, BackendsAgreeOnSeededRandomShapes) {
  const auto cases = fuzz_cases();
  ASSERT_GE(cases.size(), 50u);
  std::size_t index = 0;
  for (const FuzzCase& c : cases) {
    workload::ProblemSpec spec;
    spec.m = c.m;
    spec.n = c.n;
    spec.k = c.k;
    spec.seed = c.seed;
    spec.bandwidth = 0.9f;
    const auto instance = workload::make_instance(spec);
    const auto params = core::params_from_spec(spec);
    const std::string what = spec.to_string();

    const auto oracle = pipelines::solve(instance, params,
                                         Backend::kCpuDirect);
    ASSERT_EQ(oracle.v.size(), c.m) << what;

    const auto fused = pipelines::solve(instance, params,
                                        Backend::kSimFused);
    ASSERT_EQ(fused.v.size(), c.m) << what;
    EXPECT_LT(diff(fused.v, oracle.v), kTol) << "fused on " << what;

    // Alternate the unfused pipelines so every combo checks fused vs one
    // unfused vs the host oracle while the suite stays well under budget.
    const Backend unfused = index % 2 == 0 ? Backend::kSimCudaUnfused
                                           : Backend::kSimCublasUnfused;
    const auto baseline = pipelines::solve(instance, params, unfused);
    EXPECT_LT(diff(baseline.v, oracle.v), kTol)
        << to_string(unfused) << " on " << what;
    EXPECT_LT(diff(fused.v, baseline.v), kTol)
        << "fused vs " << to_string(unfused) << " on " << what;
    ++index;
  }
}

TEST(DifferentialFuzzTest, RobustForkMatchesAndStaysQuiet) {
  // Every 4th combo re-runs fused with the ABFT checks + recovery policy
  // enabled on a fault-free device: the checksum fork must not perturb the
  // result and must raise no false positives (ragged shapes included — the
  // checks audit the padded run).
  const auto cases = fuzz_cases();
  std::size_t covered = 0;
  for (std::size_t i = 0; i < cases.size(); i += 4) {
    const FuzzCase& c = cases[i];
    workload::ProblemSpec spec;
    spec.m = c.m;
    spec.n = c.n;
    spec.k = c.k;
    spec.seed = c.seed;
    spec.bandwidth = 0.9f;
    const auto instance = workload::make_instance(spec);
    const auto params = core::params_from_spec(spec);
    const std::string what = spec.to_string();

    const auto plain = pipelines::solve(instance, params, Backend::kSimFused);

    pipelines::RunOptions robust;
    robust.recovery.enabled = true;  // forces the checks on, as the CLI does
    const auto checked =
        pipelines::solve(instance, params, Backend::kSimFused, robust);

    ASSERT_TRUE(checked.report.has_value()) << what;
    EXPECT_TRUE(checked.report->robustness.checks_enabled) << what;
    EXPECT_FALSE(checked.report->robustness.fault_detected())
        << "false positive on fault-free " << what;
    EXPECT_EQ(checked.recovery.attempts, 1) << what;  // clean first try

    ASSERT_EQ(checked.v.size(), plain.v.size()) << what;
    for (std::size_t j = 0; j < plain.v.size(); ++j) {
      EXPECT_EQ(checked.v[j], plain.v[j])
          << "checksum fork perturbed V[" << j << "] on " << what;
    }
    ++covered;
  }
  EXPECT_GE(covered, 30u);
}

}  // namespace
}  // namespace ksum
