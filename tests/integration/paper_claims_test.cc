// The paper's headline claims, asserted against the analytic model at the
// paper's own scales. These are the acceptance tests of the reproduction:
// if a refactor breaks a shape, this suite names the violated claim.
#include <gtest/gtest.h>

#include <stdexcept>

#include "report/paper_report.h"

namespace ksum::report {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analytic::PipelineModel model;
    points_ =
        new std::vector<SweepPoint>(evaluate_sweep(
            model, workload::paper_table_sweep()));
  }
  static void TearDownTestSuite() {
    delete points_;
    points_ = nullptr;
  }

  static const SweepPoint& at(std::size_t k, std::size_t m) {
    for (const auto& p : *points_) {
      if (p.k == k && p.m == m) return p;
    }
    throw std::runtime_error("missing sweep point");
  }

  static std::vector<SweepPoint>* points_;
};

std::vector<SweepPoint>* PaperClaims::points_ = nullptr;

TEST_F(PaperClaims, SpeedupUpTo1p8AtK32) {
  // §V-A: "Fused approach beats cuBLAS-Unfused by up to 1.8X ... largest
  // speedup happens in the group of K=32".
  const double s = at(32, 524288).speedup_vs_cublas();
  EXPECT_GT(s, 1.5);
  EXPECT_LT(s, 2.2);
}

TEST_F(PaperClaims, SpeedupDecreasesWithK) {
  double prev = 1e9;
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    const double s = at(k, 131072).speedup_vs_cublas();
    EXPECT_LT(s, prev) << "K=" << k;
    prev = s;
  }
}

TEST_F(PaperClaims, FusedLosesAtHighK) {
  // "As dimension K increases the performance degradation due to our
  // inferior CUDA-C GEMM outweighs the benefits of fused computation."
  EXPECT_LT(at(256, 131072).speedup_vs_cublas(), 1.0);
  EXPECT_GT(at(32, 131072).speedup_vs_cublas(), 1.0);
  EXPECT_GT(at(64, 131072).speedup_vs_cublas(), 1.0);
}

TEST_F(PaperClaims, FusedAlwaysBeatsCudaUnfused) {
  // Fig. 6: "Fused shows much better performance than CUDA-Unfused in all
  // problem sizes", ~1.5× at K=256.
  for (const auto& p : *points_) {
    EXPECT_GT(p.speedup_vs_cuda(), 1.15)
        << "K=" << p.k << " M=" << p.m;
  }
  EXPECT_GT(at(256, 131072).speedup_vs_cuda(), 1.2);
}

TEST_F(PaperClaims, ProjectedSpeedupExceedsMeasured) {
  // The paper's 3.7× claim is a projection with a cuBLAS-grade GEMM; our
  // model puts it near 3× — assert the band, not the point.
  const double proj = at(32, 524288).projected_speedup();
  EXPECT_GT(proj, 2.4);
  EXPECT_LT(proj, 4.2);
}

TEST_F(PaperClaims, CudaCGemmSlowdownBand) {
  // Fig. 7: "the CUDA-C GEMM is between 1.5X and 2.0X slower than cuBLAS".
  analytic::PipelineModel model;
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    const auto ours = model.estimate_gemm_only(false, 131072, 1024, k);
    const auto theirs = model.estimate_gemm_only(true, 131072, 1024, k);
    const auto& dev = model.options().device;
    const double slowdown =
        ours.timing.seconds(dev) / theirs.timing.seconds(dev);
    EXPECT_GE(slowdown, 1.4) << "K=" << k;
    EXPECT_LE(slowdown, 2.1) << "K=" << k;
  }
}

TEST_F(PaperClaims, FusedDramTransactionsUnderTenPercent) {
  // Fig. 8b: "the number of DRAM transactions in Fused is less than 10% of
  // cuBLAS-Unfused in all problem sizes" (large-M grid points).
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    EXPECT_LT(at(k, 131072).dram_ratio_fused(), 0.10) << "K=" << k;
    EXPECT_LT(at(k, 524288).dram_ratio_fused(), 0.10) << "K=" << k;
  }
}

TEST_F(PaperClaims, FusedL2TransactionsUnderFiftyPercentAtLowK) {
  // Fig. 8a: under 50% "in most cases", with high-K exceptions.
  for (std::size_t m : {131072u, 524288u}) {
    EXPECT_LT(at(32, m).l2_ratio_fused(), 0.50);
    EXPECT_LT(at(64, m).l2_ratio_fused(), 0.50);
    EXPECT_GT(at(256, m).l2_ratio_fused(), 0.50);  // the exception regime
  }
}

TEST_F(PaperClaims, EnergySavingsBandsOfTableIII) {
  // Table III: 31.3–32.5% at K=32 down to 3.5–8.5% at K=256, always
  // positive; we assert generous bands around the paper's values.
  for (std::size_t m : {1024u, 131072u, 524288u}) {
    EXPECT_GT(at(32, m).energy_saving_vs_cublas(), 0.25);
    EXPECT_LT(at(32, m).energy_saving_vs_cublas(), 0.45);
    EXPECT_GT(at(256, m).energy_saving_vs_cublas(), 0.0);
    EXPECT_LT(at(256, m).energy_saving_vs_cublas(), 0.12);
  }
}

TEST_F(PaperClaims, EnergySavingsDecreaseWithK) {
  double prev = 1.0;
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    const double s = at(k, 131072).energy_saving_vs_cublas();
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST_F(PaperClaims, FusedSavesMostDramEnergy) {
  // §V-C: "the Fused approach saves more than 80% of the DRAM access
  // energy in all test configurations".
  for (const auto& p : *points_) {
    if (p.m < 131072) continue;  // paper-scale points
    const double saving = 1.0 - p.fused.energy.dram_j /
                                    p.cublas_unfused.energy.dram_j;
    EXPECT_GT(saving, 0.80) << "K=" << p.k << " M=" << p.m;
  }
}

TEST_F(PaperClaims, CublasUnfusedDramShareInBand) {
  // Fig. 1: "around 10% to 30% of total energy is spent on DRAM accesses";
  // our model sits in a slightly wider 5–35% band across the grid.
  for (const auto& p : *points_) {
    const double share = p.cublas_unfused.energy.dram_share();
    EXPECT_GT(share, 0.05) << "K=" << p.k << " M=" << p.m;
    EXPECT_LT(share, 0.35) << "K=" << p.k << " M=" << p.m;
  }
}

TEST_F(PaperClaims, FlopEfficiencyCrossover) {
  // Table II: fused wins at K ≤ 64, cuBLAS wins at K=256.
  for (std::size_t m : {1024u, 131072u, 524288u}) {
    EXPECT_GT(at(32, m).fused.flop_efficiency,
              at(32, m).cublas_unfused.flop_efficiency);
    EXPECT_GT(at(64, m).fused.flop_efficiency,
              at(64, m).cublas_unfused.flop_efficiency);
    EXPECT_LT(at(256, m).fused.flop_efficiency,
              at(256, m).cublas_unfused.flop_efficiency);
  }
}

TEST_F(PaperClaims, L2MpkiHighestAtK32) {
  // Fig. 2: the K=32 group shows the highest L2 MPKI.
  auto mpki = [&](std::size_t k) {
    const auto& est = at(k, 131072).cublas_unfused;
    double misses = 0;
    for (const auto& kest : est.kernels) {
      misses += kest.cost.dram_transactions;
    }
    return 1000.0 * misses / est.total.warp_instructions;
  };
  EXPECT_GT(mpki(32), mpki(64));
  EXPECT_GT(mpki(64), mpki(128));
  EXPECT_GT(mpki(128), mpki(256));
}

}  // namespace
}  // namespace ksum::report
