// Cross-cutting architectural invariants, asserted over every solution and
// every paper K on small functional runs. These catch miswired counters and
// broken accounting that the per-module tests can miss.
#include <gtest/gtest.h>

#include "pipelines/knn_pipeline.h"
#include "pipelines/pipeline.h"

namespace ksum::pipelines {
namespace {

struct InvariantCase {
  Solution solution;
  std::size_t k;
};

class PipelineInvariantsTest
    : public ::testing::TestWithParam<InvariantCase> {};

PipelineReport run_case(const InvariantCase& p,
                        const RunOptions& options = {}) {
  workload::ProblemSpec spec;
  spec.m = 256;
  spec.n = 256;
  spec.k = p.k;
  spec.seed = 101;
  const auto inst = workload::make_instance(spec);
  return run_pipeline(p.solution, inst, core::params_from_spec(spec),
                      options);
}

TEST_P(PipelineInvariantsTest, CacheAccountingIsConsistent) {
  const auto report = run_case(GetParam());
  const auto& c = report.total;
  // Hits + misses partition the read transactions.
  EXPECT_EQ(c.l2_read_hits + c.l2_read_misses, c.l2_read_transactions);
  // Without an L1, every L2 read miss is a DRAM read (atomics included).
  EXPECT_EQ(c.dram_read_transactions, c.l2_read_misses);
  // Nothing reaches DRAM without passing the L2.
  EXPECT_LE(c.dram_read_transactions, c.l2_read_transactions);
  EXPECT_LE(c.dram_write_transactions, c.l2_write_transactions);
  EXPECT_EQ(c.l1_read_transactions, 0u);  // disabled by default
}

TEST_P(PipelineInvariantsTest, SharedMemoryAccountingIsConsistent) {
  const auto report = run_case(GetParam());
  const auto& c = report.total;
  // Replays can only add transactions on top of the requests.
  EXPECT_GE(c.smem_load_transactions, c.smem_load_requests);
  EXPECT_GE(c.smem_store_transactions, c.smem_store_requests);
  EXPECT_LE(c.smem_bank_conflicts,
            c.smem_total_transactions());
}

TEST_P(PipelineInvariantsTest, ArithmeticMatchesClosedForm) {
  const auto p = GetParam();
  const auto report = run_case(p);
  const std::uint64_t mnk = 256ull * 256ull * p.k;
  // The GEMM portion contributes exactly one lane-FMA per output element
  // per K step, in every solution.
  EXPECT_GE(report.total.fma_ops, mnk);
  // One kernel evaluation per matrix element.
  EXPECT_EQ(report.total.sfu_ops, 256ull * 256ull);
}

TEST_P(PipelineInvariantsTest, TotalsEqualKernelSumsPlusWriteback) {
  const auto report = run_case(GetParam());
  gpusim::Counters sum;
  for (const auto& k : report.kernels) sum += k.counters;
  // Everything except the final DRAM writeback comes from the launches.
  EXPECT_EQ(sum.fma_ops, report.total.fma_ops);
  EXPECT_EQ(sum.l2_total_transactions(), report.total.l2_total_transactions());
  EXPECT_LE(sum.dram_write_transactions,
            report.total.dram_write_transactions);
}

TEST_P(PipelineInvariantsTest, EnergyAndTimingArePhysical) {
  const auto report = run_case(GetParam());
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_GT(report.energy.total(), 0.0);
  EXPECT_NEAR(report.energy.total(),
              report.energy.compute_j + report.energy.smem_j +
                  report.energy.l2_j + report.energy.dram_j +
                  report.energy.static_j,
              1e-12);
  EXPECT_GE(report.flop_efficiency, 0.0);
  EXPECT_LE(report.flop_efficiency, 1.0);
}

TEST_P(PipelineInvariantsTest, L1NeverChangesResultsOrDram) {
  const auto p = GetParam();
  const auto base = run_case(p);
  RunOptions with_l1;
  with_l1.device.cache_globals_in_l1 = true;
  const auto cached = run_case(p, with_l1);
  // Identical numerics.
  for (std::size_t i = 0; i < base.result.size(); ++i) {
    ASSERT_EQ(base.result[i], cached.result[i]);
  }
  // The L1 can only reduce L2 pressure, never DRAM traffic (it is fed by
  // the same miss stream the L2 would have filtered anyway).
  EXPECT_LE(cached.total.l2_read_transactions,
            base.total.l2_read_transactions);
  EXPECT_EQ(cached.total.dram_read_transactions,
            base.total.dram_read_transactions);
  // And the L1 accounting itself partitions.
  EXPECT_EQ(cached.total.l1_read_hits + cached.total.l1_read_misses,
            cached.total.l1_read_transactions);
}

INSTANTIATE_TEST_SUITE_P(
    SolutionsAndDims, PipelineInvariantsTest,
    ::testing::Values(InvariantCase{Solution::kFused, 8},
                      InvariantCase{Solution::kFused, 32},
                      InvariantCase{Solution::kFused, 64},
                      InvariantCase{Solution::kCudaUnfused, 8},
                      InvariantCase{Solution::kCudaUnfused, 32},
                      InvariantCase{Solution::kCublasUnfused, 8},
                      InvariantCase{Solution::kCublasUnfused, 32}));

TEST(KnnInvariantsTest, NeighbourListsAreSortedAndUnique) {
  workload::ProblemSpec spec;
  spec.m = 256;
  spec.n = 256;
  spec.k = 16;
  spec.seed = 103;
  const auto inst = workload::make_instance(spec);
  const auto report = run_knn_pipeline(KnnSolution::kFused, inst, 8);
  for (std::size_t i = 0; i < spec.m; ++i) {
    for (std::size_t rank = 1; rank < 8; ++rank) {
      EXPECT_LE(report.result.distance(i, rank - 1),
                report.result.distance(i, rank));
      for (std::size_t prev = 0; prev < rank; ++prev) {
        EXPECT_NE(report.result.index(i, rank),
                  report.result.index(i, prev))
            << "duplicate neighbour for query " << i;
      }
    }
    for (std::size_t rank = 0; rank < 8; ++rank) {
      EXPECT_LT(report.result.index(i, rank), spec.n);
      EXPECT_GE(report.result.distance(i, rank), 0.0f);
    }
  }
}

}  // namespace
}  // namespace ksum::pipelines
