#include "analytic/pipeline_model.h"

#include <gtest/gtest.h>

namespace ksum::analytic {
namespace {

using pipelines::Solution;

TEST(PipelineModelTest, HandlesPaperScaleInstantly) {
  PipelineModel model;
  const auto est = model.estimate(Solution::kFused, 524288, 1024, 256);
  EXPECT_GT(est.seconds, 0.0);
  EXPECT_GT(est.total.fma_lane_ops, 1e11);
  EXPECT_GT(est.energy.total(), 0.0);
}

TEST(PipelineModelTest, RejectsUnalignedShapes) {
  PipelineModel model;
  EXPECT_THROW(model.estimate(Solution::kFused, 100, 1024, 32), Error);
  EXPECT_THROW(model.estimate(Solution::kFused, 1024, 100, 32), Error);
  EXPECT_THROW(model.estimate(Solution::kFused, 1024, 1024, 12), Error);
}

TEST(PipelineModelTest, KernelListMatchesSolution) {
  PipelineModel model;
  const auto fused = model.estimate(Solution::kFused, 1024, 1024, 32);
  ASSERT_EQ(fused.kernels.size(), 3u);
  EXPECT_EQ(fused.kernels[2].name, "fused_ksum");
  const auto unfused =
      model.estimate(Solution::kCublasUnfused, 1024, 1024, 32);
  ASSERT_EQ(unfused.kernels.size(), 5u);
}

TEST(PipelineModelTest, TimeGrowsWithM) {
  PipelineModel model;
  double prev = 0;
  for (std::size_t m = 1024; m <= 65536; m *= 4) {
    const auto est = model.estimate(Solution::kFused, m, 1024, 32);
    EXPECT_GT(est.seconds, prev);
    prev = est.seconds;
  }
}

TEST(PipelineModelTest, TimeGrowsWithK) {
  PipelineModel model;
  double prev = 0;
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    const auto est = model.estimate(Solution::kCublasUnfused, 65536, 1024, k);
    EXPECT_GT(est.seconds, prev);
    prev = est.seconds;
  }
}

TEST(PipelineModelTest, EfficiencySaturatesWithM) {
  // Table II: efficiency at M=131072 ≈ M=524288 (the device is full).
  PipelineModel model;
  const auto mid = model.estimate(Solution::kFused, 131072, 1024, 32);
  const auto big = model.estimate(Solution::kFused, 524288, 1024, 32);
  EXPECT_NEAR(mid.flop_efficiency, big.flop_efficiency, 0.01);
  // And M=1024 is measurably worse (tail waves + launch overhead).
  const auto small = model.estimate(Solution::kFused, 1024, 1024, 32);
  EXPECT_LT(small.flop_efficiency, mid.flop_efficiency);
}

TEST(PipelineModelTest, GemmOnlyGapInPaperBand) {
  PipelineModel model;
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    const auto ours = model.estimate_gemm_only(false, 131072, 1024, k);
    const auto cublas = model.estimate_gemm_only(true, 131072, 1024, k);
    const auto& dev = model.options().device;
    const double ratio =
        ours.timing.seconds(dev) / cublas.timing.seconds(dev);
    EXPECT_GT(ratio, 1.4) << "K=" << k;
    EXPECT_LT(ratio, 2.1) << "K=" << k;
  }
}

TEST(PipelineModelTest, StagedReductionCostsMoreThanAtomic) {
  pipelines::RunOptions staged_options;
  staged_options.atomic_reduction = false;
  PipelineModel atomic_model;
  PipelineModel staged_model(staged_options);
  const auto atomic_est =
      atomic_model.estimate(Solution::kFused, 131072, 1024, 32);
  const auto staged_est =
      staged_model.estimate(Solution::kFused, 131072, 1024, 32);
  EXPECT_GT(staged_est.dram_transactions(), atomic_est.dram_transactions());
  EXPECT_EQ(staged_est.kernels.size(), 4u);
}

TEST(PipelineModelTest, NaiveLayoutRaisesSmemTraffic) {
  pipelines::RunOptions naive_options;
  naive_options.mainloop.layout = gpukernels::TileLayout::kNaive;
  PipelineModel fig5_model;
  PipelineModel naive_model(naive_options);
  const auto fig5 = fig5_model.estimate(Solution::kFused, 65536, 1024, 64);
  const auto naive = naive_model.estimate(Solution::kFused, 65536, 1024, 64);
  EXPECT_GT(naive.total.smem_transactions,
            1.5 * fig5.total.smem_transactions);
  EXPECT_GE(naive.seconds, fig5.seconds);
}

TEST(PipelineModelTest, SingleBufferAblation) {
  pipelines::RunOptions sb_options;
  sb_options.mainloop.double_buffer = false;
  PipelineModel db_model;
  PipelineModel sb_model(sb_options);
  const auto db = db_model.estimate(Solution::kFused, 65536, 1024, 64);
  const auto sb = sb_model.estimate(Solution::kFused, 65536, 1024, 64);
  // Same arithmetic, more barriers.
  EXPECT_NEAR(sb.total.fma_lane_ops, db.total.fma_lane_ops, 1.0);
  EXPECT_GT(sb.kernels[2].scalable.barriers,
            db.kernels[2].scalable.barriers);
}

}  // namespace
}  // namespace ksum::analytic
