#include "analytic/dram_model.h"

#include <gtest/gtest.h>

#include "analytic/pipeline_model.h"
#include "pipelines/pipeline.h"

namespace ksum::analytic {
namespace {

using pipelines::Solution;

DramModelInputs inputs(std::size_t m, std::size_t n, std::size_t k) {
  DramModelInputs in;
  in.m = m;
  in.n = n;
  in.k = k;
  return in;
}

TEST(DramModelTest, NormsTrafficIsInputPlusOutput) {
  const auto t = dram_norms_a(inputs(1024, 1024, 32));
  EXPECT_DOUBLE_EQ(t.reads, 1024.0 * 32 * 4 / 32);
  EXPECT_DOUBLE_EQ(t.writes, 1024.0 * 4 / 32);
}

TEST(DramModelTest, FusedReadsScaleWithInputsNotMN) {
  // Doubling M doubles fused traffic (A + vectors), it does not square it.
  const auto t1 = dram_fused(inputs(65536, 1024, 32));
  const auto t2 = dram_fused(inputs(131072, 1024, 32));
  EXPECT_NEAR(t2.total() / t1.total(), 2.0, 0.05);
}

TEST(DramModelTest, UnfusedPipelineDominatedByIntermediate) {
  const auto in = inputs(131072, 1024, 32);
  const double gemm = dram_gemm(in).total();
  const double eval = dram_kernel_eval(in).total();
  const double gemv = dram_gemv(in).total();
  const double sectors_c = 131072.0 * 1024 * 4 / 32;
  // GEMM writes C, eval reads+writes it, gemv reads it: ≥ 4 C-sized streams.
  EXPECT_GE(gemm + eval + gemv, 4 * sectors_c);
}

TEST(DramModelTest, PaperClaimFusedUnderTenPercent) {
  // Fig. 8b: fused DRAM transactions < 10% of cuBLAS-Unfused at scale.
  for (std::size_t k : {32u, 64u, 128u, 256u}) {
    const auto in = inputs(131072, 1024, k);
    const double fused = dram_fused(in).total();
    const double unfused = dram_norms_a(in).total() +
                           dram_norms_b(in).total() + dram_gemm(in).total() +
                           dram_kernel_eval(in).total() +
                           dram_gemv(in).total();
    EXPECT_LT(fused / unfused, 0.10) << "K=" << k;
  }
}

TEST(DramModelTest, TinyProblemsStayResidentExceptFinalWriteback) {
  // Everything fits in L2: the streaming reads vanish and only the single
  // end-of-window writeback of the kernel matrix remains.
  const auto eval = dram_kernel_eval(inputs(128, 128, 8));
  EXPECT_DOUBLE_EQ(eval.reads, 0.0);
  EXPECT_DOUBLE_EQ(eval.writes, 128.0 * 128 * 4 / 32);
}

TEST(DramModelTest, BResidencyBreaksAtLargeK) {
  // With K=256, B (1 MB) + panel + row of C no longer fits in effective L2,
  // so B streams once per grid row.
  const auto small_k = dram_gemm(inputs(131072, 1024, 32));
  const auto large_k = dram_gemm(inputs(131072, 1024, 256));
  const double b32 = 32.0 * 1024 * 4 / 32;
  const double b256 = 256.0 * 1024 * 4 / 32;
  // K=32: B read once. K=256: B read once per grid row (1024 rows).
  EXPECT_NEAR(small_k.reads,
              131072.0 * 32 * 4 / 32 + b32, 1.0);
  EXPECT_NEAR(large_k.reads,
              131072.0 * 256 * 4 / 32 + 1024 * b256, 1.0);
}

// Accuracy contract against the functional simulator: pipeline-total DRAM
// within 25% on mid-size problems.
struct ToleranceCase {
  Solution solution;
  std::size_t m, n, k;
};

class DramToleranceTest : public ::testing::TestWithParam<ToleranceCase> {};

TEST_P(DramToleranceTest, PipelineTotalWithinTolerance) {
  const auto p = GetParam();
  workload::ProblemSpec spec;
  spec.m = p.m;
  spec.n = p.n;
  spec.k = p.k;
  spec.seed = 71;
  const auto inst = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);
  const auto functional =
      pipelines::run_pipeline(p.solution, inst, params);
  PipelineModel model;
  const auto estimate = model.estimate(p.solution, p.m, p.n, p.k);

  const double actual = double(functional.total.dram_total_transactions());
  const double predicted = estimate.dram_transactions();
  ASSERT_GT(actual, 0.0);
  EXPECT_NEAR(predicted / actual, 1.0, 0.25)
      << "predicted=" << predicted << " actual=" << actual;
}

INSTANTIATE_TEST_SUITE_P(
    MidSizes, DramToleranceTest,
    ::testing::Values(ToleranceCase{Solution::kFused, 1024, 256, 32},
                      ToleranceCase{Solution::kFused, 512, 512, 16},
                      ToleranceCase{Solution::kCublasUnfused, 1024, 256, 32},
                      ToleranceCase{Solution::kCudaUnfused, 512, 512, 16}));

}  // namespace
}  // namespace ksum::analytic
