// The analytic model's core contract: unit-CTA calibration scaled by the
// CTA count equals full functional execution EXACTLY for every
// grid-uniform counter class.
#include "analytic/calibration.h"

#include <gtest/gtest.h>

#include "analytic/pipeline_model.h"
#include "pipelines/pipeline.h"

namespace ksum::analytic {
namespace {

using pipelines::Solution;

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = 61;
  return workload::make_instance(spec);
}

struct ExactCase {
  Solution solution;
  std::size_t m, n, k;
};

class ExactCountTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(ExactCountTest, ScaledCalibrationEqualsFunctionalExactly) {
  const auto p = GetParam();
  const auto inst = instance_for(p.m, p.n, p.k);
  const auto params = core::params_from_spec(inst.spec);
  const auto functional = pipelines::run_pipeline(p.solution, inst, params);

  PipelineModel model;
  const auto estimate = model.estimate(p.solution, p.m, p.n, p.k);

  ASSERT_EQ(functional.kernels.size(), estimate.kernels.size());
  for (std::size_t i = 0; i < estimate.kernels.size(); ++i) {
    const auto& f = functional.kernels[i].counters;
    const auto& e = estimate.kernels[i].scalable;
    SCOPED_TRACE(estimate.kernels[i].name);
    EXPECT_EQ(e.fma_ops, f.fma_ops);
    EXPECT_EQ(e.alu_ops, f.alu_ops);
    EXPECT_EQ(e.sfu_ops, f.sfu_ops);
    EXPECT_EQ(e.warp_instructions, f.warp_instructions);
    EXPECT_EQ(e.smem_load_requests, f.smem_load_requests);
    EXPECT_EQ(e.smem_store_requests, f.smem_store_requests);
    EXPECT_EQ(e.smem_load_transactions, f.smem_load_transactions);
    EXPECT_EQ(e.smem_store_transactions, f.smem_store_transactions);
    EXPECT_EQ(e.smem_bank_conflicts, f.smem_bank_conflicts);
    EXPECT_EQ(e.global_load_requests, f.global_load_requests);
    EXPECT_EQ(e.global_store_requests, f.global_store_requests);
    EXPECT_EQ(e.atomic_requests, f.atomic_requests);
    EXPECT_EQ(e.l2_read_transactions, f.l2_read_transactions);
    EXPECT_EQ(e.l2_write_transactions, f.l2_write_transactions);
    EXPECT_EQ(e.barriers, f.barriers);
    EXPECT_EQ(e.ctas_launched, f.ctas_launched);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SolutionsAndShapes, ExactCountTest,
    ::testing::Values(ExactCase{Solution::kFused, 128, 128, 16},
                      ExactCase{Solution::kFused, 384, 256, 32},
                      ExactCase{Solution::kFused, 256, 384, 8},
                      ExactCase{Solution::kCudaUnfused, 128, 128, 16},
                      ExactCase{Solution::kCudaUnfused, 256, 256, 32},
                      ExactCase{Solution::kCublasUnfused, 128, 128, 16},
                      ExactCase{Solution::kCublasUnfused, 384, 128, 24}));

TEST(ExactCountFusedNormsTest, ScaledCalibrationEqualsFunctionalExactly) {
  const auto inst = instance_for(256, 384, 16);
  const auto params = core::params_from_spec(inst.spec);
  pipelines::RunOptions options;
  options.fuse_norms = true;
  const auto functional =
      pipelines::run_pipeline(Solution::kFused, inst, params, options);
  PipelineModel model(options);
  const auto estimate = model.estimate(Solution::kFused, 256, 384, 16);
  ASSERT_EQ(functional.kernels.size(), estimate.kernels.size());
  ASSERT_EQ(estimate.kernels.size(), 1u);  // just the fused kernel
  const auto& f = functional.kernels[0].counters;
  const auto& e = estimate.kernels[0].scalable;
  EXPECT_EQ(e.fma_ops, f.fma_ops);
  EXPECT_EQ(e.smem_load_transactions, f.smem_load_transactions);
  EXPECT_EQ(e.smem_store_transactions, f.smem_store_transactions);
  EXPECT_EQ(e.global_load_requests, f.global_load_requests);
  EXPECT_EQ(e.l2_read_transactions, f.l2_read_transactions);
  EXPECT_EQ(e.barriers, f.barriers);
}

TEST(CalibrationTest, CacheReturnsSameObject) {
  Calibrator calibrator;
  const CalibrationKey key{KernelKind::kGemmCudaC, 16, 0};
  const auto& a = calibrator.get(key);
  const auto& b = calibrator.get(key);
  EXPECT_EQ(&a, &b);
}

TEST(CalibrationTest, DistinctKeysDiffer) {
  Calibrator calibrator;
  const auto& k16 = calibrator.get({KernelKind::kGemmCudaC, 16, 0});
  const auto& k32 = calibrator.get({KernelKind::kGemmCudaC, 32, 0});
  EXPECT_GT(k32.per_cta.fma_ops, k16.per_cta.fma_ops);
}

TEST(CalibrationTest, ScaleCountersIsLinear) {
  gpusim::Counters per_cta;
  per_cta.fma_ops = 7;
  per_cta.l2_read_transactions = 3;
  per_cta.barriers = 2;
  const auto scaled = scale_counters(per_cta, 10);
  EXPECT_EQ(scaled.fma_ops, 70u);
  EXPECT_EQ(scaled.l2_read_transactions, 30u);
  EXPECT_EQ(scaled.barriers, 20u);
  EXPECT_EQ(scaled.ctas_launched, 10u);
  EXPECT_EQ(scaled.kernel_launches, 1u);
}

TEST(CalibrationTest, StagedFusedDependsOnN) {
  Calibrator calibrator;
  const auto& n256 = calibrator.get({KernelKind::kFusedStaged, 16, 256});
  const auto& n512 = calibrator.get({KernelKind::kFusedStaged, 16, 512});
  // Wider grids stride the staging stores further apart → more L2 write
  // transactions per CTA.
  EXPECT_GE(n512.per_cta.l2_write_transactions,
            n256.per_cta.l2_write_transactions);
}

}  // namespace
}  // namespace ksum::analytic
