#include "core/exact.h"

#include <gtest/gtest.h>

#include <cmath>

#include "blas/vector_ops.h"

namespace ksum::core {
namespace {

workload::Instance tiny_instance(std::size_t m = 32, std::size_t n = 24,
                                 std::size_t k = 5,
                                 workload::Distribution dist =
                                     workload::Distribution::kUniformCube) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.distribution = dist;
  spec.bandwidth = 0.6f;
  return workload::make_instance(spec);
}

TEST(ExactTest, DirectMatchesHandComputation) {
  // One source, one target, one weight: V₀ = K(α, β)·w.
  workload::Instance inst = tiny_instance(1, 1, 2);
  inst.a.at(0, 0) = 1.0f;
  inst.a.at(0, 1) = 0.0f;
  inst.b.at(0, 0) = 0.0f;
  inst.b.at(1, 0) = 1.0f;
  inst.w[0] = 2.0f;
  KernelParams params = params_from_spec(inst.spec);
  params.bandwidth = 1.0f;
  const Vector v = solve_direct(inst, params);
  // d² = 2 → exp(-1)·2.
  EXPECT_NEAR(v[0], 2.0f * std::exp(-1.0f), 1e-6);
}

TEST(ExactTest, ExpansionMatchesDirect) {
  const auto inst = tiny_instance();
  const KernelParams params = params_from_spec(inst.spec);
  const Vector direct = solve_direct(inst, params);
  const Vector expansion = solve_expansion(inst, params);
  EXPECT_LT(blas::max_rel_diff(expansion.span(), direct.span(), 1e-3), 1e-4);
}

TEST(ExactTest, ExpansionKernelMatrixIsExposed) {
  const auto inst = tiny_instance(8, 8, 3);
  const KernelParams params = params_from_spec(inst.spec);
  Matrix kmat;
  solve_expansion(inst, params, &kmat);
  EXPECT_EQ(kmat.rows(), 8u);
  EXPECT_EQ(kmat.cols(), 8u);
  // Kernel values are probabilities-like for the Gaussian: in (0, 1].
  for (float v : kmat.span()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ExactTest, CoincidentPointsGiveKernelOne) {
  workload::Instance inst = tiny_instance(4, 4, 3);
  // Make target 0 identical to source 0.
  for (std::size_t d = 0; d < 3; ++d) inst.b.at(d, 0) = inst.a.at(0, d);
  const KernelParams params = params_from_spec(inst.spec);
  Matrix kmat;
  solve_expansion(inst, params, &kmat);
  EXPECT_NEAR(kmat.at(0, 0), 1.0f, 1e-5);
}

TEST(ExactTest, OutputLengthIsM) {
  const auto inst = tiny_instance(40, 8, 3);
  const Vector v = solve_direct(inst, params_from_spec(inst.spec));
  EXPECT_EQ(v.size(), 40u);
}

TEST(ExactTest, MismatchedShapesThrow) {
  auto inst = tiny_instance();
  inst.w.resize(inst.spec.n + 1);
  EXPECT_THROW(solve_direct(inst, params_from_spec(inst.spec)), Error);
  EXPECT_THROW(solve_expansion(inst, params_from_spec(inst.spec)), Error);
}

class ExactAgreementTest
    : public ::testing::TestWithParam<workload::Distribution> {};

TEST_P(ExactAgreementTest, ExpansionTracksDirectAcrossDistributions) {
  // Clustered points stress the ‖α‖²+‖β‖²−2αᵀβ cancellation — this is the
  // classic numerical hazard of the expansion trick.
  const auto inst = tiny_instance(64, 48, 8, GetParam());
  const KernelParams params = params_from_spec(inst.spec);
  const Vector direct = solve_direct(inst, params);
  const Vector expansion = solve_expansion(inst, params);
  EXPECT_LT(blas::max_rel_diff(expansion.span(), direct.span(), 1e-3), 1e-3)
      << workload::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, ExactAgreementTest,
    ::testing::Values(workload::Distribution::kUniformCube,
                      workload::Distribution::kGaussianMixture,
                      workload::Distribution::kUnitSphere,
                      workload::Distribution::kGrid));

class ExactKernelTypesTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(ExactKernelTypesTest, ExpansionTracksDirectForEveryKernel) {
  const auto inst = tiny_instance(32, 32, 6);
  KernelParams params;
  params.type = GetParam();
  params.bandwidth = 0.8f;
  const Vector direct = solve_direct(inst, params);
  const Vector expansion = solve_expansion(inst, params);
  EXPECT_LT(blas::max_rel_diff(expansion.span(), direct.span(), 1e-2), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ExactKernelTypesTest,
                         ::testing::Values(KernelType::kGaussian,
                                           KernelType::kLaplace3d,
                                           KernelType::kMatern32,
                                           KernelType::kCauchy,
                                           KernelType::kPolynomial2));

}  // namespace
}  // namespace ksum::core
