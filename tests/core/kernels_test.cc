#include "core/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace ksum::core {
namespace {

KernelParams gaussian(float h) {
  KernelParams p;
  p.type = KernelType::kGaussian;
  p.bandwidth = h;
  return p;
}

TEST(KernelsTest, GaussianAtZeroDistanceIsOne) {
  EXPECT_FLOAT_EQ(evaluate(gaussian(1.0f), 0.0f, 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(evaluate(gaussian(0.1f), 0.0f, 0.0f), 1.0f);
}

TEST(KernelsTest, GaussianKnownValue) {
  // exp(-d²/2h²) with d²=2, h=1 → exp(-1).
  EXPECT_NEAR(evaluate(gaussian(1.0f), 2.0f, 0.0f), std::exp(-1.0f), 1e-6);
}

TEST(KernelsTest, GaussianMonotoneDecreasingInDistance) {
  const KernelParams p = gaussian(0.7f);
  float prev = evaluate(p, 0.0f, 0.0f);
  for (float d2 = 0.5f; d2 < 20.0f; d2 += 0.5f) {
    const float v = evaluate(p, d2, 0.0f);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(KernelsTest, NegativeSquaredDistanceClampedToZero) {
  // Rounding in ‖α‖²+‖β‖²−2αᵀβ can go slightly negative; the kernel must
  // treat it as zero, not NaN.
  const float v = evaluate(gaussian(1.0f), -1e-6f, 0.0f);
  EXPECT_FLOAT_EQ(v, 1.0f);
  EXPECT_FALSE(std::isnan(v));
}

TEST(KernelsTest, LaplaceSofteningPreventsSingularity) {
  KernelParams p;
  p.type = KernelType::kLaplace3d;
  p.softening = 1e-3f;
  const float at_zero = evaluate(p, 0.0f, 0.0f);
  EXPECT_TRUE(std::isfinite(at_zero));
  EXPECT_NEAR(at_zero, 1000.0f, 1.0f);
  EXPECT_NEAR(evaluate(p, 4.0f, 0.0f), 0.5f, 1e-3);
}

TEST(KernelsTest, Matern32KnownValues) {
  KernelParams p;
  p.type = KernelType::kMatern32;
  p.bandwidth = 1.0f;
  EXPECT_FLOAT_EQ(evaluate(p, 0.0f, 0.0f), 1.0f);
  // r = √3·d/h with d=1: (1+√3)e^{-√3}.
  const float expected =
      (1.0f + std::sqrt(3.0f)) * std::exp(-std::sqrt(3.0f));
  EXPECT_NEAR(evaluate(p, 1.0f, 0.0f), expected, 1e-6);
}

TEST(KernelsTest, CauchyKnownValues) {
  KernelParams p;
  p.type = KernelType::kCauchy;
  p.bandwidth = 2.0f;
  EXPECT_FLOAT_EQ(evaluate(p, 0.0f, 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(evaluate(p, 4.0f, 0.0f), 0.5f);
}

TEST(KernelsTest, PolynomialUsesDotNotDistance) {
  KernelParams p;
  p.type = KernelType::kPolynomial2;
  p.poly_shift = 1.0f;
  // (dot + 1)² — squared distance must be ignored.
  EXPECT_FLOAT_EQ(evaluate(p, 123.0f, 2.0f), 9.0f);
  EXPECT_FLOAT_EQ(evaluate(p, 0.0f, -1.0f), 0.0f);
}

TEST(KernelsTest, RadialClassification) {
  EXPECT_TRUE(is_radial(KernelType::kGaussian));
  EXPECT_TRUE(is_radial(KernelType::kLaplace3d));
  EXPECT_TRUE(is_radial(KernelType::kMatern32));
  EXPECT_TRUE(is_radial(KernelType::kCauchy));
  EXPECT_FALSE(is_radial(KernelType::kPolynomial2));
}

TEST(KernelsTest, Names) {
  EXPECT_EQ(to_string(KernelType::kGaussian), "gaussian");
  EXPECT_EQ(to_string(KernelType::kLaplace3d), "laplace");
  EXPECT_EQ(to_string(KernelType::kPolynomial2), "polynomial-2");
}

class KernelBoundsTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KernelBoundsTest, FiniteAndNonNegativeOverSweep) {
  KernelParams p;
  p.type = GetParam();
  p.bandwidth = 0.5f;
  for (float d2 = 0.0f; d2 < 100.0f; d2 += 1.37f) {
    const float v = evaluate(p, d2, 0.3f);
    EXPECT_TRUE(std::isfinite(v)) << "d2=" << d2;
    EXPECT_GE(v, 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelBoundsTest,
                         ::testing::Values(KernelType::kGaussian,
                                           KernelType::kLaplace3d,
                                           KernelType::kMatern32,
                                           KernelType::kCauchy,
                                           KernelType::kPolynomial2));

TEST(KernelValidateTest, AcceptsDefaults) {
  for (const auto type :
       {KernelType::kGaussian, KernelType::kLaplace3d, KernelType::kMatern32,
        KernelType::kCauchy, KernelType::kPolynomial2}) {
    KernelParams p;
    p.type = type;
    EXPECT_NO_THROW(validate(p)) << to_string(type);
  }
}

TEST(KernelValidateTest, RejectsBadBandwidth) {
  KernelParams p;  // gaussian
  p.bandwidth = 0.0f;
  EXPECT_THROW(validate(p), Error);
  p.bandwidth = -1.0f;
  EXPECT_THROW(validate(p), Error);
  p.bandwidth = std::numeric_limits<float>::infinity();
  EXPECT_THROW(validate(p), Error);
  p.bandwidth = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(validate(p), Error);
}

TEST(KernelValidateTest, BandwidthIrrelevantForNonRadialUses) {
  // The reciprocal and polynomial kernels never divide by h; a zero
  // bandwidth must not reject them.
  KernelParams p;
  p.type = KernelType::kLaplace3d;
  p.bandwidth = 0.0f;
  EXPECT_NO_THROW(validate(p));
  p.type = KernelType::kPolynomial2;
  EXPECT_NO_THROW(validate(p));
}

TEST(KernelValidateTest, RejectsBadSofteningAndShift) {
  KernelParams p;
  p.type = KernelType::kLaplace3d;
  p.softening = 0.0f;  // 1/d² blows up at coincident points
  EXPECT_THROW(validate(p), Error);
  p.softening = -1.0f;
  EXPECT_THROW(validate(p), Error);

  KernelParams q;
  q.type = KernelType::kPolynomial2;
  q.poly_shift = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(validate(q), Error);
}

}  // namespace
}  // namespace ksum::core
