// The deterministic median-split partitions under the treecode
// (src/tree/partition.h): coverage, balance, and the canonical-order
// contract that makes the whole evaluation invariant under permutation of
// the weighted points.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/prop.h"
#include "common/rng.h"
#include "tree/partition.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

workload::Instance uniform_instance(std::size_t m, std::size_t n,
                                    std::size_t k, std::uint64_t seed) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  return workload::make_instance(spec);
}

bool is_permutation_of_iota(const std::vector<std::size_t>& order,
                            std::size_t count) {
  if (order.size() != count) return false;
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < count; ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

TEST(TreePartitionTest, LeavesTileTheIndexRangeExactly) {
  const auto instance = uniform_instance(64, 500, 3, 11);
  const auto part = tree::partition_columns(instance.b, instance.w, 64, 24);
  ASSERT_FALSE(part.leaves.empty());
  EXPECT_EQ(part.leaves.front().begin, 0u);
  EXPECT_EQ(part.leaves.back().end, 500u);
  for (std::size_t i = 1; i < part.leaves.size(); ++i) {
    EXPECT_EQ(part.leaves[i - 1].end, part.leaves[i].begin);
  }
  EXPECT_TRUE(is_permutation_of_iota(part.order, 500));
}

TEST(TreePartitionTest, BalancedSplitsPutEveryLeafAtTheSameDepth) {
  // 500 points at leaf 64 needs 3 splits: 500 → 250 → 125 → 63/62.
  const auto instance = uniform_instance(32, 500, 3, 12);
  const auto part = tree::partition_columns(instance.b, instance.w, 64, 24);
  EXPECT_EQ(part.depth, 3u);
  EXPECT_EQ(part.leaves.size(), 8u);
  for (const auto& leaf : part.leaves) {
    EXPECT_GE(leaf.size(), 62u);
    EXPECT_LE(leaf.size(), 63u);
  }
}

TEST(TreePartitionTest, SmallSetsStaySingleLeaf) {
  const auto instance = uniform_instance(16, 40, 2, 13);
  const auto part = tree::partition_columns(instance.b, instance.w, 64, 24);
  EXPECT_EQ(part.depth, 0u);
  ASSERT_EQ(part.leaves.size(), 1u);
  EXPECT_EQ(part.leaves[0].size(), 40u);
}

TEST(TreePartitionTest, MaxDepthCapsTheRecursion) {
  const auto instance = uniform_instance(16, 512, 2, 14);
  const auto part = tree::partition_columns(instance.b, instance.w, 1, 3);
  EXPECT_EQ(part.depth, 3u);
  EXPECT_EQ(part.leaves.size(), 8u);
}

TEST(TreePartitionTest, RowPartitionCoversAllRows) {
  const auto instance = uniform_instance(300, 32, 4, 15);
  const auto part = tree::partition_rows(instance.a, 128, 24);
  EXPECT_TRUE(is_permutation_of_iota(part.order, 300));
  EXPECT_EQ(part.leaves.size(), 4u);
}

TEST(TreePartitionTest, CanonicalOrderIsInvariantUnderColumnPermutation) {
  // The canonical order must map permuted inputs to the SAME point
  // sequence: order_perm[i] must name the same physical point as
  // order_orig[i]. This is the root of the bit-identical-V-under-source-
  // permutation guarantee, so it gets a property sweep, not one example.
  prop::Config config;
  config.seed = 77;
  config.iterations = 8;
  struct Case {
    workload::Instance instance;
    std::vector<std::size_t> perm;  // permuted column j holds original perm[j]
  };
  prop::check(
      "canonical-order-permutation-invariance", config,
      [](prop::Gen& gen, std::size_t scale) {
        Case c;
        const std::size_t n = std::max<std::size_t>(2, scale);
        c.instance = uniform_instance(8, n, gen.size_in(1, 4), gen.next_u64());
        c.perm.resize(n);
        std::iota(c.perm.begin(), c.perm.end(), std::size_t{0});
        // Fisher–Yates off the harness generator.
        for (std::size_t i = n - 1; i > 0; --i) {
          std::swap(c.perm[i], c.perm[gen.size_in(0, i)]);
        }
        return c;
      },
      [](const Case& c) {
        const std::size_t n = c.instance.spec.n;
        const std::size_t k = c.instance.spec.k;
        Matrix permuted_b(k, n, Layout::kColMajor);
        Vector permuted_w(n);
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t d = 0; d < k; ++d) {
            permuted_b.at(d, j) = c.instance.b.at(d, c.perm[j]);
          }
          permuted_w[j] = c.instance.w[c.perm[j]];
        }
        const auto original =
            tree::canonical_column_order(c.instance.b, c.instance.w);
        const auto shuffled =
            tree::canonical_column_order(permuted_b, permuted_w);
        if (original.size() != shuffled.size()) return false;
        // Same physical point at every canonical position.
        for (std::size_t i = 0; i < original.size(); ++i) {
          const std::size_t orig_point = original[i];
          const std::size_t perm_point = c.perm[shuffled[i]];
          if (orig_point == perm_point) continue;
          // Distinct indices are fine only for fully identical points.
          for (std::size_t d = 0; d < k; ++d) {
            if (c.instance.b.at(d, orig_point) !=
                c.instance.b.at(d, perm_point)) {
              return false;
            }
          }
          if (c.instance.w[orig_point] != c.instance.w[perm_point]) {
            return false;
          }
        }
        return true;
      });
}

TEST(TreePartitionTest, ColumnPartitionIsInvariantUnderPermutationToo) {
  // Same sweep one level up: the leaf-contiguous order after the median
  // splits must also name the same point sequence for permuted inputs.
  prop::Config config;
  config.seed = 78;
  config.iterations = 6;
  config.max_scale = 200;
  struct Case {
    workload::Instance instance;
    std::vector<std::size_t> perm;
  };
  prop::check(
      "partition-permutation-invariance", config,
      [](prop::Gen& gen, std::size_t scale) {
        Case c;
        const std::size_t n = std::max<std::size_t>(2, scale);
        c.instance = uniform_instance(8, n, 2, gen.next_u64());
        c.perm.resize(n);
        std::iota(c.perm.begin(), c.perm.end(), std::size_t{0});
        for (std::size_t i = n - 1; i > 0; --i) {
          std::swap(c.perm[i], c.perm[gen.size_in(0, i)]);
        }
        return c;
      },
      [](const Case& c) {
        const std::size_t n = c.instance.spec.n;
        const std::size_t k = c.instance.spec.k;
        Matrix permuted_b(k, n, Layout::kColMajor);
        Vector permuted_w(n);
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t d = 0; d < k; ++d) {
            permuted_b.at(d, j) = c.instance.b.at(d, c.perm[j]);
          }
          permuted_w[j] = c.instance.w[c.perm[j]];
        }
        const auto original =
            tree::partition_columns(c.instance.b, c.instance.w, 16, 24);
        const auto shuffled =
            tree::partition_columns(permuted_b, permuted_w, 16, 24);
        if (original.leaves.size() != shuffled.leaves.size()) return false;
        for (std::size_t i = 0; i < original.order.size(); ++i) {
          const std::size_t orig_point = original.order[i];
          const std::size_t perm_point = c.perm[shuffled.order[i]];
          for (std::size_t d = 0; d < k; ++d) {
            if (c.instance.b.at(d, orig_point) !=
                c.instance.b.at(d, perm_point)) {
              return false;
            }
          }
          if (c.instance.w[orig_point] != c.instance.w[perm_point]) {
            return false;
          }
        }
        return true;
      });
}

}  // namespace
}  // namespace ksum
