// The analytic Gaussian truncation bounds (src/tree/bounds.h). The whole
// ε-guarantee stands on these two inequalities, so they are checked the
// strong way: against dense sampling of the envelopes and against the
// actual series remainder on randomly generated boxes.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/prop.h"
#include "tree/bounds.h"
#include "tree/plan.h"

namespace ksum {
namespace {

double gaussian(double d, double h) { return std::exp(-d * d / (2 * h * h)); }

TEST(TreeBoundsTest, GradientEnvelopeDominatesTheGradientNorm) {
  prop::Config config;
  config.seed = 101;
  config.iterations = 20;
  struct Case {
    double a, h;
  };
  prop::check(
      "gradient-envelope", config,
      [](prop::Gen& gen, std::size_t) {
        return Case{static_cast<double>(gen.float_in(0.0f, 3.0f)),
                    static_cast<double>(gen.float_in(0.01f, 2.0f))};
      },
      [](const Case& c) {
        const double env = tree::gradient_envelope(c.a, c.h);
        // Sample d ≥ a densely; g(d) = (d/h²)e^{−d²/2h²} must stay under.
        for (int i = 0; i <= 400; ++i) {
          const double d = c.a + i * 0.01 * std::max(c.h, 0.1);
          const double g = (d / (c.h * c.h)) * gaussian(d, c.h);
          if (g > env * (1 + 1e-12)) return false;
        }
        return true;
      });
}

TEST(TreeBoundsTest, HessianEnvelopeDominatesTheHessianNorm) {
  prop::Config config;
  config.seed = 102;
  config.iterations = 20;
  struct Case {
    double a, h;
  };
  prop::check(
      "hessian-envelope", config,
      [](prop::Gen& gen, std::size_t) {
        return Case{static_cast<double>(gen.float_in(0.0f, 3.0f)),
                    static_cast<double>(gen.float_in(0.01f, 2.0f))};
      },
      [](const Case& c) {
        const double env = tree::hessian_envelope(c.a, c.h);
        const double h2 = c.h * c.h;
        for (int i = 0; i <= 400; ++i) {
          const double d = c.a + i * 0.01 * std::max(c.h, 0.1);
          const double phi = (gaussian(d, c.h) / h2) *
                             std::max(1.0, std::abs(d * d / h2 - 1.0));
          if (phi > env * (1 + 1e-12)) return false;
        }
        return true;
      });
}

TEST(TreeBoundsTest, EnvelopesAreMonotoneInTheDistanceFloor) {
  // Growing the exclusion radius can only shrink the supremum — the
  // property that makes "further away ⇒ easier to approximate" sound.
  for (const double h : {0.05, 0.3, 1.0}) {
    double last_g = tree::gradient_envelope(0.0, h);
    double last_phi = tree::hessian_envelope(0.0, h);
    for (double a = 0.05; a < 4.0; a += 0.05) {
      const double g = tree::gradient_envelope(a, h);
      const double phi = tree::hessian_envelope(a, h);
      EXPECT_LE(g, last_g * (1 + 1e-12)) << "h=" << h << " a=" << a;
      EXPECT_LE(phi, last_phi * (1 + 1e-12)) << "h=" << h << " a=" << a;
      last_g = g;
      last_phi = phi;
    }
  }
}

// The property the solver actually relies on: for a random box of points
// and a random evaluation point, the true remainder of the order-p series
// is within the analytic bound (per unit weight).
TEST(TreeBoundsTest, SeriesRemainderIsWithinTheAnalyticBound) {
  prop::Config config;
  config.seed = 103;
  config.iterations = 15;
  config.max_scale = 64;
  struct Case {
    std::vector<std::array<double, 3>> points;  // box points
    std::array<double, 3> eval;                 // evaluation point
    double h;
  };
  prop::check(
      "series-remainder-bound", config,
      [](prop::Gen& gen, std::size_t scale) {
        Case c;
        c.h = static_cast<double>(gen.float_in(0.05f, 1.0f));
        const std::size_t count = std::max<std::size_t>(1, scale / 4);
        // A compact box somewhere in [0,1)³ …
        std::array<double, 3> base;
        for (auto& v : base) v = gen.float_in(0.0f, 1.0f);
        const double spread = gen.float_in(0.01f, 0.2f);
        for (std::size_t i = 0; i < count; ++i) {
          std::array<double, 3> p;
          for (std::size_t d = 0; d < 3; ++d) {
            p[d] = base[d] +
                   static_cast<double>(gen.float_in(-1.0f, 1.0f)) * spread;
          }
          c.points.push_back(p);
        }
        // … evaluated from anywhere, including right next to the box.
        for (auto& v : c.eval) v = gen.float_in(-1.0f, 2.0f);
        return c;
      },
      [](const Case& c) {
        // Box summary in the same arithmetic the planner uses.
        std::array<double, 3> center{0, 0, 0};
        for (const auto& p : c.points) {
          for (std::size_t d = 0; d < 3; ++d) center[d] += p[d];
        }
        for (auto& v : center) v /= static_cast<double>(c.points.size());
        double radius = 0;
        for (const auto& p : c.points) {
          double dist2 = 0;
          for (std::size_t d = 0; d < 3; ++d) {
            dist2 += (p[d] - center[d]) * (p[d] - center[d]);
          }
          radius = std::max(radius, std::sqrt(dist2));
        }
        double center_dist2 = 0;
        for (std::size_t d = 0; d < 3; ++d) {
          center_dist2 += (c.eval[d] - center[d]) * (c.eval[d] - center[d]);
        }
        const double center_dist = std::sqrt(center_dist2);
        const double g = gaussian(center_dist, c.h);
        const double bound0 = tree::order0_bound(radius, center_dist, c.h);
        const double bound1 = tree::order1_bound(radius, center_dist, c.h);

        // Per-unit-weight worst case over the box points.
        for (const auto& p : c.points) {
          double d2 = 0;
          double dot = 0;
          for (std::size_t d = 0; d < 3; ++d) {
            d2 += (c.eval[d] - p[d]) * (c.eval[d] - p[d]);
            dot += (c.eval[d] - center[d]) * (p[d] - center[d]);
          }
          const double exact = gaussian(std::sqrt(d2), c.h);
          const double order0 = g;
          const double order1 = g + g * dot / (c.h * c.h);
          if (std::abs(exact - order0) > bound0 * (1 + 1e-9) + 1e-15) {
            return false;
          }
          if (std::abs(exact - order1) > bound1 * (1 + 1e-9) + 1e-15) {
            return false;
          }
        }
        return true;
      });
}

TEST(TreeBoundsTest, AabbDistanceIsExactOnHandCases) {
  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(tree::aabb_distance(lo, hi, {0.5, 1.0}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(tree::aabb_distance(lo, hi, {2.0, 1.0}), 1.0);  // face
  EXPECT_DOUBLE_EQ(tree::aabb_distance(lo, hi, {-3.0, -4.0}), 5.0);  // corner
}

}  // namespace
}  // namespace ksum
