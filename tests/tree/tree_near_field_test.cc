// Near-field correctness of the near/far splitter: no weighted point is
// ever dropped, neighbors straddling box boundaries stay accounted for,
// and the dense-fallback rules are byte-exact. The kNN oracle
// (core/knn_exact.h, the same machinery behind the fused kNN kernel)
// audits the splitter from the outside: a query's true nearest neighbors
// must either land in a near box or sit in a box whose independently
// recomputed truncation bound fits the budget.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/exact.h"
#include "core/knn_exact.h"
#include "pipelines/solver.h"
#include "tree/bounds.h"
#include "tree/plan.h"
#include "tree/solve.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;

workload::Instance base_instance(std::size_t m, std::size_t n, std::size_t k,
                                 std::uint64_t seed, float bandwidth) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  spec.bandwidth = bandwidth;
  return workload::make_instance(spec);
}

tree::TreeSpec small_leaf_spec(double eps) {
  tree::TreeSpec spec;
  spec.eps = eps;
  spec.box_leaf = 16;
  spec.row_leaf = 32;
  return spec;
}

/// inverse[original index] = canonical position in part.order.
std::vector<std::size_t> inverse_order(const tree::Partition& part) {
  std::vector<std::size_t> inverse(part.order.size());
  for (std::size_t pos = 0; pos < part.order.size(); ++pos) {
    inverse[part.order[pos]] = pos;
  }
  return inverse;
}

/// Leaf index owning canonical position `pos`.
std::size_t leaf_of(const tree::Partition& part, std::size_t pos) {
  for (std::size_t i = 0; i < part.leaves.size(); ++i) {
    if (pos >= part.leaves[i].begin && pos < part.leaves[i].end) return i;
  }
  ADD_FAILURE() << "position " << pos << " not covered by any leaf";
  return 0;
}

double max_abs_err(const Vector& v, const Vector& oracle) {
  double worst = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(v[i]) -
                                     static_cast<double>(oracle[i])));
  }
  return worst;
}

double float_slack(const Vector& oracle) {
  double slack = 0;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    slack = std::max(
        slack, 5e-3 * std::max(1e-2, std::abs(static_cast<double>(oracle[i]))));
  }
  return slack;
}

TEST(TreeNearFieldTest, EveryColumnClassifiedExactlyOncePerRowCluster) {
  const auto instance = base_instance(200, 700, 3, 51, 0.08f);
  const auto params = core::params_from_spec(instance.spec);
  const auto plan =
      tree::build_plan(instance, params, small_leaf_spec(1e-4));

  // The pair grid covers the full cross product …
  ASSERT_EQ(plan.pairs.size(), plan.rows.size() * plan.boxes.size());
  EXPECT_EQ(plan.near_pairs + plan.far0_pairs + plan.far1_pairs,
            plan.pairs.size());
  // … and the boxes tile every weighted point exactly once.
  std::vector<int> seen(instance.spec.n, 0);
  for (const auto& box : plan.boxes) {
    for (std::size_t pos = box.range.begin; pos < box.range.end; ++pos) {
      seen[plan.column_part.order[pos]] += 1;
    }
  }
  for (std::size_t j = 0; j < instance.spec.n; ++j) {
    EXPECT_EQ(seen[j], 1) << "column " << j;
  }
}

TEST(TreeNearFieldTest, KnnAuditNoNearNeighborIsMishandled) {
  // Outside-in audit: for each query row, its true nearest neighbors
  // (exact kNN) must be in a near box for that row's cluster, or in a box
  // whose truncation bound — recomputed here from scratch — fits the
  // per-unit budget. Either way no close neighbor's mass is dropped.
  const auto instance = base_instance(128, 512, 2, 52, 0.06f);
  const auto params = core::params_from_spec(instance.spec);
  const auto plan =
      tree::build_plan(instance, params, small_leaf_spec(1e-5));
  ASSERT_TRUE(plan.has_far_pair()) << "shape too hostile — test is vacuous";

  const auto col_inverse = inverse_order(plan.column_part);
  const auto row_inverse = inverse_order(plan.row_part);
  const auto knn = core::knn_exact(instance, 8);
  const double h = static_cast<double>(params.bandwidth);

  for (std::size_t r = 0; r < instance.spec.m; ++r) {
    const std::size_t rc = leaf_of(plan.row_part, row_inverse[r]);
    for (std::size_t rank = 0; rank < knn.k_nn; ++rank) {
      const std::size_t j = knn.index(r, rank);
      const std::size_t bx = leaf_of(plan.column_part, col_inverse[j]);
      const tree::PairKind kind = plan.at(rc, bx);
      if (kind == tree::PairKind::kNear) continue;
      // Far box holding a true near neighbor: its analytic bound must
      // still be within budget, independently of the planner's own math.
      const auto& box = plan.boxes[bx];
      const auto& cluster = plan.rows[rc];
      const double dist =
          tree::aabb_distance(cluster.lo, cluster.hi, box.center);
      const double bound =
          kind == tree::PairKind::kFarOrder0
              ? tree::order0_bound(box.radius, dist, h)
              : tree::order1_bound(box.radius, dist, h);
      EXPECT_LE(bound, plan.budget * (1 + 1e-12))
          << "row " << r << " neighbor " << j << " box " << bx;
    }
  }
}

TEST(TreeNearFieldTest, BoundaryStraddlingClustersStayWithinEps) {
  // Adversarial geometry: tight blobs deliberately centered where the
  // balanced median split will cut them in half, so physical neighbors end
  // up in different boxes. The ε-guarantee must hold anyway.
  auto instance = base_instance(128, 256, 2, 53, 0.05f);
  for (std::size_t j = 0; j < 256; ++j) {
    const float blob = (j % 2 == 0) ? 0.5f : -0.5f;  // two blobs around ±0.5
    const float jitter = 0.02f * static_cast<float>((j * 37 % 64) - 32) / 32;
    // x straddles the blob center (the likely split plane), y is jittered.
    instance.b.at(0, j) = blob + jitter;
    instance.b.at(1, j) = 0.3f * jitter + (j % 4 == 0 ? 0.01f : -0.01f);
  }
  for (std::size_t i = 0; i < 128; ++i) {
    // Queries right on top of the blobs so the near field dominates.
    instance.a.at(i, 0) = (i % 2 == 0) ? 0.5f : -0.5f;
    instance.a.at(i, 1) = 0.0f;
  }
  const auto params = core::params_from_spec(instance.spec);
  const auto oracle = pipelines::solve(instance, params, Backend::kCpuDirect);
  for (const double eps : {1e-3, 1e-5}) {
    pipelines::RunOptions options;
    options.tree = small_leaf_spec(eps);
    const auto result =
        pipelines::solve(instance, params, Backend::kSimFused, options);
    ASSERT_TRUE(result.tree.has_value());
    EXPECT_LE(max_abs_err(result.v, oracle.v), eps + float_slack(oracle.v))
        << "eps " << eps;
  }
}

TEST(TreeNearFieldTest, ColinearPointsStayWithinEps) {
  // Degenerate geometry: every weighted point on one line (zero spread in
  // the other dimension), queries on the same line. Radius and AABB
  // distances collapse to 1-D; the bound must still hold.
  auto instance = base_instance(128, 256, 2, 54, 0.04f);
  for (std::size_t j = 0; j < 256; ++j) {
    instance.b.at(0, j) = -1.0f + 2.0f * static_cast<float>(j) / 255.0f;
    instance.b.at(1, j) = 0.25f;
  }
  for (std::size_t i = 0; i < 128; ++i) {
    instance.a.at(i, 0) = -1.0f + 2.0f * static_cast<float>(i) / 127.0f;
    instance.a.at(i, 1) = 0.25f;
  }
  const auto params = core::params_from_spec(instance.spec);
  const auto oracle = pipelines::solve(instance, params, Backend::kCpuDirect);
  pipelines::RunOptions options;
  options.tree = small_leaf_spec(1e-4);
  const auto result =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(result.tree.has_value());
  ASSERT_TRUE(result.tree->used_tree)
      << "colinear spread should still admit far pairs";
  EXPECT_LE(max_abs_err(result.v, oracle.v), 1e-4 + float_slack(oracle.v));
}

TEST(TreeNearFieldTest, EpsZeroIsByteIdenticalToPlainDense) {
  const auto instance = base_instance(192, 384, 4, 55, 0.3f);
  const auto params = core::params_from_spec(instance.spec);
  const auto plain = pipelines::solve(instance, params, Backend::kSimFused);
  pipelines::RunOptions options;
  options.tree.eps = 0;  // disabled — the documented "exact mode"
  const auto gated =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  EXPECT_FALSE(gated.tree.has_value());
  ASSERT_EQ(plain.v.size(), gated.v.size());
  EXPECT_EQ(std::memcmp(plain.v.data(), gated.v.data(),
                        plain.v.size() * sizeof(float)),
            0);
}

TEST(TreeNearFieldTest, UntunableShapeFallsBackDenseByteIdentically) {
  // High dimension + wide bandwidth: every pair is near, the plan has no
  // far pair, and the run must be byte-identical to the dense path with a
  // report explaining why.
  const auto instance = base_instance(128, 256, 8, 56, 0.9f);
  const auto params = core::params_from_spec(instance.spec);
  const auto plain = pipelines::solve(instance, params, Backend::kSimFused);
  pipelines::RunOptions options;
  options.tree.eps = 1e-6;
  const auto fallen =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(fallen.tree.has_value());
  EXPECT_FALSE(fallen.tree->used_tree);
  EXPECT_FALSE(fallen.tree->fallback_reason.empty());
  ASSERT_EQ(plain.v.size(), fallen.v.size());
  EXPECT_EQ(std::memcmp(plain.v.data(), fallen.v.data(),
                        plain.v.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace ksum
