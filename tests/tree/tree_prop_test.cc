// Property and metamorphic tests of the treecode's user-facing contract
// (docs/TREECODE.md, "the ε contract"), on the prop.h shrink harness:
//
//   * ε-monotonicity — tightening ε never increases the achieved error,
//     and the far-pair set at the tighter ε is a subset of the looser one
//     (the exact, float-free formulation);
//   * source-permutation invariance — permuting the weighted points leaves
//     V bit-identical (the canonical-order contract end to end);
//   * duplication metamorphic — splitting every weighted point into two
//     half-weight copies leaves V within ε of the original oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/prop.h"
#include "core/exact.h"
#include "pipelines/solver.h"
#include "tree/plan.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;

// Low geometric dimension and a bandwidth well under the box size, so the
// plans genuinely mix near and far pairs (k=250-style shapes go all-near
// and fall back dense — covered in tree_near_field_test.cc).
workload::Instance favorable_instance(std::size_t m, std::size_t n,
                                      std::uint64_t seed, float bandwidth,
                                      std::size_t k = 2) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  spec.bandwidth = bandwidth;
  return workload::make_instance(spec);
}

pipelines::RunOptions tree_options(double eps) {
  pipelines::RunOptions options;
  options.tree.eps = eps;
  options.tree.box_leaf = 32;
  options.tree.row_leaf = 64;
  return options;
}

/// The achieved ∞-norm error vs the double-accumulated host oracle, with
/// the repo-wide float-agreement slack subtracted out per entry: the part
/// of the difference the ε budget owns is what exceeds the round-off
/// allowance dense runs already get (docs/TESTING.md tolerance).
double eps_owned_error(const Vector& v, const Vector& oracle) {
  double worst = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double o = static_cast<double>(oracle[i]);
    const double slack = 5e-3 * std::max(1e-2, std::abs(o));
    const double err = std::abs(static_cast<double>(v[i]) - o) - slack;
    worst = std::max(worst, err);
  }
  return worst;
}

TEST(TreePropTest, TighteningEpsShrinksTheFarSetExactly) {
  prop::Config config;
  config.seed = 301;
  config.iterations = 6;
  config.max_scale = 1024;
  struct Case {
    workload::Instance instance;
    core::KernelParams params;
    double eps_loose, eps_tight;
  };
  prop::check(
      "far-set-monotonicity", config,
      [](prop::Gen& gen, std::size_t scale) {
        Case c;
        const std::size_t n = std::max<std::size_t>(64, scale);
        c.instance = favorable_instance(gen.size_in(64, 256), n,
                                        gen.next_u64(),
                                        gen.float_in(0.03f, 0.1f));
        c.params = core::params_from_spec(c.instance.spec);
        c.eps_loose = gen.float_in(1e-3f, 1e-1f);
        c.eps_tight =
            c.eps_loose * static_cast<double>(gen.float_in(1e-4f, 0.5f));
        return c;
      },
      [](const Case& c) {
        tree::TreeSpec spec;
        spec.box_leaf = 32;
        spec.row_leaf = 64;
        spec.eps = c.eps_loose;
        const auto loose = tree::build_plan(c.instance, c.params, spec);
        spec.eps = c.eps_tight;
        const auto tight = tree::build_plan(c.instance, c.params, spec);
        if (loose.rows.size() != tight.rows.size() ||
            loose.boxes.size() != tight.boxes.size()) {
          return false;
        }
        // Every pair far at the tighter ε must be far at the looser ε
        // (possibly at a lower order), and the bound spend stays ≤ ε.
        for (std::size_t rc = 0; rc < loose.rows.size(); ++rc) {
          for (std::size_t bx = 0; bx < loose.boxes.size(); ++bx) {
            const bool tight_far =
                tight.at(rc, bx) != tree::PairKind::kNear;
            const bool loose_far =
                loose.at(rc, bx) != tree::PairKind::kNear;
            if (tight_far && !loose_far) return false;
          }
        }
        return loose.bound_total <= c.eps_loose &&
               tight.bound_total <= c.eps_tight;
      });
}

TEST(TreePropTest, TighteningEpsNeverIncreasesTheAchievedError) {
  // The user-visible form of monotonicity, with the float round-off that
  // rides on both runs allowed for: the ε-owned part of the error at the
  // tighter budget must not exceed the looser budget's by more than noise.
  const double eps_ladder[] = {1e-1, 1e-3, 1e-5};
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    const auto instance = favorable_instance(192, 1024, seed, 0.05f);
    const auto params = core::params_from_spec(instance.spec);
    const auto oracle =
        pipelines::solve(instance, params, Backend::kCpuDirect);
    double last_err = -1;
    for (const double eps : eps_ladder) {
      const auto result = pipelines::solve(instance, params,
                                           Backend::kSimFused,
                                           tree_options(eps));
      ASSERT_TRUE(result.tree.has_value()) << "seed " << seed;
      const double err = eps_owned_error(result.v, oracle.v);
      EXPECT_LE(err, eps) << "seed " << seed << " eps " << eps;
      if (last_err >= 0) {
        EXPECT_LE(err, last_err + 1e-6)
            << "seed " << seed << ": tightening eps to " << eps
            << " increased the achieved error";
      }
      last_err = err;
    }
  }
}

TEST(TreePropTest, SourcePermutationLeavesVBitIdentical) {
  prop::Config config;
  config.seed = 302;
  config.iterations = 5;
  config.max_scale = 1024;
  struct Case {
    workload::Instance instance;
    workload::Instance permuted;
    core::KernelParams params;
    double eps;
  };
  prop::check(
      "source-permutation-bit-identity", config,
      [](prop::Gen& gen, std::size_t scale) {
        Case c;
        const std::size_t n = std::max<std::size_t>(64, scale);
        c.instance = favorable_instance(gen.size_in(64, 192), n,
                                        gen.next_u64(),
                                        gen.float_in(0.03f, 0.1f));
        c.params = core::params_from_spec(c.instance.spec);
        c.eps = gen.float_in(1e-5f, 1e-2f);
        // Permute the weighted points (columns of B with their weights).
        std::vector<std::size_t> perm(n);
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        for (std::size_t i = n - 1; i > 0; --i) {
          std::swap(perm[i], perm[gen.size_in(0, i)]);
        }
        c.permuted = c.instance;
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t d = 0; d < c.instance.spec.k; ++d) {
            c.permuted.b.at(d, j) = c.instance.b.at(d, perm[j]);
          }
          c.permuted.w[j] = c.instance.w[perm[j]];
        }
        return c;
      },
      [](const Case& c) {
        const auto options = tree_options(c.eps);
        const auto original = pipelines::solve(c.instance, c.params,
                                               Backend::kSimFused, options);
        const auto shuffled = pipelines::solve(c.permuted, c.params,
                                               Backend::kSimFused, options);
        if (!original.tree.has_value() || !original.tree->used_tree) {
          // The property only binds tree-routed runs; dense fallbacks are
          // order-sensitive by design. Favorable shapes should route.
          return false;
        }
        return original.v.size() == shuffled.v.size() &&
               std::memcmp(original.v.data(), shuffled.v.data(),
                           original.v.size() * sizeof(float)) == 0;
      });
}

TEST(TreePropTest, DuplicatedHalfWeightSourcesStayWithinEps) {
  prop::Config config;
  config.seed = 303;
  config.iterations = 5;
  config.max_scale = 512;
  struct Case {
    workload::Instance instance;
    workload::Instance doubled;
    core::KernelParams params;
    double eps;
  };
  prop::check(
      "duplication-metamorphic", config,
      [](prop::Gen& gen, std::size_t scale) {
        Case c;
        const std::size_t n = std::max<std::size_t>(64, scale);
        c.instance = favorable_instance(gen.size_in(64, 192), n,
                                        gen.next_u64(),
                                        gen.float_in(0.03f, 0.1f));
        c.params = core::params_from_spec(c.instance.spec);
        c.eps = gen.float_in(1e-4f, 1e-2f);
        // Every weighted point appears twice at half weight: the exact sum
        // is unchanged (w/2 + w/2 == w in float — halving a float is exact
        // for these magnitudes).
        c.doubled = c.instance;
        c.doubled.spec.n = 2 * n;
        c.doubled.b = Matrix(c.instance.spec.k, 2 * n, Layout::kColMajor);
        c.doubled.w = Vector(2 * n);
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t copy = 0; copy < 2; ++copy) {
            for (std::size_t d = 0; d < c.instance.spec.k; ++d) {
              c.doubled.b.at(d, 2 * j + copy) = c.instance.b.at(d, j);
            }
            c.doubled.w[2 * j + copy] = c.instance.w[j] * 0.5f;
          }
        }
        return c;
      },
      [](const Case& c) {
        const auto oracle =
            pipelines::solve(c.instance, c.params, Backend::kCpuDirect);
        const auto doubled = pipelines::solve(c.doubled, c.params,
                                              Backend::kSimFused,
                                              tree_options(c.eps));
        if (!doubled.tree.has_value()) return false;
        return eps_owned_error(doubled.v, oracle.v) <= c.eps;
      });
}

}  // namespace
}  // namespace ksum
