// End-to-end treecode runs through pipelines::solve: the ε-guarantee on
// favorable shapes, bit-identical shard composition, TreeMode::kAuto
// decisions, option validation, and report plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/exact.h"
#include "pipelines/solver.h"
#include "tree/cost.h"
#include "tree/solve.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using pipelines::Backend;

workload::Instance favorable_instance(std::uint64_t seed = 71,
                                      std::size_t m = 512,
                                      std::size_t n = 2048) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = 2;
  spec.seed = seed;
  spec.bandwidth = 0.05f;
  return workload::make_instance(spec);
}

pipelines::RunOptions tree_options(double eps) {
  pipelines::RunOptions options;
  options.tree.eps = eps;
  options.tree.box_leaf = 64;
  options.tree.row_leaf = 64;
  return options;
}

double max_abs_err(const Vector& v, const Vector& oracle) {
  double worst = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(v[i]) -
                                     static_cast<double>(oracle[i])));
  }
  return worst;
}

double float_slack(const Vector& oracle) {
  double slack = 0;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    slack = std::max(
        slack, 5e-3 * std::max(1e-2, std::abs(static_cast<double>(oracle[i]))));
  }
  return slack;
}

TEST(TreeSolverTest, MeetsTheEpsilonBudgetAcrossTheLadder) {
  const auto instance = favorable_instance();
  const auto params = core::params_from_spec(instance.spec);
  const auto oracle = pipelines::solve(instance, params, Backend::kCpuDirect);
  const double slack = float_slack(oracle.v);
  for (const double eps : {1e-2, 1e-4, 1e-6}) {
    const auto result = pipelines::solve(instance, params, Backend::kSimFused,
                                         tree_options(eps));
    ASSERT_TRUE(result.tree.has_value()) << "eps " << eps;
    EXPECT_TRUE(result.tree->used_tree) << "eps " << eps;
    EXPECT_LE(result.tree->bound_total, eps) << "eps " << eps;
    EXPECT_LE(max_abs_err(result.v, oracle.v), eps + slack) << "eps " << eps;
  }
}

TEST(TreeSolverTest, ReportDescribesTheExecutedPlan) {
  const auto instance = favorable_instance(72);
  const auto params = core::params_from_spec(instance.spec);
  const auto result = pipelines::solve(instance, params, Backend::kSimFused,
                                       tree_options(1e-4));
  ASSERT_TRUE(result.tree.has_value());
  const auto& report = *result.tree;
  EXPECT_TRUE(report.used_tree);
  EXPECT_DOUBLE_EQ(report.eps, 1e-4);
  EXPECT_GT(report.row_clusters, 0u);
  EXPECT_GT(report.boxes, 0u);
  EXPECT_GT(report.far_pairs_order0 + report.far_pairs_order1, 0u);
  // A favorable shape should skip a real share of the dense work.
  EXPECT_LT(report.near_fraction(instance.spec.m, instance.spec.n), 0.9);
  EXPECT_GT(report.near_seconds, 0.0);
  EXPECT_GE(report.far_seconds, 0.0);
  EXPECT_FALSE(report.to_string().empty());
  // The near-field sub-runs carry the pipeline report forward.
  ASSERT_TRUE(result.report.has_value());
  EXPECT_GT(result.report->seconds, 0.0);
  EXPECT_GT(result.report->useful_flops, 0.0);
}

TEST(TreeSolverTest, ShardCompositionIsBitIdentical) {
  const auto instance = favorable_instance(73);
  const auto params = core::params_from_spec(instance.spec);
  const auto baseline = pipelines::solve(instance, params, Backend::kSimFused,
                                         tree_options(1e-4));
  ASSERT_TRUE(baseline.tree.has_value() && baseline.tree->used_tree);
  for (const std::size_t count : {2u, 3u, 8u}) {
    for (const int workers : {1, 2, 8}) {
      auto options = tree_options(1e-4);
      options.shards.count = count;
      options.shards.workers = workers;
      const auto sharded =
          pipelines::solve(instance, params, Backend::kSimFused, options);
      ASSERT_TRUE(sharded.tree.has_value());
      EXPECT_TRUE(sharded.tree->used_tree);
      ASSERT_TRUE(sharded.shards.has_value());
      // Workers are clamped to the shard-group count.
      EXPECT_EQ(sharded.shards->workers,
                std::min(workers, static_cast<int>(count)));
      ASSERT_EQ(baseline.v.size(), sharded.v.size());
      EXPECT_EQ(std::memcmp(baseline.v.data(), sharded.v.data(),
                            baseline.v.size() * sizeof(float)),
                0)
          << "count " << count << " workers " << workers;
    }
  }
}

TEST(TreeSolverTest, ShardSlicesCarryLeafRanges) {
  const auto instance = favorable_instance(74);
  const auto params = core::params_from_spec(instance.spec);
  auto options = tree_options(1e-4);
  options.shards.count = 3;
  const auto result =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(result.shards.has_value());
  ASSERT_EQ(result.shards->slices.size(), 3u);
  ASSERT_TRUE(result.tree.has_value());
  // begin/end are row-cluster (leaf) index ranges tiling [0, clusters).
  EXPECT_EQ(result.shards->slices.front().begin, 0u);
  EXPECT_EQ(result.shards->slices.back().end, result.tree->row_clusters);
  for (std::size_t i = 1; i < result.shards->slices.size(); ++i) {
    EXPECT_EQ(result.shards->slices[i - 1].end,
              result.shards->slices[i].begin);
  }
}

TEST(TreeSolverTest, ExplicitNAxisShardsFallBackDense) {
  // kN sharding merges staged partials — incompatible with the tree's
  // per-cluster sub-runs, so the solver keeps the dense path (and the kN
  // machinery) instead of failing: ksum-serve's oversized-N routing keeps
  // working with a daemon-wide --tree-eps.
  const auto instance = favorable_instance(75);
  const auto params = core::params_from_spec(instance.spec);
  auto dense_options = pipelines::RunOptions{};
  dense_options.shards.count = 2;
  dense_options.shards.axis = shard::ShardAxis::kN;
  const auto dense =
      pipelines::solve(instance, params, Backend::kSimFused, dense_options);

  auto options = tree_options(1e-4);
  options.shards.count = 2;
  options.shards.axis = shard::ShardAxis::kN;
  const auto result =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(result.tree.has_value());
  EXPECT_FALSE(result.tree->used_tree);
  EXPECT_FALSE(result.tree->fallback_reason.empty());
  ASSERT_EQ(dense.v.size(), result.v.size());
  EXPECT_EQ(std::memcmp(dense.v.data(), result.v.data(),
                        dense.v.size() * sizeof(float)),
            0);
}

TEST(TreeSolverTest, AutoModeRunsTheTreeWhenItIsCheaper) {
  // A cost model that prices dense astronomically: auto must pick the tree.
  struct ExpensiveDense : tree::DenseCostModel {
    double dense_seconds(std::size_t, std::size_t, std::size_t) const override {
      return 1e9;
    }
  } expensive;
  const auto instance = favorable_instance(76);
  const auto params = core::params_from_spec(instance.spec);
  auto options = tree_options(1e-4);
  options.tree.mode = tree::TreeMode::kAuto;
  options.tree.cost_model = &expensive;
  const auto result =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(result.tree.has_value());
  EXPECT_TRUE(result.tree->used_tree);
}

TEST(TreeSolverTest, AutoModeFallsBackWhenDenseIsCheaper) {
  struct FreeDense : tree::DenseCostModel {
    double dense_seconds(std::size_t, std::size_t, std::size_t) const override {
      return 0.0;
    }
  } free_dense;
  const auto instance = favorable_instance(77);
  const auto params = core::params_from_spec(instance.spec);
  const auto plain = pipelines::solve(instance, params, Backend::kSimFused);
  auto options = tree_options(1e-4);
  options.tree.mode = tree::TreeMode::kAuto;
  options.tree.cost_model = &free_dense;
  const auto result =
      pipelines::solve(instance, params, Backend::kSimFused, options);
  ASSERT_TRUE(result.tree.has_value());
  EXPECT_FALSE(result.tree->used_tree);
  EXPECT_FALSE(result.tree->fallback_reason.empty());
  ASSERT_EQ(plain.v.size(), result.v.size());
  EXPECT_EQ(std::memcmp(plain.v.data(), result.v.data(),
                        plain.v.size() * sizeof(float)),
            0);
}

TEST(TreeSolverTest, RejectsUnsupportedOptionCombinations) {
  const auto instance = favorable_instance(78, 128, 256);
  const auto params = core::params_from_spec(instance.spec);

  pipelines::RunOptions negative;
  negative.tree.eps = -1e-3;
  EXPECT_THROW(
      pipelines::solve(instance, params, Backend::kSimFused, negative), Error);

  // The treecode only routes through the fused pipeline; host oracles and
  // the unfused simulated backends must reject it rather than silently
  // ignoring the budget.
  for (const Backend backend :
       {Backend::kCpuDirect, Backend::kCpuExpansion, Backend::kSimCudaUnfused,
        Backend::kSimCublasUnfused}) {
    EXPECT_THROW(pipelines::solve(instance, params, backend, tree_options(1e-4)),
                 Error)
        << to_string(backend);
  }

  // Any attached injector conflicts with the ε contract (a corrupted
  // near-field block voids the guarantee), so validation sees it first.
  struct NullInjector : gpusim::FaultInjector {
    float corrupt_word(gpusim::FaultSite, float value) override {
      return value;
    }
    gpusim::AtomicFate atomic_fate() override {
      return gpusim::AtomicFate::kApply;
    }
  } null_injector;
  auto with_fault = tree_options(1e-4);
  with_fault.fault_injector = &null_injector;
  EXPECT_THROW(
      pipelines::solve(instance, params, Backend::kSimFused, with_fault),
      Error);

  auto with_shard_faults = tree_options(1e-4);
  with_shard_faults.shards.count = 2;
  with_shard_faults.shards.injector_factory = [](std::size_t, int) {
    return std::shared_ptr<gpusim::FaultInjector>();
  };
  EXPECT_THROW(pipelines::solve(instance, params, Backend::kSimFused,
                                with_shard_faults),
               Error);

  auto with_capture = tree_options(1e-4);
  shard::StagedPartials partials;
  with_capture.capture_staged_partials = &partials;
  EXPECT_THROW(
      pipelines::solve(instance, params, Backend::kSimFused, with_capture),
      Error);
}

TEST(TreeSolverTest, RoundTripsThroughUnalignedShapes) {
  // Shapes nowhere near the 128-row CTA grid: padding happens inside every
  // near-field sub-run; the guarantee and V length must survive.
  workload::ProblemSpec spec;
  spec.m = 129;
  spec.n = 1001;
  spec.k = 2;
  spec.seed = 79;
  spec.bandwidth = 0.05f;
  const auto instance = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);
  const auto oracle = pipelines::solve(instance, params, Backend::kCpuDirect);
  const auto result = pipelines::solve(instance, params, Backend::kSimFused,
                                       tree_options(1e-3));
  ASSERT_EQ(result.v.size(), spec.m);
  ASSERT_TRUE(result.tree.has_value());
  EXPECT_LE(max_abs_err(result.v, oracle.v), 1e-3 + float_slack(oracle.v));
}

TEST(TreeSolverTest, CostEstimatesAreFiniteAndOrdered) {
  const auto instance = favorable_instance(80);
  const auto params = core::params_from_spec(instance.spec);
  tree::TreeSpec spec = tree_options(1e-4).tree;
  const auto plan = tree::build_plan(instance, params, spec);
  const auto device = config::DeviceSpec::gtx970();
  const double dense = tree::dense_roofline_seconds(
      instance.spec.m, instance.spec.n, instance.spec.k, 128, 128, device);
  const double treed = tree::tree_seconds_estimate(plan, instance.spec.k, 128,
                                                   128, device);
  EXPECT_TRUE(std::isfinite(dense));
  EXPECT_TRUE(std::isfinite(treed));
  EXPECT_GT(dense, 0.0);
  EXPECT_GT(treed, 0.0);
}

}  // namespace
}  // namespace ksum
