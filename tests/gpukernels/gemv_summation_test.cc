#include "gpukernels/gemv_summation.h"

#include <gtest/gtest.h>

#include "blas/gemv.h"
#include "blas/vector_ops.h"
#include "common/rng.h"
#include "gpukernels/device_workspace.h"
#include "workload/point_generators.h"

namespace ksum::gpukernels {
namespace {

TEST(GemvSummationTest, MatchesHostGemv) {
  const std::size_t m = 256, n = 384, k = 8;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);

  // Fill the kernel-matrix buffer and W directly.
  Matrix kmat(m, n, Layout::kRowMajor);
  Vector w(n);
  Rng rng(4);
  for (float& x : kmat.span()) x = rng.uniform(0.0f, 1.0f);
  for (float& x : w) x = rng.uniform(-1.0f, 1.0f);
  device.memory().upload(ws.c, kmat.span());
  device.memory().upload(ws.w, w.span());

  run_gemv_summation(device, ws);

  Vector ref(m);
  blas::sgemv(1.0f, kmat, w.span(), 0.0f, ref.span());
  Vector out(m);
  device.memory().download(ws.v, out.span());
  EXPECT_LT(blas::max_rel_diff(out.span(), ref.span(), 1e-3), 2e-4);
}

TEST(GemvSummationTest, Counts) {
  const std::size_t m = 128, n = 256, k = 8;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  const auto result = run_gemv_summation(device, ws);
  const auto& c = result.counters;
  EXPECT_EQ(c.fma_ops, std::uint64_t(m * n));
  // Kernel matrix streamed once, coalesced scalar loads: 4 sectors per
  // 32-lane access, n/32 accesses per row.
  EXPECT_EQ(c.ctas_launched, m / 128);
  // V written one scalar per row.
  EXPECT_EQ(c.global_store_requests, m);
  // W staged to smem once per CTA (n/128 segments × 4 accesses).
  EXPECT_EQ(c.smem_store_requests, (m / 128) * (n / 128) * 4);
}

TEST(GemvSummationTest, ShapeRequirements) {
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, 128, 128, 8, false);
  EXPECT_THROW(run_gemv_summation(device, ws), Error);  // no C buffer

  // W larger than the shared-memory cap.
  Workspace ws2 = allocate_workspace(device, 128, 16384, 8, true);
  EXPECT_THROW(run_gemv_summation(device, ws2), Error);
}

}  // namespace
}  // namespace ksum::gpukernels
