#include "gpukernels/tile_loader.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gpusim/device.h"

namespace ksum::gpukernels {
namespace {

class TileLoaderTest : public ::testing::TestWithParam<TileLayout> {
 protected:
  static constexpr std::size_t kK = 24;  // three K-tiles

  TileLoaderTest() : device_(config::DeviceSpec::gtx970(), 1 << 22) {
    buffer_ = device_.memory().allocate(kTileM * kK * 4, "tracks");
    AlignedBuffer<float> host(kTileM * kK);
    Rng rng(3);
    for (auto& x : host) x = rng.uniform(-1.0f, 1.0f);
    device_.memory().upload(buffer_, host.span());
    host_ = std::move(host);
  }

  gpusim::Device device_;
  gpusim::DeviceBuffer buffer_;
  AlignedBuffer<float> host_;
};

TEST_P(TileLoaderTest, LoadsEveryElementToItsLayoutSlot) {
  const TileLayout layout = GetParam();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 64;
  cfg.smem_bytes_per_block = kTileBytes;

  const std::size_t k0 = 8;  // load the middle K-tile
  device_.launch(
      "loader", {1, 1}, {16, 16}, cfg, [&](gpusim::BlockContext& ctx) {
        TileSource src{buffer_, 0, kK};
        load_tile(ctx, TileGeometry{}, src, k0, 0, layout, 0, kTileM);
        // Verify every element landed where the layout function says.
        for (int m = 0; m < 16; ++m) {
          for (int t = 0; t < 8; ++t) {
            for (int k = 0; k < kTileK; ++k) {
              const std::size_t track = std::size_t(8 * m + t);
              const float expected = host_[track * kK + k0 + std::size_t(k)];
              EXPECT_EQ(ctx.smem().peek(tile_offset(layout, m, t, k)),
                        expected)
                  << "m=" << m << " t=" << t << " k=" << k;
            }
          }
        }
      });
}

TEST_P(TileLoaderTest, CountsArePredicted) {
  const TileLayout layout = GetParam();
  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 64;
  cfg.smem_bytes_per_block = kTileBytes;

  const auto result = device_.launch(
      "loader", {1, 1}, {16, 16}, cfg, [&](gpusim::BlockContext& ctx) {
        TileSource src{buffer_, 0, kK};
        load_tile(ctx, TileGeometry{}, src, 0, 0, layout, 0, kTileM);
      });
  const auto& c = result.counters;
  // 4 warps × 2 float4 loads.
  EXPECT_EQ(c.global_load_requests, 8u);
  // Each float4 load touches 32 distinct sectors (one per track).
  EXPECT_EQ(c.l2_read_transactions, 8u * 32u);
  // The tile is 128 sectors; each sector is touched twice (two halves), so
  // DRAM sees each exactly once.
  EXPECT_EQ(c.dram_read_transactions, 128u);
  // 4 warps × 8 conflict-free scalar stores.
  EXPECT_EQ(c.smem_store_requests, 32u);
  EXPECT_EQ(c.smem_store_transactions, 32u);
  EXPECT_EQ(c.smem_bank_conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, TileLoaderTest,
                         ::testing::Values(TileLayout::kFig5,
                                           TileLayout::kNaive));

TEST(VectorSegmentTest, LoadsAndCounts) {
  gpusim::Device device(config::DeviceSpec::gtx970(), 1 << 20);
  auto buf = device.memory().allocate(256 * 4, "vec");
  AlignedBuffer<float> host(256);
  for (std::size_t i = 0; i < host.size(); ++i) host[i] = float(i);
  device.memory().upload(buf, host.span());

  gpusim::LaunchConfig cfg;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 32;
  cfg.smem_bytes_per_block = 1024;
  const auto result = device.launch(
      "segment", {1, 1}, {16, 16}, cfg, [&](gpusim::BlockContext& ctx) {
        load_vector_segment(ctx, TileGeometry{}, buf, 128, 0, 128);
        for (int i = 0; i < 128; ++i) {
          EXPECT_EQ(ctx.smem().peek(gpusim::SharedAddr(i * 4)),
                    float(128 + i));
        }
      });
  EXPECT_EQ(result.counters.global_load_requests, 4u);
  EXPECT_EQ(result.counters.l2_read_transactions, 16u);  // 512 B
  EXPECT_EQ(result.counters.smem_store_transactions, 4u);
  EXPECT_EQ(result.counters.smem_bank_conflicts, 0u);
}

}  // namespace
}  // namespace ksum::gpukernels
