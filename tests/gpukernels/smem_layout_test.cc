#include "gpukernels/smem_layout.h"

#include <gtest/gtest.h>

#include <set>

#include "gpukernels/gemm_mainloop.h"
#include "gpusim/shared_memory.h"

namespace ksum::gpukernels {
namespace {

using gpusim::SharedMemory;
using gpusim::SharedWarpAccess;

class LayoutTest : public ::testing::TestWithParam<TileLayout> {};

TEST_P(LayoutTest, TrackAssignmentIsABijection) {
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < kTileM; ++i) {
    const TrackAssignment ta = track_of_loader(GetParam(), i);
    EXPECT_GE(ta.microtile, 0);
    EXPECT_LT(ta.microtile, 16);
    EXPECT_GE(ta.track, 0);
    EXPECT_LT(ta.track, 8);
    EXPECT_TRUE(seen.insert({ta.microtile, ta.track}).second)
        << "duplicate track for loader " << i;
  }
  EXPECT_EQ(seen.size(), 128u);
}

TEST_P(LayoutTest, OffsetsAreInjectiveAndInBounds) {
  std::set<gpusim::SharedAddr> seen;
  for (int m = 0; m < 16; ++m) {
    for (int t = 0; t < 8; ++t) {
      for (int k = 0; k < kTileK; ++k) {
        const gpusim::SharedAddr off = tile_offset(GetParam(), m, t, k);
        EXPECT_LT(off, kTileBytes);
        EXPECT_EQ(off % 4, 0u);
        EXPECT_TRUE(seen.insert(off).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), std::size_t(kTileFloats));
}

TEST_P(LayoutTest, StorePhaseIsConflictFree) {
  // Reconstruct the tile_loader store accesses: at store step k, lane l of
  // loader warp w writes element k of its track.
  for (int w = 0; w < 4; ++w) {
    for (int k = 0; k < kTileK; ++k) {
      SharedWarpAccess access;
      for (int lane = 0; lane < 32; ++lane) {
        const TrackAssignment ta =
            track_of_loader(GetParam(), w * 32 + lane);
        access.set_lane(lane,
                        tile_offset(GetParam(), ta.microtile, ta.track, k));
      }
      EXPECT_EQ(SharedMemory::transactions_for(access), 1)
          << "store conflict at warp " << w << " k " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, LayoutTest,
                         ::testing::Values(TileLayout::kFig5,
                                           TileLayout::kNaive));

// Compute-phase operand loads: thread (tx, ty) reads operand u of microtile
// ty from tileA and operand t of microtile tx from tileB.
int a_load_transactions(TileLayout layout, int warp, int u, int k) {
  SharedWarpAccess access;
  for (int lane = 0; lane < 32; ++lane) {
    const int tid = warp * 32 + lane;
    access.set_lane(lane, operand_offset(layout, thread_ty(tid), u, k));
  }
  return SharedMemory::transactions_for(access);
}

int b_load_transactions(TileLayout layout, int warp, int t, int k) {
  SharedWarpAccess access;
  for (int lane = 0; lane < 32; ++lane) {
    const int tid = warp * 32 + lane;
    access.set_lane(lane, operand_offset(layout, thread_tx(tid), t, k));
  }
  return SharedMemory::transactions_for(access);
}

TEST(Fig5LayoutTest, ComputeLoadsAreConflictFree) {
  for (int warp = 0; warp < kWarps; ++warp) {
    for (int e = 0; e < kMicro; ++e) {
      for (int k = 0; k < kTileK; ++k) {
        EXPECT_EQ(a_load_transactions(TileLayout::kFig5, warp, e, k), 1);
        EXPECT_EQ(b_load_transactions(TileLayout::kFig5, warp, e, k), 1);
      }
    }
  }
}

TEST(NaiveLayoutTest, BOperandLoadsConflictFourWay) {
  // The paper's "intuitive" placement: B operand reads hit four rows of the
  // same banks — the reason Fig. 5 re-arranges the data.
  for (int warp = 0; warp < kWarps; ++warp) {
    for (int t = 0; t < kMicro; ++t) {
      EXPECT_EQ(b_load_transactions(TileLayout::kNaive, warp, t, 0), 4);
    }
  }
}

TEST(NaiveLayoutTest, ALoadsHappenToBeConflictFree) {
  // A operands only span two microtiles per warp, which the naive layout
  // keeps within one row — the conflicts come from the B side.
  for (int warp = 0; warp < kWarps; ++warp) {
    for (int u = 0; u < kMicro; ++u) {
      EXPECT_EQ(a_load_transactions(TileLayout::kNaive, warp, u, 0), 1);
    }
  }
}

TEST(Fig5LayoutTest, MicrotilesSpreadAcrossAllBanks) {
  // Paper: "spread 16 microtiles among 32 banks" — microtile m owns banks
  // 2m and 2m+1.
  std::set<int> banks;
  for (int m = 0; m < 16; ++m) {
    for (int t = 0; t < 8; ++t) {
      for (int k = 0; k < kTileK; ++k) {
        banks.insert(int(fig5_offset(m, t, k) / 4 % 32));
      }
    }
  }
  EXPECT_EQ(banks.size(), 32u);
}

TEST(Fig5LayoutTest, PaperExampleThreadZeroAndOne) {
  // "Thread 0, 1 in warp 0 will store data of group 0 to (bank 0-1,
  // row 0-7)".
  const TrackAssignment t0 = track_of_loader(TileLayout::kFig5, 0);
  const TrackAssignment t1 = track_of_loader(TileLayout::kFig5, 1);
  EXPECT_EQ(t0.microtile, 0);
  EXPECT_EQ(t1.microtile, 0);
  for (int k = 0; k < kTileK; ++k) {
    const auto off0 = fig5_offset(t0.microtile, t0.track, k);
    const auto off1 = fig5_offset(t1.microtile, t1.track, k);
    EXPECT_EQ(off0 / 4 % 32, 0u);  // bank 0
    EXPECT_EQ(off1 / 4 % 32, 1u);  // bank 1
    EXPECT_LT(off0 / 128, 8u);     // rows 0-7
    EXPECT_LT(off1 / 128, 8u);
  }
  // "thread 32, 33 belonging to warp 1 will write group 1 tracks into
  // (bank 0-1, row 8-15)".
  const TrackAssignment t32 = track_of_loader(TileLayout::kFig5, 32);
  for (int k = 0; k < kTileK; ++k) {
    const auto off = fig5_offset(t32.microtile, t32.track, k);
    EXPECT_EQ(off / 4 % 32, 0u);
    EXPECT_GE(off / 128, 8u);
    EXPECT_LT(off / 128, 16u);
  }
}

}  // namespace
}  // namespace ksum::gpukernels
