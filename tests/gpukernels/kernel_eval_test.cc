#include "gpukernels/kernel_eval.h"

#include <gtest/gtest.h>

#include "blas/vector_ops.h"
#include "core/exact.h"
#include "gpukernels/gemm_cudac.h"
#include "gpukernels/norms.h"
#include "workload/point_generators.h"

namespace ksum::gpukernels {
namespace {

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = 31;
  spec.bandwidth = 0.7f;
  return workload::make_instance(spec);
}

TEST(KernelEvalTest, ProducesTheKernelMatrix) {
  const std::size_t m = 128, n = 256, k = 16;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  const auto inst = instance_for(m, n, k);
  upload_instance(device, ws, inst);
  const auto params = core::params_from_spec(inst.spec);

  run_norms_a(device, ws);
  run_norms_b(device, ws);
  run_gemm_cudac(device, ws.a, ws.b, ws.c, m, n, k, GemmOptions{});
  run_kernel_eval(device, ws, params);

  Matrix ref_kmat;
  core::solve_expansion(inst, params, &ref_kmat);
  Matrix out(m, n, Layout::kRowMajor);
  device.memory().download(ws.c, out.span());
  EXPECT_LT(blas::max_rel_diff(out.span(), ref_kmat.span(), 1e-3), 1e-3);
}

TEST(KernelEvalTest, CountsAreStreaming) {
  const std::size_t m = 64, n = 256, k = 8;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  upload_instance(device, ws, instance_for(m, n, k));
  const auto result =
      run_kernel_eval(device, ws, core::KernelParams{});
  const auto& c = result.counters;
  // One exp per element.
  EXPECT_EQ(c.sfu_ops, std::uint64_t(m * n));
  // Contiguous float4 warp accesses cover whole sectors, so C is read and
  // written exactly once per sector.
  const std::uint64_t c_sectors = m * n * 4 / 32;
  EXPECT_EQ(c.l2_write_transactions, c_sectors);
  EXPECT_EQ(c.ctas_launched, m / 8);
  // Loads: C once + norm_b re-read per row + one norm_a broadcast per row.
  EXPECT_EQ(c.l2_read_transactions, c_sectors + m * (n * 4 / 32) + m);
}

TEST(KernelEvalTest, RequiresIntermediateBuffer) {
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, 128, 128, 8, false);
  EXPECT_THROW(run_kernel_eval(device, ws, core::KernelParams{}), Error);
}

}  // namespace
}  // namespace ksum::gpukernels
