#include "gpukernels/knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/knn_exact.h"
#include "gpukernels/gemm_cublas_model.h"
#include "gpukernels/norms.h"
#include "pipelines/knn_pipeline.h"

namespace ksum::gpukernels {
namespace {

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k,
                                std::uint64_t seed = 91) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  return workload::make_instance(spec);
}

// Distances must match the oracle rank by rank (indices can differ only
// under exact ties, which random floats make measure-zero; we still compare
// by distance to stay robust).
void expect_matches_oracle(const KnnResult& got,
                           const core::KnnOracleResult& want,
                           std::size_t m, double tol) {
  ASSERT_EQ(got.k_nn, want.k_nn);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t rank = 0; rank < got.k_nn; ++rank) {
      EXPECT_NEAR(got.distance(i, rank), want.distance(i, rank), tol)
          << "query " << i << " rank " << rank;
    }
    // The nearest neighbour index must agree outright.
    EXPECT_EQ(got.index(i, 0), want.index(i, 0)) << "query " << i;
  }
}

struct KnnCase {
  std::size_t m, n, k, k_nn;
};

class FusedKnnTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(FusedKnnTest, MatchesExactSearch) {
  const auto p = GetParam();
  const auto inst = instance_for(p.m, p.n, p.k);
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{64} << 20);
  Workspace ws = allocate_workspace(device, p.m, p.n, p.k, false);
  upload_instance(device, ws, inst);
  run_norms_a(device, ws);
  run_norms_b(device, ws);

  KnnResult result;
  run_fused_knn(device, ws, p.k_nn, result);
  const auto oracle = core::knn_exact(inst, p.k_nn);
  expect_matches_oracle(result, oracle, p.m, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedKnnTest,
    ::testing::Values(KnnCase{128, 128, 8, 1}, KnnCase{128, 128, 16, 4},
                      KnnCase{256, 128, 16, 8}, KnnCase{128, 256, 16, 8},
                      KnnCase{256, 256, 24, 16}, KnnCase{384, 128, 8, 5}));

TEST(FusedKnnTest, SelfQueryFindsItself) {
  // Queries identical to database points: nearest neighbour is the point
  // itself at distance ~0.
  auto inst = instance_for(128, 128, 16);
  for (std::size_t j = 0; j < 128; ++j) {
    for (std::size_t d = 0; d < 16; ++d) {
      inst.b.at(d, j) = inst.a.at(j, d);
    }
  }
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{32} << 20);
  Workspace ws = allocate_workspace(device, 128, 128, 16, false);
  upload_instance(device, ws, inst);
  run_norms_a(device, ws);
  run_norms_b(device, ws);
  KnnResult result;
  run_fused_knn(device, ws, 3, result);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(result.index(i, 0), i);
    EXPECT_LT(result.distance(i, 0), 1e-4f);
  }
}

TEST(FusedKnnTest, InvalidArgumentsThrow) {
  const auto inst = instance_for(128, 128, 8);
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{32} << 20);
  Workspace ws = allocate_workspace(device, 128, 128, 8, false);
  upload_instance(device, ws, inst);
  KnnResult result;
  EXPECT_THROW(run_fused_knn(device, ws, 0, result), Error);
  EXPECT_THROW(run_fused_knn(device, ws, kMaxNeighbors + 1, result), Error);
}

class UnfusedKnnTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(UnfusedKnnTest, SelectionScanMatchesExactSearch) {
  const auto p = GetParam();
  const auto inst = instance_for(p.m, p.n, p.k, 17);
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{64} << 20);
  Workspace ws = allocate_workspace(device, p.m, p.n, p.k, true);
  upload_instance(device, ws, inst);
  run_norms_a(device, ws);
  run_norms_b(device, ws);
  run_gemm_cublas_model(device, ws.a, ws.b, ws.c, p.m, p.n, p.k);
  run_distance_eval(device, ws);
  KnnResult result;
  run_knn_select(device, ws, p.k_nn, result);
  const auto oracle = core::knn_exact(inst, p.k_nn);
  expect_matches_oracle(result, oracle, p.m, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, UnfusedKnnTest,
                         ::testing::Values(KnnCase{128, 128, 16, 4},
                                           KnnCase{256, 256, 16, 8},
                                           KnnCase{128, 384, 8, 16}));

TEST(KnnPipelineTest, FusedAndUnfusedAgree) {
  const auto inst = instance_for(256, 256, 16, 23);
  const auto fused = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kFused, inst, 8);
  const auto unfused = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kUnfused, inst, 8);
  for (std::size_t i = 0; i < 256; ++i) {
    for (std::size_t rank = 0; rank < 8; ++rank) {
      EXPECT_NEAR(fused.result.distance(i, rank),
                  unfused.result.distance(i, rank), 1e-4f);
    }
  }
}

TEST(KnnPipelineTest, FusionCutsDramTraffic) {
  const auto inst = instance_for(384, 256, 16, 29);
  const auto fused = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kFused, inst, 8);
  const auto unfused = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kUnfused, inst, 8);
  EXPECT_LT(fused.total.dram_total_transactions(),
            unfused.total.dram_total_transactions() / 2);
  EXPECT_GT(fused.seconds, 0.0);
  EXPECT_GT(unfused.energy.total(), fused.energy.total());
}

TEST(KnnPipelineTest, KernelSequences) {
  const auto inst = instance_for(128, 128, 8, 31);
  const auto fused = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kFused, inst, 4);
  ASSERT_EQ(fused.kernels.size(), 4u);
  EXPECT_EQ(fused.kernels[2].name, "fused_knn");
  EXPECT_EQ(fused.kernels[3].name, "knn_merge");
  const auto unfused = pipelines::run_knn_pipeline(
      pipelines::KnnSolution::kUnfused, inst, 4);
  ASSERT_EQ(unfused.kernels.size(), 5u);
  EXPECT_EQ(unfused.kernels[2].name, "gemm_cublas");
  EXPECT_EQ(unfused.kernels[3].name, "kernel_eval");
  EXPECT_EQ(unfused.kernels[4].name, "knn_select");
}

TEST(KnnOracleTest, HandComputedNeighbours) {
  // Three database points on a line; query at the origin.
  workload::ProblemSpec spec;
  spec.m = 1;
  spec.n = 3;
  spec.k = 2;
  auto inst = workload::make_instance(spec);
  inst.a.at(0, 0) = 0.0f;
  inst.a.at(0, 1) = 0.0f;
  const float xs[3] = {2.0f, 0.5f, -1.0f};
  for (std::size_t j = 0; j < 3; ++j) {
    inst.b.at(0, j) = xs[j];
    inst.b.at(1, j) = 0.0f;
  }
  const auto oracle = core::knn_exact(inst, 3);
  EXPECT_EQ(oracle.index(0, 0), 1u);  // 0.5 away
  EXPECT_EQ(oracle.index(0, 1), 2u);  // 1.0 away
  EXPECT_EQ(oracle.index(0, 2), 0u);  // 2.0 away
  EXPECT_NEAR(oracle.distance(0, 0), 0.25, 1e-9);
  EXPECT_NEAR(oracle.distance(0, 2), 4.0, 1e-9);
}

TEST(KnnOracleTest, ArgumentValidation) {
  const auto inst = instance_for(128, 128, 8);
  EXPECT_THROW(core::knn_exact(inst, 0), Error);
  EXPECT_THROW(core::knn_exact(inst, 129), Error);
}

}  // namespace
}  // namespace ksum::gpukernels
