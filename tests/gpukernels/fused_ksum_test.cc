#include "gpukernels/fused_ksum.h"

#include <gtest/gtest.h>

#include "blas/vector_ops.h"
#include "core/exact.h"
#include "gpukernels/norms.h"
#include "workload/point_generators.h"

namespace ksum::gpukernels {
namespace {

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k,
                                std::uint64_t seed = 41) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  spec.bandwidth = 0.8f;
  return workload::make_instance(spec);
}

Vector run_fused_on(const workload::Instance& inst,
                    const core::KernelParams& params,
                    const FusedOptions& options = {},
                    gpusim::LaunchResult* main_result = nullptr) {
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{64} << 20);
  Workspace ws = allocate_workspace(device, inst.spec.m, inst.spec.n,
                                    inst.spec.k, false);
  upload_instance(device, ws, inst);
  run_norms_a(device, ws);
  run_norms_b(device, ws);
  const auto result = run_fused_ksum(device, ws, params, options);
  if (main_result != nullptr) *main_result = result.main;
  return download_result(device, ws);
}

struct FusedCase {
  std::size_t m, n, k;
};

class FusedAgreementTest : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedAgreementTest, MatchesDirectOracle) {
  const auto p = GetParam();
  const auto inst = instance_for(p.m, p.n, p.k);
  const auto params = core::params_from_spec(inst.spec);
  const Vector ref = core::solve_direct(inst, params);
  const Vector out = run_fused_on(inst, params);
  EXPECT_LT(blas::max_rel_diff(out.span(), ref.span(), 1e-3), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FusedAgreementTest,
                         ::testing::Values(FusedCase{128, 128, 8},
                                           FusedCase{128, 128, 64},
                                           FusedCase{256, 128, 16},
                                           FusedCase{128, 256, 16},
                                           FusedCase{384, 256, 24},
                                           FusedCase{512, 128, 32}));

TEST(FusedOptionsTest, AllOptionCombinationsAgree) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  const Vector ref = core::solve_direct(inst, params);
  for (TileLayout layout : {TileLayout::kFig5, TileLayout::kNaive}) {
    for (bool db : {true, false}) {
      for (bool atomic : {true, false}) {
        for (bool fuse_norms : {false, true}) {
          FusedOptions options;
          options.mainloop.layout = layout;
          options.mainloop.double_buffer = db;
          options.atomic_reduction = atomic;
          options.fuse_norms = fuse_norms;
          const Vector out = run_fused_on(inst, params, options);
          EXPECT_LT(blas::max_rel_diff(out.span(), ref.span(), 1e-3), 2e-3)
              << "layout=" << int(layout) << " db=" << db
              << " atomic=" << atomic << " fuse_norms=" << fuse_norms;
        }
      }
    }
  }
}

TEST(FusedNormsTest, MatchesOracleWithoutNormsKernels) {
  // fuse_norms works even when the norm buffers were never filled: the
  // fused kernel derives the norms from the streamed tiles alone.
  const auto inst = instance_for(384, 256, 32);
  const auto params = core::params_from_spec(inst.spec);
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{64} << 20);
  Workspace ws = allocate_workspace(device, inst.spec.m, inst.spec.n,
                                    inst.spec.k, false);
  upload_instance(device, ws, inst);
  // NOTE: no run_norms_a / run_norms_b here.
  FusedOptions options;
  options.fuse_norms = true;
  run_fused_ksum(device, ws, params, options);
  const Vector out = download_result(device, ws);
  const Vector ref = core::solve_direct(inst, params);
  EXPECT_LT(blas::max_rel_diff(out.span(), ref.span(), 1e-3), 2e-3);
}

TEST(FusedNormsTest, DropsTheVectorSegmentLoads) {
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  gpusim::LaunchResult plain, fused_norms;
  FusedOptions options;
  run_fused_on(inst, params, options, &plain);
  options.fuse_norms = true;
  run_fused_on(inst, params, options, &fused_norms);
  // Two fewer 128-float vector loads per CTA (norm_a + norm_b): 8 warp
  // requests each.
  const std::uint64_t ctas = (256 / 128) * (256 / 128);
  EXPECT_EQ(plain.counters.global_load_requests -
                fused_norms.counters.global_load_requests,
            ctas * 8);
  // The squares add FMA work instead.
  EXPECT_GT(fused_norms.counters.fma_ops, plain.counters.fma_ops);
}

TEST(FusedKernelTest, OtherKernelFunctionsWork) {
  const auto inst = instance_for(128, 128, 16);
  for (core::KernelType type :
       {core::KernelType::kLaplace3d, core::KernelType::kMatern32,
        core::KernelType::kCauchy, core::KernelType::kPolynomial2}) {
    core::KernelParams params;
    params.type = type;
    params.bandwidth = 1.1f;
    const Vector ref = core::solve_direct(inst, params);
    const Vector out = run_fused_on(inst, params);
    EXPECT_LT(blas::max_rel_diff(out.span(), ref.span(), 1e-2), 5e-3)
        << core::to_string(type);
  }
}

TEST(FusedCountsTest, NoIntermediateTraffic) {
  const std::size_t m = 256, n = 256, k = 32;
  const auto inst = instance_for(m, n, k);
  gpusim::LaunchResult result;
  run_fused_on(inst, core::params_from_spec(inst.spec), FusedOptions{},
               &result);
  const auto& c = result.counters;
  // Global stores happen only via the atomic reduction: zero plain stores.
  EXPECT_EQ(c.global_store_requests, 0u);
  // 4 atomic warp requests per CTA.
  EXPECT_EQ(c.atomic_requests, (m / 128) * (n / 128) * 4);
  // The GEMM part dominates FMA lane-ops.
  EXPECT_GE(c.fma_ops, std::uint64_t(m * n * k));
  // Each CTA evaluates its 128×128 tile of kernel values once.
  EXPECT_EQ(c.sfu_ops, std::uint64_t(m * n));
  // The main-loop stays conflict-free; only the reduction scratch and the
  // norm/weight segment reads replay. Bound: well under 1 conflict per
  // FMA-heavy warp instruction.
  EXPECT_LT(c.smem_bank_conflicts, c.smem_load_transactions / 4);
}

TEST(FusedCountsTest, GemmPortionConflictFree) {
  // Run a K-only problem (no reduction noise isolation possible in the
  // fused kernel, so compare Fig.5 vs naive: the delta is main-loop
  // conflicts).
  const std::size_t m = 128, n = 128, k = 64;
  const auto inst = instance_for(m, n, k);
  const auto params = core::params_from_spec(inst.spec);
  gpusim::LaunchResult fig5, naive;
  FusedOptions options;
  run_fused_on(inst, params, options, &fig5);
  options.mainloop.layout = TileLayout::kNaive;
  run_fused_on(inst, params, options, &naive);
  // Naive B-operand loads replay 4-way: 24 extra transactions per warp per
  // rank-1 step.
  const std::uint64_t expected_delta = k * kWarps * 24;
  EXPECT_EQ(naive.counters.smem_load_transactions -
                fig5.counters.smem_load_transactions,
            expected_delta);
}

TEST(FusedCountsTest, StagedReductionTradesAtomicsForStores) {
  const std::size_t m = 256, n = 256, k = 16;
  const auto inst = instance_for(m, n, k);
  const auto params = core::params_from_spec(inst.spec);
  gpusim::LaunchResult atomic_r, staged_r;
  FusedOptions options;
  run_fused_on(inst, params, options, &atomic_r);
  options.atomic_reduction = false;
  run_fused_on(inst, params, options, &staged_r);
  EXPECT_EQ(staged_r.counters.atomic_requests, 0u);
  EXPECT_GT(staged_r.counters.global_store_requests, 0u);
}

TEST(FusedDeterminismTest, AtomicOrderIsDeterministicInSimulator) {
  // The simulator executes CTAs in a fixed order, so results are bitwise
  // reproducible run to run (real hardware would only be tolerance-stable).
  const auto inst = instance_for(256, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  const Vector a = run_fused_on(inst, params);
  const Vector b = run_fused_on(inst, params);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FusedDeterminismTest, StagedAndAtomicAgreeWithinTolerance) {
  // Different reduction orders → different rounding, bounded difference.
  const auto inst = instance_for(384, 256, 16);
  const auto params = core::params_from_spec(inst.spec);
  FusedOptions options;
  const Vector atomic_v = run_fused_on(inst, params, options);
  options.atomic_reduction = false;
  const Vector staged_v = run_fused_on(inst, params, options);
  EXPECT_LT(blas::max_rel_diff(staged_v.span(), atomic_v.span(), 1e-3),
            1e-4);
}

}  // namespace
}  // namespace ksum::gpukernels
