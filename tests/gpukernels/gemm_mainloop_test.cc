#include "gpukernels/gemm_mainloop.h"

#include <gtest/gtest.h>

#include "blas/gemm.h"
#include "common/rng.h"
#include "gpusim/device.h"

namespace ksum::gpukernels {
namespace {

struct MainloopFixture {
  static constexpr std::size_t kK = 32;

  MainloopFixture()
      : device(config::DeviceSpec::gtx970(), std::size_t{16} << 20) {
    a_buf = device.memory().allocate(128 * kK * 4, "A");
    b_buf = device.memory().allocate(kK * 128 * 4, "B");
    a_host = Matrix(128, kK, Layout::kRowMajor);
    b_host = Matrix(kK, 128, Layout::kColMajor);
    Rng rng(6);
    for (float& x : a_host.span()) x = rng.uniform(-1.0f, 1.0f);
    for (float& x : b_host.span()) x = rng.uniform(-1.0f, 1.0f);
    device.memory().upload_matrix(a_buf, a_host);
    device.memory().upload_matrix(b_buf, b_host);
  }

  gpusim::LaunchResult run(const MainloopConfig& config,
                           BlockAccumulators& acc_out) {
    gpusim::LaunchConfig cfg = gemm_launch_config(false);
    if (!config.double_buffer) cfg.smem_bytes_per_block = 2 * kTileBytes;
    return device.launch(
        "mainloop", {1, 1}, gemm_block_dim(), cfg,
        [&](gpusim::BlockContext& ctx) {
          TileSource src_a{a_buf, 0, kK};
          TileSource src_b{b_buf, 0, kK};
          SmemMap map{};
          if (!config.double_buffer) map.b0 = kTileBytes;
          acc_out = make_accumulators();
          run_gemm_mainloop(ctx, src_a, src_b, kK, config, map, acc_out);
        });
  }

  void expect_accumulators_match_reference(const BlockAccumulators& acc) {
    Matrix ref(128, 128, Layout::kRowMajor);
    blas::sgemm_naive(1.0f, a_host, b_host, 0.0f, ref);
    for (int tid = 0; tid < kThreads; ++tid) {
      const int tx = thread_tx(tid);
      const int ty = thread_ty(tid);
      for (int u = 0; u < kMicro; ++u) {
        for (int t = 0; t < kMicro; ++t) {
          const float got = acc[std::size_t(tid) * 64 +
                                std::size_t(u * kMicro + t)];
          const float want = ref.at(std::size_t(kMicro * ty + u),
                                    std::size_t(kMicro * tx + t));
          ASSERT_NEAR(got, want, 1e-4f)
              << "tid=" << tid << " u=" << u << " t=" << t;
        }
      }
    }
  }

  gpusim::Device device;
  gpusim::DeviceBuffer a_buf, b_buf;
  Matrix a_host, b_host;
};

TEST(GemmMainloopTest, AccumulatorsHoldSubCDoubleBuffered) {
  MainloopFixture fx;
  BlockAccumulators acc;
  fx.run(MainloopConfig{}, acc);
  fx.expect_accumulators_match_reference(acc);
}

TEST(GemmMainloopTest, AccumulatorsHoldSubCSingleBuffered) {
  MainloopFixture fx;
  MainloopConfig config;
  config.double_buffer = false;
  BlockAccumulators acc;
  fx.run(config, acc);
  fx.expect_accumulators_match_reference(acc);
}

TEST(GemmMainloopTest, NaiveLayoutSameValuesMoreReplays) {
  MainloopFixture fx_fig5, fx_naive;
  MainloopConfig naive;
  naive.layout = TileLayout::kNaive;
  BlockAccumulators acc_fig5, acc_naive;
  const auto r_fig5 = fx_fig5.run(MainloopConfig{}, acc_fig5);
  const auto r_naive = fx_naive.run(naive, acc_naive);
  // Identical numerics…
  for (std::size_t i = 0; i < acc_fig5.size(); ++i) {
    ASSERT_EQ(acc_fig5[i], acc_naive[i]);
  }
  // …different bank behaviour.
  EXPECT_EQ(r_fig5.counters.smem_bank_conflicts, 0u);
  EXPECT_GT(r_naive.counters.smem_bank_conflicts, 0u);
}

TEST(GemmMainloopTest, BarrierStructure) {
  MainloopFixture fx_db, fx_sb;
  BlockAccumulators acc;
  const auto db = fx_db.run(MainloopConfig{}, acc);
  MainloopConfig single;
  single.double_buffer = false;
  const auto sb = fx_sb.run(single, acc);
  const std::uint64_t iters = MainloopFixture::kK / kTileK;
  EXPECT_EQ(db.counters.barriers, iters + 1);
  EXPECT_EQ(sb.counters.barriers, 2 * iters);
}

TEST(GemmMainloopTest, MainLoopIsConflictFreeWithFig5) {
  MainloopFixture fx;
  BlockAccumulators acc;
  const auto result = fx.run(MainloopConfig{}, acc);
  EXPECT_EQ(result.counters.smem_bank_conflicts, 0u);
  // 16 conflict-free operand loads per warp per rank-1 step.
  EXPECT_EQ(result.counters.smem_load_transactions,
            MainloopFixture::kK * kWarps * 16);
}

TEST(GemmMainloopTest, RejectsUnalignedK) {
  MainloopFixture fx;
  gpusim::LaunchConfig cfg = gemm_launch_config(false);
  EXPECT_THROW(
      fx.device.launch("bad", {1, 1}, gemm_block_dim(), cfg,
                       [&](gpusim::BlockContext& ctx) {
                         TileSource src_a{fx.a_buf, 0, MainloopFixture::kK};
                         TileSource src_b{fx.b_buf, 0, MainloopFixture::kK};
                         BlockAccumulators acc = make_accumulators();
                         run_gemm_mainloop(ctx, src_a, src_b, 12,
                                           MainloopConfig{}, SmemMap{}, acc);
                       }),
      Error);
}

}  // namespace
}  // namespace ksum::gpukernels
