#include "gpukernels/gemm_cublas_model.h"

#include <gtest/gtest.h>

#include "blas/gemm.h"
#include "blas/vector_ops.h"
#include "gpukernels/device_workspace.h"
#include "gpukernels/gemm_cudac.h"
#include "workload/point_generators.h"

namespace ksum::gpukernels {
namespace {

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = 11;
  return workload::make_instance(spec);
}

TEST(GemmCublasModelTest, ValuesMatchHostReference) {
  const std::size_t m = 256, n = 128, k = 24;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{32} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  const auto inst = instance_for(m, n, k);
  upload_instance(device, ws, inst);
  run_gemm_cublas_model(device, ws.a, ws.b, ws.c, m, n, k);

  Matrix ref(m, n, Layout::kRowMajor);
  blas::sgemm_naive(1.0f, inst.a, inst.b, 0.0f, ref);
  Matrix out(m, n, Layout::kRowMajor);
  device.memory().download(ws.c, out.span());
  EXPECT_LT(blas::max_rel_diff(out.span(), ref.span(), 1e-3), 1e-4);
}

TEST(GemmCublasModelTest, InputSectorsTouchedExactlyOncePerCta) {
  const std::size_t m = 128, n = 128, k = 32;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  upload_instance(device, ws, instance_for(m, n, k));
  const auto result =
      run_gemm_cublas_model(device, ws.a, ws.b, ws.c, m, n, k);
  const auto& c = result.counters;
  // Texture-path model: A panel + B panel sectors touched once each.
  const std::uint64_t input_sectors = (m * k + k * n) * 4 / 32;
  EXPECT_EQ(c.l2_read_transactions, input_sectors);
  EXPECT_EQ(c.dram_read_transactions, input_sectors);
  // Same FMA count as the CUDA-C kernel — only the schedule differs.
  EXPECT_EQ(c.fma_ops, std::uint64_t(m * n * k));
}

TEST(GemmCublasModelTest, FewerL2TransactionsThanCudaC) {
  // The paper's Fig. 8a observation: at higher K the CUDA-C kernel issues
  // more L2 transactions than cuBLAS.
  const std::size_t m = 128, n = 128, k = 128;
  gpusim::Device d1(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  gpusim::Device d2(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace w1 = allocate_workspace(d1, m, n, k, true);
  Workspace w2 = allocate_workspace(d2, m, n, k, true);
  const auto inst = instance_for(m, n, k);
  upload_instance(d1, w1, inst);
  upload_instance(d2, w2, inst);
  const auto cublas = run_gemm_cublas_model(d1, w1.a, w1.b, w1.c, m, n, k);
  const auto cudac =
      run_gemm_cudac(d2, w2.a, w2.b, w2.c, m, n, k, GemmOptions{});
  EXPECT_LT(cublas.counters.l2_read_transactions,
            cudac.counters.l2_read_transactions);
}

TEST(GemmCublasModelTest, LaunchConfigMatchesMaxwellSgemm) {
  const auto cfg = cublas_gemm_launch_config();
  EXPECT_EQ(cfg.threads_per_block, 256);
  const auto occ =
      gpusim::compute_occupancy(config::DeviceSpec::gtx970(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 2);
}

}  // namespace
}  // namespace ksum::gpukernels
