#include "gpukernels/gemm_cudac.h"

#include <gtest/gtest.h>

#include "blas/gemm.h"
#include "blas/vector_ops.h"
#include "gpukernels/device_workspace.h"
#include "workload/point_generators.h"

namespace ksum::gpukernels {
namespace {

struct GemmCase {
  std::size_t m, n, k;
  TileLayout layout;
  bool double_buffer;
};

class GemmCudaCTest : public ::testing::TestWithParam<GemmCase> {};

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = 77;
  return workload::make_instance(spec);
}

TEST_P(GemmCudaCTest, MatchesHostReference) {
  const auto p = GetParam();
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{64} << 20);
  Workspace ws = allocate_workspace(device, p.m, p.n, p.k, true);
  const auto inst = instance_for(p.m, p.n, p.k);
  upload_instance(device, ws, inst);

  GemmOptions opts;
  opts.mainloop.layout = p.layout;
  opts.mainloop.double_buffer = p.double_buffer;
  run_gemm_cudac(device, ws.a, ws.b, ws.c, p.m, p.n, p.k, opts);

  Matrix ref(p.m, p.n, Layout::kRowMajor);
  blas::sgemm_naive(1.0f, inst.a, inst.b, 0.0f, ref);
  Matrix out(p.m, p.n, Layout::kRowMajor);
  device.memory().download(ws.c, out.span());
  EXPECT_LT(blas::max_rel_diff(out.span(), ref.span(), 1e-3), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GemmCudaCTest,
    ::testing::Values(
        GemmCase{128, 128, 8, TileLayout::kFig5, true},
        GemmCase{128, 128, 32, TileLayout::kFig5, true},
        GemmCase{256, 128, 16, TileLayout::kFig5, true},
        GemmCase{128, 256, 16, TileLayout::kFig5, true},
        GemmCase{256, 256, 24, TileLayout::kFig5, true},
        GemmCase{128, 128, 16, TileLayout::kNaive, true},
        GemmCase{128, 128, 16, TileLayout::kFig5, false},
        GemmCase{256, 128, 32, TileLayout::kNaive, false}));

TEST(GemmCudaCCountsTest, MainLoopEventCounts) {
  const std::size_t m = 128, n = 128, k = 32;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  upload_instance(device, ws, instance_for(m, n, k));
  const auto result =
      run_gemm_cudac(device, ws.a, ws.b, ws.c, m, n, k, GemmOptions{});
  const auto& c = result.counters;

  // FMA lane-ops: one per output element per K step.
  EXPECT_EQ(c.fma_ops, std::uint64_t(m * n * k));
  // Conflict-free main loop: 16 operand loads per warp per rank-1 step.
  const std::uint64_t expected_loads = k * kWarps * 16;
  EXPECT_EQ(c.smem_load_requests, expected_loads);
  EXPECT_EQ(c.smem_load_transactions, expected_loads);
  EXPECT_EQ(c.smem_bank_conflicts, 0u);
  // Tile loads: K/8 iterations × 2 tiles × (8 vec4 loads).
  EXPECT_EQ(c.global_load_requests, (k / kTileK) * 2u * 8u);
  // Double-buffered: one barrier per iteration plus the prologue.
  EXPECT_EQ(c.barriers, k / kTileK + 1);
  // C stores: 8 warps × 8 rows × 2 float4 pieces.
  EXPECT_EQ(c.global_store_requests, 128u);
  // Every C sector is written twice (16-byte pieces).
  EXPECT_EQ(c.l2_write_transactions, 2u * m * n * 4 / 32);
}

TEST(GemmCudaCCountsTest, NaiveLayoutConflictsOnlyInLoads) {
  const std::size_t m = 128, n = 128, k = 16;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  upload_instance(device, ws, instance_for(m, n, k));
  GemmOptions opts;
  opts.mainloop.layout = TileLayout::kNaive;
  const auto result =
      run_gemm_cudac(device, ws.a, ws.b, ws.c, m, n, k, opts);
  const auto& c = result.counters;
  // B operand loads replay 4-way: per rank-1 step per warp, 8 A loads at 1
  // transaction + 8 B loads at 4.
  EXPECT_EQ(c.smem_load_transactions, k * kWarps * (8 + 32));
  EXPECT_GT(c.smem_bank_conflicts, 0u);
  EXPECT_EQ(c.smem_store_transactions, (k / kTileK) * 2u * 32u);
}

TEST(GemmCudaCCountsTest, SingleBufferDoublesBarriers) {
  const std::size_t m = 128, n = 128, k = 32;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, true);
  upload_instance(device, ws, instance_for(m, n, k));
  GemmOptions opts;
  opts.mainloop.double_buffer = false;
  const auto result =
      run_gemm_cudac(device, ws.a, ws.b, ws.c, m, n, k, opts);
  EXPECT_EQ(result.counters.barriers, 2 * (k / kTileK));
  // Halved shared memory allocation.
  EXPECT_EQ(result.config.smem_bytes_per_block, 2 * kTileBytes);
}

TEST(GemmCudaCCountsTest, ShapeRequirements) {
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, 128, 128, 8, true);
  EXPECT_THROW(
      run_gemm_cudac(device, ws.a, ws.b, ws.c, 100, 128, 8, GemmOptions{}),
      Error);
  EXPECT_THROW(
      run_gemm_cudac(device, ws.a, ws.b, ws.c, 128, 130, 8, GemmOptions{}),
      Error);
  EXPECT_THROW(
      run_gemm_cudac(device, ws.a, ws.b, ws.c, 128, 128, 12, GemmOptions{}),
      Error);
}

}  // namespace
}  // namespace ksum::gpukernels
