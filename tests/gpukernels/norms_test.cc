#include "gpukernels/norms.h"

#include <gtest/gtest.h>

#include "blas/vector_ops.h"
#include "gpukernels/device_workspace.h"
#include "workload/point_generators.h"

namespace ksum::gpukernels {
namespace {

workload::Instance instance_for(std::size_t m, std::size_t n, std::size_t k) {
  workload::ProblemSpec spec;
  spec.m = m;
  spec.n = n;
  spec.k = k;
  spec.seed = 21;
  return workload::make_instance(spec);
}

class NormsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NormsTest, MatchesHostNorms) {
  const std::size_t k = GetParam();
  const std::size_t m = 256, n = 128;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, false);
  const auto inst = instance_for(m, n, k);
  upload_instance(device, ws, inst);

  run_norms_a(device, ws);
  run_norms_b(device, ws);

  const Vector ref_a = blas::row_squared_norms(inst.a);
  const Vector ref_b = blas::col_squared_norms(inst.b);
  Vector out_a(m), out_b(n);
  device.memory().download(ws.norm_a, out_a.span());
  device.memory().download(ws.norm_b, out_b.span());
  EXPECT_LT(blas::max_rel_diff(out_a.span(), ref_a.span(), 1e-4), 1e-4);
  EXPECT_LT(blas::max_rel_diff(out_b.span(), ref_b.span(), 1e-4), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, NormsTest,
                         ::testing::Values(8, 16, 32, 64, 256));

TEST(NormsCountsTest, TrafficIsInputPlusOutput) {
  const std::size_t m = 256, n = 128, k = 32;
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, m, n, k, false);
  upload_instance(device, ws, instance_for(m, n, k));
  const auto result = run_norms_a(device, ws);
  const auto& c = result.counters;
  EXPECT_EQ(c.fma_ops, std::uint64_t(m * k));
  // Cold read of A: every sector missed exactly once.
  EXPECT_EQ(c.dram_read_transactions, m * k * 4 / 32);
  // float4 loads touch each sector twice.
  EXPECT_EQ(c.l2_read_transactions, 2 * m * k * 4 / 32);
  // Output: one coalesced store per warp.
  EXPECT_EQ(c.global_store_requests, (m / 32));
  EXPECT_EQ(c.ctas_launched, m / 128);
}

TEST(NormsCountsTest, ShapeRequirements) {
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{16} << 20);
  Workspace ws = allocate_workspace(device, 100, 128, 8, false);
  ws.m = 100;  // not a multiple of 128
  EXPECT_THROW(run_norms_a(device, ws), Error);
  Workspace ws2 = allocate_workspace(device, 128, 128, 12, false);
  EXPECT_THROW(run_norms_a(device, ws2), Error);
}

}  // namespace
}  // namespace ksum::gpukernels
