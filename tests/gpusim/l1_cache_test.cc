// The optional per-SM L1/texture cache for global loads (§II-C's
// -Xptxas -dlcm=ca configuration).
#include <gtest/gtest.h>

#include "gpusim/device.h"

namespace ksum::gpusim {
namespace {

config::DeviceSpec l1_spec() {
  config::DeviceSpec spec = config::DeviceSpec::gtx970();
  spec.cache_globals_in_l1 = true;
  return spec;
}

LaunchConfig small_config() {
  LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 32;
  cfg.smem_bytes_per_block = 0;
  return cfg;
}

GlobalWarpAccess coalesced_access(const DeviceBuffer& buf,
                                  std::size_t first_float = 0) {
  GlobalWarpAccess access;
  for (int l = 0; l < 32; ++l) {
    access.set_lane(l, buf.addr_of_float(first_float +
                                         static_cast<std::size_t>(l)));
  }
  return access;
}

TEST(L1CacheTest, RepeatedLoadHitsL1NotL2) {
  Device device(l1_spec(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto result = device.launch(
      "reader", {1, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        ctx.global_load(coalesced_access(buf));
        ctx.global_load(coalesced_access(buf));
      });
  const auto& c = result.counters;
  EXPECT_EQ(c.l1_read_transactions, 8u);  // 2 × 4 sectors
  EXPECT_EQ(c.l1_read_misses, 4u);
  EXPECT_EQ(c.l1_read_hits, 4u);
  // The second access never reaches the L2.
  EXPECT_EQ(c.l2_read_transactions, 4u);
}

TEST(L1CacheTest, DisabledByDefault) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto result = device.launch(
      "reader", {1, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        ctx.global_load(coalesced_access(buf));
        ctx.global_load(coalesced_access(buf));
      });
  EXPECT_EQ(result.counters.l1_read_transactions, 0u);
  EXPECT_EQ(result.counters.l2_read_transactions, 8u);
}

TEST(L1CacheTest, InvalidatedBetweenLaunches) {
  Device device(l1_spec(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto program = [&](BlockContext& ctx) {
    ctx.global_load(coalesced_access(buf));
  };
  device.launch("first", {1, 1}, {32, 1}, small_config(), program);
  const auto r2 =
      device.launch("second", {1, 1}, {32, 1}, small_config(), program);
  // Fresh L1 → misses again; the L2 (which does persist) services them.
  EXPECT_EQ(r2.counters.l1_read_misses, 4u);
  EXPECT_EQ(r2.counters.l2_read_hits, 4u);
}

TEST(L1CacheTest, PerSmCachesAreIsolated) {
  // Two CTAs land on SM 0 and SM 1 (round-robin): the second CTA cannot
  // reuse the first one's L1 content.
  Device device(l1_spec(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto result = device.launch(
      "reader", {2, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        ctx.global_load(coalesced_access(buf));
      });
  EXPECT_EQ(result.counters.l1_read_misses, 8u);  // both CTAs miss
  EXPECT_EQ(result.counters.l1_read_hits, 0u);
  // The L2 is shared: the second CTA hits there.
  EXPECT_EQ(result.counters.l2_read_hits, 4u);
}

TEST(L1CacheTest, CtasOnSameSmShareTheirL1) {
  // With 13 SMs, CTA 13 maps back onto SM 0 and reuses CTA 0's lines.
  Device device(l1_spec(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto result = device.launch(
      "reader", {14, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        ctx.global_load(coalesced_access(buf));
      });
  EXPECT_EQ(result.counters.l1_read_hits, 4u);  // only CTA 13 hits
  EXPECT_EQ(result.counters.l1_read_misses, 13u * 4u);
}

TEST(L1CacheTest, StoresBypassL1) {
  Device device(l1_spec(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto result = device.launch(
      "writer", {1, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        std::array<float, 32> values{};
        ctx.global_store(coalesced_access(buf), values);
        // The store did not populate the L1; this load must miss there.
        ctx.global_load(coalesced_access(buf));
      });
  const auto& c = result.counters;
  EXPECT_EQ(c.l1_read_misses, 4u);
  EXPECT_EQ(c.l2_read_hits, 4u);  // but the L2 holds the written sectors
}

TEST(L1CacheTest, AtomicsBypassL1) {
  Device device(l1_spec(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto result = device.launch(
      "atomics", {1, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        std::array<float, 32> values{};
        values.fill(1.0f);
        ctx.global_atomic_add(coalesced_access(buf), values);
      });
  EXPECT_EQ(result.counters.l1_read_transactions, 0u);
  EXPECT_EQ(result.counters.l2_read_transactions, 4u);
}

TEST(L1CacheTest, Float4TrackLoadsAbsorbDoubleTouch) {
  // The CUDA-C tile loader touches every input sector twice (two float4
  // halves); with -dlcm=ca the second touch hits the L1 and the L2 sees
  // each sector once — the cuBLAS texture-path advantage.
  config::DeviceSpec with_l1 = l1_spec();
  config::DeviceSpec without = config::DeviceSpec::gtx970();
  for (int pass = 0; pass < 2; ++pass) {
    Device device(pass == 0 ? without : with_l1, 1 << 20);
    const DeviceBuffer buf = device.memory().allocate(1 << 16, "tracks");
    const auto result = device.launch(
        "trackload", {1, 1}, {32, 1}, small_config(),
        [&](BlockContext& ctx) {
          for (int piece = 0; piece < 2; ++piece) {
            GlobalWarpAccess access;
            access.width_bytes = 16;
            for (int l = 0; l < 32; ++l) {
              // Track stride 32 B: each lane's halves share one sector.
              access.set_lane(l, buf.addr_of_float(
                                     std::size_t(l) * 8 +
                                     std::size_t(piece) * 4));
            }
            ctx.global_load_vec4(access);
          }
        });
    if (pass == 0) {
      EXPECT_EQ(result.counters.l2_read_transactions, 64u);
    } else {
      EXPECT_EQ(result.counters.l2_read_transactions, 32u);
      EXPECT_EQ(result.counters.l1_read_hits, 32u);
    }
  }
}

TEST(L1CacheTest, InvalidL1GeometryRejected) {
  config::DeviceSpec spec = l1_spec();
  spec.l1_bytes = 1000;  // not whole lines
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
}  // namespace ksum::gpusim
