#include "gpusim/energy.h"

#include <gtest/gtest.h>

namespace ksum::gpusim {
namespace {

config::EnergySpec spec() { return config::EnergySpec::gtx970_mcpat(); }

TEST(EnergyTest, ZeroWorkIsOnlyStatic) {
  const auto e = compute_energy(spec(), CostInputs{}, 0.5);
  EXPECT_EQ(e.compute_j, 0.0);
  EXPECT_EQ(e.dram_j, 0.0);
  EXPECT_DOUBLE_EQ(e.static_j, spec().static_power_w * 0.5);
  EXPECT_DOUBLE_EQ(e.total(), e.static_j);
}

TEST(EnergyTest, DramEnergyProportionalToTransactions) {
  CostInputs a, b;
  a.dram_transactions = 1e6;
  b.dram_transactions = 2e6;
  const auto ea = compute_energy(spec(), a, 0.0);
  const auto eb = compute_energy(spec(), b, 0.0);
  EXPECT_DOUBLE_EQ(eb.dram_j, 2.0 * ea.dram_j);
  EXPECT_DOUBLE_EQ(ea.dram_j, 1e6 * spec().dram_access_pj * 1e-12);
}

TEST(EnergyTest, ComputeIncludesInstructionOverhead) {
  CostInputs fma_only, with_instr;
  fma_only.fma_lane_ops = 1e6;
  with_instr.fma_lane_ops = 1e6;
  with_instr.warp_instructions = 1e5;
  const auto ea = compute_energy(spec(), fma_only, 0.0);
  const auto eb = compute_energy(spec(), with_instr, 0.0);
  EXPECT_GT(eb.compute_j, ea.compute_j);
}

TEST(EnergyTest, SfuCostsMoreThanFmaPerOp) {
  CostInputs fma, sfu;
  fma.fma_lane_ops = 1e6;
  sfu.sfu_lane_ops = 1e6;
  EXPECT_GT(compute_energy(spec(), sfu, 0.0).compute_j,
            compute_energy(spec(), fma, 0.0).compute_j);
}

TEST(EnergyTest, DramShare) {
  CostInputs cost;
  cost.dram_transactions = 1e6;
  cost.fma_lane_ops = 1e6;
  const auto e = compute_energy(spec(), cost, 0.0);
  EXPECT_GT(e.dram_share(), 0.0);
  EXPECT_LT(e.dram_share(), 1.0);
  EXPECT_NEAR(e.dram_share(), e.dram_j / e.total(), 1e-15);
}

TEST(EnergyTest, BreakdownAddsUp) {
  CostInputs cost;
  cost.fma_lane_ops = 1e7;
  cost.sfu_lane_ops = 1e5;
  cost.warp_instructions = 3e5;
  cost.smem_transactions = 1e5;
  cost.l2_transactions = 1e4;
  cost.dram_transactions = 1e3;
  const auto e = compute_energy(spec(), cost, 1e-3);
  EXPECT_NEAR(e.total(),
              e.compute_j + e.smem_j + e.l2_j + e.dram_j + e.static_j,
              1e-15);
}

TEST(EnergyTest, AccumulationOperator) {
  CostInputs cost;
  cost.fma_lane_ops = 1e6;
  const auto e = compute_energy(spec(), cost, 0.1);
  EnergyBreakdown sum = e + e;
  EXPECT_DOUBLE_EQ(sum.compute_j, 2.0 * e.compute_j);
  EXPECT_DOUBLE_EQ(sum.static_j, 2.0 * e.static_j);
  sum += e;
  EXPECT_DOUBLE_EQ(sum.total(), 3.0 * e.total());
}

TEST(EnergyTest, MemoryHierarchyEnergyOrdering) {
  // Moving 32 bytes: smem (8 bank accesses) < L2 sector < DRAM sector.
  CostInputs smem, l2, dram;
  smem.smem_transactions = 1;  // one 32-lane transaction = 128 B though;
  l2.l2_transactions = 4;      // compare per 128 B
  dram.dram_transactions = 4;
  const double e_smem = compute_energy(spec(), smem, 0.0).smem_j;
  const double e_l2 = compute_energy(spec(), l2, 0.0).l2_j;
  const double e_dram = compute_energy(spec(), dram, 0.0).dram_j;
  EXPECT_LT(e_smem, e_l2);
  EXPECT_LT(e_l2, e_dram);
}

}  // namespace
}  // namespace ksum::gpusim
