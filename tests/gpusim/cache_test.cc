#include "gpusim/cache.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum::gpusim {
namespace {

// Local event sinks standing in for the Device's counter wiring.
struct Events {
  std::uint64_t reads = 0, hits = 0, misses = 0, writes = 0, writebacks = 0;
  CacheCounters hooks() {
    return {&reads, &hits, &misses, &writes, &writebacks};
  }
  void reset() { *this = Events{}; }
};

CacheGeometry tiny_geometry() {
  CacheGeometry g;
  g.capacity_bytes = 4096;  // 32 lines of 128 B
  g.line_bytes = 128;
  g.sector_bytes = 32;
  g.ways = 4;  // 8 sets
  return g;
}

TEST(CacheTest, GeometryDerivedQuantities) {
  const CacheGeometry g = tiny_geometry();
  EXPECT_EQ(g.num_lines(), 32u);
  EXPECT_EQ(g.num_sets(), 8u);
  EXPECT_EQ(g.sectors_per_line(), 4);
  EXPECT_NO_THROW(g.validate());
}

TEST(CacheTest, GeometryValidation) {
  CacheGeometry g = tiny_geometry();
  g.line_bytes = 100;
  EXPECT_THROW(g.validate(), Error);
  g = tiny_geometry();
  g.sector_bytes = 8;  // 16 sectors per line > 8-bit mask
  EXPECT_THROW(g.validate(), Error);
  g = tiny_geometry();
  g.ways = 5;  // does not divide 32 lines
  EXPECT_THROW(g.validate(), Error);
}

TEST(CacheTest, FirstReadMissesSecondHits) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  EXPECT_FALSE(cache.read_sector(0));
  EXPECT_TRUE(cache.read_sector(0));
  EXPECT_EQ(ev.reads, 2u);
  EXPECT_EQ(ev.misses, 1u);
  EXPECT_EQ(ev.hits, 1u);
}

TEST(CacheTest, SectorsFillIndividually) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  cache.read_sector(0);
  // Same line, different sector: still a miss (sectored fill).
  EXPECT_FALSE(cache.read_sector(32));
  EXPECT_EQ(ev.misses, 2u);
  EXPECT_EQ(cache.resident_sectors(), 2u);
}

TEST(CacheTest, WriteAllocateWithoutFetch) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  cache.write_sector(64);
  EXPECT_EQ(ev.misses, 0u);
  EXPECT_EQ(ev.writes, 1u);
  // Written sector is now readable without a miss.
  EXPECT_TRUE(cache.read_sector(64));
}

TEST(CacheTest, DirtyEvictionWritesBack) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  // Fill one set (4 ways) with dirty lines at stride num_sets*line.
  const GlobalAddr stride = 8 * 128;
  for (GlobalAddr i = 0; i < 4; ++i) cache.write_sector(i * stride);
  EXPECT_EQ(ev.writebacks, 0u);
  // Fifth line in the same set evicts the LRU dirty line.
  cache.write_sector(4 * stride);
  EXPECT_EQ(ev.writebacks, 1u);
}

TEST(CacheTest, LruVictimSelection) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  const GlobalAddr stride = 8 * 128;
  for (GlobalAddr i = 0; i < 4; ++i) cache.read_sector(i * stride);
  // Touch line 0 so line 1 becomes LRU.
  cache.read_sector(0);
  cache.read_sector(4 * stride);  // evicts line 1
  EXPECT_TRUE(cache.read_sector(0));          // still resident
  EXPECT_FALSE(cache.read_sector(1 * stride));  // was evicted
}

TEST(CacheTest, CleanEvictionIsSilent) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  const GlobalAddr stride = 8 * 128;
  for (GlobalAddr i = 0; i < 5; ++i) cache.read_sector(i * stride);
  EXPECT_EQ(ev.writebacks, 0u);
}

TEST(CacheTest, FlushWritesAllDirtySectors) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  cache.write_sector(0);
  cache.write_sector(32);
  cache.write_sector(1024);
  cache.flush_dirty();
  EXPECT_EQ(ev.writebacks, 3u);
  // Second flush is a no-op.
  cache.flush_dirty();
  EXPECT_EQ(ev.writebacks, 3u);
}

TEST(CacheTest, ResetDropsContentSilently) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  cache.write_sector(0);
  cache.reset();
  EXPECT_EQ(cache.resident_sectors(), 0u);
  EXPECT_EQ(ev.writebacks, 0u);
  EXPECT_FALSE(cache.read_sector(0));
}

TEST(CacheTest, WorkingSetLargerThanCapacityThrashes) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  // Stream 2× capacity twice; second pass should still miss everywhere.
  const std::size_t sectors = 2 * tiny_geometry().capacity_bytes / 32;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t s = 0; s < sectors; ++s) {
      cache.read_sector(GlobalAddr(s) * 32);
    }
  }
  EXPECT_EQ(ev.misses, ev.reads);
}

TEST(CacheTest, WorkingSetWithinCapacityHitsOnReuse) {
  Events ev;
  SectoredCache cache(tiny_geometry(), ev.hooks());
  const std::size_t sectors = tiny_geometry().capacity_bytes / 32 / 2;
  for (std::size_t s = 0; s < sectors; ++s) cache.read_sector(s * 32);
  ev.reset();
  for (std::size_t s = 0; s < sectors; ++s) cache.read_sector(s * 32);
  EXPECT_EQ(ev.misses, 0u);
  EXPECT_EQ(ev.hits, sectors);
}

TEST(CacheTest, NonPowerOfTwoSetCountWorks) {
  // The GTX970's 1.75 MB L2 has a non-power-of-two set count.
  CacheGeometry g;
  g.capacity_bytes = 1792 * 1024;
  g.line_bytes = 128;
  g.sector_bytes = 32;
  g.ways = 16;
  EXPECT_NO_THROW(g.validate());
  Events ev;
  SectoredCache cache(g, ev.hooks());
  EXPECT_FALSE(cache.read_sector(0));
  EXPECT_TRUE(cache.read_sector(0));
}

TEST(CacheTest, NullHooksAreSafe) {
  SectoredCache cache(tiny_geometry(), CacheCounters{});
  EXPECT_FALSE(cache.read_sector(0));
  EXPECT_TRUE(cache.read_sector(0));
  cache.write_sector(0);
  cache.flush_dirty();
}

}  // namespace
}  // namespace ksum::gpusim
