#include "gpusim/coalescer.h"

#include <gtest/gtest.h>

namespace ksum::gpusim {
namespace {

GlobalWarpAccess make_access(GlobalAddr (*addr_of)(int), int width = 4) {
  GlobalWarpAccess a;
  a.width_bytes = width;
  for (int l = 0; l < 32; ++l) a.set_lane(l, addr_of(l));
  return a;
}

TEST(CoalescerTest, FullyCoalescedScalarLoadIsFourSectors) {
  Coalescer c(32);
  const auto a = make_access([](int l) { return GlobalAddr(l * 4); });
  EXPECT_EQ(c.sectors_for(a).size(), 4u);
}

TEST(CoalescerTest, SectorsAreAlignedAndSorted) {
  Coalescer c(32);
  const auto a = make_access([](int l) { return GlobalAddr(l * 4 + 64); });
  const auto sectors = c.sectors_for(a);
  ASSERT_EQ(sectors.size(), 4u);
  for (std::size_t i = 0; i < sectors.size(); ++i) {
    EXPECT_EQ(sectors[i] % 32, 0u);
    if (i > 0) {
      EXPECT_LT(sectors[i - 1], sectors[i]);
    }
  }
  EXPECT_EQ(sectors[0], 64u);
}

TEST(CoalescerTest, StridedAccessTouchesOneSectorPerLane) {
  Coalescer c(32);
  // 128-byte stride: worst case, 32 distinct sectors.
  const auto a = make_access([](int l) { return GlobalAddr(l * 128); });
  EXPECT_EQ(c.sectors_for(a).size(), 32u);
}

TEST(CoalescerTest, BroadcastIsOneSector) {
  Coalescer c(32);
  const auto a = make_access([](int) { return GlobalAddr(96); });
  EXPECT_EQ(c.sectors_for(a).size(), 1u);
}

TEST(CoalescerTest, Vec4CoalescedIsSixteenSectors) {
  Coalescer c(32);
  const auto a =
      make_access([](int l) { return GlobalAddr(l * 16); }, /*width=*/16);
  EXPECT_EQ(c.sectors_for(a).size(), 16u);
}

TEST(CoalescerTest, Vec4LaneSpanningTwoSectors) {
  Coalescer c(32);
  GlobalWarpAccess a;
  a.width_bytes = 16;
  a.active_mask = 1;
  a.set_lane(0, 24);  // bytes 24..40 cross a 32-byte boundary
  EXPECT_EQ(c.sectors_for(a).size(), 2u);
}

TEST(CoalescerTest, InactiveLanesIgnored) {
  Coalescer c(32);
  GlobalWarpAccess a;
  a.active_mask = 0b11;
  a.set_lane(0, 0);
  a.set_lane(1, 4);
  a.set_lane(2, 1 << 20);  // inactive
  EXPECT_EQ(c.sectors_for(a).size(), 1u);
}

TEST(CoalescerTest, TwoLanesPerSectorPattern) {
  Coalescer c(32);
  // 16-byte stride scalar lanes: two lanes share each sector.
  const auto a = make_access([](int l) { return GlobalAddr(l * 16); });
  EXPECT_EQ(c.sectors_for(a).size(), 16u);
}

}  // namespace
}  // namespace ksum::gpusim
