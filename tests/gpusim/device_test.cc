#include "gpusim/device.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace ksum::gpusim {
namespace {

LaunchConfig small_config() {
  LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 32;
  cfg.smem_bytes_per_block = 1024;
  return cfg;
}

TEST(DeviceTest, LaunchRunsEveryCta) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  int invocations = 0;
  const auto result = device.launch(
      "probe", {4, 3}, {32, 1}, small_config(),
      [&](BlockContext& ctx) {
        ++invocations;
        EXPECT_LT(ctx.bx(), 4);
        EXPECT_LT(ctx.by(), 3);
      });
  EXPECT_EQ(invocations, 12);
  EXPECT_EQ(result.counters.ctas_launched, 12u);
  EXPECT_EQ(result.counters.kernel_launches, 1u);
  EXPECT_EQ(result.kernel_name, "probe");
}

TEST(DeviceTest, LaunchCountersAreIsolatedPerLaunch) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const auto program = [](BlockContext& ctx) { ctx.count_fma(64); };
  const auto r1 =
      device.launch("k1", {2, 1}, {32, 1}, small_config(), program);
  const auto r2 =
      device.launch("k2", {3, 1}, {32, 1}, small_config(), program);
  EXPECT_EQ(r1.counters.fma_ops, 128u);
  EXPECT_EQ(r2.counters.fma_ops, 192u);
  EXPECT_EQ(device.counters().fma_ops, 320u);  // cumulative
}

TEST(DeviceTest, BlockDimMustMatchConfig) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  LaunchConfig cfg = small_config();
  cfg.threads_per_block = 64;
  EXPECT_THROW(
      device.launch("bad", {1, 1}, {32, 1}, cfg, [](BlockContext&) {}),
      Error);
}

TEST(DeviceTest, GlobalLoadGoesThroughL2) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  device.memory().store_f32(buf.addr_of_float(5), 2.5f);

  float seen = 0;
  const auto result = device.launch(
      "reader", {1, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        GlobalWarpAccess access;
        for (int l = 0; l < 32; ++l) {
          access.set_lane(l, buf.addr_of_float(std::size_t(l)));
        }
        seen = ctx.global_load(access)[5];
      });
  EXPECT_EQ(seen, 2.5f);
  EXPECT_EQ(result.counters.global_load_requests, 1u);
  EXPECT_EQ(result.counters.l2_read_transactions, 4u);   // 128 B coalesced
  EXPECT_EQ(result.counters.dram_read_transactions, 4u); // cold
}

TEST(DeviceTest, L2PersistsAcrossLaunches) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "data");
  const auto program = [&](BlockContext& ctx) {
    GlobalWarpAccess access;
    for (int l = 0; l < 32; ++l) {
      access.set_lane(l, buf.addr_of_float(std::size_t(l)));
    }
    ctx.global_load(access);
  };
  device.launch("first", {1, 1}, {32, 1}, small_config(), program);
  const auto r2 =
      device.launch("second", {1, 1}, {32, 1}, small_config(), program);
  EXPECT_EQ(r2.counters.dram_read_transactions, 0u);  // warm L2
  EXPECT_EQ(r2.counters.l2_read_hits, 4u);
}

TEST(DeviceTest, GlobalStoreIsVisibleAndCounted) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "out");
  const auto result = device.launch(
      "writer", {1, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        GlobalWarpAccess access;
        std::array<float, 32> values{};
        for (int l = 0; l < 32; ++l) {
          access.set_lane(l, buf.addr_of_float(std::size_t(l)));
          values[std::size_t(l)] = float(l);
        }
        ctx.global_store(access, values);
      });
  EXPECT_EQ(device.memory().load_f32(buf.addr_of_float(7)), 7.0f);
  EXPECT_EQ(result.counters.global_store_requests, 1u);
  EXPECT_EQ(result.counters.l2_write_transactions, 4u);
  // Dirty data not yet written back.
  EXPECT_EQ(result.counters.dram_write_transactions, 0u);
}

TEST(DeviceTest, FlushL2DrainsDirtySectors) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(4096, "out");
  device.launch("writer", {1, 1}, {32, 1}, small_config(),
                [&](BlockContext& ctx) {
                  GlobalWarpAccess access;
                  std::array<float, 32> values{};
                  for (int l = 0; l < 32; ++l) {
                    access.set_lane(l, buf.addr_of_float(std::size_t(l)));
                  }
                  ctx.global_store(access, values);
                });
  const Counters flushed = device.flush_l2();
  EXPECT_EQ(flushed.dram_write_transactions, 4u);
  EXPECT_EQ(device.counters().dram_write_transactions, 4u);
}

TEST(DeviceTest, AtomicAddAccumulatesAcrossCtas) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const DeviceBuffer buf = device.memory().allocate(128, "acc");
  device.memory().fill(buf, 0.0f);
  const auto result = device.launch(
      "atomics", {8, 1}, {32, 1}, small_config(), [&](BlockContext& ctx) {
        GlobalWarpAccess access;
        std::array<float, 32> values{};
        for (int l = 0; l < 32; ++l) {
          access.set_lane(l, buf.addr_of_float(std::size_t(l)));
          values[std::size_t(l)] = 1.0f;
        }
        ctx.global_atomic_add(access, values);
      });
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(device.memory().load_f32(buf.addr_of_float(i)), 8.0f);
  }
  EXPECT_EQ(result.counters.atomic_requests, 8u);
  // Each atomic request touches 4 sectors read+write in L2.
  EXPECT_EQ(result.counters.l2_write_transactions, 32u);
}

TEST(DeviceTest, BarrierCounted) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const auto result = device.launch(
      "sync", {2, 1}, {32, 1}, small_config(),
      [](BlockContext& ctx) { ctx.barrier(); });
  EXPECT_EQ(result.counters.barriers, 2u);
}

TEST(DeviceTest, SharedMemoryIsPoisonedPerCta) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  device.launch("poison-check", {2, 1}, {32, 1}, small_config(),
                [](BlockContext& ctx) {
                  EXPECT_TRUE(std::isnan(ctx.smem().peek(0)));
                  // Write something; the next CTA must see poison again.
                  SharedWarpAccess a;
                  a.active_mask = 1;
                  a.set_lane(0, 0);
                  std::array<float, 32> v{};
                  v[0] = 1.0f;
                  ctx.smem().store_warp(a, v);
                });
}

TEST(DeviceTest, OccupancyReported) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  const auto result = device.launch("occ", {1, 1}, {32, 1}, small_config(),
                                    [](BlockContext&) {});
  EXPECT_GE(result.occupancy.blocks_per_sm, 1);
}

}  // namespace
}  // namespace ksum::gpusim
