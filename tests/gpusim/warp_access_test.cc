#include <gtest/gtest.h>

#include "gpusim/address.h"

namespace ksum::gpusim {
namespace {

TEST(WarpAccessTest, DefaultsAllLanesActiveScalar) {
  GlobalWarpAccess access;
  EXPECT_EQ(access.width_bytes, 4);
  for (int l = 0; l < kWarpSize; ++l) {
    EXPECT_TRUE(access.lane_active(l));
  }
}

TEST(WarpAccessTest, MaskControlsLanes) {
  SharedWarpAccess access;
  access.active_mask = 0x5;  // lanes 0 and 2
  EXPECT_TRUE(access.lane_active(0));
  EXPECT_FALSE(access.lane_active(1));
  EXPECT_TRUE(access.lane_active(2));
  EXPECT_FALSE(access.lane_active(31));
}

TEST(WarpAccessTest, SetLaneStoresAddress) {
  GlobalWarpAccess access;
  access.set_lane(7, 1234);
  EXPECT_EQ(access.addr[7], 1234u);
}

TEST(WarpAccessTest, WarpSizeIsThirtyTwo) {
  // The whole tile geometry assumes this; a change must be loud.
  EXPECT_EQ(kWarpSize, 32);
}

}  // namespace
}  // namespace ksum::gpusim
