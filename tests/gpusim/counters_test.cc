#include "gpusim/counters.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace ksum::gpusim {
namespace {

TEST(CountersTest, DefaultIsZero) {
  const Counters c;
  EXPECT_EQ(c.fma_ops, 0u);
  EXPECT_EQ(c.l2_total_transactions(), 0u);
  EXPECT_EQ(c.dram_total_transactions(), 0u);
  EXPECT_EQ(c.smem_total_transactions(), 0u);
}

TEST(CountersTest, AdditionSumsEveryField) {
  Counters a, b;
  a.fma_ops = 1;
  a.l2_read_transactions = 2;
  a.dram_write_transactions = 3;
  a.smem_load_transactions = 4;
  a.barriers = 5;
  b.fma_ops = 10;
  b.l2_read_transactions = 20;
  b.dram_write_transactions = 30;
  b.smem_load_transactions = 40;
  b.barriers = 50;
  const Counters c = a + b;
  EXPECT_EQ(c.fma_ops, 11u);
  EXPECT_EQ(c.l2_read_transactions, 22u);
  EXPECT_EQ(c.dram_write_transactions, 33u);
  EXPECT_EQ(c.smem_load_transactions, 44u);
  EXPECT_EQ(c.barriers, 55u);
}

// Counters is a plain bag of uint64_t event counts; operator+= must sum
// EVERY field, or a newly-added counter silently vanishes from pipeline
// totals. Rather than enumerate fields (which rots), fill the whole object
// word by word through memcpy and verify each word doubles.
TEST(CountersTest, PlusEqualsSumsEveryField) {
  static_assert(std::is_trivially_copyable_v<Counters>);
  static_assert(sizeof(Counters) % sizeof(std::uint64_t) == 0,
                "Counters must stay a pure array of 64-bit counts");
  constexpr std::size_t kWords = sizeof(Counters) / sizeof(std::uint64_t);

  std::array<std::uint64_t, kWords> raw{};
  for (std::size_t i = 0; i < kWords; ++i) raw[i] = i + 1;
  // static_cast<void*> because Counters' field initialisers make its default
  // constructor non-trivial; the static_assert above proves the memcpy legal.
  Counters a;
  std::memcpy(static_cast<void*>(&a), raw.data(), sizeof(a));
  Counters b;
  std::memcpy(static_cast<void*>(&b), raw.data(), sizeof(b));

  a += b;
  std::array<std::uint64_t, kWords> out{};
  std::memcpy(out.data(), &a, sizeof(a));
  for (std::size_t i = 0; i < kWords; ++i) {
    EXPECT_EQ(out[i], 2 * (i + 1))
        << "64-bit word " << i << " of Counters is not summed by operator+= "
        << "(newly added field missing from counters.cc?)";
  }
}

// Same exhaustive word-by-word check for operator-=: the profiler's phase
// deltas (snapshot subtraction) must cover every field too.
TEST(CountersTest, MinusEqualsSubtractsEveryField) {
  constexpr std::size_t kWords = sizeof(Counters) / sizeof(std::uint64_t);
  std::array<std::uint64_t, kWords> big{}, small{};
  for (std::size_t i = 0; i < kWords; ++i) {
    big[i] = 10 * (i + 1);
    small[i] = i + 1;
  }
  Counters a, b;
  std::memcpy(static_cast<void*>(&a), big.data(), sizeof(a));
  std::memcpy(static_cast<void*>(&b), small.data(), sizeof(b));

  a -= b;
  std::array<std::uint64_t, kWords> out{};
  std::memcpy(out.data(), &a, sizeof(a));
  for (std::size_t i = 0; i < kWords; ++i) {
    EXPECT_EQ(out[i], 9 * (i + 1))
        << "64-bit word " << i << " of Counters is not subtracted by "
        << "operator-= (newly added field missing from counters.cc?)";
  }
}

TEST(CountersTest, SubtractionSaturatesAtZero) {
  Counters a, b;
  a.fma_ops = 3;
  b.fma_ops = 5;
  b.barriers = 1;
  const Counters c = a - b;
  EXPECT_EQ(c.fma_ops, 0u);
  EXPECT_EQ(c.barriers, 0u);
}

TEST(CountersTest, EqualityComparesEveryField) {
  constexpr std::size_t kWords = sizeof(Counters) / sizeof(std::uint64_t);
  std::array<std::uint64_t, kWords> raw{};
  for (std::size_t i = 0; i < kWords; ++i) raw[i] = i + 1;
  Counters a, b;
  std::memcpy(static_cast<void*>(&a), raw.data(), sizeof(a));
  std::memcpy(static_cast<void*>(&b), raw.data(), sizeof(b));
  EXPECT_TRUE(a == b);

  // Perturbing any single word must break equality.
  for (std::size_t i = 0; i < kWords; ++i) {
    Counters c = b;
    std::uint64_t word = 0;
    std::memcpy(&word, reinterpret_cast<const char*>(&c) + i * sizeof(word),
                sizeof(word));
    ++word;
    std::memcpy(reinterpret_cast<char*>(&c) + i * sizeof(word), &word,
                sizeof(word));
    EXPECT_FALSE(a == c) << "64-bit word " << i
                         << " of Counters is ignored by operator==";
  }
}

TEST(CountersTest, FaultTotalsAndToString) {
  Counters c;
  EXPECT_EQ(c.faults_injected_total(), 0u);
  EXPECT_EQ(c.to_string().find("faults"), std::string::npos);
  c.faults_smem_bitflips = 1;
  c.faults_global_bitflips = 2;
  c.faults_tile_corruptions = 3;
  c.faults_atomics_dropped = 4;
  c.faults_atomics_doubled = 5;
  EXPECT_EQ(c.faults_injected_total(), 15u);
  EXPECT_NE(c.to_string().find("faults"), std::string::npos);
}

TEST(CountersTest, Totals) {
  Counters c;
  c.l2_read_transactions = 3;
  c.l2_write_transactions = 4;
  c.dram_read_transactions = 5;
  c.dram_write_transactions = 6;
  c.smem_load_transactions = 7;
  c.smem_store_transactions = 8;
  EXPECT_EQ(c.l2_total_transactions(), 7u);
  EXPECT_EQ(c.dram_total_transactions(), 11u);
  EXPECT_EQ(c.smem_total_transactions(), 15u);
}

TEST(CountersTest, MpkiDefinition) {
  // Thread-instruction (×32) denominator, the nvprof convention.
  Counters c;
  c.l2_read_misses = 3200;
  c.warp_instructions = 10000;
  EXPECT_DOUBLE_EQ(c.l2_mpki(), 10.0);
  Counters empty;
  EXPECT_EQ(empty.l2_mpki(), 0.0);  // no division by zero
}

TEST(CountersTest, ToStringMentionsKeyFields) {
  Counters c;
  c.fma_ops = 42;
  c.dram_read_transactions = 7;
  const std::string s = c.to_string();
  EXPECT_NE(s.find("fma=42"), std::string::npos);
  EXPECT_NE(s.find("read=7"), std::string::npos);
}

}  // namespace
}  // namespace ksum::gpusim
