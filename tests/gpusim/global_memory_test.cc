#include "gpusim/global_memory.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum::gpusim {
namespace {

TEST(GlobalMemoryTest, AllocationsAreAlignedAndDisjoint) {
  GlobalMemory mem(1 << 16);
  const DeviceBuffer a = mem.allocate(100, "a");
  const DeviceBuffer b = mem.allocate(256, "b");
  EXPECT_EQ(a.base() % 128, 0u);
  EXPECT_EQ(b.base() % 128, 0u);
  EXPECT_GE(b.base(), a.base() + 128);  // 100 rounds up to 128
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(DeviceBuffer{}.valid());
}

TEST(GlobalMemoryTest, ExhaustionThrows) {
  GlobalMemory mem(1024);
  mem.allocate(512, "x");
  EXPECT_THROW(mem.allocate(1024, "too-big"), Error);
}

TEST(GlobalMemoryTest, UploadDownloadRoundTrip) {
  GlobalMemory mem(4096);
  const DeviceBuffer buf = mem.allocate(16 * 4, "v");
  AlignedBuffer<float> host(16);
  for (std::size_t i = 0; i < 16; ++i) host[i] = float(i) * 0.5f;
  mem.upload(buf, host.span());
  AlignedBuffer<float> back(16);
  mem.download(buf, back.span());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(back[i], host[i]);
}

TEST(GlobalMemoryTest, UploadMatrix) {
  GlobalMemory mem(4096);
  Matrix m(4, 4, Layout::kColMajor);
  m.at(1, 2) = 9.0f;
  const DeviceBuffer buf = mem.allocate(16 * 4, "m");
  mem.upload_matrix(buf, m);
  EXPECT_EQ(mem.load_f32(buf.addr_of_float(m.index(1, 2))), 9.0f);
}

TEST(GlobalMemoryTest, FillSetsEveryWord) {
  GlobalMemory mem(4096);
  const DeviceBuffer buf = mem.allocate(8 * 4, "f");
  mem.fill(buf, 3.25f);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(mem.load_f32(buf.addr_of_float(i)), 3.25f);
  }
}

TEST(GlobalMemoryTest, WordAccess) {
  GlobalMemory mem(4096);
  const DeviceBuffer buf = mem.allocate(64, "w");
  mem.store_f32(buf.addr_of_float(3), -1.5f);
  EXPECT_EQ(mem.load_f32(buf.addr_of_float(3)), -1.5f);
}

TEST(GlobalMemoryTest, OversizeUploadThrows) {
  GlobalMemory mem(4096);
  const DeviceBuffer buf = mem.allocate(4, "tiny");
  AlignedBuffer<float> host(2);
  EXPECT_THROW(mem.upload(buf, host.span()), Error);
}

TEST(GlobalMemoryTest, OutOfArenaAccessCaught) {
  GlobalMemory mem(256);
  EXPECT_THROW(mem.load_f32(1 << 20), InternalError);
  EXPECT_THROW(mem.store_f32(2, 0.0f), InternalError);  // misaligned
}

}  // namespace
}  // namespace ksum::gpusim
