#include "gpusim/occupancy.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum::gpusim {
namespace {

config::DeviceSpec spec() { return config::DeviceSpec::gtx970(); }

TEST(OccupancyTest, ThreadLimited) {
  LaunchConfig cfg;
  cfg.threads_per_block = 1024;
  cfg.regs_per_thread = 16;
  cfg.smem_bytes_per_block = 0;
  const Occupancy occ = compute_occupancy(spec(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 2);  // 2048 / 1024
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kThreads);
  EXPECT_EQ(occ.active_threads_per_sm(cfg), 2048);
  EXPECT_DOUBLE_EQ(occ.ratio(spec(), cfg), 1.0);
}

TEST(OccupancyTest, RegisterLimitedLikeThePaperKernel) {
  // The paper's fused kernel: 256 threads × 128 registers → 2 CTAs/SM.
  LaunchConfig cfg;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 128;
  cfg.smem_bytes_per_block = 16 * 1024;
  const Occupancy occ = compute_occupancy(spec(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kRegisters);
}

TEST(OccupancyTest, FewerRegistersRaisesOccupancy) {
  LaunchConfig cfg;
  cfg.threads_per_block = 256;
  cfg.smem_bytes_per_block = 0;
  cfg.regs_per_thread = 32;
  const int high = compute_occupancy(spec(), cfg).blocks_per_sm;
  cfg.regs_per_thread = 128;
  const int low = compute_occupancy(spec(), cfg).blocks_per_sm;
  EXPECT_GT(high, low);
}

TEST(OccupancyTest, SharedMemoryLimited) {
  LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.regs_per_thread = 16;
  cfg.smem_bytes_per_block = 40 * 1024;  // 96KB/40KB → 2
  const Occupancy occ = compute_occupancy(spec(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kSharedMemory);
}

TEST(OccupancyTest, BlockSlotLimited) {
  LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 16;
  cfg.smem_bytes_per_block = 0;
  const Occupancy occ = compute_occupancy(spec(), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 32);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kBlocks);
}

TEST(OccupancyTest, RegisterGranularityRoundsUp) {
  // 65 regs × 32 lanes = 2080 → rounds to 2304 per warp (256 granules).
  LaunchConfig cfg;
  cfg.threads_per_block = 256;
  cfg.regs_per_thread = 65;
  cfg.smem_bytes_per_block = 0;
  const Occupancy occ = compute_occupancy(spec(), cfg);
  // 65536 / (2304 × 8 warps) = 3.55 → 3 CTAs.
  EXPECT_EQ(occ.blocks_per_sm, 3);
}

TEST(OccupancyTest, InvalidConfigsThrow) {
  LaunchConfig cfg;
  cfg.threads_per_block = 2048;  // over block limit
  EXPECT_THROW(compute_occupancy(spec(), cfg), Error);

  cfg = LaunchConfig{};
  cfg.threads_per_block = 100;  // not warp aligned
  EXPECT_THROW(compute_occupancy(spec(), cfg), Error);

  cfg = LaunchConfig{};
  cfg.regs_per_thread = 300;  // over register cap
  EXPECT_THROW(compute_occupancy(spec(), cfg), Error);

  cfg = LaunchConfig{};
  cfg.smem_bytes_per_block = 64 * 1024;  // over the 48 KB per-block limit
  EXPECT_THROW(compute_occupancy(spec(), cfg), Error);
}

TEST(OccupancyTest, LimiterNames) {
  EXPECT_EQ(to_string(OccupancyLimiter::kThreads), "threads");
  EXPECT_EQ(to_string(OccupancyLimiter::kRegisters), "registers");
  EXPECT_EQ(to_string(OccupancyLimiter::kSharedMemory), "shared-memory");
  EXPECT_EQ(to_string(OccupancyLimiter::kBlocks), "blocks");
}

}  // namespace
}  // namespace ksum::gpusim
