#include "gpusim/timing.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ksum::gpusim {
namespace {

config::DeviceSpec dev() { return config::DeviceSpec::gtx970(); }
config::TimingSpec tim() { return config::TimingSpec::gtx970(); }

LaunchShape shape(std::size_t ctas, double iters = 4,
                  config::KernelGrade grade = config::KernelGrade::cuda_c()) {
  LaunchShape s;
  s.num_ctas = ctas;
  s.config.threads_per_block = 256;
  s.config.regs_per_thread = 128;
  s.config.smem_bytes_per_block = 16 * 1024;
  s.occupancy = compute_occupancy(config::DeviceSpec::gtx970(), s.config);
  s.mainloop_iters = iters;
  s.grade = grade;
  return s;
}

TEST(TimingTest, ComputeBoundKernel) {
  CostInputs cost;
  cost.fma_lane_ops = 1e9;
  const auto t = estimate_kernel_time(dev(), tim(), cost, shape(1024));
  EXPECT_EQ(t.bound, "compute");
  EXPECT_GT(t.total_cycles, 0.0);
  EXPECT_GT(t.seconds(dev()), 0.0);
}

TEST(TimingTest, DramBoundKernel) {
  CostInputs cost;
  cost.fma_lane_ops = 1e3;
  cost.dram_transactions = 1e8;
  const auto t = estimate_kernel_time(dev(), tim(), cost, shape(1024));
  EXPECT_EQ(t.bound, "dram");
  EXPECT_GT(t.dram_cycles, t.compute_cycles);
}

TEST(TimingTest, MoreWorkTakesLonger) {
  CostInputs small, big;
  small.fma_lane_ops = 1e8;
  big.fma_lane_ops = 2e8;
  const auto ts = estimate_kernel_time(dev(), tim(), small, shape(1024));
  const auto tb = estimate_kernel_time(dev(), tim(), big, shape(1024));
  EXPECT_GT(tb.total_cycles, ts.total_cycles);
}

TEST(TimingTest, AssemblyGradeBeatsCudaC) {
  CostInputs cost;
  cost.fma_lane_ops = 1e9;
  const auto cuda = estimate_kernel_time(
      dev(), tim(), cost, shape(1024, 4, config::KernelGrade::cuda_c()));
  const auto sass = estimate_kernel_time(
      dev(), tim(), cost, shape(1024, 4, config::KernelGrade::assembly()));
  const double ratio = cuda.total_cycles / sass.total_cycles;
  // The paper's measured gap: 1.5–2.0×.
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.1);
}

TEST(TimingTest, LongerMainLoopAmortisesPrologue) {
  CostInputs per_iter;
  per_iter.fma_lane_ops = 1e6;
  // Same work per iteration; more iterations → higher efficiency →
  // sub-linear time growth.
  CostInputs k32 = per_iter, k256 = per_iter;
  k32.fma_lane_ops *= 4;    // 4 iterations' work
  k256.fma_lane_ops *= 32;  // 32 iterations' work
  const auto t32 = estimate_kernel_time(dev(), tim(), k32, shape(64, 4));
  const auto t256 = estimate_kernel_time(dev(), tim(), k256, shape(64, 32));
  EXPECT_LT(t256.compute_cycles, 8.0 * t32.compute_cycles);
}

TEST(TimingTest, TailWaveHurtsSmallGrids) {
  // 27 CTAs on 26 slots wastes nearly half the second wave.
  CostInputs cost;
  cost.fma_lane_ops = 1e8;
  const auto full = estimate_kernel_time(dev(), tim(), cost, shape(26));
  const auto tail = estimate_kernel_time(dev(), tim(), cost, shape(27));
  EXPECT_GT(tail.compute_cycles, 1.5 * full.compute_cycles);
}

TEST(TimingTest, LaunchOverheadDominatesTinyKernels) {
  CostInputs cost;
  cost.fma_lane_ops = 100;
  const auto t = estimate_kernel_time(dev(), tim(), cost, shape(1));
  EXPECT_GT(t.overhead_cycles, t.compute_cycles);
  EXPECT_GE(t.total_cycles, tim().launch_overhead_cycles);
}

TEST(TimingTest, FlopEfficiencyDefinition) {
  // 50% efficiency: flops = peak × t / 2.
  const double t = 1e-3;
  const double flops = dev().peak_sp_flops() * t / 2.0;
  EXPECT_NEAR(flop_efficiency(dev(), flops, t), 0.5, 1e-12);
  EXPECT_THROW(flop_efficiency(dev(), 1.0, 0.0), Error);
}

TEST(TimingTest, FromCountersMapsEveryField) {
  Counters c;
  c.fma_ops = 1;
  c.alu_ops = 2;
  c.sfu_ops = 3;
  c.warp_instructions = 4;
  c.smem_load_transactions = 5;
  c.smem_store_transactions = 6;
  c.l2_read_transactions = 7;
  c.l2_write_transactions = 8;
  c.dram_read_transactions = 9;
  c.dram_write_transactions = 10;
  const CostInputs in = CostInputs::from_counters(c);
  EXPECT_EQ(in.fma_lane_ops, 1);
  EXPECT_EQ(in.alu_lane_ops, 2);
  EXPECT_EQ(in.sfu_lane_ops, 3);
  EXPECT_EQ(in.warp_instructions, 4);
  EXPECT_EQ(in.smem_transactions, 11);
  EXPECT_EQ(in.l2_transactions, 15);
  EXPECT_EQ(in.dram_transactions, 19);
}

TEST(TimingTest, NonOverlappedMemorySerialises) {
  CostInputs cost;
  cost.fma_lane_ops = 1e9;
  cost.smem_transactions = 5e7;
  LaunchShape overlapped = shape(1024);
  LaunchShape serial = shape(1024);
  serial.overlapped_memory = false;
  const auto t_overlap = estimate_kernel_time(dev(), tim(), cost, overlapped);
  const auto t_serial = estimate_kernel_time(dev(), tim(), cost, serial);
  EXPECT_GT(t_serial.total_cycles, t_overlap.total_cycles);
  // Serial = compute + memory, overlapped = max of the two.
  EXPECT_NEAR(t_serial.total_cycles - t_serial.overhead_cycles,
              t_serial.compute_cycles + t_serial.smem_cycles, 1.0);
}

TEST(TimingTest, ZeroCtasRejected) {
  CostInputs cost;
  EXPECT_THROW(estimate_kernel_time(dev(), tim(), cost, shape(0)), Error);
}

}  // namespace
}  // namespace ksum::gpusim
