#include "gpusim/shared_memory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace ksum::gpusim {
namespace {

SharedWarpAccess all_lanes(std::uint32_t (*addr_of)(int lane)) {
  SharedWarpAccess a;
  for (int l = 0; l < 32; ++l) a.set_lane(l, addr_of(l));
  return a;
}

TEST(SharedMemoryTest, ConsecutiveWordsAreOneTransaction) {
  const auto a = all_lanes([](int l) { return std::uint32_t(l * 4); });
  EXPECT_EQ(SharedMemory::transactions_for(a), 1);
}

TEST(SharedMemoryTest, BroadcastSameWordIsOneTransaction) {
  const auto a = all_lanes([](int) { return std::uint32_t(64); });
  EXPECT_EQ(SharedMemory::transactions_for(a), 1);
}

TEST(SharedMemoryTest, PartialBroadcastWithinRowIsOneTransaction) {
  // Half the lanes read word 0, half read word 5 — same 128-byte row.
  const auto a =
      all_lanes([](int l) { return std::uint32_t(l < 16 ? 0 : 20); });
  EXPECT_EQ(SharedMemory::transactions_for(a), 1);
}

TEST(SharedMemoryTest, SameBankDifferentRowsConflict) {
  // All lanes hit bank 0 in distinct rows: 32 transactions (the paper's
  // row-select rule: replay per distinct 128-byte row).
  const auto a = all_lanes([](int l) { return std::uint32_t(l * 128); });
  EXPECT_EQ(SharedMemory::transactions_for(a), 32);
}

TEST(SharedMemoryTest, StrideTwoWordsSpansTwoRows) {
  // Words 0,2,4,...,62: rows 0 and 1 → 2 transactions.
  const auto a = all_lanes([](int l) { return std::uint32_t(l * 8); });
  EXPECT_EQ(SharedMemory::transactions_for(a), 2);
}

TEST(SharedMemoryTest, InactiveLanesDoNotCount) {
  SharedWarpAccess a;
  a.active_mask = 0x1;
  a.set_lane(0, 0);
  // Lane 5 has a wild address but is inactive.
  a.set_lane(5, 12800);
  EXPECT_EQ(SharedMemory::transactions_for(a), 1);
  SharedWarpAccess none;
  none.active_mask = 0;
  EXPECT_EQ(SharedMemory::transactions_for(none), 0);
}

TEST(SharedMemoryTest, IdealTransactionsByWidth) {
  SharedWarpAccess scalar;
  EXPECT_EQ(SharedMemory::ideal_transactions_for(scalar), 1);
  SharedWarpAccess vec4;
  vec4.width_bytes = 16;
  EXPECT_EQ(SharedMemory::ideal_transactions_for(vec4), 4);
}

TEST(SharedMemoryTest, LoadStoreRoundTrip) {
  Counters counters;
  SharedMemory smem(4096, &counters);
  SharedWarpAccess a = all_lanes([](int l) { return std::uint32_t(l * 4); });
  std::array<float, 32> values{};
  for (int l = 0; l < 32; ++l) values[std::size_t(l)] = float(l) * 1.5f;
  smem.store_warp(a, values);
  const auto loaded = smem.load_warp(a);
  for (int l = 0; l < 32; ++l) {
    EXPECT_EQ(loaded[std::size_t(l)], float(l) * 1.5f);
  }
  EXPECT_EQ(counters.smem_store_requests, 1u);
  EXPECT_EQ(counters.smem_load_requests, 1u);
  EXPECT_EQ(counters.smem_store_transactions, 1u);
  EXPECT_EQ(counters.smem_load_transactions, 1u);
  EXPECT_EQ(counters.smem_bank_conflicts, 0u);
}

TEST(SharedMemoryTest, ConflictsCountedAsExcessTransactions) {
  Counters counters;
  SharedMemory smem(128 * 32 * 4, &counters);
  // 4 distinct rows, same bank per group.
  const auto a = all_lanes([](int l) { return std::uint32_t((l % 4) * 128); });
  smem.load_warp(a);
  EXPECT_EQ(counters.smem_load_transactions, 4u);
  EXPECT_EQ(counters.smem_bank_conflicts, 3u);
}

TEST(SharedMemoryTest, OutOfBoundsAccessIsCaught) {
  Counters counters;
  SharedMemory smem(256, &counters);
  const auto a = all_lanes([](int l) { return std::uint32_t(l * 4 + 192); });
  EXPECT_THROW(smem.load_warp(a), InternalError);
}

TEST(SharedMemoryTest, MisalignedAccessIsCaught) {
  Counters counters;
  SharedMemory smem(256, &counters);
  SharedWarpAccess a;
  a.active_mask = 1;
  a.set_lane(0, 2);
  EXPECT_THROW(smem.load_warp(a), InternalError);
}

TEST(SharedMemoryTest, PoisonFillsNaN) {
  Counters counters;
  SharedMemory smem(64, &counters);
  smem.poison();
  EXPECT_TRUE(std::isnan(smem.peek(0)));
  EXPECT_TRUE(std::isnan(smem.peek(60)));
}

TEST(SharedMemoryTest, SizeRoundsUpToWords) {
  Counters counters;
  SharedMemory smem(10, &counters);
  EXPECT_GE(smem.size_bytes(), 10u);
  EXPECT_EQ(smem.size_bytes() % 4, 0u);
}

}  // namespace
}  // namespace ksum::gpusim
