// Golden snapshots of the ksum-model-v1 fidelity report, one per built-in
// profile. The report pairs the exhaustive tuner's ordering with the baked
// model's ordering on a fixed shape; both are pure functions of (profile,
// shape, grid, coefficients), so any byte diff is a real drift — a changed
// kernel, a regenerated fit, a new candidate.
//
// To regenerate after an intentional change (e.g. after re-running
// `ksum-tune model-fit`):
//   KSUM_UPDATE_GOLDEN=1 ./tests/model_tests --gtest_filter='GoldenModelTest.*'
// and commit the rewritten files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "config/profiles/device_profile.h"
#include "tune/model_fit.h"

#ifndef KSUM_GOLDEN_DIR
#error "KSUM_GOLDEN_DIR must be defined by the build"
#endif

namespace ksum {
namespace {

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path =
      std::string(KSUM_GOLDEN_DIR) + "/" + name + ".json";
  const char* update = std::getenv("KSUM_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with KSUM_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << name << " drifted from its golden snapshot; if the change is "
      << "intentional (e.g. a refreshed model-fit), regenerate with "
      << "KSUM_UPDATE_GOLDEN=1";
}

void check_profile_report(const std::string& profile_name) {
  const auto profile = config::profiles::builtin(profile_name);
  // threads=4 must not leak into the record (the model rank is computed
  // before the pool; the executed measurements aggregate by index).
  const auto record = tune::model_report(profile,
                                         pipelines::Backend::kSimFused,
                                         512, 512, 16, /*threads=*/4);
  check_golden("model_report_" + profile_name, record.dump());
}

TEST(GoldenModelTest, Gtx970ReportJson) { check_profile_report("gtx970"); }

TEST(GoldenModelTest, TitanxMaxwellReportJson) {
  check_profile_report("titanx-maxwell");
}

TEST(GoldenModelTest, ModernReportJson) { check_profile_report("modern"); }

}  // namespace
}  // namespace ksum
