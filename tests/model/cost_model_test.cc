// The counter-based cost model: the baked fitted table covers every
// built-in profile and simulated backend, the ridge fitter recovers
// in-model data, spearman() handles its edge cases, the model's rank
// fidelity clears the ≥ 0.9 gate on every built-in, and --rank=model is
// thread-count invariant (it ranks with pure arithmetic before the pool).
#include "model/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/error.h"
#include "config/profiles/device_profile.h"
#include "tune/model_fit.h"
#include "tune/tile_search.h"
#include "tune/tune_json.h"
#include "tune/tuner.h"

namespace ksum {
namespace {

using pipelines::Backend;

TEST(CostModelTest, FittedTableCoversEveryBuiltinAndBackend) {
  const auto& table = model::fitted_table();
  EXPECT_FALSE(table.fitted_from.empty());
  const Backend simulated[] = {Backend::kSimFused, Backend::kSimCudaUnfused,
                               Backend::kSimCublasUnfused};
  for (const auto& name : config::profiles::builtin_names()) {
    const auto* profile = model::find_profile(table, name);
    ASSERT_NE(profile, nullptr) << "no fitted model for " << name
                                << " — run ksum-tune model-fit";
    for (const Backend backend : simulated) {
      const auto* bm = model::find_backend(*profile, backend);
      ASSERT_NE(bm, nullptr)
          << name << "/" << to_string(backend) << " not fitted";
      // Every backend times at least one geometry-independent kernel
      // (norms/eval/GEMV) alongside the tile kernel.
      EXPECT_FALSE(bm->fixed.empty()) << name << "/" << to_string(backend);
    }
  }
  EXPECT_EQ(model::find_profile(table, "no-such-profile"), nullptr);
}

TEST(CostModelTest, RequireBackendThrowsWithRemediationHint) {
  EXPECT_NO_THROW(model::require_backend("gtx970", Backend::kSimFused));
  try {
    model::require_backend("my-custom-part", Backend::kSimFused);
    FAIL() << "expected ksum::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("model-fit"), std::string::npos)
        << "error must tell the user how to fit the missing profile: "
        << e.what();
  }
}

TEST(CostModelTest, TargetsRoundTrip) {
  gpusim::CostInputs inputs{};
  auto targets = model::to_targets(inputs);
  // Fill with distinct values and check the field order is stable.
  for (std::size_t i = 0; i < model::kNumTargets; ++i) {
    targets[i] = double(i + 1) * 3.5;
  }
  const auto back = model::to_targets(model::from_targets(targets));
  for (std::size_t i = 0; i < model::kNumTargets; ++i) {
    EXPECT_DOUBLE_EQ(back[i], targets[i]) << "target " << i;
  }
}

TEST(CostModelTest, SpearmanEdgeCases) {
  EXPECT_DOUBLE_EQ(model::spearman({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(model::spearman({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
  // Monotone transforms preserve the rank correlation exactly.
  EXPECT_DOUBLE_EQ(model::spearman({1, 2, 3, 4}, {1, 4, 9, 16}), 1.0);
  // A constant input has no ordering to correlate.
  EXPECT_DOUBLE_EQ(model::spearman({1, 2, 3}, {5, 5, 5}), 0.0);
  // Ties get average ranks: {1, 1, 2} vs {1, 2, 3} correlates positively
  // but not perfectly.
  const double tied = model::spearman({1, 1, 2}, {1, 2, 3});
  EXPECT_GT(tied, 0.0);
  EXPECT_LT(tied, 1.0);
  EXPECT_THROW(model::spearman({1, 2}, {1, 2, 3}), Error);
  EXPECT_THROW(model::spearman({1}, {2}), Error);
  EXPECT_THROW(model::spearman({}, {}), Error);
}

TEST(CostModelTest, FitRecoversInModelData) {
  // Generate training rows whose rates lie exactly in the model class (the
  // baked gtx970 fused coefficients evaluated on the viable grid); the
  // ridge refit must reproduce those predictions to high precision.
  const auto& baked =
      model::require_backend("gtx970", Backend::kSimFused);
  std::vector<gpukernels::TileGeometry> viable;
  for (const auto& verdict :
       tune::evaluate_candidates(config::DeviceSpec::gtx970())) {
    if (verdict.viable) viable.push_back(verdict.geometry);
  }
  ASSERT_GE(viable.size(), 10u);

  std::vector<model::FitRow> rows;
  for (const auto& geometry : viable) {
    model::FitRow row;
    row.geometry = geometry;
    row.rates = model::predict_rates(baked.tile, geometry);
    rows.push_back(row);
  }
  const auto refit = model::fit_tile_coefficients(rows);
  for (const auto& row : rows) {
    const auto predicted = model::predict_rates(refit, row.geometry);
    for (std::size_t f = 0; f < model::kNumTargets; ++f) {
      const double scale = std::max(1.0, std::abs(row.rates[f]));
      EXPECT_NEAR(predicted[f], row.rates[f], 1e-3 * scale)
          << row.geometry.to_string() << " target " << f;
    }
  }

  EXPECT_THROW(model::fit_tile_coefficients({}), Error);
}

TEST(CostModelTest, PredictedSecondsArePositiveAndShapeMonotone) {
  const auto& baked =
      model::require_backend("gtx970", Backend::kSimFused);
  const auto device = config::DeviceSpec::gtx970();
  const auto timing = config::TimingSpec::gtx970();
  gpukernels::TileGeometry paper;  // default-constructed = paper geometry
  ASSERT_TRUE(paper.is_paper());
  const double small = model::predict_scaled_seconds(baked, device, timing,
                                                     paper, 512, 512, 16);
  const double big = model::predict_scaled_seconds(baked, device, timing,
                                                   paper, 2048, 2048, 16);
  EXPECT_GT(small, 0);
  EXPECT_GT(big, small) << "16× the work must cost more modelled time";
}

TEST(CostModelTest, RankFidelityClearsTheGateOnEveryBuiltin) {
  // The acceptance gate: Spearman(model ranking, executed ranking) ≥ 0.9
  // for the fused pipeline on every built-in profile. model_report runs
  // the exhaustive tuner as ground truth and validates its own record.
  for (const auto& name : config::profiles::builtin_names()) {
    const auto profile = config::profiles::builtin(name);
    const auto record = tune::model_report(profile, Backend::kSimFused,
                                           1024, 1024, 8, /*threads=*/4);
    EXPECT_EQ(record.at("schema").as_string(), "ksum-model-v1");
    EXPECT_EQ(record.at("profile").as_string(), name);
    EXPECT_GE(record.at("spearman").as_double(), 0.9)
        << name << ": model ranking drifted from executed ranking";
    EXPECT_NO_THROW(tune::validate_model_json(record)) << name;
  }
}

TEST(CostModelTest, ModelRankIsThreadCountInvariant) {
  // Under --rank=model the full-grid ordering is pure arithmetic computed
  // before the thread pool spins up, so the serialised tune record must be
  // byte-identical for any worker count.
  tune::TuneRequest request;
  request.m = 640;
  request.n = 384;
  request.k = 8;
  request.backend = Backend::kSimFused;

  std::vector<std::string> dumps;
  for (const int threads : {1, 2, 8}) {
    tune::TuneOptions options;
    options.threads = threads;
    options.rank = tune::RankMode::kModel;
    options.top_k = 3;
    const auto report = tune::tune(request, options);
    EXPECT_EQ(report.rank, tune::RankMode::kModel);
    EXPECT_EQ(report.executed_top_k, 3);
    dumps.push_back(tune::tune_record("best", {report}).dump());
  }
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_EQ(dumps[0], dumps[1]) << "1-thread vs 2-thread model rank diverged";
  EXPECT_EQ(dumps[0], dumps[2]) << "1-thread vs 8-thread model rank diverged";
}

TEST(CostModelTest, ModelRankExecutesOnlyTopKAndAgreesWithExecuteWinner) {
  tune::TuneRequest request;
  request.m = 512;
  request.n = 512;
  request.k = 16;
  request.backend = Backend::kSimFused;

  tune::TuneOptions execute;
  execute.threads = 4;
  const auto truth = tune::tune(request, execute);

  tune::TuneOptions ranked;
  ranked.threads = 4;
  ranked.rank = tune::RankMode::kModel;
  ranked.top_k = 3;
  const auto report = tune::tune(request, ranked);

  std::size_t executed = 0, model_scored = 0;
  for (const auto& m : report.measurements) {
    if (m.executed) ++executed;
    if (m.verdict.viable) {
      EXPECT_GT(m.model_seconds, 0)
          << m.verdict.geometry.to_string()
          << " viable but never scored by the model";
      ++model_scored;
    }
  }
  EXPECT_EQ(executed, std::size_t(report.executed_top_k));
  EXPECT_GE(model_scored, executed);
  // A ≥ 0.9-fidelity model with top-k 3 must shortlist the true winner on
  // the shape the grid was built around.
  EXPECT_EQ(report.best, truth.best)
      << "model shortlist missed the executed winner";
}

}  // namespace
}  // namespace ksum
