#include "workload/weights.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ksum::workload {
namespace {

TEST(WeightsTest, Ones) {
  const Vector w = generate_weights(16, WeightKind::kOnes, Rng(1));
  for (float x : w) EXPECT_EQ(x, 1.0f);
}

TEST(WeightsTest, AlternatingSignsCancel) {
  const Vector w = generate_weights(64, WeightKind::kAlternating, Rng(1));
  float sum = 0;
  for (float x : w) sum += x;
  EXPECT_EQ(sum, 0.0f);
  EXPECT_EQ(w[0], 1.0f);
  EXPECT_EQ(w[1], -1.0f);
}

TEST(WeightsTest, UniformBounded) {
  const Vector w = generate_weights(1000, WeightKind::kUniform, Rng(7));
  for (float x : w) {
    EXPECT_GE(x, -1.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(WeightsTest, TinyIsNearDenormalScale) {
  const Vector w = generate_weights(100, WeightKind::kTiny, Rng(7));
  for (float x : w) {
    EXPECT_LE(std::fabs(x), 1e-30f);
  }
}

TEST(WeightsTest, DeterministicPerRng) {
  const Vector a = generate_weights(32, WeightKind::kUniform, Rng(5));
  const Vector b = generate_weights(32, WeightKind::kUniform, Rng(5));
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(WeightsTest, Names) {
  EXPECT_EQ(to_string(WeightKind::kUniform), "uniform");
  EXPECT_EQ(to_string(WeightKind::kOnes), "ones");
  EXPECT_EQ(to_string(WeightKind::kAlternating), "alternating");
  EXPECT_EQ(to_string(WeightKind::kTiny), "tiny");
}

}  // namespace
}  // namespace ksum::workload
