#include "workload/paper_sweeps.h"

#include <gtest/gtest.h>

namespace ksum::workload {
namespace {

TEST(PaperSweepsTest, DimensionsMatchPaper) {
  EXPECT_EQ(paper_dimensions(), (std::vector<std::size_t>{32, 64, 128, 256}));
}

TEST(PaperSweepsTest, PointCountsAreDoublingFrom1024To524288) {
  const auto& counts = paper_point_counts();
  EXPECT_EQ(counts.front(), 1024u);
  EXPECT_EQ(counts.back(), 524288u);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], counts[i - 1] * 2);
  }
}

TEST(PaperSweepsTest, TableCountsMatchTablesIIandIII) {
  EXPECT_EQ(paper_table_point_counts(),
            (std::vector<std::size_t>{1024, 131072, 524288}));
}

TEST(PaperSweepsTest, FigureSweepCoversFullGrid) {
  const auto sweep = paper_figure_sweep();
  EXPECT_EQ(sweep.size(),
            paper_dimensions().size() * paper_point_counts().size());
  for (const auto& spec : sweep) {
    EXPECT_EQ(spec.n, kPaperN);
    EXPECT_NO_THROW(spec.validate());
  }
}

TEST(PaperSweepsTest, ScaledSweepRespectsCap) {
  const auto sweep = scaled_sweep(4096);
  for (const auto& spec : sweep) {
    EXPECT_LE(spec.m, 4096u);
  }
  // 3 sizes (1024, 2048, 4096) × 4 dimensions.
  EXPECT_EQ(sweep.size(), 12u);
}

TEST(PaperSweepsTest, FlopAccounting) {
  ProblemSpec spec;
  spec.m = 1024;
  spec.n = 1024;
  spec.k = 32;
  EXPECT_DOUBLE_EQ(spec.gemm_flops(), 2.0 * 1024 * 1024 * 32);
  EXPECT_DOUBLE_EQ(spec.bytes_intermediate(), 4.0 * 1024 * 1024);
  EXPECT_GT(spec.total_flops(), spec.gemm_flops());
}

}  // namespace
}  // namespace ksum::workload
