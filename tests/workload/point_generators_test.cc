#include "workload/point_generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ksum::workload {
namespace {

ProblemSpec small_spec(Distribution dist) {
  ProblemSpec spec;
  spec.m = 64;
  spec.n = 48;
  spec.k = 8;
  spec.distribution = dist;
  spec.seed = 1234;
  return spec;
}

TEST(PointGeneratorsTest, ShapesAndLayouts) {
  const auto inst = make_instance(small_spec(Distribution::kUniformCube));
  EXPECT_EQ(inst.a.rows(), 64u);
  EXPECT_EQ(inst.a.cols(), 8u);
  EXPECT_EQ(inst.a.layout(), Layout::kRowMajor);
  EXPECT_EQ(inst.b.rows(), 8u);
  EXPECT_EQ(inst.b.cols(), 48u);
  EXPECT_EQ(inst.b.layout(), Layout::kColMajor);
  EXPECT_EQ(inst.w.size(), 48u);
}

TEST(PointGeneratorsTest, DeterministicForSeed) {
  const auto a = make_instance(small_spec(Distribution::kUniformCube));
  const auto b = make_instance(small_spec(Distribution::kUniformCube));
  for (std::size_t i = 0; i < a.a.size(); ++i) {
    EXPECT_EQ(a.a.data()[i], b.a.data()[i]);
  }
  for (std::size_t i = 0; i < a.w.size(); ++i) {
    EXPECT_EQ(a.w[i], b.w[i]);
  }
}

TEST(PointGeneratorsTest, SeedChangesPoints) {
  auto spec = small_spec(Distribution::kUniformCube);
  const auto a = make_instance(spec);
  spec.seed = 999;
  const auto b = make_instance(spec);
  int same = 0;
  for (std::size_t i = 0; i < a.a.size(); ++i) {
    if (a.a.data()[i] == b.a.data()[i]) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(PointGeneratorsTest, SourcesAndTargetsAreIndependent) {
  const auto inst = make_instance(small_spec(Distribution::kUniformCube));
  // B is not a prefix/copy of A's stream.
  int same = 0;
  for (std::size_t j = 0; j < 8; ++j) {
    if (inst.a.at(0, j) == inst.b.at(j, 0)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(PointGeneratorsTest, UniformCubeInBounds) {
  const auto inst = make_instance(small_spec(Distribution::kUniformCube));
  for (float x : inst.a.span()) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(PointGeneratorsTest, UnitSphereHasUnitNorms) {
  const auto inst = make_instance(small_spec(Distribution::kUnitSphere));
  for (std::size_t i = 0; i < inst.a.rows(); ++i) {
    double n2 = 0;
    for (std::size_t d = 0; d < inst.a.cols(); ++d) {
      n2 += double(inst.a.at(i, d)) * double(inst.a.at(i, d));
    }
    EXPECT_NEAR(n2, 1.0, 1e-5);
  }
}

TEST(PointGeneratorsTest, GridIsDeterministicAndBounded) {
  const auto a = make_instance(small_spec(Distribution::kGrid));
  const auto b = make_instance(small_spec(Distribution::kGrid));
  for (std::size_t i = 0; i < a.a.size(); ++i) {
    EXPECT_EQ(a.a.data()[i], b.a.data()[i]);
    EXPECT_GE(a.a.data()[i], 0.0f);
    EXPECT_LT(a.a.data()[i], 1.0f);
  }
}

TEST(PointGeneratorsTest, MixtureClusters) {
  // Cluster spread is 0.05, centres in [0,1): points should stay within a
  // loose band around the unit cube.
  const auto inst = make_instance(small_spec(Distribution::kGaussianMixture));
  for (float x : inst.a.span()) {
    EXPECT_GT(x, -1.0f);
    EXPECT_LT(x, 2.0f);
  }
}

TEST(PointGeneratorsTest, InvalidSpecThrows) {
  ProblemSpec spec;
  spec.m = 0;
  EXPECT_THROW(make_instance(spec), Error);
  spec = ProblemSpec{};
  spec.bandwidth = 0.0f;
  EXPECT_THROW(make_instance(spec), Error);
}

class DistributionTest : public ::testing::TestWithParam<Distribution> {};

TEST_P(DistributionTest, AllFinite) {
  const auto inst = make_instance(small_spec(GetParam()));
  for (float x : inst.a.span()) EXPECT_TRUE(std::isfinite(x));
  for (float x : inst.b.span()) EXPECT_TRUE(std::isfinite(x));
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionTest,
                         ::testing::Values(Distribution::kUniformCube,
                                           Distribution::kGaussianMixture,
                                           Distribution::kUnitSphere,
                                           Distribution::kGrid));

}  // namespace
}  // namespace ksum::workload
