// Server control plane: admission, deadlines, shedding, degradation,
// warm-device reply identity, and the ksum-serve-v1 stats record.
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "profile/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using profile::Json;

// Collects reply lines; the server serialises sink calls, the mutex makes
// reads from the test thread race-free too.
struct SinkLog {
  std::mutex mutex;
  std::vector<std::string> lines;

  void operator()(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(line);
  }
  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
};

struct Harness {
  serve::ServerOptions options;
  std::shared_ptr<SinkLog> log = std::make_shared<SinkLog>();
  std::unique_ptr<serve::Server> server;

  explicit Harness(serve::ServerOptions opts) : options(opts) {
    auto log_copy = log;
    server = std::make_unique<serve::Server>(
        options,
        [log_copy](const std::string& line) { (*log_copy)(line); });
  }
};

std::string solve_line(const std::string& id, std::size_t m, std::size_t n,
                       std::size_t k, const std::string& extra = "") {
  std::string line = "{\"op\":\"solve\",\"id\":\"";
  line += id;
  line += "\",\"m\":";
  line += std::to_string(m);
  line += ",\"n\":";
  line += std::to_string(n);
  line += ",\"k\":";
  line += std::to_string(k);
  line += extra;
  line += '}';
  return line;
}

// Finds the reply whose id matches; fails the test when absent.
Json reply_for(const std::vector<std::string>& lines, const std::string& id) {
  for (const auto& line : lines) {
    const Json doc = Json::parse(line);
    if (doc.has("id") && doc.at("id").is_string() &&
        doc.at("id").as_string() == id) {
      return doc;
    }
  }
  ADD_FAILURE() << "no reply for id " << id;
  return Json::object();
}

TEST(Server, SolveReplyMatchesSingleShotSolve) {
  serve::ServerOptions opts;
  opts.workers = 2;
  Harness h(opts);
  h.server->start();
  h.server->handle_line(solve_line("r1", 128, 128, 8, ",\"robust\":false"));
  h.server->drain();

  const auto lines = h.log->snapshot();
  ASSERT_EQ(lines.size(), 1u);
  const Json reply = reply_for(lines, "r1");
  EXPECT_EQ(reply.at("status").as_string(), "ok");

  // Single-shot oracle: the same request through the library directly.
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  const auto instance = workload::make_instance(spec);
  const auto result = pipelines::solve(
      instance, core::params_from_spec(spec), pipelines::Backend::kSimFused);
  EXPECT_EQ(reply.at("digest").as_string(),
            serve::digest_hex(result.v.span()));
  ASSERT_TRUE(result.report.has_value());
  EXPECT_EQ(reply.at("modelled_ms").as_double(),
            result.report->seconds * 1e3);
  EXPECT_FALSE(reply.at("degraded").as_bool());
  EXPECT_EQ(reply.at("serve_attempts").as_double(), 1);
}

TEST(Server, WarmDeviceRepliesAreByteIdentical) {
  serve::ServerOptions opts;
  opts.workers = 1;  // same worker serves both → second run is warm
  Harness h(opts);
  h.server->start();
  h.server->handle_line(solve_line("a", 128, 128, 8));
  h.server->handle_line(solve_line("b", 256, 128, 8));  // grows the device
  h.server->handle_line(solve_line("c", 128, 128, 8));  // warm re-run of "a"
  h.server->drain();

  const auto lines = h.log->snapshot();
  ASSERT_EQ(lines.size(), 3u);
  // Byte-identical apart from the echoed id: rewrite "a" → "c" and compare
  // the raw reply lines.
  std::string first = lines[0];
  const std::string needle = "\"id\":\"a\"";
  const std::size_t pos = first.find(needle);
  ASSERT_NE(pos, std::string::npos);
  first.replace(pos, needle.size(), "\"id\":\"c\"");
  EXPECT_EQ(first, lines[2]);
}

TEST(Server, HealthStatsAndTaxonomyAtIntake) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.max_m = 512;
  Harness h(opts);
  h.server->start();
  h.server->handle_line(R"({"op":"health","id":"h"})");
  h.server->handle_line("garbage");
  h.server->handle_line(solve_line("big", 4096, 128, 8));  // beyond max_m
  h.server->handle_line("");              // ignored
  h.server->handle_line("# a comment");   // ignored
  h.server->handle_line(R"({"op":"stats","id":"s"})");
  h.server->drain();

  const auto lines = h.log->snapshot();
  ASSERT_EQ(lines.size(), 4u);
  const Json health = reply_for(lines, "h");
  EXPECT_EQ(health.at("op").as_string(), "health");
  EXPECT_EQ(health.at("state").as_string(), "serving");
  EXPECT_EQ(health.at("workers").as_double(), 1);

  const Json bad = Json::parse(lines[1]);
  EXPECT_EQ(bad.at("status").as_string(), "invalid");
  EXPECT_EQ(bad.at("id").as_string(), "");

  const Json big = reply_for(lines, "big");
  EXPECT_EQ(big.at("status").as_string(), "invalid");

  const Json stats = reply_for(lines, "s");
  const Json& record = stats.at("stats");
  EXPECT_NO_THROW(serve::validate_serve_json(record));
  EXPECT_EQ(record.at("counters").at("invalid").as_double(), 2);
  EXPECT_EQ(record.at("counters").at("received").as_double(), 4);
}

TEST(Server, TinyDeadlineTimesOutWithoutOutput) {
  serve::ServerOptions opts;
  opts.workers = 1;
  Harness h(opts);
  h.server->start();
  h.server->handle_line(
      solve_line("t", 128, 128, 8, ",\"deadline_ms\":0.000001"));
  h.server->drain();

  const auto lines = h.log->snapshot();
  ASSERT_EQ(lines.size(), 1u);
  const Json reply = reply_for(lines, "t");
  EXPECT_EQ(reply.at("status").as_string(), "timeout");
  EXPECT_FALSE(reply.has("digest"));  // a cancelled request has no output
  EXPECT_EQ(h.server->stats().by_status(StatusCode::kTimeout), 1u);
}

TEST(Server, PausedBurstShedsDeterministically) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  Harness h(opts);
  // No start() yet: the queue fills synchronously, so exactly
  // burst - capacity requests shed, regardless of machine speed.
  for (int i = 0; i < 5; ++i) {
    std::string id = "q";
    id += std::to_string(i);
    h.server->handle_line(solve_line(id, 128, 128, 8));
  }
  EXPECT_EQ(h.log->snapshot().size(), 3u);  // 3 overloaded replies already
  for (const auto& line : h.log->snapshot()) {
    EXPECT_EQ(Json::parse(line).at("status").as_string(), "overloaded");
  }
  EXPECT_EQ(h.server->stats().by_status(StatusCode::kOverloaded), 3u);

  h.server->start();
  h.server->drain();
  EXPECT_EQ(h.log->snapshot().size(), 5u);
  EXPECT_EQ(h.server->stats().by_status(StatusCode::kOk), 2u);

  // After drain, new solves are refused as overloaded (draining), but
  // health still answers and reports the draining state.
  h.server->handle_line(solve_line("late", 128, 128, 8));
  h.server->handle_line(R"({"op":"health","id":"h2"})");
  const auto lines = h.log->snapshot();
  EXPECT_EQ(reply_for(lines, "late").at("status").as_string(), "overloaded");
  EXPECT_EQ(reply_for(lines, "h2").at("state").as_string(), "draining");
}

TEST(Server, UnrecoverableFaultsDegradeToHostByDefault) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.max_attempts = 2;
  Harness h(opts);
  h.server->start();
  // fault_rate=0.5 with this seed keeps every attempt flagged (verified
  // deterministic), so the request lands in the degraded host path.
  h.server->handle_line(solve_line(
      "d", 128, 128, 8, ",\"fault_rate\":0.5,\"fault_seed\":5"));
  h.server->drain();

  const auto lines = h.log->snapshot();
  ASSERT_EQ(lines.size(), 1u);
  const Json reply = reply_for(lines, "d");
  ASSERT_EQ(reply.at("status").as_string(), "ok");
  EXPECT_TRUE(reply.at("degraded").as_bool());
  EXPECT_EQ(reply.at("backend").as_string(), "cpu-expansion");
  EXPECT_EQ(h.server->stats().degraded(), 1u);
  EXPECT_EQ(h.server->stats().retries(), 1u);  // max_attempts - 1

  // The degraded digest is the host expansion result for this instance.
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  const auto instance = workload::make_instance(spec);
  const auto host = pipelines::solve(instance, core::params_from_spec(spec),
                                     pipelines::Backend::kCpuExpansion);
  EXPECT_EQ(reply.at("digest").as_string(),
            serve::digest_hex(host.v.span()));
}

TEST(Server, NoDegradeReportsFaultUnrecovered) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.max_attempts = 2;
  opts.degrade_to_host = false;
  Harness h(opts);
  h.server->start();
  h.server->handle_line(solve_line(
      "u", 128, 128, 8, ",\"fault_rate\":0.5,\"fault_seed\":5"));
  h.server->drain();

  const auto lines = h.log->snapshot();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(reply_for(lines, "u").at("status").as_string(),
            "fault_unrecovered");
  EXPECT_EQ(h.server->stats().by_status(StatusCode::kFaultUnrecovered), 1u);
  EXPECT_EQ(h.server->stats().degraded(), 0u);
}

TEST(Server, StatsRecordStaysConsistent) {
  serve::ServerOptions opts;
  opts.workers = 2;
  Harness h(opts);
  h.server->start();
  h.server->handle_line(solve_line("x", 128, 128, 8));
  h.server->handle_line("broken json");
  h.server->handle_line(
      solve_line("y", 128, 128, 8, ",\"deadline_ms\":0.000001"));
  h.server->drain();

  const Json record = h.server->stats_json();
  EXPECT_NO_THROW(serve::validate_serve_json(record));
  const Json& counters = record.at("counters");
  EXPECT_EQ(counters.at("completed").as_double(), 3);
  EXPECT_EQ(counters.at("ok").as_double(), 1);
  EXPECT_EQ(counters.at("invalid").as_double(), 1);
  EXPECT_EQ(counters.at("timeout").as_double(), 1);
  // One ok reply → one modelled-latency sample; wall samples cover the two
  // requests that reached a worker.
  EXPECT_EQ(record.at("latency_ms").at("modelled").at("count").as_double(),
            1);
  EXPECT_EQ(record.at("latency_ms").at("wall").at("count").as_double(), 2);
}

TEST(Server, OversizedShapeShardsWhenAllowed) {
  // max_shards turns the PR 6 "invalid" path into shard routing: a shape
  // over max_m comes back ok, carries the shards field, and its digest is
  // exactly the digest of a direct (unbounded) solve — sharding is
  // bit-invisible (docs/SHARDING.md).
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.max_m = 512;
  opts.max_shards = 4;
  Harness h(opts);
  h.server->start();
  h.server->handle_line(solve_line("wide", 1000, 128, 8));
  h.server->drain();

  const Json reply = reply_for(h.log->snapshot(), "wide");
  ASSERT_EQ(reply.at("status").as_string(), "ok");
  EXPECT_EQ(reply.at("shards").as_double(), 2);  // ceil(8 blocks / 4) * 128

  workload::ProblemSpec spec;
  spec.m = 1000;
  spec.n = 128;
  spec.k = 8;
  const auto instance = workload::make_instance(spec);
  const auto direct = pipelines::solve(
      instance, core::params_from_spec(spec), pipelines::Backend::kSimFused);
  EXPECT_EQ(reply.at("digest").as_string(),
            serve::digest_hex(direct.v.span()));
}

TEST(Server, InBoundsRepliesOmitShardsField) {
  // The shards field only appears on sharded replies, so in-bounds traffic
  // is byte-identical to the pre-sharding protocol (the goldens in
  // tests/cli/serve_smoke.jsonl pin this too).
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.max_shards = 4;
  Harness h(opts);
  h.server->start();
  h.server->handle_line(solve_line("small", 128, 128, 8));
  h.server->drain();
  const Json reply = reply_for(h.log->snapshot(), "small");
  EXPECT_EQ(reply.at("status").as_string(), "ok");
  EXPECT_FALSE(reply.has("shards"));
}

TEST(Server, ShedVsShardBoundary) {
  // Exactly at the admission boundary: a shape needing <= max_shards
  // shards is admitted, one shard past it is shed — and the shapes that
  // never shard (K oversized, both axes oversized, host backend, N axis on
  // an unfused backend) stay invalid whatever max_shards says.
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.max_m = 256;   // 2 blocks
  opts.max_n = 256;
  opts.max_shards = 2;
  Harness h(opts);
  h.server->start();
  // 512 rows = 4 blocks → 2 shards of 256: admitted.
  h.server->handle_line(solve_line("fits", 512, 128, 8));
  // 640 rows = 5 blocks → needs 3 shards: shed.
  h.server->handle_line(solve_line("past", 640, 128, 8));
  // K never shards.
  h.server->handle_line(solve_line("deep", 128, 128, 512));
  // Oversized on both axes never shards.
  h.server->handle_line(solve_line("both", 512, 512, 8));
  // Host backends never shard.
  h.server->handle_line(
      solve_line("host", 512, 128, 8, ",\"backend\":\"cpu-direct\""));
  // N-axis sharding requires the fused backend.
  h.server->handle_line(
      solve_line("ncol", 128, 512, 8, ",\"backend\":\"sim-cublas-unfused\""));
  // N-axis on the fused backend shards fine.
  h.server->handle_line(solve_line("nok", 128, 512, 8));
  h.server->drain();

  const auto lines = h.log->snapshot();
  EXPECT_EQ(reply_for(lines, "fits").at("status").as_string(), "ok");
  EXPECT_EQ(reply_for(lines, "fits").at("shards").as_double(), 2);
  EXPECT_EQ(reply_for(lines, "past").at("status").as_string(), "invalid");
  EXPECT_EQ(reply_for(lines, "deep").at("status").as_string(), "invalid");
  EXPECT_EQ(reply_for(lines, "both").at("status").as_string(), "invalid");
  EXPECT_EQ(reply_for(lines, "host").at("status").as_string(), "invalid");
  EXPECT_EQ(reply_for(lines, "ncol").at("status").as_string(), "invalid");
  EXPECT_EQ(reply_for(lines, "nok").at("status").as_string(), "ok");
  EXPECT_EQ(reply_for(lines, "nok").at("shards").as_double(), 2);
}

TEST(Server, ShardedRequestWithFaultsStillRecovers) {
  // fault_rate on a sharded request routes through the per-(shard,
  // dispatch) injector factory instead of a single plan; the reply must
  // still be ok and reproducible.
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.max_m = 256;
  opts.max_shards = 4;
  Harness h(opts);
  h.server->start();
  const std::string line = solve_line(
      "faulty", 600, 128, 8, ",\"fault_rate\":0.005,\"fault_seed\":11");
  h.server->handle_line(line);
  h.server->drain();
  const Json reply = reply_for(h.log->snapshot(), "faulty");
  ASSERT_EQ(reply.at("status").as_string(), "ok");
  EXPECT_EQ(reply.at("shards").as_double(), 3);  // 5 blocks over 2-block cap

  // Same request again on a fresh server: byte-identical reply.
  Harness h2(opts);
  h2.server->start();
  h2.server->handle_line(line);
  h2.server->drain();
  const auto lines2 = h2.log->snapshot();
  ASSERT_EQ(lines2.size(), 1u);
  EXPECT_EQ(lines2[0], h.log->snapshot()[0]);
}

TEST(ServeStats, PercentilesUseNearestRank) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(double(i));
  EXPECT_EQ(serve::percentile(sample, 50), 50);
  EXPECT_EQ(serve::percentile(sample, 99), 99);
  EXPECT_EQ(serve::percentile(sample, 100), 100);
  EXPECT_EQ(serve::percentile({5.0}, 50), 5.0);
  EXPECT_EQ(serve::percentile({}, 99), 0.0);
}

}  // namespace
}  // namespace ksum
