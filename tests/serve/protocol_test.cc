// Wire-protocol grammar: request parsing, reply building, digests, and the
// status taxonomy spellings.
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/status.h"
#include "profile/json.h"
#include "serve/protocol.h"

namespace ksum {
namespace {

using serve::Op;
using serve::ServeRequest;

TEST(StatusCode, SpellingsRoundTrip) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalid, StatusCode::kTimeout,
        StatusCode::kOverloaded, StatusCode::kFaultUnrecovered,
        StatusCode::kInternal}) {
    const auto parsed = parse_status_code(to_string(code));
    ASSERT_TRUE(parsed.has_value()) << to_string(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_status_code("bogus").has_value());
  EXPECT_FALSE(parse_status_code("").has_value());
}

TEST(ParseRequest, SolveDefaults) {
  const ServeRequest r = serve::parse_request(
      R"({"op":"solve","id":"r1","m":256,"n":128,"k":8})");
  EXPECT_EQ(r.op, Op::kSolve);
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.spec.m, 256u);
  EXPECT_EQ(r.spec.n, 128u);
  EXPECT_EQ(r.spec.k, 8u);
  EXPECT_EQ(r.spec.seed, 42u);
  EXPECT_EQ(r.backend, pipelines::Backend::kSimFused);
  EXPECT_TRUE(r.robust);
  EXPECT_FALSE(r.verify);
  EXPECT_LT(r.deadline_ms, 0);  // server default
  EXPECT_EQ(r.fault_rate, 0.0);
}

TEST(ParseRequest, AllFields) {
  const ServeRequest r = serve::parse_request(
      R"({"op":"solve","id":7,"m":64,"n":64,"k":16,"seed":9,"h":0.5,)"
      R"("backend":"sim-cublas-unfused","robust":false,"verify":true,)"
      R"("deadline_ms":25,"fault_rate":0.5,"fault_seed":11})");
  EXPECT_EQ(r.id, "7");  // numeric ids are normalised to their JSON text
  EXPECT_EQ(r.spec.seed, 9u);
  EXPECT_FLOAT_EQ(r.spec.bandwidth, 0.5f);
  EXPECT_EQ(r.backend, pipelines::Backend::kSimCublasUnfused);
  EXPECT_FALSE(r.robust);
  EXPECT_TRUE(r.verify);
  EXPECT_EQ(r.deadline_ms, 25.0);
  EXPECT_EQ(r.fault_rate, 0.5);
  EXPECT_EQ(r.fault_seed, 11u);
}

TEST(ParseRequest, HealthAndStatsIgnoreShape) {
  EXPECT_EQ(serve::parse_request(R"({"op":"health"})").op, Op::kHealth);
  EXPECT_EQ(serve::parse_request(R"({"op":"stats","id":"s"})").op,
            Op::kStats);
}

TEST(ParseRequest, DefaultOpIsSolve) {
  const ServeRequest r =
      serve::parse_request(R"({"m":64,"n":64,"k":8})");
  EXPECT_EQ(r.op, Op::kSolve);
  EXPECT_TRUE(r.id.empty());
}

TEST(ParseRequest, Rejections) {
  // Malformed JSON, wrong root, unknown op/backend, missing or bad fields:
  // all ksum::Error → the server's `invalid` bucket.
  EXPECT_THROW(serve::parse_request("not json"), Error);
  EXPECT_THROW(serve::parse_request("[1,2]"), Error);
  EXPECT_THROW(serve::parse_request(R"({"op":"fry"})"), Error);
  EXPECT_THROW(serve::parse_request(R"({"m":64,"n":64})"), Error);
  EXPECT_THROW(serve::parse_request(R"({"m":0,"n":64,"k":8})"), Error);
  EXPECT_THROW(serve::parse_request(R"({"m":1.5,"n":64,"k":8})"), Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"backend":"gpu"})"),
      Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"fault_rate":1.5})"),
      Error);
  EXPECT_THROW(serve::parse_request(R"({"m":64,"n":64,"k":8,"h":0})"),
               Error);
  EXPECT_THROW(serve::parse_request(R"({"m":64,"n":64,"k":8,"id":true})"),
               Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"robust":"yes"})"),
      Error);
}

TEST(ParseRequest, RejectsUnrepresentableNumbers) {
  // Values outside uint64 range (or negative, or fractional) must be
  // rejected by the range check before any double→integer cast runs —
  // the cast itself is UB on out-of-range input.
  EXPECT_THROW(serve::parse_request(R"({"m":1e300,"n":64,"k":8})"), Error);
  EXPECT_THROW(serve::parse_request(R"({"m":-64,"n":64,"k":8})"), Error);
  EXPECT_THROW(serve::parse_request(R"({"m":1.9e19,"n":64,"k":8})"), Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"seed":-1})"), Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"seed":1e300})"), Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"seed":1.5})"), Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"fault_seed":-2})"),
      Error);
  EXPECT_THROW(
      serve::parse_request(R"({"m":64,"n":64,"k":8,"fault_seed":1e300})"),
      Error);
  // Boundary sanity: a large-but-representable integer still parses.
  const ServeRequest ok = serve::parse_request(
      R"({"m":64,"n":64,"k":8,"seed":9007199254740992})");  // 2^53
  EXPECT_EQ(ok.spec.seed, 9007199254740992ull);
}

TEST(EffectiveFaultSeed, ExplicitWinsDerivedIsStable) {
  ServeRequest r;
  r.id = "req-1";
  r.fault_seed = 123;
  EXPECT_EQ(serve::effective_fault_seed(r), 123u);
  r.fault_seed = 0;
  const std::uint64_t derived = serve::effective_fault_seed(r);
  EXPECT_NE(derived, 0u);
  EXPECT_EQ(derived, serve::effective_fault_seed(r));  // pure function
  ServeRequest other = r;
  other.id = "req-2";
  EXPECT_NE(serve::effective_fault_seed(other), derived);
}

TEST(Digest, SensitiveToEveryBit) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  const std::string base = serve::digest_hex(v);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, serve::digest_hex(v));
  v[1] = std::nextafter(2.0f, 3.0f);  // one ulp
  EXPECT_NE(base, serve::digest_hex(v));
  EXPECT_NE(serve::digest_hex(std::vector<float>{}),
            serve::digest_hex(std::vector<float>{0.0f}));
}

TEST(Replies, ErrorReplyParsesBack) {
  const std::string line =
      serve::error_reply("r9", StatusCode::kOverloaded, "queue full");
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto doc = profile::Json::parse(line);
  EXPECT_EQ(doc.at("id").as_string(), "r9");
  EXPECT_EQ(doc.at("status").as_string(), "overloaded");
  EXPECT_EQ(doc.at("error").as_string(), "queue full");
}

TEST(Replies, SolveReplyCarriesPayload) {
  ServeRequest request;
  request.id = "r1";
  request.spec.m = 64;
  request.spec.n = 32;
  request.spec.k = 8;
  serve::SolveReplyInfo info;
  info.serve_attempts = 2;
  info.solver_attempts = 4;
  info.faults_detected = 3;
  info.degraded = true;
  info.backend = pipelines::Backend::kCpuExpansion;
  const std::vector<float> v = {1.5f, -2.25f};
  const std::string line = serve::solve_reply("r1", request, info, v);
  const auto doc = profile::Json::parse(line);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  EXPECT_EQ(doc.at("m").as_double(), 64);
  EXPECT_EQ(doc.at("backend").as_string(), "cpu-expansion");
  EXPECT_EQ(doc.at("serve_attempts").as_double(), 2);
  EXPECT_EQ(doc.at("solver_attempts").as_double(), 4);
  EXPECT_EQ(doc.at("faults_detected").as_double(), 3);
  EXPECT_TRUE(doc.at("degraded").as_bool());
  EXPECT_EQ(doc.at("digest").as_string(), serve::digest_hex(v));
}

}  // namespace
}  // namespace ksum
