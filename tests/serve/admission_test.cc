// BoundedQueue: shed-on-full, refuse-after-close, drain-then-exit.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "serve/admission.h"

namespace ksum {
namespace {

using serve::BoundedQueue;
using serve::PushResult;

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), Error);
}

TEST(BoundedQueue, ShedsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), PushResult::kAccepted);
  EXPECT_EQ(queue.try_push(2), PushResult::kAccepted);
  EXPECT_EQ(queue.try_push(3), PushResult::kShed);
  EXPECT_EQ(queue.depth(), 2u);
  // Popping frees a slot again.
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.try_push(4), PushResult::kAccepted);
}

TEST(BoundedQueue, CloseRefusesNewButDrainsOld) {
  BoundedQueue<int> queue(4);
  ASSERT_EQ(queue.try_push(1), PushResult::kAccepted);
  ASSERT_EQ(queue.try_push(2), PushResult::kAccepted);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.try_push(3), PushResult::kClosed);
  // Already-admitted items still come out, in order, then nullopt.
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // idempotent
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(1);
  std::vector<std::thread> consumers;
  std::atomic<int> exited{0};
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      exited.fetch_add(1);
    });
  }
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(exited.load(), 3);
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  BoundedQueue<int> queue(64);
  constexpr int kItems = 500;
  std::atomic<int> accepted{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (int i = p; i < kItems; i += 4) {
        // Spin until admitted: this test is about conservation, not
        // shedding.
        while (queue.try_push(i) != PushResult::kAccepted) {
          std::this_thread::yield();
        }
        accepted.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(accepted.load(), kItems);
  EXPECT_EQ(consumed.load(), kItems);
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace ksum
