// Socket transport integration: real AF_UNIX connections through
// run_unix_socket. Regression focus: accepting a connection while others
// are live must not index pollfd slots that were never polled (the drain
// loop walks the pre-accept snapshot only), and replies fan out to every
// connection that is open when the reply is produced.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "profile/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace ksum {
namespace {

using profile::Json;

std::string test_socket_path(const char* tag) {
  return "/tmp/ksum-transport-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

// Connects to the daemon's socket, retrying while the listener binds.
int connect_client(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) break;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      // Bound receive so a missing reply fails the test instead of hanging.
      timeval timeout = {};
      timeout.tv_sec = 30;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

void send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

// Reads one newline-terminated line; empty string on timeout/close.
std::string read_line(int fd, std::string& carry) {
  while (true) {
    const std::size_t nl = carry.find('\n');
    if (nl != std::string::npos) {
      const std::string line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return "";
    carry.append(chunk, static_cast<std::size_t>(n));
  }
}

// Reads lines until one parses with the given id (replies fan out to every
// connection, so a client may see its neighbours' replies first).
Json read_reply_for(int fd, std::string& carry, const std::string& id) {
  for (int i = 0; i < 256; ++i) {
    const std::string line = read_line(fd, carry);
    if (line.empty()) break;
    const Json doc = Json::parse(line);
    if (doc.has("id") && doc.at("id").is_string() &&
        doc.at("id").as_string() == id) {
      return doc;
    }
  }
  ADD_FAILURE() << "no reply for id " << id;
  return Json::object();
}

TEST(ServeTransport, AcceptWhileServingThenDrain) {
  serve::reset_shutdown();
  const std::string path = test_socket_path("accept");

  serve::ReplyHub hub;
  serve::ServerOptions options;
  options.workers = 2;
  serve::Server server(options,
                       [&hub](const std::string& line) { hub.deliver(line); });
  std::thread transport(
      [&] { serve::run_unix_socket(server, hub, path); });

  const int a = connect_client(path);
  ASSERT_GE(a, 0);
  std::string carry_a;
  send_line(a, R"({"op":"health","id":"h1"})");
  const Json health = read_reply_for(a, carry_a, "h1");
  EXPECT_EQ(health.at("state").as_string(), "serving");

  // Second connection arrives while the first is live: with the old
  // indexing this accept read one pollfd past the end on every loop turn.
  const int b = connect_client(path);
  ASSERT_GE(b, 0);
  std::string carry_b;
  send_line(b, R"({"op":"solve","id":"s1","m":64,"n":32,"k":8})");
  const Json solve_b = read_reply_for(b, carry_b, "s1");
  EXPECT_EQ(solve_b.at("status").as_string(), "ok");

  // The first connection still works after the accept, and an identical
  // request digests identically (replies are a pure function of requests).
  send_line(a, R"({"op":"solve","id":"s2","m":64,"n":32,"k":8})");
  const Json solve_a = read_reply_for(a, carry_a, "s2");
  EXPECT_EQ(solve_a.at("status").as_string(), "ok");
  EXPECT_EQ(solve_a.at("digest").as_string(),
            solve_b.at("digest").as_string());

  ::close(a);
  ::close(b);
  serve::request_shutdown();
  transport.join();
  serve::reset_shutdown();
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // socket file removed
}

TEST(ServeTransport, ManyConnectionsInterleaved) {
  serve::reset_shutdown();
  const std::string path = test_socket_path("many");

  serve::ReplyHub hub;
  serve::ServerOptions options;
  options.workers = 2;
  serve::Server server(options,
                       [&hub](const std::string& line) { hub.deliver(line); });
  std::thread transport(
      [&] { serve::run_unix_socket(server, hub, path); });

  // Each round opens a fresh connection while all previous ones stay open
  // and mid-conversation, churning the accept/drain bookkeeping.
  std::vector<int> fds;
  std::vector<std::string> carries;
  std::string digest;
  for (int round = 0; round < 5; ++round) {
    const int fd = connect_client(path);
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
    carries.emplace_back();
    const std::string id = "r" + std::to_string(round);
    send_line(fd, "{\"op\":\"solve\",\"id\":\"" + id +
                      "\",\"m\":48,\"n\":48,\"k\":8}");
    const Json reply = read_reply_for(fd, carries.back(), id);
    ASSERT_EQ(reply.at("status").as_string(), "ok");
    if (round == 0) {
      digest = reply.at("digest").as_string();
    } else {
      EXPECT_EQ(reply.at("digest").as_string(), digest);
    }
  }
  for (const int fd : fds) ::close(fd);
  serve::request_shutdown();
  transport.join();
  serve::reset_shutdown();
}

}  // namespace
}  // namespace ksum
