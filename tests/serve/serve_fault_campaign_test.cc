// Serve-mode fault campaign: a seeded per-request FaultPlan trace run at
// 1, 2, and 8 workers must produce byte-identical reply sets, and every
// reply must match a single-thread oracle that replays the serve-level
// attempt loop via the public attempt_fault_seed contract.
#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "profile/json.h"
#include "robust/fault_plan.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

using profile::Json;

struct TraceEntry {
  std::string id;
  std::size_t m, n, k;
  double fault_rate;
  std::uint64_t fault_seed;
};

// Mixed shapes (aligned and ragged), explicit per-request fault seeds, a
// mostly-light fault mix plus one heavy request that should defeat recovery.
std::vector<TraceEntry> campaign_trace() {
  return {
      {"t00", 128, 128, 8, 0.0, 1},    {"t01", 256, 128, 8, 0.0, 2},
      {"t02", 100, 90, 8, 0.0, 3},     {"t03", 128, 256, 16, 0.0, 4},
      {"t04", 128, 128, 8, 0.01, 11},  {"t05", 256, 128, 8, 0.01, 12},
      {"t06", 100, 90, 8, 0.02, 13},   {"t07", 128, 256, 16, 0.01, 14},
      {"t08", 128, 128, 8, 0.05, 21},  {"t09", 256, 256, 8, 0.02, 22},
      {"t10", 128, 128, 8, 0.5, 5},    {"t11", 100, 90, 8, 0.01, 32},
  };
}

std::string trace_line(const TraceEntry& e) {
  Json j = Json::object();
  j.set("op", "solve");
  j.set("id", e.id);
  j.set("m", std::uint64_t(e.m));
  j.set("n", std::uint64_t(e.n));
  j.set("k", std::uint64_t(e.k));
  if (e.fault_rate > 0) {
    j.set("fault_rate", e.fault_rate);
    j.set("fault_seed", e.fault_seed);
  }
  return j.dump_compact();
}

serve::ServerOptions campaign_options(int workers) {
  serve::ServerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 64;  // >= trace size: nothing sheds
  opts.max_attempts = 2;
  opts.degrade_to_host = false;  // unrecovered requests must say so
  return opts;
}

struct CampaignRun {
  std::vector<std::string> replies;  // sorted
  std::uint64_t ok = 0, unrecovered = 0, retries = 0;
};

CampaignRun run_campaign(int workers) {
  auto lines = std::make_shared<std::vector<std::string>>();
  auto mutex = std::make_shared<std::mutex>();
  serve::Server server(campaign_options(workers),
                       [lines, mutex](const std::string& line) {
                         std::lock_guard<std::mutex> lock(*mutex);
                         lines->push_back(line);
                       });
  server.start();
  for (const auto& entry : campaign_trace()) {
    server.handle_line(trace_line(entry));
  }
  server.drain();

  CampaignRun run;
  run.replies = *lines;
  std::sort(run.replies.begin(), run.replies.end());
  run.ok = server.stats().by_status(StatusCode::kOk);
  run.unrecovered = server.stats().by_status(StatusCode::kFaultUnrecovered);
  run.retries = server.stats().retries();
  return run;
}

struct Expected {
  StatusCode status = StatusCode::kOk;
  std::string digest;  // only for ok
};

// Single-thread oracle: replays the server's attempt loop for one request —
// same robust run options, same per-attempt fault-plan seeds — without any
// Server machinery. The serving contract is that the daemon's reply is a
// pure function of the request, so this must predict it exactly.
Expected oracle_outcome(const TraceEntry& e, int max_attempts) {
  workload::ProblemSpec spec;
  spec.m = e.m;
  spec.n = e.n;
  spec.k = e.k;
  const auto instance = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);

  pipelines::RunOptions run;
  run.checks.enabled = true;
  run.recovery.enabled = true;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::unique_ptr<robust::FaultPlan> plan;
    if (e.fault_rate > 0) {
      plan = std::make_unique<robust::FaultPlan>(
          robust::FaultPlanConfig::uniform(
              serve::attempt_fault_seed(e.fault_seed, attempt),
              e.fault_rate));
      run.fault_injector = plan.get();
    }
    const auto result = pipelines::solve(
        instance, params, pipelines::Backend::kSimFused, run);
    run.fault_injector = nullptr;
    if (!result.recovery.gave_up) {
      return {StatusCode::kOk, serve::digest_hex(result.v.span())};
    }
  }
  return {StatusCode::kFaultUnrecovered, ""};
}

TEST(ServeFaultCampaign, RepliesAreByteIdenticalAcrossWorkerCounts) {
  const CampaignRun one = run_campaign(1);
  const CampaignRun two = run_campaign(2);
  const CampaignRun eight = run_campaign(8);

  ASSERT_EQ(one.replies.size(), campaign_trace().size());
  EXPECT_EQ(one.replies, two.replies);
  EXPECT_EQ(one.replies, eight.replies);

  // The counters are part of the determinism contract too: retries and
  // per-status totals depend only on the request stream.
  EXPECT_EQ(one.ok, two.ok);
  EXPECT_EQ(one.ok, eight.ok);
  EXPECT_EQ(one.unrecovered, two.unrecovered);
  EXPECT_EQ(one.unrecovered, eight.unrecovered);
  EXPECT_EQ(one.retries, two.retries);
  EXPECT_EQ(one.retries, eight.retries);
  EXPECT_EQ(one.ok + one.unrecovered, campaign_trace().size());
}

TEST(ServeFaultCampaign, OraclePredictsEveryReply) {
  const auto trace = campaign_trace();
  const CampaignRun run = run_campaign(2);
  ASSERT_EQ(run.replies.size(), trace.size());

  std::map<std::string, Json> by_id;
  for (const auto& line : run.replies) {
    Json doc = Json::parse(line);
    by_id.emplace(doc.at("id").as_string(), std::move(doc));
  }

  std::uint64_t predicted_unrecovered = 0;
  for (const auto& entry : trace) {
    SCOPED_TRACE(entry.id);
    const Expected expected = oracle_outcome(entry, /*max_attempts=*/2);
    const auto it = by_id.find(entry.id);
    ASSERT_NE(it, by_id.end());
    const Json& reply = it->second;
    EXPECT_EQ(reply.at("status").as_string(), to_string(expected.status));
    if (expected.status == StatusCode::kOk) {
      EXPECT_EQ(reply.at("digest").as_string(), expected.digest);
    } else {
      ++predicted_unrecovered;
      EXPECT_FALSE(reply.has("digest"));
    }
  }
  // Correct fault_unrecovered accounting: the daemon's counter equals the
  // oracle's prediction, and t10 — engineered to keep every attempt
  // flagged — proves the unrecovered path is actually exercised.
  EXPECT_EQ(run.unrecovered, predicted_unrecovered);
  EXPECT_EQ(by_id.at("t10").at("status").as_string(),
            to_string(StatusCode::kFaultUnrecovered));
}

}  // namespace
}  // namespace ksum
