// pipelines::solve_many contract tests: batched results are bit-identical
// to sequential pipelines::solve calls, per-request failures are captured
// without sinking the batch, injector-carrying requests are rejected, and
// the --batch CSV parser handles headers, comments, optional columns, and
// malformed rows. Thread-count invariance has its own suite
// (thread_invariance_test.cc).
#include "pipelines/batch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/exact.h"
#include "robust/fault_plan.h"

namespace ksum::pipelines {
namespace {

BatchRequest make_request(std::size_t m, std::size_t n, std::size_t k,
                          std::uint64_t seed) {
  BatchRequest request;
  request.spec.m = m;
  request.spec.n = n;
  request.spec.k = k;
  request.spec.seed = seed;
  request.params = core::params_from_spec(request.spec);
  return request;
}

void expect_bit_identical(const SolveResult& got, const SolveResult& want,
                          const std::string& what) {
  ASSERT_EQ(got.v.size(), want.v.size()) << what;
  EXPECT_EQ(std::memcmp(got.v.data(), want.v.data(),
                        want.v.size() * sizeof(float)),
            0)
      << what << ": batched V differs from sequential solve";
  ASSERT_EQ(got.report.has_value(), want.report.has_value()) << what;
  if (want.report) {
    EXPECT_TRUE(got.report->total == want.report->total)
        << what << ": counters differ";
    EXPECT_EQ(got.report->seconds, want.report->seconds) << what;
    EXPECT_EQ(got.report->energy.total(), want.report->energy.total())
        << what;
  }
  EXPECT_EQ(got.recovery.attempts, want.recovery.attempts) << what;
  EXPECT_EQ(got.recovery.faults_detected, want.recovery.faults_detected)
      << what;
}

TEST(BatchTest, MatchesSequentialSolveBitIdentically) {
  std::vector<BatchRequest> requests = {
      make_request(129, 200, 9, 7),
      make_request(127, 127, 8, 11),
      make_request(200, 129, 16, 13),
  };
  requests[1].backend = Backend::kSimCublasUnfused;

  BatchOptions options;
  options.threads = 4;
  const auto results = solve_many(requests, options);
  ASSERT_EQ(results.size(), requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto instance = workload::make_instance(requests[i].spec);
    const auto want = solve(instance, requests[i].params,
                            requests[i].backend, requests[i].options);
    EXPECT_EQ(results[i].index, i);
    EXPECT_TRUE(results[i].ok) << results[i].error;
    EXPECT_EQ(results[i].status, StatusCode::kOk);
    EXPECT_TRUE(results[i].error.empty()) << results[i].error;
    expect_bit_identical(results[i].solve, want,
                         "request " + std::to_string(i));
  }
}

TEST(BatchTest, VerifyChecksAgainstTheHostOracle) {
  std::vector<BatchRequest> requests = {make_request(128, 128, 8, 3)};
  requests[0].verify = true;
  const auto results = solve_many(requests);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].verified);
  EXPECT_TRUE(results[0].ok);
  EXPECT_LT(results[0].oracle_rel_error, 5e-3);
  EXPECT_GT(results[0].oracle_rel_error, 0.0);
}

TEST(BatchTest, BadRequestIsCapturedWithoutSinkingTheBatch) {
  std::vector<BatchRequest> requests = {
      make_request(64, 64, 8, 1),
      make_request(0, 64, 8, 2),  // m=0: make_instance rejects it
      make_request(64, 64, 8, 3),
  };
  BatchOptions options;
  options.threads = 2;
  const auto results = solve_many(requests, options);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  // Validation failures carry the taxonomy code callers can branch on.
  EXPECT_EQ(results[1].status, StatusCode::kInvalid);
  EXPECT_NE(results[1].error.find("dimensions must be positive"),
            std::string::npos)
      << results[1].error;
  EXPECT_TRUE(results[2].ok) << results[2].error;
  EXPECT_EQ(results[2].solve.v.size(), 64u);
}

TEST(BatchTest, RejectsRequestsCarryingTheirOwnInjector) {
  robust::FaultPlan plan(robust::FaultPlanConfig::uniform(1, 1e-6));
  std::vector<BatchRequest> requests = {make_request(64, 64, 8, 1)};
  requests[0].options.fault_injector = &plan;
  EXPECT_THROW(solve_many(requests), Error);
}

TEST(BatchTest, RejectsBadThreadCounts) {
  const std::vector<BatchRequest> requests = {make_request(64, 64, 8, 1)};
  BatchOptions options;
  options.threads = 0;
  EXPECT_THROW(solve_many(requests, options), Error);
  options.threads = -4;
  EXPECT_THROW(solve_many(requests, options), Error);
}

TEST(BatchTest, ExplicitFaultSeedPinsTheInjectionStream) {
  // Two identical requests with the same explicit fault_seed draw the same
  // fault stream and must land on bit-identical outcomes, regardless of
  // which worker runs which.
  std::vector<BatchRequest> requests = {
      make_request(256, 256, 16, 5),
      make_request(256, 256, 16, 5),
  };
  for (auto& r : requests) {
    r.fault_rate = 2.5e-2;
    r.fault_seed = 1234;
    r.options.recovery.enabled = true;
  }
  BatchOptions options;
  options.threads = 2;
  const auto results = solve_many(requests, options);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_TRUE(r.error.empty()) << r.error;
  expect_bit_identical(results[1].solve, results[0].solve,
                       "same-seed faulty twins");
}

TEST(BatchTest, DerivedFaultSeedsAreReproducibleRunToRun) {
  // fault_seed=0 derives the seed from the submission index, so rerunning
  // the same batch — at any thread count — replays the same faults.
  std::vector<BatchRequest> requests = {
      make_request(256, 256, 16, 5),
      make_request(256, 256, 16, 5),
  };
  for (auto& r : requests) {
    r.fault_rate = 2.5e-2;
    r.options.recovery.enabled = true;
  }
  BatchOptions two;
  two.threads = 2;
  const auto first = solve_many(requests, two);
  BatchOptions one;
  one.threads = 1;
  const auto second = solve_many(requests, one);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i].error.empty()) << first[i].error;
    expect_bit_identical(second[i].solve, first[i].solve,
                         "replayed request " + std::to_string(i));
  }
}

TEST(BatchTest, ParsesCsvWithHeaderCommentsAndOptionalColumns) {
  const BatchRequest base = make_request(1, 1, 1, 42);
  std::istringstream in(
      "# shapes for the smoke batch\n"
      "m,n,k,seed,h\n"
      "\n"
      "128,256,8\n"
      "129, 200, 9, 77\n"
      "64,64,8,5,0.5\n");
  const auto requests = parse_batch_csv(in, base);
  ASSERT_EQ(requests.size(), 3u);

  EXPECT_EQ(requests[0].spec.m, 128u);
  EXPECT_EQ(requests[0].spec.n, 256u);
  EXPECT_EQ(requests[0].spec.k, 8u);
  EXPECT_EQ(requests[0].spec.seed, 42u);  // inherited from base

  EXPECT_EQ(requests[1].spec.m, 129u);
  EXPECT_EQ(requests[1].spec.seed, 77u);

  EXPECT_EQ(requests[2].spec.seed, 5u);
  EXPECT_FLOAT_EQ(requests[2].spec.bandwidth, 0.5f);
}

TEST(BatchTest, CsvRejectsMalformedRows) {
  const BatchRequest base = make_request(1, 1, 1, 42);
  const std::vector<std::string> bad = {
      "128,256\n",              // too few columns
      "128,256,8,1,0.5,9\n",    // too many columns
      // A non-numeric first field only passes as a header on the first
      // data-carrying line; after a real row it is malformed.
      "128,128,8\nabc,256,8\n",
      "128,256,8,1,-2.0\n",     // non-positive bandwidth
      "0,256,8\n",              // zero dimension
  };
  for (const std::string& text : bad) {
    std::istringstream in(text);
    EXPECT_THROW(parse_batch_csv(in, base), Error) << text;
  }
}

}  // namespace
}  // namespace ksum::pipelines
