// Device observer-attachment guard: AccessObserver hooks may only be
// (re)attached while no launch is in flight. A foreign thread calling
// set_access_observer mid-launch gets a ksum::Error immediately; the
// launching thread swapping the observer mid-launch makes the launch itself
// throw. Both failure modes would otherwise silently split the event stream
// across observers.
#include <gtest/gtest.h>

#include <exception>
#include <string>
#include <thread>

#include "common/error.h"
#include "config/device_spec.h"
#include "gpusim/access_observer.h"
#include "gpusim/device.h"

namespace ksum::gpusim {
namespace {

LaunchConfig small_config() {
  LaunchConfig cfg;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 32;
  cfg.smem_bytes_per_block = 1024;
  return cfg;
}

class NullObserver : public AccessObserver {};

TEST(DeviceGuardTest, ObserverAttachOutsideLaunchIsFine) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  NullObserver observer;
  device.set_access_observer(&observer);
  device.launch("probe", {1, 1}, {32, 1}, small_config(),
                [](BlockContext&) {});
  device.set_access_observer(nullptr);
}

TEST(DeviceGuardTest, ForeignThreadAttachMidLaunchThrows) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  NullObserver observer;
  std::string foreign_error;
  bool foreign_threw = false;
  device.launch("probe", {1, 1}, {32, 1}, small_config(),
                [&](BlockContext&) {
                  // The launch is in flight on this thread; another thread
                  // trying to attach must be rejected loudly.
                  std::thread attacker([&] {
                    try {
                      device.set_access_observer(&observer);
                    } catch (const Error& e) {
                      foreign_threw = true;
                      foreign_error = e.what();
                    }
                  });
                  attacker.join();
                });
  EXPECT_TRUE(foreign_threw)
      << "foreign-thread set_access_observer mid-launch did not throw";
  EXPECT_NE(foreign_error.find("launch is in flight"), std::string::npos)
      << foreign_error;
  // The guard must have cleared: attaching after the launch works.
  device.set_access_observer(&observer);
  device.set_access_observer(nullptr);
}

TEST(DeviceGuardTest, SameThreadObserverSwapMidLaunchFailsTheLaunch) {
  Device device(config::DeviceSpec::gtx970(), 1 << 20);
  NullObserver observer;
  bool threw = false;
  std::string message;
  try {
    device.launch("probe", {2, 1}, {32, 1}, small_config(),
                  [&](BlockContext&) {
                    // Same thread, so the attach itself is admitted (it is
                    // how re-entrant tooling could behave) — but the launch
                    // must notice the swap and fail rather than emit a
                    // stream half-seen by each observer.
                    device.set_access_observer(&observer);
                  });
  } catch (const Error& e) {
    threw = true;
    message = e.what();
  }
  EXPECT_TRUE(threw) << "mid-launch observer swap went unnoticed";
  EXPECT_NE(message.find("mid-launch"), std::string::npos) << message;
  // Guard cleared despite the throw: a fresh launch still runs.
  device.set_access_observer(nullptr);
  const auto result = device.launch("again", {1, 1}, {32, 1}, small_config(),
                                    [](BlockContext&) {});
  EXPECT_EQ(result.counters.ctas_launched, 1u);
}

}  // namespace
}  // namespace ksum::gpusim
