// ThreadPool contract tests: worker-count validation, full index coverage,
// pool reuse, submission-order results from map_ordered, and deterministic
// (lowest-index) exception propagation. gtest assertions are not
// thread-safe, so every test computes inside workers and asserts on the
// main thread afterwards.
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/error.h"
#include "exec/batch_engine.h"

namespace ksum::exec {
namespace {

TEST(ThreadPoolTest, RejectsNonPositiveThreadCounts) {
  EXPECT_THROW(ThreadPool(0), Error);
  EXPECT_THROW(ThreadPool(-1), Error);
  EXPECT_THROW(ThreadPool(-100), Error);
}

TEST(ThreadPoolTest, RejectsCountsAboveTheCap) {
  EXPECT_THROW(ThreadPool(ThreadPool::kMaxThreads + 1), Error);
}

TEST(ThreadPoolTest, ReportsItsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3);
}

TEST(ThreadPoolTest, HardwareThreadsHasAFloorOfOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  EXPECT_LE(ThreadPool::hardware_threads(), ThreadPool::kMaxThreads);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyJobIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 5; ++job) {
    pool.parallel_for(100, [&](std::size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 5u * (99u * 100u / 2u));
}

TEST(ThreadPoolTest, SingleThreadPoolStillCovers) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  // One worker → bodies never race, plain writes are fine.
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, MapOrderedReturnsResultsInSubmissionOrder) {
  ThreadPool pool(8);
  const auto results = map_ordered(pool, 257, [](std::size_t i) {
    return std::to_string(i * 3);
  });
  ASSERT_EQ(results.size(), 257u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i], std::to_string(i * 3)) << "index " << i;
  }
}

TEST(ThreadPoolTest, MapOrderedThreadsOverloadMatchesPoolOverload) {
  ThreadPool pool(4);
  const auto via_pool =
      map_ordered(pool, 32, [](std::size_t i) { return i * i; });
  const auto via_count =
      map_ordered(4, 32, [](std::size_t i) { return i * i; });
  EXPECT_EQ(via_pool, via_count);
}

TEST(ThreadPoolTest, LowestFailingIndexWinsExceptionPropagation) {
  ThreadPool pool(8);
  // Several indices throw; which worker reaches which first is scheduling
  // noise, but the pool must rethrow the lowest failing index's exception.
  std::string message;
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i % 10 == 7) throw Error("boom at index " + std::to_string(i));
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const Error& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("boom at index 7"), std::string::npos) << message;
}

TEST(ThreadPoolTest, PoolSurvivesAFailedJob) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [](std::size_t i) {
        if (i == 0) throw Error("first job fails");
      }),
      Error);
  // The next job on the same pool runs clean.
  std::atomic<int> calls{0};
  pool.parallel_for(8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

}  // namespace
}  // namespace ksum::exec
