// Cooperative cancellation: CancelToken semantics, the ThreadPool's
// claim-loop hook, and the pipeline-level guarantee that a cancelled
// request never writes output.
#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

#include "exec/cancel.h"
#include "exec/thread_pool.h"
#include "pipelines/solver.h"
#include "workload/point_generators.h"

namespace ksum {
namespace {

TEST(CancelToken, StartsClear) {
  exec::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, CancelSetsFlagAndCheckThrows) {
  exec::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), exec::Cancelled);
}

TEST(CancelToken, ExpiredDeadlineCancels) {
  exec::CancelToken token;
  token.set_deadline_after(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), exec::Cancelled);
}

TEST(CancelToken, FutureDeadlineStaysClear) {
  exec::CancelToken token;
  token.set_deadline_after(std::chrono::hours(24));
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ResetClearsBothFlagAndDeadline) {
  exec::CancelToken token;
  token.cancel();
  token.set_deadline_after(std::chrono::nanoseconds(-1));
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, CancelledIsNotAnErrorOrInternalError) {
  // The taxonomy depends on the three exception classes staying disjoint.
  try {
    throw exec::Cancelled("test");
  } catch (const Error&) {
    FAIL() << "Cancelled must not be a ksum::Error";
  } catch (const InternalError&) {
    FAIL() << "Cancelled must not be a ksum::InternalError";
  } catch (const exec::Cancelled&) {
    SUCCEED();
  }
}

TEST(ThreadPoolCancel, PreCancelledRunsNoBody) {
  exec::ThreadPool pool(4);
  exec::CancelToken token;
  token.cancel();
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(
          100, [&](std::size_t) { executed.fetch_add(1); }, &token),
      exec::Cancelled);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPoolCancel, CancelMidJobStopsFurtherClaims) {
  // One worker → deterministic: index 0 runs, cancels, and no later index
  // is ever claimed.
  exec::ThreadPool pool(1);
  exec::CancelToken token;
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(
                   50,
                   [&](std::size_t) {
                     executed.fetch_add(1);
                     token.cancel();
                   },
                   &token),
               exec::Cancelled);
  EXPECT_EQ(executed.load(), 1);
}

TEST(ThreadPoolCancel, NullTokenRunsEverything) {
  exec::ThreadPool pool(4);
  std::atomic<int> executed{0};
  pool.parallel_for(64, [&](std::size_t) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolCancel, BodyErrorWinsOverCancellation) {
  exec::ThreadPool pool(1);
  exec::CancelToken token;
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [&](std::size_t index) {
                     token.cancel();
                     if (index == 0) throw Error("boom");
                   },
                   &token),
               Error);
}

TEST(ThreadPoolCancel, CompletedJobWithTokenDoesNotThrow) {
  exec::ThreadPool pool(2);
  exec::CancelToken token;  // never cancelled
  std::atomic<int> executed{0};
  EXPECT_NO_THROW(pool.parallel_for(
      16, [&](std::size_t) { executed.fetch_add(1); }, &token));
  EXPECT_EQ(executed.load(), 16);
}

// The satellite guarantee: a cancelled request never writes output — the
// pipeline throws before the result download, so no Vector ever reaches the
// caller.
TEST(PipelineCancel, CancelledTokenAbortsBeforeOutput) {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  const auto instance = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);

  pipelines::RunOptions options;
  exec::CancelToken token;
  token.cancel();
  options.cancel = &token;
  EXPECT_THROW(pipelines::run_pipeline(pipelines::Solution::kFused, instance,
                                       params, options),
               exec::Cancelled);
}

TEST(PipelineCancel, ExpiredDeadlineAbortsSolve) {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  const auto instance = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);

  pipelines::RunOptions options;
  exec::CancelToken token;
  token.set_deadline_after(std::chrono::nanoseconds(-1));
  options.cancel = &token;
  EXPECT_THROW(pipelines::solve(instance, params,
                                pipelines::Backend::kSimCublasUnfused,
                                options),
               exec::Cancelled);
}

TEST(PipelineCancel, UncancelledTokenMatchesTokenFreeRun) {
  workload::ProblemSpec spec;
  spec.m = 128;
  spec.n = 128;
  spec.k = 8;
  const auto instance = workload::make_instance(spec);
  const auto params = core::params_from_spec(spec);

  const auto baseline = pipelines::run_pipeline(pipelines::Solution::kFused,
                                                instance, params, {});
  pipelines::RunOptions options;
  exec::CancelToken token;
  options.cancel = &token;
  const auto watched = pipelines::run_pipeline(pipelines::Solution::kFused,
                                               instance, params, options);
  ASSERT_EQ(baseline.result.size(), watched.result.size());
  for (std::size_t i = 0; i < baseline.result.size(); ++i) {
    EXPECT_EQ(baseline.result[i], watched.result[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace ksum
