// The determinism contract of docs/PARALLELISM.md, pinned: running the same
// batch on 1, 2, and 8 worker threads must produce byte-identical outputs —
// numerics, counters, energy records, recovery traces, rendered summary
// rows, and merged ksum-prof-batch-v1 profiler records. Only wall-clock may
// change with the worker count.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "analysis/program_registry.h"
#include "common/string_util.h"
#include "config/device_spec.h"
#include "config/energy_spec.h"
#include "config/timing_spec.h"
#include "core/exact.h"
#include "exec/batch_engine.h"
#include "gpusim/device.h"
#include "pipelines/batch.h"
#include "profile/launch_profiler.h"
#include "profile/profile_json.h"

namespace ksum {
namespace {

const int kThreadCounts[] = {1, 2, 8};

std::vector<pipelines::BatchRequest> invariance_batch() {
  // Mixed shapes (aligned + ragged), backends, a verified request, and a
  // faulty robust request — every aggregation path the engine has.
  std::vector<pipelines::BatchRequest> requests;
  const std::size_t shapes[][3] = {
      {128, 128, 8}, {129, 200, 9}, {127, 127, 8}, {200, 64, 16},
  };
  std::uint64_t seed = 100;
  for (const auto& s : shapes) {
    pipelines::BatchRequest r;
    r.spec.m = s[0];
    r.spec.n = s[1];
    r.spec.k = s[2];
    r.spec.seed = seed++;
    r.params = core::params_from_spec(r.spec);
    requests.push_back(r);
  }
  requests[1].backend = pipelines::Backend::kSimCublasUnfused;
  requests[2].verify = true;
  requests[3].fault_rate = 2.5e-2;
  requests[3].options.recovery.enabled = true;
  return requests;
}

// The CLI's per-request summary row, reproduced here so the "golden table"
// representation of a batch is pinned thread-invariant too.
std::string summary_row(const pipelines::BatchResult& r,
                        const pipelines::BatchRequest& req) {
  double energy = 0;
  if (r.solve.report) energy = r.solve.report->energy.total();
  double seconds = 0;
  if (r.solve.report) seconds = r.solve.report->seconds;
  return str_format(
      "[%3zu] %zux%zu K=%zu seed=%llu %.6f ms %.6f J err=%.3e %s%s", r.index,
      req.spec.m, req.spec.n, req.spec.k,
      static_cast<unsigned long long>(req.spec.seed), seconds * 1e3, energy,
      r.oracle_rel_error, r.ok ? "ok" : "FAIL",
      r.error.empty() ? "" : (" " + r.error).c_str());
}

struct BatchSnapshot {
  std::vector<std::vector<float>> v;
  std::vector<std::string> rows;
  std::vector<int> attempts;
  std::vector<int> faults_detected;
  std::vector<bool> ok;
  std::vector<std::string> errors;
  std::vector<std::string> counters;
};

BatchSnapshot snapshot(const std::vector<pipelines::BatchRequest>& requests,
                       int threads) {
  pipelines::BatchOptions options;
  options.threads = threads;
  const auto results = pipelines::solve_many(requests, options);
  BatchSnapshot snap;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    snap.v.emplace_back(r.solve.v.data(), r.solve.v.data() + r.solve.v.size());
    snap.rows.push_back(summary_row(r, requests[i]));
    snap.attempts.push_back(r.solve.recovery.attempts);
    snap.faults_detected.push_back(r.solve.recovery.faults_detected);
    snap.ok.push_back(r.ok);
    snap.errors.push_back(r.error);
    snap.counters.push_back(
        r.solve.report ? r.solve.report->total.to_string() : std::string());
  }
  return snap;
}

TEST(ThreadInvarianceTest, BatchResultsAreByteIdenticalAcrossPoolSizes) {
  const auto requests = invariance_batch();
  const BatchSnapshot baseline = snapshot(requests, 1);
  ASSERT_EQ(baseline.v.size(), requests.size());

  for (int threads : kThreadCounts) {
    if (threads == 1) continue;
    const BatchSnapshot got = snapshot(requests, threads);
    ASSERT_EQ(got.v.size(), baseline.v.size()) << threads << " threads";
    for (std::size_t i = 0; i < baseline.v.size(); ++i) {
      const std::string what =
          std::to_string(threads) + " threads, request " + std::to_string(i);
      ASSERT_EQ(got.v[i].size(), baseline.v[i].size()) << what;
      EXPECT_EQ(std::memcmp(got.v[i].data(), baseline.v[i].data(),
                            baseline.v[i].size() * sizeof(float)),
                0)
          << what << ": V bits differ";
      EXPECT_EQ(got.rows[i], baseline.rows[i]) << what;
      EXPECT_EQ(got.attempts[i], baseline.attempts[i]) << what;
      EXPECT_EQ(got.faults_detected[i], baseline.faults_detected[i]) << what;
      EXPECT_EQ(got.ok[i], baseline.ok[i]) << what;
      EXPECT_EQ(got.errors[i], baseline.errors[i]) << what;
      EXPECT_EQ(got.counters[i], baseline.counters[i]) << what;
    }
  }
}

// Mirrors ksum-prof --batch: one fresh device + profiler per program, merged
// in registry order.
std::string batch_profile_dump(int threads) {
  const auto& programs = analysis::registered_programs();
  exec::ThreadPool pool(threads);
  const auto records = exec::map_ordered(
      pool, programs.size(), [&](std::size_t index) {
        const auto spec = config::DeviceSpec::gtx970();
        gpusim::Device device(spec, analysis::registry_device_bytes());
        std::vector<profile::LaunchProfile> raw;
        {
          profile::LaunchProfiler profiler(device);
          programs[index].run(device, analysis::ProgramOptions{});
          raw = profiler.take_launches();
        }
        const auto shape = analysis::registry_shape();
        const profile::ProgramProfile prof = profile::build_program_profile(
            programs[index].name, shape.m, shape.n, shape.k, spec,
            config::TimingSpec::gtx970(), config::EnergySpec::gtx970_mcpat(),
            std::move(raw));
        return profile::profile_to_json(prof);
      });
  const profile::Json merged = profile::batch_profiles_to_json(records);
  profile::validate_profile_batch_json(merged);
  return merged.dump();
}

TEST(ThreadInvarianceTest, ProfilerBatchRecordsAreByteIdentical) {
  const std::string baseline = batch_profile_dump(1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_NE(baseline.find("ksum-prof-batch-v1"), std::string::npos);
  for (int threads : kThreadCounts) {
    if (threads == 1) continue;
    EXPECT_EQ(batch_profile_dump(threads), baseline)
        << "merged profiler record changed at " << threads << " threads";
  }
}

}  // namespace
}  // namespace ksum
