// Per-site energy attribution must be a true decomposition: sites plus the
// explicit residual plus the launch-wide compute/static buckets recompose
// the aggregate energy-model output exactly (1e-9 relative, the acceptance
// bound), for every registered program.
#include "profile/energy_attribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/program_registry.h"
#include "config/device_spec.h"
#include "gpusim/device.h"
#include "profile/launch_profiler.h"

namespace ksum::profile {
namespace {

std::vector<LaunchProfile> finalized_launches(const std::string& name) {
  const auto* program = analysis::find_program(name);
  EXPECT_NE(program, nullptr) << name;
  gpusim::Device device(config::DeviceSpec::gtx970(),
                        analysis::registry_device_bytes());
  LaunchProfiler profiler(device);
  program->run(device, analysis::ProgramOptions{});
  auto launches = profiler.take_launches();
  const auto k = analysis::registry_shape().k;
  for (LaunchProfile& launch : launches) {
    finalize_profile(config::DeviceSpec::gtx970(),
                     config::TimingSpec::gtx970(),
                     default_timing_hints(launch.launch.kernel_name, k),
                     launch);
  }
  return launches;
}

double rel_err(double a, double b) {
  return std::abs(a - b) / std::max({1.0, std::abs(a), std::abs(b)});
}

TEST(EnergyAttributionTest, RecomposesTheAggregateForEveryProgram) {
  const auto spec = config::EnergySpec::gtx970_mcpat();
  for (const auto& program : analysis::registered_programs()) {
    for (const LaunchProfile& launch : finalized_launches(program.name)) {
      const EnergyAttribution energy =
          attribute_energy(spec, launch, launch.seconds);
      EXPECT_GT(energy.aggregate.total(), 0.0) << program.name;
      EXPECT_LT(rel_err(energy.attributed_total(), energy.aggregate.total()),
                1e-9)
          << program.name << " / " << launch.launch.kernel_name
          << ": attributed " << energy.attributed_total() << " vs aggregate "
          << energy.aggregate.total();
    }
  }
}

TEST(EnergyAttributionTest, SitesAndResidualAreNonNegative) {
  const auto spec = config::EnergySpec::gtx970_mcpat();
  for (const LaunchProfile& launch : finalized_launches("fused_ksum")) {
    const EnergyAttribution energy =
        attribute_energy(spec, launch, launch.seconds);
    ASSERT_EQ(energy.sites.size(), launch.sites.size());
    for (const SiteEnergy& site : energy.sites) {
      EXPECT_GE(site.smem_j, 0.0);
      EXPECT_GE(site.l2_j, 0.0);
      EXPECT_GE(site.dram_j, 0.0);
    }
    EXPECT_GE(energy.residual.total(), -1e-18);
  }
}

TEST(EnergyAttributionTest, AtomicTrafficDrawsMoreL2EnergyPerSector) {
  // The fused kernel's atomic reduction site read-modify-writes its sectors
  // at the L2, so its energy per achieved sector must exceed that of a
  // plain load site with the same sector count share.
  const auto spec = config::EnergySpec::gtx970_mcpat();
  const auto launches = finalized_launches("fused_ksum");
  const LaunchProfile& fused = launches.back();
  const EnergyAttribution energy =
      attribute_energy(spec, fused, fused.seconds);

  double atomic_per_sector = 0, load_per_sector = 0;
  for (std::size_t i = 0; i < fused.sites.size(); ++i) {
    const SiteTraffic& traffic = fused.sites[i];
    if (traffic.global_sectors == 0) continue;
    const double per_sector =
        (energy.sites[i].l2_j + energy.sites[i].dram_j) /
        static_cast<double>(traffic.global_sectors);
    if (traffic.atomic_requests > 0) {
      atomic_per_sector = per_sector;
    } else if (traffic.global_load_requests > 0 && load_per_sector == 0) {
      load_per_sector = per_sector;
    }
  }
  ASSERT_GT(atomic_per_sector, 0.0);
  ASSERT_GT(load_per_sector, 0.0);
  EXPECT_NEAR(atomic_per_sector / load_per_sector, 2.0, 1e-6);
}

TEST(EnergyAttributionTest, UnobservedLaunchIsAllResidual) {
  // A profile with counters but no observed sites (nothing was tagged)
  // must park the whole memory energy in the residual, not lose it.
  LaunchProfile launch;
  launch.counters.smem_load_transactions = 100;
  launch.counters.l2_read_transactions = 50;
  launch.counters.dram_read_transactions = 25;
  launch.counters.warp_instructions = 10;
  const auto spec = config::EnergySpec::gtx970_mcpat();
  const EnergyAttribution energy =
      attribute_energy(spec, launch, /*seconds=*/1e-6);
  EXPECT_TRUE(energy.sites.empty());
  EXPECT_GT(energy.residual.total(), 0.0);
  EXPECT_LT(rel_err(energy.attributed_total(), energy.aggregate.total()),
            1e-9);
}

}  // namespace
}  // namespace ksum::profile
