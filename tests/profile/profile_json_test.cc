// The JSON document model (ordered builder + strict parser) and the
// executable schema definitions for ksum-prof-v1 / ksum-bench-v1 records.
#include "profile/profile_json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/program_registry.h"
#include "common/error.h"
#include "config/device_spec.h"
#include "gpusim/device.h"
#include "profile/json.h"
#include "profile/launch_profiler.h"

namespace ksum::profile {
namespace {

ProgramProfile profiled(const std::string& name) {
  const auto* program = analysis::find_program(name);
  EXPECT_NE(program, nullptr) << name;
  gpusim::Device device(config::DeviceSpec::gtx970(),
                        analysis::registry_device_bytes());
  LaunchProfiler profiler(device);
  program->run(device, analysis::ProgramOptions{});
  const auto shape = analysis::registry_shape();
  return build_program_profile(name, shape.m, shape.n, shape.k,
                               config::DeviceSpec::gtx970(),
                               config::TimingSpec::gtx970(),
                               config::EnergySpec::gtx970_mcpat(),
                               profiler.take_launches());
}

// Rebuilds `node` with the value at `path` replaced (object keys and
// decimal array indices), using only the public Json API.
Json replaced(const Json& node, const std::vector<std::string>& path,
              std::size_t depth, Json value) {
  if (depth == path.size()) return value;
  if (node.is_array()) {
    Json out = Json::array();
    const std::size_t target = std::stoul(path[depth]);
    for (std::size_t i = 0; i < node.size(); ++i) {
      out.push_back(i == target ? replaced(node.at(i), path, depth + 1,
                                           std::move(value))
                                : node.at(i));
    }
    return out;
  }
  Json out = Json::object();
  for (const auto& [key, member] : node.members()) {
    out.set(key, key == path[depth]
                     ? replaced(member, path, depth + 1, std::move(value))
                     : member);
  }
  return out;
}

Json without(const Json& object, const std::string& key) {
  Json out = Json::object();
  for (const auto& [name, member] : object.members()) {
    if (name != key) out.set(name, member);
  }
  return out;
}

TEST(JsonTest, RoundTripsThroughDumpAndParse) {
  Json doc = Json::object();
  doc.set("text", "with \"quotes\", commas,\nand newlines");
  doc.set("integral", std::uint64_t{9007199254740993ull});
  doc.set("fraction", 0.1);
  doc.set("negative", -2.5e-9);
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json::object());
  doc.set("arr", std::move(arr));

  const std::string text = doc.dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.dump(), text);
  EXPECT_EQ(back.at("text").as_string(),
            "with \"quotes\", commas,\nand newlines");
  EXPECT_DOUBLE_EQ(back.at("fraction").as_double(), 0.1);
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_TRUE(back.at("nothing").is_null());
  EXPECT_EQ(back.at("arr").size(), 3u);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), Error);
  EXPECT_THROW(Json::parse("[1, 2] trailing"), Error);
  EXPECT_THROW(Json::parse("'single'"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
}

TEST(JsonTest, SetReplacesInPlaceKeepingOrder) {
  Json doc = Json::object();
  doc.set("first", 1).set("second", 2).set("first", 10);
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "first");
  EXPECT_DOUBLE_EQ(doc.at("first").as_double(), 10.0);
}

TEST(ProfileJsonTest, EmittedRecordValidates) {
  const ProgramProfile profile = profiled("fused_ksum");
  const Json record = profile_to_json(profile);
  EXPECT_NO_THROW(validate_profile_json(record));
  EXPECT_FALSE(record.has("timestamp"));

  const Json stamped = profile_to_json(profile, "2026-08-06T00:00:00Z");
  EXPECT_NO_THROW(validate_profile_json(stamped));
  EXPECT_EQ(stamped.at("timestamp").as_string(), "2026-08-06T00:00:00Z");
}

TEST(ProfileJsonTest, RecordSurvivesAReparse) {
  const Json record = profile_to_json(profiled("norms"));
  const Json back = Json::parse(record.dump());
  EXPECT_NO_THROW(validate_profile_json(back));
  EXPECT_EQ(back.dump(), record.dump());
}

TEST(ProfileJsonTest, ValidatorRejectsMutatedRecords) {
  const Json record = profile_to_json(profiled("norms"));

  EXPECT_THROW(validate_profile_json(replaced(record, {"schema"}, 0,
                                              Json("ksum-prof-v0"))),
               Error);
  EXPECT_THROW(validate_profile_json(replaced(record, {"shape", "m"}, 0,
                                              Json(0))),
               Error);
  EXPECT_THROW(validate_profile_json(replaced(record, {"launches"}, 0,
                                              Json::array())),
               Error);
  EXPECT_THROW(validate_profile_json(without(record, "totals")), Error);

  // Breaking one per-site energy value must trip the 1e-9 recomposition
  // check, the acceptance criterion.
  const Json& site_energy = record.at("launches")
                                .at(0)
                                .at("sites")
                                .at(0)
                                .at("energy_j")
                                .at("total");
  EXPECT_THROW(
      validate_profile_json(replaced(
          record, {"launches", "0", "sites", "0", "energy_j", "total"}, 0,
          Json(site_energy.as_double() + 1.0))),
      Error);
}

// ksum-prof-shard-v1: per-shard ksum-prof-v1 records wrapped with the shard
// plan's ranges. Two shards tiling a 512-row axis are enough to exercise
// the contiguity, recomposition and embedded-record checks.
Json shard_record() {
  const Json profile = profile_to_json(profiled("fused_ksum"));
  std::vector<ShardProfileEntry> shards;
  shards.push_back({0, 0, 256, profile});
  shards.push_back({1, 256, 512, profile});
  return shard_profiles_to_json("m", 512, 256, 16, shards);
}

TEST(ShardProfileJsonTest, EmittedRecordValidatesAndReparses) {
  const Json record = shard_record();
  EXPECT_NO_THROW(validate_profile_shard_json(record));
  EXPECT_FALSE(record.has("timestamp"));
  EXPECT_EQ(record.at("axis").as_string(), "m");
  EXPECT_EQ(record.at("shards").size(), 2u);

  const Json back = Json::parse(record.dump());
  EXPECT_NO_THROW(validate_profile_shard_json(back));
  EXPECT_EQ(back.dump(), record.dump());
}

TEST(ShardProfileJsonTest, BuilderRejectsBogusAxis) {
  EXPECT_THROW(shard_profiles_to_json("k", 512, 256, 16, {}), Error);
}

TEST(ShardProfileJsonTest, ValidatorRejectsMutatedRecords) {
  const Json record = shard_record();

  EXPECT_THROW(validate_profile_shard_json(replaced(
                   record, {"schema"}, 0, Json("ksum-prof-shard-v0"))),
               Error);
  EXPECT_THROW(validate_profile_shard_json(replaced(record, {"axis"}, 0,
                                                    Json("k"))),
               Error);
  EXPECT_THROW(validate_profile_shard_json(without(record, "shards")),
               Error);
  // A gap between shard 0 and shard 1 breaks the contiguous tiling.
  EXPECT_THROW(validate_profile_shard_json(replaced(
                   record, {"shards", "1", "begin"}, 0, Json(300))),
               Error);
  // The last shard stopping short of the axis dimension breaks coverage.
  EXPECT_THROW(validate_profile_shard_json(replaced(
                   record, {"shards", "1", "end"}, 0, Json(480))),
               Error);
  // Indexes must ascend from 0 in array order.
  EXPECT_THROW(validate_profile_shard_json(replaced(
                   record, {"shards", "0", "index"}, 0, Json(1))),
               Error);
  // Totals must recompose from the embedded per-shard totals.
  const double energy =
      record.at("totals").at("energy_j_total").as_double();
  EXPECT_THROW(validate_profile_shard_json(replaced(
                   record, {"totals", "energy_j_total"}, 0,
                   Json(energy + 1.0))),
               Error);
}

TEST(ProfileJsonTest, CountersRoundTripEveryField) {
  gpusim::Counters c;
  c.fma_ops = 1;
  c.atomic_requests = 2;
  c.smem_bank_conflicts = 3;
  c.faults_atomics_doubled = 4;
  const Json j = counters_to_json(c);
  // One member per 64-bit word — the static_assert in counters_to_json
  // keeps this in lockstep with the struct.
  EXPECT_EQ(j.size(), sizeof(gpusim::Counters) / sizeof(std::uint64_t));
  EXPECT_DOUBLE_EQ(j.at("fma_ops").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(j.at("atomic_requests").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(j.at("smem_bank_conflicts").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(j.at("faults_atomics_doubled").as_double(), 4.0);
}

Json minimal_bench_record() {
  Json pipe = Json::object();
  pipe.set("seconds", 1e-3);
  Json energy = Json::object();
  energy.set("compute", 1.0).set("smem", 0.5).set("l2", 0.25);
  energy.set("dram", 0.125).set("static", 0.0625).set("total", 1.9375);
  pipe.set("energy_j", std::move(energy));
  pipe.set("l2_transactions", 100);
  pipe.set("dram_transactions", 50);

  Json point = Json::object();
  point.set("m", 1024).set("n", 1024).set("k", 32);
  Json pipelines = Json::object();
  pipelines.set("fused", std::move(pipe));
  point.set("pipelines", std::move(pipelines));

  Json table = Json::object();
  table.set("name", "table2").set("csv", "a,b\n1,2\n");

  Json record = Json::object();
  record.set("schema", "ksum-bench-v1");
  record.set("bench", "unit-test");
  record.set("points", Json::array().push_back(std::move(point)));
  record.set("tables", Json::array().push_back(std::move(table)));
  return record;
}

TEST(BenchJsonTest, ValidatorAcceptsAWellFormedRecord) {
  EXPECT_NO_THROW(validate_bench_json(minimal_bench_record()));
}

TEST(BenchJsonTest, ValidatorRejectsBrokenRecords) {
  const Json good = minimal_bench_record();
  EXPECT_THROW(validate_bench_json(replaced(good, {"schema"}, 0, Json("v2"))),
               Error);
  EXPECT_THROW(validate_bench_json(without(good, "bench")), Error);
  EXPECT_THROW(
      validate_bench_json(replaced(good, {"points", "0", "m"}, 0, Json(0))),
      Error);
  EXPECT_THROW(
      validate_bench_json(replaced(
          good, {"points", "0", "pipelines", "fused", "seconds"}, 0,
          Json(-1.0))),
      Error);
  // An energy object whose parts stop summing to its total is invalid.
  EXPECT_THROW(
      validate_bench_json(replaced(
          good, {"points", "0", "pipelines", "fused", "energy_j", "total"},
          0, Json(5.0))),
      Error);
}

}  // namespace
}  // namespace ksum::profile
