// The LaunchProfiler materialises per-launch phase slices and per-site
// traffic from the observer stream alone. These tests pin its accounting
// identities: phase slices partition the launch counters, and per-site
// request totals partition the global-memory counters.
#include "profile/launch_profiler.h"

#include <gtest/gtest.h>

#include "analysis/program_registry.h"
#include "common/error.h"
#include "config/device_spec.h"
#include "gpusim/device.h"

namespace ksum::profile {
namespace {

std::vector<LaunchProfile> profile_program(const std::string& name) {
  const auto* program = analysis::find_program(name);
  EXPECT_NE(program, nullptr) << name;
  gpusim::Device device(config::DeviceSpec::gtx970(),
                        analysis::registry_device_bytes());
  LaunchProfiler profiler(device);
  program->run(device, analysis::ProgramOptions{});
  return profiler.take_launches();
}

TEST(LaunchProfilerTest, PhaseSlicesPartitionTheLaunchCounters) {
  for (const std::string name : {"fused_ksum", "unfused_ksum", "norms"}) {
    const auto launches = profile_program(name);
    ASSERT_FALSE(launches.empty()) << name;
    for (const LaunchProfile& launch : launches) {
      ASSERT_FALSE(launch.phases.empty()) << launch.launch.kernel_name;
      gpusim::Counters sum;
      for (const PhaseSlice& slice : launch.phases) sum += slice.counters;
      // The launch pre-count (kernel_launches = 1, set before any event
      // fires) belongs to no phase; everything else must land in a slice.
      gpusim::Counters expected = launch.counters;
      expected.kernel_launches -= 1;
      EXPECT_TRUE(sum == expected)
          << launch.launch.kernel_name << ": phase slices sum to\n"
          << sum.to_string() << "\nbut the launch counted\n"
          << expected.to_string();
    }
  }
}

TEST(LaunchProfilerTest, FusedKernelCarriesThePaperPhases) {
  const auto launches = profile_program("fused_ksum");
  ASSERT_EQ(launches.size(), 3u);  // norms_a, norms_b, fused_ksum
  const LaunchProfile& fused = launches.back();
  EXPECT_EQ(fused.launch.kernel_name, "fused_ksum");
  for (const char* phase :
       {"prologue", "mainloop", "epilogue", "reduction"}) {
    const PhaseSlice* slice = fused.find_phase(phase);
    ASSERT_NE(slice, nullptr) << phase;
    EXPECT_GT(slice->counters.warp_instructions, 0u) << phase;
  }
  // The rank-8 mainloop dominates the instruction stream.
  const PhaseSlice* mainloop = fused.find_phase("mainloop");
  EXPECT_GT(mainloop->counters.warp_instructions,
            fused.counters.warp_instructions / 2);
  EXPECT_EQ(fused.find_phase("no-such-phase"), nullptr);
}

TEST(LaunchProfilerTest, SiteTrafficPartitionsTheGlobalCounters) {
  const auto launches = profile_program("fused_ksum");
  for (const LaunchProfile& launch : launches) {
    std::uint64_t loads = 0, stores = 0, atomics = 0;
    for (const SiteTraffic& site : launch.sites) {
      loads += site.global_load_requests;
      stores += site.global_store_requests;
      atomics += site.atomic_requests;
    }
    EXPECT_EQ(loads, launch.counters.global_load_requests)
        << launch.launch.kernel_name;
    EXPECT_EQ(stores, launch.counters.global_store_requests)
        << launch.launch.kernel_name;
    EXPECT_EQ(atomics, launch.counters.atomic_requests)
        << launch.launch.kernel_name;
  }
}

TEST(LaunchProfilerTest, AtomicSitesWeightSectorsTwice) {
  const auto launches = profile_program("fused_ksum");
  const LaunchProfile& fused = launches.back();
  bool saw_atomic_site = false;
  for (const SiteTraffic& site : fused.sites) {
    if (site.atomic_requests == 0) {
      EXPECT_EQ(site.weighted_sectors(),
                static_cast<double>(site.global_sectors));
      continue;
    }
    saw_atomic_site = true;
    // Atomic sectors are L2 read-modify-writes: weighted twice.
    EXPECT_GT(site.weighted_sectors(),
              static_cast<double>(site.global_sectors));
  }
  EXPECT_TRUE(saw_atomic_site)
      << "fused_ksum's inter-CTA reduction should hit an atomic site";
}

TEST(LaunchProfilerTest, RawProfilesCarryNoTiming) {
  const auto launches = profile_program("norms");
  ASSERT_FALSE(launches.empty());
  EXPECT_EQ(launches[0].seconds, 0.0);

  LaunchProfile finalized = launches[0];
  finalize_profile(config::DeviceSpec::gtx970(), config::TimingSpec::gtx970(),
                   default_timing_hints(finalized.launch.kernel_name, 16),
                   finalized);
  EXPECT_GT(finalized.seconds, 0.0);
  EXPECT_FALSE(finalized.timing.bound.empty());
}

TEST(LaunchProfilerTest, RefusesToStackOnAnotherObserver) {
  gpusim::Device device(config::DeviceSpec::gtx970(),
                        analysis::registry_device_bytes());
  LaunchProfiler first(device);
  EXPECT_THROW(LaunchProfiler second(device), Error);
}

TEST(LaunchProfilerTest, TimingHintsFollowTheKernelName) {
  const TimingHints fused = default_timing_hints("fused_ksum", 64);
  EXPECT_DOUBLE_EQ(fused.mainloop_iters, 8.0);  // K/8 rank-8 steps
  const TimingHints cublas = default_timing_hints("gemm_cublas", 64);
  EXPECT_DOUBLE_EQ(cublas.mainloop_iters, 8.0);
  const TimingHints streaming = default_timing_hints("norms_a", 64);
  EXPECT_DOUBLE_EQ(streaming.mainloop_iters, 0.0);
}

}  // namespace
}  // namespace ksum::profile
