// Observation must be free: attaching a LaunchProfiler changes neither the
// numerical results nor a single event counter, and two same-seed profiled
// runs serialise to byte-identical records (modulo the timestamp field,
// which the emitters keep optional for exactly this reason).
#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "analysis/program_registry.h"
#include "config/device_spec.h"
#include "core/exact.h"
#include "gpukernels/device_workspace.h"
#include "gpukernels/fused_ksum.h"
#include "gpukernels/norms.h"
#include "gpusim/counters.h"
#include "gpusim/device.h"
#include "profile/launch_profiler.h"
#include "profile/profile_json.h"
#include "workload/point_generators.h"

namespace ksum::profile {
namespace {

struct RunOutput {
  Vector result;
  gpusim::Counters counters;
  std::vector<LaunchProfile> launches;
};

RunOutput run_fused(bool with_profiler) {
  workload::ProblemSpec spec;
  spec.m = 256;
  spec.n = 256;
  spec.k = 16;
  spec.seed = 3;
  const auto instance = workload::make_instance(spec);

  gpusim::Device device(config::DeviceSpec::gtx970(),
                        analysis::registry_device_bytes());
  auto ws = gpukernels::allocate_workspace(device, spec.m, spec.n, spec.k,
                                           /*with_intermediate=*/false);
  gpukernels::upload_instance(device, ws, instance);

  std::optional<LaunchProfiler> profiler;
  if (with_profiler) profiler.emplace(device);

  gpukernels::run_norms_a(device, ws);
  gpukernels::run_norms_b(device, ws);
  gpukernels::run_fused_ksum(device, ws, core::params_from_spec(spec), {});

  RunOutput out;
  out.result = gpukernels::download_result(device, ws);
  out.counters = device.counters();
  if (profiler) out.launches = profiler->take_launches();
  return out;
}

TEST(DeterminismTest, ProfilerAttachedRunIsBitIdentical) {
  const RunOutput plain = run_fused(/*with_profiler=*/false);
  const RunOutput profiled = run_fused(/*with_profiler=*/true);

  EXPECT_TRUE(plain.counters == profiled.counters)
      << "attaching the profiler changed the event counters:\n"
      << plain.counters.to_string() << "\nvs\n"
      << profiled.counters.to_string();

  ASSERT_EQ(plain.result.size(), profiled.result.size());
  EXPECT_EQ(std::memcmp(plain.result.data(), profiled.result.data(),
                        plain.result.size() * sizeof(float)),
            0)
      << "attaching the profiler changed the numerical result";
}

TEST(DeterminismTest, ProfilerSeesTheSameCountersTheDeviceKeeps) {
  const RunOutput profiled = run_fused(/*with_profiler=*/true);
  gpusim::Counters observed;
  for (const LaunchProfile& launch : profiled.launches) {
    observed += launch.counters;
  }
  EXPECT_TRUE(observed == profiled.counters)
      << "per-launch profiles do not sum to the device's cumulative "
         "counters";
}

TEST(DeterminismTest, SameSeedRunsEmitIdenticalRecords) {
  auto record_for = [](const std::string& name) {
    const auto* program = analysis::find_program(name);
    EXPECT_NE(program, nullptr);
    gpusim::Device device(config::DeviceSpec::gtx970(),
                          analysis::registry_device_bytes());
    LaunchProfiler profiler(device);
    program->run(device, analysis::ProgramOptions{});
    const auto shape = analysis::registry_shape();
    const ProgramProfile profile = build_program_profile(
        name, shape.m, shape.n, shape.k, config::DeviceSpec::gtx970(),
        config::TimingSpec::gtx970(), config::EnergySpec::gtx970_mcpat(),
        profiler.take_launches());
    // Timestamp omitted — the one field two identical runs may disagree on.
    return profile_to_json(profile).dump();
  };

  for (const char* name : {"fused_ksum", "unfused_ksum", "fused_knn"}) {
    EXPECT_EQ(record_for(name), record_for(name)) << name;
  }
}

}  // namespace
}  // namespace ksum::profile
