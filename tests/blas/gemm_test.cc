#include "blas/gemm.h"

#include <gtest/gtest.h>

#include "blas/vector_ops.h"
#include "common/rng.h"

namespace ksum::blas {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Layout layout,
                     std::uint64_t seed) {
  Matrix m(rows, cols, layout);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = rng.uniform(-1.0f, 1.0f);
    }
  }
  return m;
}

TEST(GemmTest, NaiveKnownValues) {
  // A = [[1,2],[3,4]] (row major), B = [[5,6],[7,8]] (col major).
  Matrix a(2, 2, Layout::kRowMajor);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2, Layout::kColMajor);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  Matrix c(2, 2, Layout::kRowMajor);
  sgemm_naive(1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(GemmTest, ShapeValidation) {
  Matrix a(4, 3, Layout::kRowMajor);
  Matrix b(2, 4, Layout::kColMajor);  // inner mismatch
  Matrix c(4, 4, Layout::kRowMajor);
  EXPECT_THROW(sgemm_naive(1.0f, a, b, 0.0f, c), Error);

  Matrix b2(3, 4, Layout::kColMajor);
  Matrix c2(3, 4, Layout::kRowMajor);  // wrong output rows
  EXPECT_THROW(sgemm_naive(1.0f, a, b2, 0.0f, c2), Error);
}

TEST(GemmTest, AlphaBetaSemantics) {
  Matrix a = random_matrix(8, 8, Layout::kRowMajor, 1);
  Matrix b = random_matrix(8, 8, Layout::kColMajor, 2);
  Matrix c(8, 8, Layout::kRowMajor);
  c.fill(1.0f);
  sgemm_naive(0.0f, a, b, 2.0f, c);  // pure scale
  for (float x : c.span()) EXPECT_FLOAT_EQ(x, 2.0f);

  Matrix c2(8, 8, Layout::kRowMajor);
  c2.fill(1.0f);
  sgemm_blocked(0.0f, a, b, 0.0f, c2);  // beta=0 clears
  for (float x : c2.span()) EXPECT_FLOAT_EQ(x, 0.0f);
}

struct GemmShape {
  std::size_t m, n, k;
};

class GemmAgreementTest : public ::testing::TestWithParam<GemmShape> {};

// Float accumulation against the double-accumulated oracle: tolerance must
// grow with the reduction length K (and absorb cancellation near zero via
// the relative-diff floor).
double gemm_tolerance(std::size_t k) { return 1e-5 * double(k); }

TEST_P(GemmAgreementTest, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Matrix a = random_matrix(m, k, Layout::kRowMajor, 10 + m);
  Matrix b = random_matrix(k, n, Layout::kColMajor, 20 + n);
  Matrix ref(m, n, Layout::kRowMajor);
  Matrix out(m, n, Layout::kRowMajor);
  sgemm_naive(1.5f, a, b, 0.0f, ref);
  sgemm_blocked(1.5f, a, b, 0.0f, out);
  EXPECT_LT(max_rel_diff(out.span(), ref.span(), 1e-3), gemm_tolerance(k));
}

TEST_P(GemmAgreementTest, ParallelMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Matrix a = random_matrix(m, k, Layout::kRowMajor, 30 + m);
  Matrix b = random_matrix(k, n, Layout::kColMajor, 40 + n);
  Matrix ref(m, n, Layout::kRowMajor);
  Matrix out(m, n, Layout::kRowMajor);
  sgemm_naive(1.0f, a, b, 0.0f, ref);
  sgemm_parallel(1.0f, a, b, 0.0f, out);
  EXPECT_LT(max_rel_diff(out.span(), ref.span(), 1e-3), gemm_tolerance(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAgreementTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7},
                      GemmShape{16, 16, 16}, GemmShape{128, 128, 8},
                      GemmShape{129, 131, 33},  // ragged vs blocking
                      GemmShape{256, 64, 300},  // K > kKc forces K loop
                      GemmShape{64, 256, 17}));

TEST(GemmTest, AccumulateWithBetaOne) {
  Matrix a = random_matrix(16, 8, Layout::kRowMajor, 5);
  Matrix b = random_matrix(8, 16, Layout::kColMajor, 6);
  Matrix ref(16, 16, Layout::kRowMajor);
  Matrix out(16, 16, Layout::kRowMajor);
  ref.fill(0.5f);
  out.fill(0.5f);
  sgemm_naive(1.0f, a, b, 1.0f, ref);
  sgemm_blocked(1.0f, a, b, 1.0f, out);
  EXPECT_LT(max_rel_diff(out.span(), ref.span(), 1e-3), 2e-5);
}

}  // namespace
}  // namespace ksum::blas
