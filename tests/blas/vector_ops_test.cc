#include "blas/vector_ops.h"

#include <gtest/gtest.h>

namespace ksum::blas {
namespace {

TEST(VectorOpsTest, RowSquaredNorms) {
  Matrix a(2, 3, Layout::kRowMajor);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 0;
  a.at(1, 2) = 4;
  const Vector norms = row_squared_norms(a);
  EXPECT_FLOAT_EQ(norms[0], 9.0f);
  EXPECT_FLOAT_EQ(norms[1], 25.0f);
}

TEST(VectorOpsTest, ColSquaredNorms) {
  Matrix b(3, 2, Layout::kColMajor);
  b.at(0, 0) = 1;
  b.at(1, 0) = 2;
  b.at(2, 0) = 2;
  b.at(0, 1) = 0;
  b.at(1, 1) = 0;
  b.at(2, 1) = 5;
  const Vector norms = col_squared_norms(b);
  EXPECT_FLOAT_EQ(norms[0], 9.0f);
  EXPECT_FLOAT_EQ(norms[1], 25.0f);
}

TEST(VectorOpsTest, Dot) {
  Vector x(3), y(3);
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  y[0] = 4;
  y[1] = -5;
  y[2] = 6;
  EXPECT_DOUBLE_EQ(dot(x.span(), y.span()), 12.0);
  Vector z(2);
  EXPECT_THROW(dot(x.span(), z.span()), Error);
}

TEST(VectorOpsTest, Axpy) {
  Vector x(2), y(2);
  x[0] = 1;
  x[1] = 2;
  y[0] = 10;
  y[1] = 20;
  axpy(3.0f, x.span(), y.span());
  EXPECT_FLOAT_EQ(y[0], 13.0f);
  EXPECT_FLOAT_EQ(y[1], 26.0f);
}

TEST(VectorOpsTest, MaxAbsDiff) {
  Vector x(3), y(3);
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  y[0] = 1;
  y[1] = 2.5f;
  y[2] = 3;
  EXPECT_FLOAT_EQ(max_abs_diff(x.span(), y.span()), 0.5f);
}

TEST(VectorOpsTest, MaxRelDiffUsesFloorNearZero) {
  Vector x(1), y(1);
  x[0] = 1e-20f;
  y[0] = 0.0f;
  EXPECT_LT(max_rel_diff(x.span(), y.span(), 1e-10), 1e-9);
}

TEST(VectorOpsTest, MaxRelDiffDetectsLargeError) {
  Vector x(2), y(2);
  x[0] = 2.0f;
  y[0] = 1.0f;
  x[1] = 1.0f;
  y[1] = 1.0f;
  EXPECT_DOUBLE_EQ(max_rel_diff(x.span(), y.span()), 1.0);
}

}  // namespace
}  // namespace ksum::blas
