#include "blas/gemv.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ksum::blas {
namespace {

TEST(GemvTest, KnownValues) {
  Matrix a(2, 3, Layout::kRowMajor);
  float vals[2][3] = {{1, 2, 3}, {4, 5, 6}};
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) a.at(std::size_t(r), std::size_t(c)) = vals[r][c];
  }
  Vector x(3);
  x[0] = 1;
  x[1] = 0;
  x[2] = -1;
  Vector y(2);
  sgemv(1.0f, a, x.span(), 0.0f, y.span());
  EXPECT_FLOAT_EQ(y[0], -2.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(GemvTest, ColMajorMatrix) {
  Matrix a(2, 2, Layout::kColMajor);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Vector x(2);
  x[0] = 1;
  x[1] = 1;
  Vector y(2);
  sgemv(1.0f, a, x.span(), 0.0f, y.span());
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(GemvTest, AlphaBeta) {
  Matrix a(1, 1, Layout::kRowMajor);
  a.at(0, 0) = 2.0f;
  Vector x(1);
  x[0] = 3.0f;
  Vector y(1);
  y[0] = 10.0f;
  sgemv(2.0f, a, x.span(), 0.5f, y.span());
  EXPECT_FLOAT_EQ(y[0], 2.0f * 6.0f + 5.0f);
}

TEST(GemvTest, ShapeValidation) {
  Matrix a(4, 3, Layout::kRowMajor);
  Vector x(4);  // wrong
  Vector y(4);
  EXPECT_THROW(sgemv(1.0f, a, x.span(), 0.0f, y.span()), Error);
  Vector x2(3);
  Vector y2(3);  // wrong
  EXPECT_THROW(sgemv(1.0f, a, x2.span(), 0.0f, y2.span()), Error);
}

TEST(GemvTest, MatchesManualDotProducts) {
  Rng rng(9);
  Matrix a(33, 17, Layout::kRowMajor);
  for (float& v : a.span()) v = rng.uniform(-1.0f, 1.0f);
  Vector x(17);
  for (float& v : x) v = rng.uniform(-1.0f, 1.0f);
  Vector y(33);
  sgemv(1.0f, a, x.span(), 0.0f, y.span());
  for (std::size_t i = 0; i < 33; ++i) {
    double ref = 0;
    for (std::size_t j = 0; j < 17; ++j) ref += double(a.at(i, j)) * double(x[j]);
    EXPECT_NEAR(y[i], ref, 1e-5);
  }
}

}  // namespace
}  // namespace ksum::blas
