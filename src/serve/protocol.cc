#include "serve/protocol.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"
#include "profile/json.h"

namespace ksum::serve {

namespace {

using profile::Json;

// FNV-1a, 64-bit. Used both for V digests (over float bit patterns) and for
// deriving a fault seed from a request id.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a64_byte(std::uint64_t h, unsigned char byte) {
  return (h ^ byte) * kFnvPrime;
}

std::uint64_t fnv1a64_string(std::string_view text) {
  std::uint64_t h = kFnvOffset;
  for (const char c : text) {
    h = fnv1a64_byte(h, static_cast<unsigned char>(c));
  }
  return h;
}

pipelines::Backend parse_backend(const std::string& name) {
  using pipelines::Backend;
  if (name == "sim-fused") return Backend::kSimFused;
  if (name == "sim-cuda-unfused") return Backend::kSimCudaUnfused;
  if (name == "sim-cublas-unfused") return Backend::kSimCublasUnfused;
  if (name == "cpu-direct") return Backend::kCpuDirect;
  if (name == "cpu-expansion") return Backend::kCpuExpansion;
  throw Error("serve: unknown backend '" + name + "'");
}

// Field accessors over the parsed request object, with type errors rewritten
// to name the field (the parser's own messages only carry byte offsets).
double number_field(const Json& doc, std::string_view key, double fallback) {
  const Json* value = doc.find(key);
  if (value == nullptr) return fallback;
  KSUM_REQUIRE(value->is_number(),
               "serve: field '" + std::string(key) + "' must be a number");
  return value->as_double();
}

// Exclusive upper bound for a double that can be cast to uint64_t: 2^64.
// The double→integer conversion itself is UB when the value is out of range
// (or NaN), so every bound check below must run on the double first.
constexpr double kU64Bound = 18446744073709551616.0;

bool is_u64_representable(double v) {
  return v >= 0 && v < kU64Bound && std::trunc(v) == v;
}

std::size_t size_field(const Json& doc, std::string_view key) {
  const Json* value = doc.find(key);
  KSUM_REQUIRE(value != nullptr,
               "serve: solve request missing '" + std::string(key) + "'");
  KSUM_REQUIRE(value->is_number(),
               "serve: field '" + std::string(key) + "' must be a number");
  const double v = value->as_double();
  KSUM_REQUIRE(v >= 1 && is_u64_representable(v) &&
                   v <= double(std::numeric_limits<std::size_t>::max()),
               "serve: field '" + std::string(key) +
                   "' must be a positive integer");
  return static_cast<std::size_t>(v);
}

std::uint64_t u64_field(const Json& doc, std::string_view key,
                        std::uint64_t fallback) {
  const Json* value = doc.find(key);
  if (value == nullptr) return fallback;
  KSUM_REQUIRE(value->is_number(),
               "serve: field '" + std::string(key) + "' must be a number");
  const double v = value->as_double();
  KSUM_REQUIRE(is_u64_representable(v),
               "serve: field '" + std::string(key) +
                   "' must be a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

bool bool_field(const Json& doc, std::string_view key, bool fallback) {
  const Json* value = doc.find(key);
  if (value == nullptr) return fallback;
  KSUM_REQUIRE(value->is_bool(),
               "serve: field '" + std::string(key) + "' must be a boolean");
  return value->as_bool();
}

}  // namespace

ServeRequest parse_request(const std::string& line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const Error& e) {
    throw Error(std::string("serve: malformed request JSON: ") + e.what());
  }
  KSUM_REQUIRE(doc.is_object(), "serve: request must be a JSON object");

  ServeRequest request;
  if (const Json* id = doc.find("id"); id != nullptr) {
    if (id->is_string()) {
      request.id = id->as_string();
    } else if (id->is_number()) {
      request.id = profile::json_number(id->as_double());
    } else {
      throw Error("serve: field 'id' must be a string or number");
    }
  }

  std::string op = "solve";
  if (const Json* op_field = doc.find("op"); op_field != nullptr) {
    KSUM_REQUIRE(op_field->is_string(), "serve: field 'op' must be a string");
    op = op_field->as_string();
  }
  if (op == "health") {
    request.op = Op::kHealth;
    return request;
  }
  if (op == "stats") {
    request.op = Op::kStats;
    return request;
  }
  KSUM_REQUIRE(op == "solve", "serve: unknown op '" + op + "'");
  request.op = Op::kSolve;

  request.spec.m = size_field(doc, "m");
  request.spec.n = size_field(doc, "n");
  request.spec.k = size_field(doc, "k");
  request.spec.seed = u64_field(doc, "seed", 42);
  const double h = number_field(doc, "h", 1.0);
  KSUM_REQUIRE(h > 0, "serve: field 'h' must be positive");
  request.spec.bandwidth = static_cast<float>(h);

  if (const Json* backend = doc.find("backend"); backend != nullptr) {
    KSUM_REQUIRE(backend->is_string(),
                 "serve: field 'backend' must be a string");
    request.backend = parse_backend(backend->as_string());
  }
  request.robust = bool_field(doc, "robust", true);
  request.verify = bool_field(doc, "verify", false);
  request.deadline_ms = number_field(doc, "deadline_ms", -1);
  request.fault_rate = number_field(doc, "fault_rate", 0);
  KSUM_REQUIRE(request.fault_rate >= 0 && request.fault_rate <= 1,
               "serve: field 'fault_rate' must be in [0, 1]");
  request.fault_seed = u64_field(doc, "fault_seed", 0);
  return request;
}

std::uint64_t effective_fault_seed(const ServeRequest& request) {
  if (request.fault_seed != 0) return request.fault_seed;
  const std::uint64_t derived = fnv1a64_string(request.id);
  return derived != 0 ? derived : 1;
}

std::uint64_t attempt_fault_seed(std::uint64_t base, int attempt) {
  // splitmix64 finalizer: spreads (base, attempt) into far-apart seeds so
  // every retry draws an independent, reproducible fault pattern.
  std::uint64_t z =
      base + (static_cast<std::uint64_t>(attempt) + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1;
}

std::string digest_hex(std::span<const float> values) {
  std::uint64_t h = kFnvOffset;
  for (const float v : values) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
    h = fnv1a64_byte(h, static_cast<unsigned char>(bits & 0xff));
    h = fnv1a64_byte(h, static_cast<unsigned char>((bits >> 8) & 0xff));
    h = fnv1a64_byte(h, static_cast<unsigned char>((bits >> 16) & 0xff));
    h = fnv1a64_byte(h, static_cast<unsigned char>((bits >> 24) & 0xff));
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buffer);
}

std::string error_reply(const std::string& id, StatusCode status,
                        const std::string& message) {
  Json reply = Json::object();
  reply.set("id", id);
  reply.set("status", to_string(status));
  if (!message.empty()) reply.set("error", message);
  return reply.dump_compact();
}

std::string solve_reply(const std::string& id, const ServeRequest& request,
                        const SolveReplyInfo& info,
                        std::span<const float> v) {
  Json reply = Json::object();
  reply.set("id", id);
  reply.set("status", to_string(StatusCode::kOk));
  reply.set("m", std::uint64_t(request.spec.m));
  reply.set("n", std::uint64_t(request.spec.n));
  reply.set("k", std::uint64_t(request.spec.k));
  reply.set("backend", pipelines::to_string(info.backend));
  reply.set("serve_attempts", info.serve_attempts);
  reply.set("solver_attempts", info.solver_attempts);
  reply.set("faults_detected", info.faults_detected);
  reply.set("fallback_used", info.fallback_used);
  reply.set("degraded", info.degraded);
  reply.set("modelled_ms", info.modelled_seconds * 1e3);
  reply.set("energy_j", info.energy_joules);
  if (info.shards > 1) reply.set("shards", std::uint64_t(info.shards));
  reply.set("digest", digest_hex(v));
  if (info.verified || info.oracle_rel_error != 0) {
    reply.set("oracle_rel_error", info.oracle_rel_error);
    reply.set("verified", info.verified);
  }
  return reply.dump_compact();
}

}  // namespace ksum::serve
