#include "serve/server.h"

#include <algorithm>
#include <cstdio>

#include "blas/vector_ops.h"
#include "common/error.h"
#include "core/exact.h"
#include "robust/fault_plan.h"
#include "shard/plan.h"
#include "workload/point_generators.h"

namespace ksum::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

// Conservative upper bound on the arena run_pipeline will ask for after the
// solver's padding: dimensions rounded past any lcm(tile edge, 128)
// alignment in the candidate set, staging sized for the smallest tile_n.
std::size_t conservative_arena_bytes(const workload::ProblemSpec& spec) {
  return pipelines::required_device_bytes(
      align_up(spec.m, 256), align_up(spec.n, 256), align_up(spec.k, 64),
      /*with_intermediate=*/true, /*tile_n=*/32);
}

bool spec_equal(const workload::ProblemSpec& a,
                const workload::ProblemSpec& b) {
  return a.m == b.m && a.n == b.n && a.k == b.k &&
         a.bandwidth == b.bandwidth && a.distribution == b.distribution &&
         a.seed == b.seed;
}

}  // namespace

Server::Server(const ServerOptions& options,
               std::function<void(const std::string&)> sink)
    : options_(options),
      sink_(std::move(sink)),
      queue_(options.queue_capacity),
      pool_(options.workers) {
  KSUM_REQUIRE(options_.workers >= 1, "server needs at least one worker");
  KSUM_REQUIRE(options_.max_attempts >= 1,
               "server max_attempts must be >= 1");
  KSUM_REQUIRE(options_.default_deadline_ms >= 0 &&
                   options_.backoff_base_ms >= 0,
               "server deadline/backoff must be >= 0");
  KSUM_REQUIRE(options_.run.fault_injector == nullptr &&
                   options_.run.cancel == nullptr &&
                   options_.run.warm_device == nullptr,
               "server base run options must not carry an injector, cancel "
               "token, or warm device — those are per-request");
  tuning_cache_.set_profile(options_.profile);
}

Server::~Server() { drain(); }

void Server::start() {
  KSUM_REQUIRE(!started_.exchange(true), "Server::start called twice");
  runner_ = std::thread([this] {
    // Worker bodies swallow every per-request failure, so parallel_for only
    // throws on a bug in the loops themselves; surface it without taking
    // down the process.
    try {
      pool_.parallel_for(static_cast<std::size_t>(options_.workers),
                         [this](std::size_t w) { worker_loop(w); });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ksum-serve: worker pool failed: %s\n", e.what());
    }
  });
}

void Server::drain() {
  queue_.close();
  if (started_.load() && !drained_.exchange(true)) {
    runner_.join();
  }
}

bool Server::draining() const { return queue_.closed(); }

void Server::reply(const std::string& line) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_(line);
}

profile::Json Server::stats_json() const {
  return stats_.to_json(options_.workers, options_.queue_capacity,
                        queue_.depth());
}

std::string Server::health_line(const std::string& id) const {
  profile::Json j = profile::Json::object();
  j.set("id", id);
  j.set("status", to_string(StatusCode::kOk));
  j.set("op", "health");
  j.set("state", draining() ? "draining" : "serving");
  j.set("workers", options_.workers);
  j.set("queue_depth", std::uint64_t(queue_.depth()));
  j.set("in_flight", stats_.in_flight());
  return j.dump_compact();
}

void Server::handle_line(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return;
  if (line[first] == '#') return;  // trace-file comments
  stats_.record_received();

  ServeRequest request;
  try {
    request = parse_request(line);
  } catch (const Error& e) {
    // The id may be unparseable too; reply with an empty id so the client
    // can at least count invalids.
    stats_.record_status(StatusCode::kInvalid);
    reply(error_reply("", StatusCode::kInvalid, e.what()));
    return;
  }
  if (request.id.empty()) {
    request.id =
        "auto-" + std::to_string(auto_id_.fetch_add(1) + 1);
  }

  // Control-plane ops answer at intake — they must stay responsive while
  // the queue is full or draining.
  if (request.op == Op::kHealth) {
    reply(health_line(request.id));
    return;
  }
  if (request.op == Op::kStats) {
    // A stats reply must never kill the daemon: to_json validates its own
    // record and throws on any inconsistency it cannot repair.
    try {
      profile::Json j = profile::Json::object();
      j.set("id", request.id);
      j.set("status", to_string(StatusCode::kOk));
      j.set("op", "stats");
      j.set("stats", stats_json());
      reply(j.dump_compact());
    } catch (const Error& e) {
      reply(error_reply(request.id, StatusCode::kInternal, e.what()));
    }
    return;
  }

  // Admission bounds are enforced before the queue so an oversized request
  // can never reach (or exhaust) a worker's device. With max_shards > 1 a
  // shape oversized on exactly one of M or N may instead be split across
  // per-device shards (docs/SHARDING.md): the merged reply is bit-identical
  // to what one big device would have produced, so routing through the
  // planner is invisible to the client apart from the `shards` field.
  std::size_t shard_count = 1;
  shard::ShardAxis shard_axis = shard::ShardAxis::kM;
  const bool m_over = request.spec.m > options_.max_m;
  const bool n_over = request.spec.n > options_.max_n;
  if (m_over || n_over || request.spec.k > options_.max_k) {
    std::string bounds = "admission bounds (max ";
    bounds += std::to_string(options_.max_m);
    bounds += 'x';
    bounds += std::to_string(options_.max_n);
    bounds += " K=";
    bounds += std::to_string(options_.max_k);
    bounds += ')';
    const bool simulated =
        request.backend != pipelines::Backend::kCpuDirect &&
        request.backend != pipelines::Backend::kCpuExpansion;
    std::string refusal;
    if (request.spec.k > options_.max_k) {
      // K is the reduction depth — both shard axes replicate it whole.
      refusal = "K exceeds ";
      refusal += bounds;
      refusal += " and does not shard";
    } else if (m_over && n_over) {
      refusal = "shape exceeds ";
      refusal += bounds;
      refusal += " on both M and N";
    } else if (options_.max_shards <= 1) {
      refusal = "shape exceeds ";
      refusal += bounds;
    } else if (!simulated) {
      refusal = "shape exceeds ";
      refusal += bounds;
      refusal += " and host backends do not shard";
    } else if (n_over && request.backend != pipelines::Backend::kSimFused) {
      refusal = "shape exceeds ";
      refusal += bounds;
      refusal += " on N and N-axis sharding requires the fused backend";
    } else {
      const std::size_t dim = m_over ? request.spec.m : request.spec.n;
      const std::size_t limit = m_over ? options_.max_m : options_.max_n;
      const std::size_t needed =
          shard::min_shards_for_limit(dim, /*align=*/128, limit);
      if (needed == 0 || needed > options_.max_shards) {
        refusal = "shape exceeds ";
        refusal += bounds;
        refusal += " even split across ";
        refusal += std::to_string(options_.max_shards);
        refusal += " shard(s)";
      } else {
        shard_count = needed;
        shard_axis = m_over ? shard::ShardAxis::kM : shard::ShardAxis::kN;
      }
    }
    if (!refusal.empty()) {
      stats_.record_status(StatusCode::kInvalid);
      reply(error_reply(request.id, StatusCode::kInvalid, refusal));
      return;
    }
  }

  Pending item;
  item.request = std::move(request);
  item.shard_count = shard_count;
  item.shard_axis = shard_axis;
  item.enqueued = Clock::now();
  const double deadline_ms = item.request.deadline_ms >= 0
                                 ? item.request.deadline_ms
                                 : options_.default_deadline_ms;
  item.deadline =
      deadline_ms > 0
          ? item.enqueued + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    deadline_ms))
          : Clock::time_point::max();

  const std::string id = item.request.id;
  switch (queue_.try_push(std::move(item))) {
    case PushResult::kAccepted:
      stats_.record_accepted();
      return;
    case PushResult::kShed:
      stats_.record_status(StatusCode::kOverloaded);
      reply(error_reply(id, StatusCode::kOverloaded,
                        "admission queue full"));
      return;
    case PushResult::kClosed:
      stats_.record_status(StatusCode::kOverloaded);
      reply(error_reply(id, StatusCode::kOverloaded, "server draining"));
      return;
  }
}

void Server::worker_loop(std::size_t worker) {
  (void)worker;
  WorkerContext ctx;
  while (auto item = queue_.pop()) {
    stats_.enter_flight();
    try {
      run_solve(ctx, *item);
    } catch (const std::exception& e) {
      // run_solve already classifies everything it expects; this is the
      // last-resort belt so one poisoned request can never kill the loop.
      stats_.record_status(StatusCode::kInternal);
      reply(error_reply(item->request.id, StatusCode::kInternal, e.what()));
    } catch (...) {
      stats_.record_status(StatusCode::kInternal);
      reply(error_reply(item->request.id, StatusCode::kInternal,
                        "unknown exception"));
    }
    stats_.leave_flight();
  }
}

const workload::Instance& Server::instance_for(
    WorkerContext& ctx, const workload::ProblemSpec& spec) {
  if (!ctx.cached_spec.has_value() || !spec_equal(*ctx.cached_spec, spec)) {
    ctx.cached_instance = workload::make_instance(spec);
    ctx.cached_spec = spec;
  }
  return *ctx.cached_instance;
}

gpusim::Device* Server::warm_device_for(WorkerContext& ctx,
                                        const workload::ProblemSpec& spec) {
  const std::size_t needed = conservative_arena_bytes(spec);
  if (!ctx.device.has_value() || ctx.device->memory().capacity() < needed) {
    ctx.device.reset();
    ctx.device.emplace(options_.run.device, needed);
  }
  return &*ctx.device;
}

void Server::run_solve(WorkerContext& ctx, const Pending& item) {
  const ServeRequest& request = item.request;

  exec::CancelToken token;
  if (item.deadline != Clock::time_point::max()) {
    token.set_deadline(item.deadline);
  }

  SolveReplyInfo info;
  info.backend = request.backend;
  std::string out_line;
  try {
    const workload::Instance& instance = instance_for(ctx, request.spec);
    const core::KernelParams params = core::params_from_spec(request.spec);

    pipelines::RunOptions run = options_.run;
    run.cancel = &token;
    if (request.robust) {
      run.checks.enabled = true;
      run.recovery.enabled = true;
    }
    if (run.tree.enabled() && (request.backend != pipelines::Backend::kSimFused ||
                               request.fault_rate > 0)) {
      // The daemon-wide treecode budget only applies where the ε contract
      // holds: fused-backend requests without fault injection. Everything
      // else runs the dense path it would have run without --tree-eps.
      run.tree = tree::TreeSpec{};
    }

    const bool simulated = request.backend != pipelines::Backend::kCpuDirect &&
                           request.backend != pipelines::Backend::kCpuExpansion;
    const bool sharded = item.shard_count > 1;
    if (sharded) {
      // Admission routed this oversized shape through the shard planner:
      // each shard builds its own device sized to its slice, so the
      // worker's warm device (capped by the admission bounds) is not used.
      run.shards.count = item.shard_count;
      run.shards.axis = item.shard_axis;
    }
    if (simulated && !sharded) {
      run.warm_device = warm_device_for(ctx, request.spec);
    }
    if (simulated) {
      if (options_.autotune) {
        tune::TuneOptions tune_options;
        tune_options.device = run.device;
        tune_options.timing = run.timing;
        tune_options.energy = run.energy;
        tune_options.profile = options_.profile;
        tune_options.layout = run.mainloop.layout;
        tuning_cache_.get_or_tune(request.spec.m, request.spec.n,
                                  request.spec.k, request.backend,
                                  tune_options);
        run.geometry_resolver = &tuning_cache_;
      }
    }

    const std::uint64_t base_seed = effective_fault_seed(request);
    pipelines::SolveResult result;
    bool flagged = false;
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
      token.check();
      if (attempt > 0) {
        stats_.record_retry();
        ++info.serve_attempts;
        if (options_.backoff_base_ms > 0) {
          const double ms = options_.backoff_base_ms *
                            double(std::uint64_t(1) << (attempt - 1));
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
        }
      }
      std::unique_ptr<robust::FaultPlan> plan;
      if (request.fault_rate > 0 && simulated) {
        if (sharded) {
          // One injector cannot say which device a fault lives on; derive
          // an independent, reproducible plan per (shard, dispatch) from
          // this attempt's seed instead.
          const std::uint64_t seed = attempt_fault_seed(base_seed, attempt);
          const double rate = request.fault_rate;
          run.shards.injector_factory =
              [seed, rate](std::size_t s, int d)
              -> std::shared_ptr<gpusim::FaultInjector> {
            return std::make_shared<robust::FaultPlan>(
                robust::FaultPlanConfig::uniform(
                    shard::shard_fault_seed(seed, s, d), rate));
          };
        } else {
          plan = std::make_unique<robust::FaultPlan>(
              robust::FaultPlanConfig::uniform(
                  attempt_fault_seed(base_seed, attempt), request.fault_rate));
          run.fault_injector = plan.get();
        }
      }
      result = pipelines::solve(instance, params, request.backend, run);
      run.fault_injector = nullptr;
      if (result.shards.has_value()) info.shards = result.shards->count();
      info.solver_attempts += result.recovery.attempts;
      info.faults_detected += result.recovery.faults_detected;
      info.fallback_used = info.fallback_used || result.recovery.fallback_used;
      flagged = result.recovery.gave_up;
      if (!flagged) break;
    }
    stats_.record_faults_detected(info.faults_detected);

    if (flagged) {
      if (!options_.degrade_to_host) {
        stats_.record_status(StatusCode::kFaultUnrecovered);
        reply(error_reply(request.id, StatusCode::kFaultUnrecovered,
                          "every recovery attempt stayed flagged"));
        stats_.record_wall_seconds(
            std::chrono::duration<double>(Clock::now() - item.enqueued)
                .count());
        return;
      }
      // Degraded fallback: the fault-free host expansion path. Slower and
      // without the simulator's report, but the reply stays trustworthy.
      token.check();
      pipelines::RunOptions host_run = options_.run;
      host_run.cancel = &token;
      host_run.tree = tree::TreeSpec{};  // no fused near field on the host
      result = pipelines::solve(instance, params,
                                pipelines::Backend::kCpuExpansion, host_run);
      info.backend = pipelines::Backend::kCpuExpansion;
      info.degraded = true;
      stats_.record_degraded();
    }

    if (request.verify) {
      const pipelines::SolveResult oracle = pipelines::solve(
          instance, params, pipelines::Backend::kCpuDirect);
      info.oracle_rel_error =
          blas::max_rel_diff(result.v.span(), oracle.v.span(), 1e-2);
      info.verified = info.oracle_rel_error < 5e-3;
      if (!info.verified) {
        // Wrong answer with nothing flagged: silent corruption — never
        // report the result as ok.
        stats_.record_status(StatusCode::kInternal);
        reply(error_reply(request.id, StatusCode::kInternal,
                          "result failed oracle verification"));
        stats_.record_wall_seconds(
            std::chrono::duration<double>(Clock::now() - item.enqueued)
                .count());
        return;
      }
    }

    if (result.report.has_value()) {
      info.modelled_seconds = result.report->seconds;
      info.energy_joules = result.report->energy.total();
      stats_.record_modelled_seconds(result.report->seconds);
    }
    out_line = solve_reply(request.id, request, info, result.v.span());
    stats_.record_status(StatusCode::kOk);
  } catch (const exec::Cancelled& e) {
    stats_.record_status(StatusCode::kTimeout);
    out_line = error_reply(request.id, StatusCode::kTimeout, e.what());
  } catch (const InternalError& e) {
    stats_.record_status(StatusCode::kInternal);
    out_line = error_reply(request.id, StatusCode::kInternal, e.what());
  } catch (const Error& e) {
    stats_.record_status(StatusCode::kInvalid);
    out_line = error_reply(request.id, StatusCode::kInvalid, e.what());
  }
  stats_.record_wall_seconds(
      std::chrono::duration<double>(Clock::now() - item.enqueued).count());
  reply(out_line);
}

}  // namespace ksum::serve
