// Transports that feed request lines into a Server and write its replies.
//
//   run_stdio       — reads newline-delimited requests from an istream until
//                     EOF, then drains. The caller's reply sink (given to
//                     the Server) writes wherever it likes — ksum-serve
//                     points it at stdout with a flush per line.
//   run_unix_socket — AF_UNIX stream listener; each connection speaks the
//                     same line protocol. The Server's sink must be the
//                     ReplyHub's deliver(): replies fan out to every live
//                     connection (clients correlate by id; a single client
//                     is the common shape). Accept/read loops poll with a
//                     short timeout so install_signal_handlers()'s SIGTERM/
//                     SIGINT flag is honoured promptly: the listener stops,
//                     buffered lines finish, and the server drains.
//
// Both return after the server has fully drained (every admitted request
// answered).
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "serve/server.h"

namespace ksum::serve {

/// Installs SIGTERM/SIGINT handlers that set the shutdown flag the socket
/// transport polls. Safe to call once per process.
void install_signal_handlers();

/// True once SIGTERM/SIGINT was received (or request_shutdown() called).
bool shutdown_requested();

/// Programmatic equivalent of receiving SIGTERM (tests).
void request_shutdown();

/// Clears the shutdown flag so a test can drive run_unix_socket again in
/// the same process. Never call while a transport loop is running.
void reset_shutdown();

/// Fans reply lines out to the socket transport's live connections. Build
/// the Server with `sink = [&hub](const std::string& l) { hub.deliver(l); }`
/// and hand the same hub to run_unix_socket.
class ReplyHub {
 public:
  /// Writes line + '\n' to every registered connection (best effort — a
  /// vanished client just drops its copy).
  void deliver(const std::string& line);

  void add(int fd);
  void remove(int fd);

 private:
  std::mutex mutex_;
  std::vector<int> fds_;
};

/// Serves until EOF on `in`, then drains. Returns the number of request
/// lines consumed.
std::size_t run_stdio(Server& server, std::istream& in);

/// Binds `path` (unlinking a stale socket file first), serves until
/// shutdown_requested(), then drains and removes the socket file. Throws
/// ksum::Error when the socket cannot be created or bound.
void run_unix_socket(Server& server, ReplyHub& hub, const std::string& path);

}  // namespace ksum::serve
