// ksum-serve wire protocol: newline-delimited JSON request/reply pairs.
//
// One request per line, one reply per line (replies may interleave across
// requests — the echoed `id` correlates them). The grammar is specified in
// docs/SERVING.md; this header is the single implementation both transports
// (stdio, unix socket) and the in-process test harness share.
//
// Requests:
//   {"op":"solve","id":"r1","m":256,"n":128,"k":8,
//    "seed":42,"h":1.0,"backend":"sim-fused","robust":true,"verify":false,
//    "deadline_ms":50,"fault_rate":0.01,"fault_seed":7}
//   {"op":"health","id":"h1"}
//   {"op":"stats","id":"s1"}
//
// Replies always carry "id" and "status" (common/status.h spellings). A
// solve reply's payload fields (digest, modelled_ms, energy_j, recovery
// counters) are a pure function of the request — no wall-clock values — so
// successful replies are byte-identical for any worker count or arrival
// order (the serving extension of the docs/PARALLELISM.md contract).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "pipelines/solver.h"
#include "workload/problem_spec.h"

namespace ksum::serve {

enum class Op { kSolve, kHealth, kStats };

struct ServeRequest {
  std::string id;          // echoed on the reply; "" = transport assigns
  Op op = Op::kSolve;
  workload::ProblemSpec spec;
  pipelines::Backend backend = pipelines::Backend::kSimFused;
  /// Enable ABFT checks + detect→retry→fallback recovery for this request.
  bool robust = true;
  /// Cross-check against the host oracle (slow; test traffic only).
  bool verify = false;
  /// Per-request deadline in milliseconds; < 0 = use the server default,
  /// 0 = no deadline.
  double deadline_ms = -1;
  /// Per-opportunity fault-injection probability (0 = fault-free).
  double fault_rate = 0;
  /// Base seed for this request's fault streams; 0 derives one from `id`,
  /// so every request draws an independent, reproducible pattern.
  std::uint64_t fault_seed = 0;
};

/// Parses one request line. Throws ksum::Error on malformed JSON, unknown
/// op/backend, missing solve dimensions, or out-of-range fields — the server
/// turns that into an immediate `invalid` reply. Admission bounds (max
/// shape) are the server's to enforce, not the parser's.
ServeRequest parse_request(const std::string& line);

/// Seed actually used for a request's fault plan: fault_seed when nonzero,
/// otherwise an FNV-1a hash of the id (never 0).
std::uint64_t effective_fault_seed(const ServeRequest& request);

/// Fault-plan seed for serve-level attempt `attempt` (0-based) of a request
/// whose base seed is effective_fault_seed(). Part of the deterministic
/// contract: a request's outcome is reproducible from (request, attempt)
/// alone, so the fault-campaign oracle can replay it exactly.
std::uint64_t attempt_fault_seed(std::uint64_t base, int attempt);

/// FNV-1a64 over the little-endian bit patterns of the floats, as 16 hex
/// digits. The reply's `digest` commits to every bit of V without shipping
/// the vector.
std::string digest_hex(std::span<const float> values);

/// Reply builders — each returns one complete single-line JSON document
/// (no trailing newline). `error_reply` is for every non-payload outcome;
/// `message` is omitted when empty.
std::string error_reply(const std::string& id, StatusCode status,
                        const std::string& message);

struct SolveReplyInfo {
  pipelines::Backend backend = pipelines::Backend::kSimFused;
  /// Serve-level attempts consumed (1 = first try succeeded).
  int serve_attempts = 1;
  /// Aggregated solver-level recovery counters across serve attempts.
  int solver_attempts = 0;
  int faults_detected = 0;
  bool fallback_used = false;
  /// True when the request fell back to the fault-free host path after all
  /// simulated attempts stayed flagged (status remains ok).
  bool degraded = false;
  double modelled_seconds = 0;  // 0 for host backends
  double energy_joules = 0;     // 0 for host backends
  double oracle_rel_error = 0;  // only with verify
  bool verified = false;
  /// Shards the request was split into at admission (docs/SHARDING.md).
  /// The reply emits a `shards` field only when > 1, so single-device
  /// replies are byte-identical to the pre-sharding protocol.
  std::size_t shards = 1;
};

std::string solve_reply(const std::string& id, const ServeRequest& request,
                        const SolveReplyInfo& info,
                        std::span<const float> v);

}  // namespace ksum::serve
