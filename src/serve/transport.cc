#include "serve/transport.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <memory>

#include "common/error.h"

namespace ksum::serve {

namespace {

std::atomic<bool> g_shutdown{false};

void handle_signal(int) { g_shutdown.store(true); }

// One connected client's read side: accumulates bytes into lines and feeds
// the server. Replies go through the ReplyHub, never through this class.
class Connection {
 public:
  Connection(int fd, Server& server, ReplyHub& hub)
      : fd_(fd), server_(server), hub_(hub) {
    hub_.add(fd_);
  }
  ~Connection() {
    hub_.remove(fd_);
    ::close(fd_);
  }

  int fd() const { return fd_; }

  /// Pumps readable bytes into handle_line; false once the peer closed.
  bool pump() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      // SIGTERM/SIGINT handlers are installed without SA_RESTART, so an
      // interrupted recv is routine — keep the connection and re-poll.
      return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
    }
    if (n == 0) {
      // Flush a final unterminated line before treating EOF as close.
      if (!buffer_.empty()) {
        server_.handle_line(buffer_);
        buffer_.clear();
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buffer_.find('\n', start);
      if (nl == std::string::npos) break;
      server_.handle_line(buffer_.substr(start, nl - start));
      start = nl + 1;
    }
    buffer_.erase(0, start);
    return true;
  }

 private:
  const int fd_;
  Server& server_;
  ReplyHub& hub_;
  std::string buffer_;
};

}  // namespace

void install_signal_handlers() {
  struct sigaction action = {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

bool shutdown_requested() { return g_shutdown.load(); }

void request_shutdown() { g_shutdown.store(true); }

void reset_shutdown() { g_shutdown.store(false); }

void ReplyHub::deliver(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  for (const int fd : fds_) {
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) break;  // client went away; drop its copy
      off += static_cast<std::size_t>(n);
    }
  }
}

void ReplyHub::add(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  fds_.push_back(fd);
}

void ReplyHub::remove(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
}

std::size_t run_stdio(Server& server, std::istream& in) {
  server.start();
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    server.handle_line(line);
  }
  server.drain();
  return lines;
}

void run_unix_socket(Server& server, ReplyHub& hub, const std::string& path) {
  KSUM_REQUIRE(path.size() < sizeof(sockaddr_un{}.sun_path),
               "unix socket path too long: " + path);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  KSUM_REQUIRE(listener >= 0, std::string("socket(): ") + strerror(errno));

  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = strerror(errno);
    ::close(listener);
    throw Error("ksum-serve: bind(" + path + "): " + message);
  }
  if (::listen(listener, 16) != 0) {
    const std::string message = strerror(errno);
    ::close(listener);
    ::unlink(path.c_str());
    throw Error("ksum-serve: listen(" + path + "): " + message);
  }

  server.start();
  std::vector<std::unique_ptr<Connection>> connections;
  while (!shutdown_requested()) {
    // Poll the listener plus every open connection with a short timeout so
    // the shutdown flag is observed within ~100 ms.
    std::vector<pollfd> fds;
    fds.push_back({listener, POLLIN, 0});
    for (const auto& connection : connections) {
      fds.push_back({connection->fd(), POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    // Only the connections that were actually polled have a pollfd slot:
    // fds[i + 1] pairs with connections[i] for i < polled. A connection
    // accepted below lands past `polled` and waits for the next poll round.
    const std::size_t polled = connections.size();
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) {
        connections.push_back(
            std::make_unique<Connection>(fd, server, hub));
      }
    }
    for (std::size_t i = polled; i-- > 0;) {
      const short revents = fds[i + 1].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!connections[i]->pump()) {
          connections.erase(connections.begin() +
                            static_cast<std::ptrdiff_t>(i));
        }
      }
    }
  }

  ::close(listener);
  // Drain before dropping connections: in-flight replies still reach the
  // clients that are waiting for them.
  server.drain();
  connections.clear();
  ::unlink(path.c_str());
}

}  // namespace ksum::serve
