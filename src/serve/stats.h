// Server observability: shed/retry/degrade counters, per-status totals, and
// latency percentiles, exported as the ksum-serve-v1 JSON record.
//
// Two latency distributions are tracked deliberately:
//   modelled — the pipeline's simulated seconds for ok replies. A pure
//              function of the request stream, so its percentiles are
//              byte-stable across runs and CI-gateable (bench_compare.py).
//   wall     — host enqueue→reply time for every completed request. Real
//              clock, machine-dependent; reported for operators, never
//              gated.
// Percentiles use the nearest-rank method on the sorted sample.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "profile/json.h"

namespace ksum::serve {

/// Nearest-rank percentile (p in [0, 100]) of an unsorted sample; 0 when
/// the sample is empty.
double percentile(std::vector<double> sample, double p);

struct LatencySummary {
  std::size_t count = 0;
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
};

class ServeStats {
 public:
  void record_received() { received_.fetch_add(1, std::memory_order_relaxed); }
  void record_accepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void record_status(StatusCode code) {
    by_status_[static_cast<std::size_t>(code)].fetch_add(
        1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_retry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void record_degraded() { degraded_.fetch_add(1, std::memory_order_relaxed); }
  void record_faults_detected(int n) {
    faults_detected_.fetch_add(static_cast<std::uint64_t>(n < 0 ? 0 : n),
                               std::memory_order_relaxed);
  }
  void record_modelled_seconds(double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    modelled_seconds_.push_back(seconds);
  }
  void record_wall_seconds(double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    wall_seconds_.push_back(seconds);
  }
  void enter_flight() { in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void leave_flight() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

  std::uint64_t received() const { return received_.load(); }
  std::uint64_t accepted() const { return accepted_.load(); }
  std::uint64_t completed() const { return completed_.load(); }
  std::uint64_t by_status(StatusCode code) const {
    return by_status_[static_cast<std::size_t>(code)].load();
  }
  std::uint64_t retries() const { return retries_.load(); }
  std::uint64_t degraded() const { return degraded_.load(); }
  std::uint64_t faults_detected() const { return faults_detected_.load(); }
  std::uint64_t in_flight() const { return in_flight_.load(); }

  LatencySummary modelled_summary() const;
  LatencySummary wall_summary() const;

  /// The ksum-serve-v1 record (validated before returning). `workers` and
  /// `queue_capacity` describe the server configuration; `queue_depth` /
  /// `in_flight` are the gauges at snapshot time.
  profile::Json to_json(int workers, std::size_t queue_capacity,
                        std::size_t queue_depth) const;

 private:
  static constexpr std::size_t kStatusCount = 6;
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> by_status_[kStatusCount] = {};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> faults_detected_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  mutable std::mutex mutex_;
  std::vector<double> modelled_seconds_;
  std::vector<double> wall_seconds_;
};

/// Throws ksum::Error unless `record` is a well-formed ksum-serve-v1
/// document (schema tag, counters object with every status spelling,
/// latency_ms.modelled/.wall summaries with consistent ordering).
void validate_serve_json(const profile::Json& record);

}  // namespace ksum::serve
