#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/error.h"

namespace ksum::serve {

namespace {

using profile::Json;

LatencySummary summarise(std::vector<double> sample) {
  LatencySummary out;
  out.count = sample.size();
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  const auto rank = [&](double p) {
    const std::size_t r = static_cast<std::size_t>(
        std::ceil(p / 100.0 * double(sample.size())));
    return sample[r == 0 ? 0 : r - 1];
  };
  out.p50 = rank(50);
  out.p90 = rank(90);
  out.p99 = rank(99);
  out.max = sample.back();
  return out;
}

Json summary_to_json(const LatencySummary& summary) {
  Json j = Json::object();
  j.set("count", std::uint64_t(summary.count));
  j.set("p50", summary.p50 * 1e3);
  j.set("p90", summary.p90 * 1e3);
  j.set("p99", summary.p99 * 1e3);
  j.set("max", summary.max * 1e3);
  return j;
}

void validate_summary(const Json& j, const char* which) {
  for (const char* key : {"count", "p50", "p90", "p99", "max"}) {
    KSUM_REQUIRE(j.has(key) && j.at(key).is_number(),
                 std::string("ksum-serve-v1: latency_ms.") + which +
                     " missing numeric '" + key + "'");
  }
  KSUM_REQUIRE(j.at("p50").as_double() <= j.at("p99").as_double() &&
                   j.at("p99").as_double() <= j.at("max").as_double(),
               std::string("ksum-serve-v1: latency_ms.") + which +
                   " percentiles out of order");
}

}  // namespace

double percentile(std::vector<double> sample, double p) {
  KSUM_REQUIRE(p >= 0 && p <= 100, "percentile p must be in [0, 100]");
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const std::size_t r = static_cast<std::size_t>(
      std::ceil(p / 100.0 * double(sample.size())));
  return sample[r == 0 ? 0 : r - 1];
}

LatencySummary ServeStats::modelled_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summarise(modelled_seconds_);
}

LatencySummary ServeStats::wall_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summarise(wall_seconds_);
}

Json ServeStats::to_json(int workers, std::size_t queue_capacity,
                         std::size_t queue_depth) const {
  Json record = Json::object();
  record.set("schema", "ksum-serve-v1");
  record.set("workers", workers);
  record.set("queue_capacity", std::uint64_t(queue_capacity));
  record.set("queue_depth", std::uint64_t(queue_depth));
  record.set("in_flight", in_flight());

  Json counters = Json::object();
  counters.set("received", received());
  counters.set("accepted", accepted());
  // record_status bumps the per-status cell and completed_ as two separate
  // relaxed increments, so a concurrent snapshot can catch them mid-update.
  // Load each status cell once and report completed as their sum: the
  // emitted record is then self-consistent by construction, which the
  // schema validator requires.
  constexpr StatusCode kAllStatuses[] = {
      StatusCode::kOk,         StatusCode::kInvalid,
      StatusCode::kTimeout,    StatusCode::kOverloaded,
      StatusCode::kFaultUnrecovered, StatusCode::kInternal};
  std::uint64_t snapshot[std::size(kAllStatuses)] = {};
  std::uint64_t status_total = 0;
  for (std::size_t i = 0; i < std::size(kAllStatuses); ++i) {
    snapshot[i] = by_status(kAllStatuses[i]);
    status_total += snapshot[i];
  }
  counters.set("completed", status_total);
  std::uint64_t overloaded = 0;
  for (std::size_t i = 0; i < std::size(kAllStatuses); ++i) {
    counters.set(to_string(kAllStatuses[i]), snapshot[i]);
    if (kAllStatuses[i] == StatusCode::kOverloaded) overloaded = snapshot[i];
  }
  // "shed" is the operator-facing alias for overloaded replies; retries are
  // serve-level re-submissions past the first attempt.
  counters.set("shed", overloaded);
  counters.set("retries", retries());
  counters.set("degraded", degraded());
  counters.set("faults_detected", faults_detected());
  record.set("counters", std::move(counters));

  Json latency = Json::object();
  latency.set("modelled", summary_to_json(modelled_summary()));
  latency.set("wall", summary_to_json(wall_summary()));
  record.set("latency_ms", std::move(latency));

  validate_serve_json(record);
  return record;
}

void validate_serve_json(const Json& record) {
  KSUM_REQUIRE(record.is_object(), "ksum-serve-v1: record must be an object");
  KSUM_REQUIRE(record.has("schema") && record.at("schema").is_string() &&
                   record.at("schema").as_string() == "ksum-serve-v1",
               "ksum-serve-v1: missing schema tag");
  for (const char* key : {"workers", "queue_capacity", "queue_depth",
                          "in_flight"}) {
    KSUM_REQUIRE(record.has(key) && record.at(key).is_number(),
                 std::string("ksum-serve-v1: missing numeric '") + key + "'");
  }

  KSUM_REQUIRE(record.has("counters") && record.at("counters").is_object(),
               "ksum-serve-v1: missing counters object");
  const Json& counters = record.at("counters");
  for (const char* key :
       {"received", "accepted", "completed", "ok", "invalid", "timeout",
        "overloaded", "fault_unrecovered", "internal", "shed", "retries",
        "degraded", "faults_detected"}) {
    KSUM_REQUIRE(counters.has(key) && counters.at(key).is_number(),
                 std::string("ksum-serve-v1: counters missing '") + key +
                     "'");
  }
  KSUM_REQUIRE(counters.at("shed").as_double() ==
                   counters.at("overloaded").as_double(),
               "ksum-serve-v1: shed must equal overloaded");
  double by_status_total = 0;
  for (const char* key : {"ok", "invalid", "timeout", "overloaded",
                          "fault_unrecovered", "internal"}) {
    by_status_total += counters.at(key).as_double();
  }
  KSUM_REQUIRE(by_status_total == counters.at("completed").as_double(),
               "ksum-serve-v1: per-status counts must sum to completed");

  KSUM_REQUIRE(record.has("latency_ms") &&
                   record.at("latency_ms").is_object(),
               "ksum-serve-v1: missing latency_ms object");
  const Json& latency = record.at("latency_ms");
  KSUM_REQUIRE(latency.has("modelled") && latency.has("wall"),
               "ksum-serve-v1: latency_ms needs modelled and wall");
  validate_summary(latency.at("modelled"), "modelled");
  validate_summary(latency.at("wall"), "wall");
}

}  // namespace ksum::serve
