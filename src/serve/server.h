// The ksum-serve control plane: bounded admission, warm per-worker devices,
// deadlines, retry/degrade recovery, and graceful drain.
//
// A Server owns an exec::ThreadPool whose workers loop over the admission
// queue (admission.h). Each worker keeps a WorkerContext — a warm simulated
// Device grown on demand plus a one-entry instance cache — so steady-state
// requests skip device construction and point-set regeneration entirely.
// A shared tune::TuningCache (with --autotune) resolves tile geometries
// once per shape across all workers.
//
// Robustness ladder for one solve request:
//   1. cooperative deadline: an exec::CancelToken armed at admission is
//      polled between kernel launches — expiry → `timeout`, no output.
//   2. solver-level ABFT recovery (robust/recovery.h) inside each attempt.
//   3. serve-level retries: a still-flagged result is re-run with a fresh
//      fault-plan seed after exponential backoff, up to max_attempts.
//   4. degraded fallback: when every attempt stayed flagged, the request is
//      re-solved on the fault-free host expansion path and answered `ok`
//      with degraded=true (unless degrade_to_host is off → fault_unrecovered).
// A worker never lets a request's exception escape: ksum::Error → invalid,
// exec::Cancelled → timeout, anything else → internal. One poisoned request
// cannot take down the process or perturb its neighbours (every request runs
// on its own reset device with its own injector).
//
// Replies are a pure function of the request (protocol.h), so successful
// replies are byte-identical for any worker count.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "exec/thread_pool.h"
#include "pipelines/solver.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/stats.h"
#include "tune/tuning_cache.h"

namespace ksum::serve {

struct ServerOptions {
  /// Worker loops (and ThreadPool threads), in [1, kMaxThreads].
  int workers = 2;
  /// Admission-queue capacity; a full queue sheds with `overloaded`.
  std::size_t queue_capacity = 16;
  /// Deadline applied when a request does not set one (ms; 0 = none).
  double default_deadline_ms = 0;
  /// Serve-level solve attempts per request (>= 1; each attempt runs the
  /// full solver-level recovery ladder with a fresh fault-plan seed).
  int max_attempts = 3;
  /// Backoff before retry r (1-based) is backoff_base_ms * 2^(r-1); 0
  /// disables the sleep (tests).
  double backoff_base_ms = 0;
  /// After all attempts stay flagged, fall back to the host expansion path
  /// and reply ok/degraded instead of fault_unrecovered.
  bool degrade_to_host = true;
  /// Resolve tile geometries through a shared TuningCache (tuned once per
  /// shape, all workers reuse the entry).
  bool autotune = false;
  /// Admission bounds: solve requests beyond these are refused as invalid
  /// (they also size the warm devices' growth cap).
  std::size_t max_m = 4096;
  std::size_t max_n = 4096;
  std::size_t max_k = 256;
  /// How many per-device shards admission may split an oversized M or N
  /// into before shedding (docs/SHARDING.md). 1 keeps the PR 6 behaviour:
  /// every oversized shape is refused as invalid. K never shards, host
  /// backends never shard, and a shape oversized on both M and N is always
  /// refused.
  std::size_t max_shards = 1;
  /// Base run options (device/timing/energy specs, layout) copied into
  /// every request. fault_injector/cancel/warm_device must be null — the
  /// server owns those per request.
  pipelines::RunOptions run;
  /// Identity of the device profile `run`'s specs came from. Keys the
  /// shared autotune cache, so entries tuned while serving one architecture
  /// are never replayed when the daemon restarts on another.
  std::string profile = "gtx970";
};

class Server {
 public:
  /// `sink` receives every reply line (no trailing newline); calls are
  /// serialised by the server, but may come from any worker thread.
  Server(const ServerOptions& options,
         std::function<void(const std::string&)> sink);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the worker loops. Must be called exactly once before any
  /// solve request can complete (intake itself works immediately).
  void start();

  /// Thread-safe intake of one request line. health/stats/invalid/shed
  /// replies are emitted synchronously; admitted solves reply later from a
  /// worker. Lines that are empty or all-whitespace are ignored.
  void handle_line(const std::string& line);

  /// Graceful drain: stops admission, lets queued requests finish, joins
  /// the workers. Idempotent. Solve lines arriving afterwards are shed
  /// with `overloaded`.
  void drain();

  bool draining() const;

  const ServeStats& stats() const { return stats_; }
  const ServerOptions& options() const { return options_; }
  std::size_t queue_depth() const { return queue_.depth(); }

  /// Snapshot of the ksum-serve-v1 record.
  profile::Json stats_json() const;

 private:
  struct Pending {
    ServeRequest request;
    std::chrono::steady_clock::time_point enqueued;
    // steady_clock::time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;
    // Shard routing decided at admission (1 = ordinary single-device run).
    std::size_t shard_count = 1;
    shard::ShardAxis shard_axis = shard::ShardAxis::kM;
  };

  /// Per-worker warm state. The device is grown (never shrunk) to fit the
  /// conservatively padded shape of each request; run_pipeline resets it
  /// per run, which is bit-identical to a fresh device.
  struct WorkerContext {
    std::optional<gpusim::Device> device;
    std::optional<workload::ProblemSpec> cached_spec;
    std::optional<workload::Instance> cached_instance;
  };

  void reply(const std::string& line);
  void worker_loop(std::size_t worker);
  void run_solve(WorkerContext& ctx, const Pending& item);
  const workload::Instance& instance_for(WorkerContext& ctx,
                                         const workload::ProblemSpec& spec);
  gpusim::Device* warm_device_for(WorkerContext& ctx,
                                  const workload::ProblemSpec& spec);
  std::string health_line(const std::string& id) const;

  const ServerOptions options_;
  std::function<void(const std::string&)> sink_;
  std::mutex sink_mutex_;
  BoundedQueue<Pending> queue_;
  exec::ThreadPool pool_;
  std::thread runner_;
  std::atomic<bool> started_{false};
  std::atomic<bool> drained_{false};
  ServeStats stats_;
  tune::TuningCache tuning_cache_;
  std::atomic<std::uint64_t> auto_id_{0};
};

}  // namespace ksum::serve
