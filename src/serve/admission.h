// Bounded admission queue — the server's load-shedding point.
//
// Intake threads try_push(); a full queue rejects immediately (kShed) so the
// client gets an `overloaded` reply instead of unbounded buffering and
// deadline blowouts. Workers block in pop() until an item arrives or the
// queue is closed *and* empty — close() lets already-admitted requests drain
// (graceful SIGTERM semantics) while new arrivals are refused with kClosed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.h"

namespace ksum::serve {

enum class PushResult { kAccepted, kShed, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    KSUM_REQUIRE(capacity >= 1, "admission queue capacity must be >= 1");
  }

  /// Non-blocking admission: full → kShed, closed → kClosed.
  PushResult try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kShed;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocks until an item is available (returned) or the queue is closed and
  /// fully drained (nullopt — the worker's signal to exit).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission; queued items still drain through pop(). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ksum::serve
