// Shared-memory bank-conflict lint.
//
// Aggregates the bank model's verdict (transactions vs the minimum possible
// for the access width) per static access site, and turns any replay into a
// source-attributed finding: error for unannotated sites, info (with the
// recorded rationale) for sites that declare the conflict an accepted
// trade-off via kSiteAllowBankConflicts. The paper's Fig-5 track layout is
// expected to keep every main-loop site at degree 1 — the ksum-lint run
// over the registered programs asserts exactly that.
#pragma once

#include <cstdint>
#include <map>

#include "analysis/diagnostics.h"
#include "gpusim/access_observer.h"

namespace ksum::analysis {

struct BankSiteStats {
  std::uint64_t requests = 0;
  std::uint64_t transactions = 0;
  std::uint64_t ideal_transactions = 0;
  int worst_transactions = 0;  // per-request maximum (the conflict degree)
  bool any_store = false;
  bool any_load = false;

  std::uint64_t conflicts() const {
    return transactions - ideal_transactions;
  }
};

class BankConflictLint : public gpusim::AccessObserver {
 public:
  void on_shared_access(const gpusim::SharedAccessEvent& event) override;

  /// Per-site statistics, ordered by site id (registration order).
  const std::map<gpusim::SiteId, BankSiteStats>& stats() const {
    return stats_;
  }

  /// Findings for every site with replays; clean sites produce nothing.
  Diagnostics diagnostics() const;

  void clear() { stats_.clear(); }

 private:
  std::map<gpusim::SiteId, BankSiteStats> stats_;
};

}  // namespace ksum::analysis
