#include "analysis/coalescing_lint.h"

#include <cstdio>

#include "gpusim/access_site.h"

namespace ksum::analysis {

namespace {

std::string format_ratio(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

double CoalescingSiteStats::sector_efficiency() const {
  if (distinct_sectors.empty()) return 1.0;
  return static_cast<double>(distinct_words.size() * 4) /
         (32.0 * static_cast<double>(distinct_sectors.size()));
}

double CoalescingSiteStats::replay_factor() const {
  if (ideal_sectors == 0) return 1.0;
  return static_cast<double>(sectors) / static_cast<double>(ideal_sectors);
}

void CoalescingLint::on_global_access(
    const gpusim::GlobalAccessEvent& event) {
  const auto& access = event.access;
  CoalescingSiteStats& s = stats_[access.site];
  s.requests += 1;
  s.sectors += static_cast<std::uint64_t>(event.sectors);
  s.ideal_sectors += static_cast<std::uint64_t>(event.ideal_sectors);
  if (event.kind == gpusim::AccessKind::kLoad) {
    s.any_load = true;
  } else {
    s.any_store = true;
  }
  const auto sector = static_cast<std::uint64_t>(sector_bytes_);
  for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
    if (!access.lane_active(lane)) continue;
    const std::uint64_t base = access.addr[static_cast<std::size_t>(lane)];
    for (int piece = 0; piece < access.width_bytes; piece += 4) {
      const std::uint64_t byte = base + static_cast<std::uint64_t>(piece);
      s.distinct_words.insert(byte / 4);
      s.distinct_sectors.insert(byte / sector);
    }
  }
}

Diagnostics CoalescingLint::diagnostics() const {
  Diagnostics out;
  auto& registry = gpusim::SiteRegistry::instance();
  for (const auto& [site_id, s] : stats_) {
    const double efficiency = s.sector_efficiency();
    const double replay = s.replay_factor();
    if (efficiency >= 0.999 && replay <= 1.001) continue;
    const gpusim::AccessSite& site = registry.site(site_id);
    Diagnostic d;
    d.analyzer = "coalescing";
    d.site = site_id;
    if (efficiency < 0.999) {
      d.message = "sector efficiency " + format_ratio(efficiency) + ": " +
                  std::to_string(s.distinct_words.size() * 4) +
                  " distinct bytes spread over " +
                  std::to_string(s.distinct_sectors.size()) +
                  " 32-byte sectors";
      if (!s.any_load) {
        d.severity = Severity::kInfo;  // stores write-allocate; not gated
      } else if (site.allows(gpusim::kSiteAllowUncoalesced)) {
        d.severity = Severity::kInfo;
        d.message += " (suppressed: " + std::string(site.rationale) + ")";
      } else {
        d.severity = Severity::kError;
      }
    } else {
      d.severity = Severity::kInfo;
      d.message = "replay factor " + format_ratio(replay) +
                  " with full sector consumption: strided requests that "
                  "later requests of this site fill in";
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace ksum::analysis
