// Global-memory coalescing lint.
//
// Two metrics per static load/store site, both derived from the coalescer's
// sector decomposition of every warp request:
//
//   sector efficiency — distinct bytes the site touched over the launch,
//     divided by 32 × the distinct sectors it pulled. This is the metric
//     that gates: a site at 1.0 wastes no DRAM/L2 bandwidth even if single
//     requests look strided, because later requests of the same site finish
//     consuming the sectors (the tile loader's two float4 pieces, the kNN
//     merge's rank sweep).
//
//   replay factor — achieved sectors per request over the per-request
//     minimum. Reported as supporting detail: a high replay factor with
//     efficiency 1.0 costs L2 request slots, not bandwidth.
//
// Load sites below full efficiency are errors (the paper's kernels are
// designed fully coalesced) unless annotated kSiteAllowUncoalesced; store
// and atomic sites are reported as info — their sectors are write-allocated
// in L2 and the kernels' stores are either full-sector or annotated anyway.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>

#include "analysis/diagnostics.h"
#include "gpusim/access_observer.h"

namespace ksum::analysis {

struct CoalescingSiteStats {
  std::uint64_t requests = 0;
  std::uint64_t sectors = 0;        // achieved, summed over requests
  std::uint64_t ideal_sectors = 0;  // per-request minimum, summed
  bool any_load = false;
  bool any_store = false;   // includes atomics
  std::unordered_set<std::uint64_t> distinct_sectors;
  std::unordered_set<std::uint64_t> distinct_words;

  /// Distinct bytes / (32 B × distinct sectors); 1.0 when no touched
  /// sector carries unused bytes.
  double sector_efficiency() const;
  /// Achieved / minimum sectors per request, aggregated; 1.0 when every
  /// request is as dense as its byte footprint allows.
  double replay_factor() const;
};

class CoalescingLint : public gpusim::AccessObserver {
 public:
  explicit CoalescingLint(int sector_bytes = 32)
      : sector_bytes_(sector_bytes) {}

  void on_global_access(const gpusim::GlobalAccessEvent& event) override;

  const std::map<gpusim::SiteId, CoalescingSiteStats>& stats() const {
    return stats_;
  }

  Diagnostics diagnostics() const;

  void clear() { stats_.clear(); }

 private:
  int sector_bytes_;
  std::map<gpusim::SiteId, CoalescingSiteStats> stats_;
};

}  // namespace ksum::analysis
