#include "analysis/diagnostics.h"

namespace ksum::analysis {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  auto& registry = gpusim::SiteRegistry::instance();
  std::string out =
      std::string(analysis::to_string(severity)) + "[" + analyzer + "] ";
  if (site != 0) {
    const gpusim::AccessSite& s = registry.site(site);
    out += s.location() + " (" + s.label + "): ";
  }
  out += message;
  if (other_site != 0 && other_site != site) {
    const gpusim::AccessSite& o = registry.site(other_site);
    out += " [with " + o.location() + " (" + o.label + ")]";
  }
  return out;
}

std::size_t count_of(const Diagnostics& diags, Severity severity) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == severity) ++n;
  }
  return n;
}

}  // namespace ksum::analysis
