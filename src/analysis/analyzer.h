// AnalysisSession — one observer that fans launch events out to all four
// analyzers (race, bank conflict, coalescing, occupancy) and collects their
// findings.
//
// Usage:
//   gpusim::Device device(spec, bytes);
//   analysis::AnalysisSession session(device, spec);
//   ... run tile programs through the device as usual ...
//   analysis::Diagnostics findings = session.finish();
//
// The session registers itself as the device's access observer on
// construction and detaches on destruction; observation happens after the
// performance counters update, so an analyzed run produces bit-identical
// results and counters to an unanalyzed one.
#pragma once

#include "analysis/bank_conflict_lint.h"
#include "analysis/coalescing_lint.h"
#include "analysis/diagnostics.h"
#include "analysis/occupancy_check.h"
#include "analysis/race_detector.h"
#include "config/device_spec.h"
#include "gpusim/device.h"

namespace ksum::analysis {

class AnalysisSession : public gpusim::AccessObserver {
 public:
  AnalysisSession(gpusim::Device& device, const config::DeviceSpec& spec);
  ~AnalysisSession() override;

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  // AccessObserver: fan out to the member analyzers.
  void on_launch_begin(const gpusim::LaunchObservation& launch) override;
  void on_cta_begin(int bx, int by) override;
  void on_barrier(int new_epoch) override;
  void on_shared_access(const gpusim::SharedAccessEvent& event) override;
  void on_global_access(const gpusim::GlobalAccessEvent& event) override;

  /// All findings from all analyzers, errors first (then warnings, infos);
  /// stable within a severity class.
  Diagnostics finish() const;

  /// Drop all recorded state, e.g. between programs of a lint run.
  void reset();

  const RaceDetector& races() const { return races_; }
  const BankConflictLint& bank_conflicts() const { return bank_conflicts_; }
  const CoalescingLint& coalescing() const { return coalescing_; }
  const OccupancyCheck& occupancy() const { return occupancy_; }

 private:
  gpusim::Device& device_;
  RaceDetector races_;
  BankConflictLint bank_conflicts_;
  CoalescingLint coalescing_;
  OccupancyCheck occupancy_;
};

}  // namespace ksum::analysis
