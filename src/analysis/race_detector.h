// Barrier-epoch race detector.
//
// Shadow-memory checker over the access stream a Device reports: within a
// CTA, two accesses to the same word by different threads are ordered only
// if a barrier separates them, so the shadow is keyed on (word, barrier
// epoch) and any same-epoch pair with at least one store is a hazard
// (RAW/WAR/WAW — the stream is unordered within an epoch, so the classes
// collapse to load/store vs store). Across CTAs nothing orders anything
// within a launch, so any two non-atomic stores to the same global word
// from different CTAs are a hazard. atomicAdd requests are exempt against
// each other (the hardware serialises them) but conflict with plain
// accesses.
//
// Epochs restart at 0 each CTA; the detector tracks them from the
// on_barrier callbacks. Findings are deduplicated per site pair and
// downgraded to kInfo when either site carries kSiteAllowRace.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>

#include "analysis/diagnostics.h"
#include "gpusim/access_observer.h"

namespace ksum::analysis {

class RaceDetector : public gpusim::AccessObserver {
 public:
  void on_launch_begin(const gpusim::LaunchObservation& launch) override;
  void on_cta_begin(int bx, int by) override;
  void on_barrier(int new_epoch) override { epoch_ = new_epoch; }
  void on_shared_access(const gpusim::SharedAccessEvent& event) override;
  void on_global_access(const gpusim::GlobalAccessEvent& event) override;

  const Diagnostics& diagnostics() const { return diagnostics_; }
  void clear();

 private:
  // Same-epoch access summary for one word. Two recorded loader threads are
  // enough: a storing thread must differ from at least one of them if any
  // cross-thread load/store pair exists.
  struct WordShadow {
    int epoch = -1;
    int store_thread = -1;
    gpusim::SiteId store_site = 0;
    bool store_atomic = false;
    int load_thread = -1;
    gpusim::SiteId load_site = 0;
    int load_thread2 = -1;
    gpusim::SiteId load_site2 = 0;
  };

  // First writer of a global word in this launch, for the inter-CTA check.
  struct LaunchWrite {
    int cta = -1;
    gpusim::SiteId site = 0;
    bool atomic = false;
  };

  void record(WordShadow& shadow, bool is_store, bool is_atomic, int thread,
              gpusim::SiteId site, const char* space);
  void record_launch_write(std::uint64_t word, bool atomic,
                           gpusim::SiteId site);
  void report(const std::string& kind, gpusim::SiteId site,
              gpusim::SiteId other_site, const std::string& detail);

  std::string kernel_;
  int bx_ = 0, by_ = 0;
  int cta_linear_ = -1;
  int epoch_ = 0;
  std::unordered_map<std::uint32_t, WordShadow> shared_shadow_;
  std::unordered_map<std::uint64_t, WordShadow> global_shadow_;
  std::unordered_map<std::uint64_t, LaunchWrite> launch_writes_;
  std::set<std::tuple<std::string, gpusim::SiteId, gpusim::SiteId>> seen_;
  Diagnostics diagnostics_;
};

}  // namespace ksum::analysis
