#include "analysis/race_detector.h"

#include "gpusim/access_site.h"

namespace ksum::analysis {

namespace {

bool either_allows_race(gpusim::SiteId a, gpusim::SiteId b) {
  auto& registry = gpusim::SiteRegistry::instance();
  return registry.site(a).allows(gpusim::kSiteAllowRace) ||
         registry.site(b).allows(gpusim::kSiteAllowRace);
}

std::string rationale_of(gpusim::SiteId a, gpusim::SiteId b) {
  auto& registry = gpusim::SiteRegistry::instance();
  if (registry.site(a).allows(gpusim::kSiteAllowRace)) {
    return registry.site(a).rationale;
  }
  return registry.site(b).rationale;
}

}  // namespace

void RaceDetector::on_launch_begin(
    const gpusim::LaunchObservation& launch) {
  kernel_ = launch.kernel_name;
  cta_linear_ = -1;
  launch_writes_.clear();
}

void RaceDetector::on_cta_begin(int bx, int by) {
  bx_ = bx;
  by_ = by;
  ++cta_linear_;
  epoch_ = 0;
  shared_shadow_.clear();
  global_shadow_.clear();
}

void RaceDetector::report(const std::string& kind, gpusim::SiteId site,
                          gpusim::SiteId other_site,
                          const std::string& detail) {
  const gpusim::SiteId lo = site < other_site ? site : other_site;
  const gpusim::SiteId hi = site < other_site ? other_site : site;
  if (!seen_.insert({kind, lo, hi}).second) return;

  Diagnostic d;
  d.analyzer = "race";
  d.site = site;
  d.other_site = other_site;
  if (either_allows_race(site, other_site)) {
    d.severity = Severity::kInfo;
    d.message = kind + " in " + kernel_ + ": " + detail +
                " (suppressed: " + rationale_of(site, other_site) + ")";
  } else {
    d.severity = Severity::kError;
    d.message = kind + " in " + kernel_ + ": " + detail;
  }
  diagnostics_.push_back(std::move(d));
}

void RaceDetector::record(WordShadow& shadow, bool is_store, bool is_atomic,
                          int thread, gpusim::SiteId site,
                          const char* space) {
  if (shadow.epoch != epoch_) {
    shadow = WordShadow{};
    shadow.epoch = epoch_;
  }
  const std::string where = " (CTA " + std::to_string(bx_) + "," +
                            std::to_string(by_) + ", barrier epoch " +
                            std::to_string(epoch_) + ")";
  if (is_store) {
    if (shadow.store_thread >= 0 && shadow.store_thread != thread &&
        !(is_atomic && shadow.store_atomic)) {
      report(std::string("intra-CTA write-write hazard on ") + space, site,
             shadow.store_site,
             "threads " + std::to_string(shadow.store_thread) + " and " +
                 std::to_string(thread) +
                 " store the same word without an intervening barrier" +
                 where);
    }
    for (const auto& [lt, ls] :
         {std::pair{shadow.load_thread, shadow.load_site},
          std::pair{shadow.load_thread2, shadow.load_site2}}) {
      if (lt >= 0 && lt != thread) {
        report(std::string("intra-CTA load/store hazard on ") + space, site,
               ls,
               "thread " + std::to_string(thread) +
                   " stores a word thread " + std::to_string(lt) +
                   " reads in the same barrier epoch" + where);
        break;
      }
    }
    if (shadow.store_thread < 0 || !is_atomic) {
      // Prefer remembering a non-atomic store: it conflicts with more.
      shadow.store_thread = thread;
      shadow.store_site = site;
      shadow.store_atomic = is_atomic;
    }
  } else {
    if (shadow.store_thread >= 0 && shadow.store_thread != thread) {
      report(std::string("intra-CTA load/store hazard on ") + space, site,
             shadow.store_site,
             "thread " + std::to_string(thread) +
                 " reads a word thread " +
                 std::to_string(shadow.store_thread) +
                 " stores in the same barrier epoch" + where);
    }
    if (shadow.load_thread < 0) {
      shadow.load_thread = thread;
      shadow.load_site = site;
    } else if (shadow.load_thread != thread && shadow.load_thread2 < 0) {
      shadow.load_thread2 = thread;
      shadow.load_site2 = site;
    }
  }
}

void RaceDetector::record_launch_write(std::uint64_t word, bool atomic,
                                       gpusim::SiteId site) {
  auto [it, inserted] = launch_writes_.emplace(
      word, LaunchWrite{cta_linear_, site, atomic});
  if (inserted) return;
  LaunchWrite& w = it->second;
  if (w.cta != cta_linear_ && !(atomic && w.atomic)) {
    report("inter-CTA write-write hazard on global", site, w.site,
           "CTAs " + std::to_string(w.cta) + " and " +
               std::to_string(cta_linear_) +
               " write the same word non-atomically in " + kernel_);
  }
  if (!atomic) {
    w = LaunchWrite{cta_linear_, site, atomic};
  }
}

void RaceDetector::on_shared_access(
    const gpusim::SharedAccessEvent& event) {
  const auto& access = event.access;
  const bool is_store = event.kind != gpusim::AccessKind::kLoad;
  for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
    if (!access.lane_active(lane)) continue;
    const std::uint32_t base =
        access.addr[static_cast<std::size_t>(lane)] / 4;
    for (int piece = 0; piece < access.width_bytes / 4; ++piece) {
      record(shared_shadow_[base + static_cast<std::uint32_t>(piece)],
             is_store, /*is_atomic=*/false, access.thread_of_lane(lane),
             access.site, "shared");
    }
  }
}

void RaceDetector::on_global_access(
    const gpusim::GlobalAccessEvent& event) {
  const auto& access = event.access;
  const bool is_store = event.kind != gpusim::AccessKind::kLoad;
  const bool is_atomic = event.kind == gpusim::AccessKind::kAtomicAdd;
  for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
    if (!access.lane_active(lane)) continue;
    const std::uint64_t base =
        access.addr[static_cast<std::size_t>(lane)] / 4;
    for (int piece = 0; piece < access.width_bytes / 4; ++piece) {
      const std::uint64_t word = base + static_cast<std::uint64_t>(piece);
      record(global_shadow_[word], is_store, is_atomic,
             access.thread_of_lane(lane), access.site, "global");
      if (is_store) record_launch_write(word, is_atomic, access.site);
    }
  }
}

void RaceDetector::clear() {
  shared_shadow_.clear();
  global_shadow_.clear();
  launch_writes_.clear();
  seen_.clear();
  diagnostics_.clear();
  epoch_ = 0;
  cta_linear_ = -1;
}

}  // namespace ksum::analysis
