// Diagnostic records produced by the static analyzers.
//
// Every finding is attributed to a registered access site (file:line +
// label) so ksum-lint can point at the kernel source instead of an
// aggregate counter. Severity kError is what gates CI; suppressed findings
// (a site annotated with the matching SiteFlags) are downgraded to kInfo
// but still carry the measurement and the annotation's rationale.
#pragma once

#include <string>
#include <vector>

#include "gpusim/access_site.h"

namespace ksum::analysis {

enum class Severity { kInfo, kWarning, kError };

const char* to_string(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string analyzer;        // "race", "bank-conflict", "coalescing", ...
  gpusim::SiteId site = 0;     // primary site the finding is attributed to
  gpusim::SiteId other_site = 0;  // second site for pairwise findings (races)
  std::string message;

  /// "error[race] src/gpukernels/foo.cc:41 (scratch store): ..." — the
  /// ksum-lint output line.
  std::string to_string() const;
};

using Diagnostics = std::vector<Diagnostic>;

/// Number of diagnostics at exactly `severity`.
std::size_t count_of(const Diagnostics& diags, Severity severity);

}  // namespace ksum::analysis
