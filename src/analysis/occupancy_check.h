// Occupancy and register-budget checker.
//
// Recomputes the paper's §IV resource arithmetic from first principles and
// cross-checks it against what each launch actually declared:
//
//   * a TileResourceModel estimates the per-thread register demand of a
//     microtile×microtile accumulator kernel (micro² accumulators, 2·micro
//     operand registers, fixed bookkeeping) — a launch that declares fewer
//     registers than the estimate would silently spill on real hardware;
//   * every declared config must fit the architectural per-thread cap;
//   * compute_occupancy must accept the config at all (an unlaunchable
//     config is an error, not an exception escaping the lint);
//   * kernels of the paper's 128×128 tile family (gemm_cudac, fused_ksum,
//     fused_knn) must land at exactly 2 CTAs/SM on the paper's GTX 970 —
//     the operating point §IV's energy/performance numbers assume.
#pragma once

#include <string>

#include "analysis/diagnostics.h"
#include "config/device_spec.h"
#include "gpusim/access_observer.h"
#include "gpusim/occupancy.h"

namespace ksum::analysis {

/// Register-demand model of a microtile accumulator kernel (paper §III-A).
struct TileResourceModel {
  int micro = 8;        // microtileC edge: micro² accumulators per thread
  int bookkeeping = 16;  // loop counters, pointers, predicates

  int estimated_regs() const {
    return micro * micro + 2 * micro + bookkeeping;
  }
};

/// Architectural per-thread register cap (Maxwell and later).
inline constexpr int kMaxRegsPerThread = 255;

/// Checks one launch configuration against the model. `kernel_name` is used
/// only for diagnostic text. Pure function of its inputs so negative tests
/// can probe configs that never reach a Device.
Diagnostics check_tile_resources(const config::DeviceSpec& spec,
                                 const gpusim::LaunchConfig& config,
                                 const TileResourceModel& model,
                                 const std::string& kernel_name);

/// True for kernels carrying the paper's 128×128 tile / 256-thread shape.
bool is_tile_family(const std::string& kernel_name);

/// True for the tile-family kernels that run at the paper's 128-register
/// budget, which §IV pins at exactly 2 CTAs/SM on the GTX 970. The fused
/// kNN kernel is tile-family but spends 2·k_nn extra registers on its
/// neighbour lists, a documented occupancy trade-off — it only has to stay
/// within the tile-family occupancy band.
bool expects_exact_two_ctas(const std::string& kernel_name);

/// The CTAs/SM the paper's reference tile-family configuration (256
/// threads, 128 registers per thread, the launch's own shared-memory
/// footprint) achieves on `spec` — the profile-relative generalisation of
/// the §IV "exactly 2 CTAs/SM" pin. On the paper's GTX 970 (and any device
/// with a 64K-register file) this is 2; an architecture with a different
/// register budget moves the expected operating point, and the lint holds
/// kernels to *that* number. Returns 0 when the reference configuration
/// cannot launch on the device at all.
int expected_tile_family_ctas(const config::DeviceSpec& spec,
                              std::uint32_t smem_bytes_per_block);

/// Observer that applies check_tile_resources to every launch it sees and
/// additionally enforces the 2-CTA/SM operating point for tile-family
/// kernels (other kernels get an informational occupancy line).
class OccupancyCheck : public gpusim::AccessObserver {
 public:
  explicit OccupancyCheck(const config::DeviceSpec& spec) : spec_(spec) {}

  void on_launch_begin(const gpusim::LaunchObservation& launch) override;

  const Diagnostics& diagnostics() const { return diagnostics_; }

  void clear() { diagnostics_.clear(); }

 private:
  config::DeviceSpec spec_;
  Diagnostics diagnostics_;
};

}  // namespace ksum::analysis
