#include "analysis/analyzer.h"

#include <algorithm>

namespace ksum::analysis {

AnalysisSession::AnalysisSession(gpusim::Device& device,
                                 const config::DeviceSpec& spec)
    : device_(device), occupancy_(spec) {
  device_.set_access_observer(this);
}

AnalysisSession::~AnalysisSession() {
  if (device_.access_observer() == this) {
    device_.set_access_observer(nullptr);
  }
}

void AnalysisSession::on_launch_begin(
    const gpusim::LaunchObservation& launch) {
  races_.on_launch_begin(launch);
  occupancy_.on_launch_begin(launch);
}

void AnalysisSession::on_cta_begin(int bx, int by) {
  races_.on_cta_begin(bx, by);
}

void AnalysisSession::on_barrier(int new_epoch) {
  races_.on_barrier(new_epoch);
}

void AnalysisSession::on_shared_access(
    const gpusim::SharedAccessEvent& event) {
  races_.on_shared_access(event);
  bank_conflicts_.on_shared_access(event);
}

void AnalysisSession::on_global_access(
    const gpusim::GlobalAccessEvent& event) {
  races_.on_global_access(event);
  coalescing_.on_global_access(event);
}

Diagnostics AnalysisSession::finish() const {
  Diagnostics all = races_.diagnostics();
  for (const Diagnostics& part :
       {bank_conflicts_.diagnostics(), coalescing_.diagnostics(),
        occupancy_.diagnostics()}) {
    all.insert(all.end(), part.begin(), part.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return all;
}

void AnalysisSession::reset() {
  races_.clear();
  bank_conflicts_.clear();
  coalescing_.clear();
  occupancy_.clear();
}

}  // namespace ksum::analysis
