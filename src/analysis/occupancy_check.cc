#include "analysis/occupancy_check.h"

#include "common/error.h"

namespace ksum::analysis {

Diagnostics check_tile_resources(const config::DeviceSpec& spec,
                                 const gpusim::LaunchConfig& config,
                                 const TileResourceModel& model,
                                 const std::string& kernel_name) {
  Diagnostics out;
  auto error = [&](std::string message) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.analyzer = "occupancy";
    d.message = std::move(message);
    out.push_back(std::move(d));
  };

  const int estimate = model.estimated_regs();
  if (estimate > kMaxRegsPerThread) {
    error(kernel_name + ": a " + std::to_string(model.micro) + "x" +
          std::to_string(model.micro) + " microtile needs about " +
          std::to_string(estimate) + " registers per thread, over the " +
          std::to_string(kMaxRegsPerThread) + "-register architectural cap");
    return out;  // the config checks below would only repeat the story
  }
  if (config.regs_per_thread > kMaxRegsPerThread) {
    error(kernel_name + ": declares " +
          std::to_string(config.regs_per_thread) +
          " registers per thread, over the architectural cap of " +
          std::to_string(kMaxRegsPerThread));
  }
  if (config.regs_per_thread < estimate) {
    error(kernel_name + ": declares " +
          std::to_string(config.regs_per_thread) +
          " registers per thread but the " + std::to_string(model.micro) +
          "x" + std::to_string(model.micro) +
          " microtile model needs about " + std::to_string(estimate) +
          " — the compiler would silently spill to local memory");
  }
  try {
    (void)gpusim::compute_occupancy(spec, config);
  } catch (const ksum::Error& e) {
    error(kernel_name + ": configuration cannot launch: " + e.what());
  }
  return out;
}

bool is_tile_family(const std::string& kernel_name) {
  return kernel_name == "gemm_cudac" || kernel_name == "fused_ksum" ||
         kernel_name == "fused_knn";
}

bool expects_exact_two_ctas(const std::string& kernel_name) {
  return kernel_name == "gemm_cudac" || kernel_name == "fused_ksum";
}

int expected_tile_family_ctas(const config::DeviceSpec& spec,
                              std::uint32_t smem_bytes_per_block) {
  gpusim::LaunchConfig reference;
  reference.threads_per_block = 256;
  reference.regs_per_thread = 128;
  reference.smem_bytes_per_block = smem_bytes_per_block;
  try {
    return gpusim::compute_occupancy(spec, reference).blocks_per_sm;
  } catch (const ksum::Error&) {
    return 0;
  }
}

void OccupancyCheck::on_launch_begin(
    const gpusim::LaunchObservation& launch) {
  const bool tile = is_tile_family(launch.kernel_name);
  if (tile) {
    Diagnostics checked = check_tile_resources(spec_, launch.config,
                                               TileResourceModel{},
                                               launch.kernel_name);
    diagnostics_.insert(diagnostics_.end(), checked.begin(), checked.end());
  } else if (launch.config.regs_per_thread > kMaxRegsPerThread) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.analyzer = "occupancy";
    d.message = launch.kernel_name + ": declares " +
                std::to_string(launch.config.regs_per_thread) +
                " registers per thread, over the architectural cap of " +
                std::to_string(kMaxRegsPerThread);
    diagnostics_.push_back(std::move(d));
  }

  Diagnostic d;
  d.analyzer = "occupancy";
  d.message = launch.kernel_name + ": " +
              std::to_string(launch.occupancy.blocks_per_sm) +
              " CTAs/SM (limited by " +
              gpusim::to_string(launch.occupancy.limiter) + ")";
  // The §IV operating point, profile-relative: the pin is "what the
  // paper's 128-register reference configuration achieves on THIS device"
  // (2 on the GTX 970's 64K-register SMs), not the literal constant 2.
  const int expected =
      tile ? expected_tile_family_ctas(spec_,
                                       launch.config.smem_bytes_per_block)
           : 0;
  if (tile && expects_exact_two_ctas(launch.kernel_name) &&
      launch.occupancy.blocks_per_sm != expected) {
    d.severity = Severity::kError;
    d.message +=
        expected == 2
            ? " — the paper pins this kernel at exactly 2 CTAs/SM (§IV)"
            : " — this device's register file pins the tile family at "
              "exactly " + std::to_string(expected) + " CTAs/SM";
  } else if (tile && (launch.occupancy.blocks_per_sm < 1 ||
                      launch.occupancy.blocks_per_sm > expected)) {
    d.severity = Severity::kError;
    d.message += " — tile-family kernels must stay within 1-" +
                 std::to_string(expected) + " CTAs/SM";
  } else {
    d.severity = Severity::kInfo;
  }
  diagnostics_.push_back(std::move(d));
}

}  // namespace ksum::analysis
