#include "analysis/program_registry.h"

#include "core/kernels.h"
#include "gpukernels/abft_check.h"
#include "gpukernels/device_workspace.h"
#include "gpukernels/fused_ksum.h"
#include "gpukernels/gemm_cublas_model.h"
#include "gpukernels/gemm_cudac.h"
#include "gpukernels/gemv_summation.h"
#include "gpukernels/kernel_eval.h"
#include "gpukernels/knn.h"
#include "gpukernels/norms.h"
#include "robust/fault_plan.h"
#include "workload/point_generators.h"

namespace ksum::analysis {

namespace {

using gpukernels::Workspace;

// Two tile rows and columns: big enough for inter-CTA hazards to be
// observable, small enough that the full registry lints in seconds.
constexpr std::size_t kM = 256;
constexpr std::size_t kN = 256;
constexpr std::size_t kK = 16;
constexpr std::size_t kKnn = 8;

workload::Instance small_instance() {
  workload::ProblemSpec spec;
  spec.m = kM;
  spec.n = kN;
  spec.k = kK;
  spec.bandwidth = 0.8f;
  spec.seed = 7;
  return workload::make_instance(spec);
}

core::KernelParams kernel_params() {
  core::KernelParams params;
  params.bandwidth = 0.8f;
  return params;
}

Workspace prepare(gpusim::Device& device, bool with_intermediate,
                  bool with_checksums = false) {
  Workspace ws = gpukernels::allocate_workspace(device, kM, kN, kK,
                                                with_intermediate,
                                                with_checksums);
  gpukernels::upload_instance(device, ws, small_instance());
  return ws;
}

gpukernels::ChecksumSink vsum_sink(const Workspace& ws) {
  gpukernels::ChecksumSink sink;
  sink.enabled = true;
  sink.buffer = ws.vsum_check;
  sink.blocks = kM / 128;
  return sink;
}

gpukernels::FusedOptions fused_options(const ProgramOptions& options) {
  gpukernels::FusedOptions fopts;
  fopts.mainloop.layout = options.layout;
  return fopts;
}

void run_unfused_tail(gpusim::Device& device, const Workspace& ws,
                      const gpukernels::ChecksumSink& sink) {
  gpukernels::run_kernel_eval(device, ws, kernel_params());
  gpukernels::run_gemv_summation(device, ws, sink);
}

std::vector<RegisteredProgram> build_registry() {
  std::vector<RegisteredProgram> programs;

  programs.push_back(
      {"norms", "squared-norm precomputation kernels (vecα, vecβ)",
       [](gpusim::Device& device, const ProgramOptions&) {
         Workspace ws = prepare(device, false);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
       }});

  programs.push_back(
      {"gemm_cudac", "standalone CUDA-C GEMM, double buffered",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, true);
         gpukernels::GemmOptions gopts;
         gopts.mainloop.layout = options.layout;
         gpukernels::run_gemm_cudac(device, ws.a, ws.b, ws.c, kM, kN, kK,
                                    gopts);
       }});

  programs.push_back(
      {"gemm_cudac_single_buffer",
       "CUDA-C GEMM with the single-buffered smem ablation",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, true);
         gpukernels::GemmOptions gopts;
         gopts.mainloop.layout = options.layout;
         gopts.mainloop.double_buffer = false;
         gpukernels::run_gemm_cudac(device, ws.a, ws.b, ws.c, kM, kN, kK,
                                    gopts);
       }});

  programs.push_back(
      {"gemm_cublas_model", "cuBLAS GEMM traffic model",
       [](gpusim::Device& device, const ProgramOptions&) {
         Workspace ws = prepare(device, true);
         gpukernels::run_gemm_cublas_model(device, ws.a, ws.b, ws.c, kM, kN,
                                           kK);
       }});

  programs.push_back(
      {"unfused_ksum",
       "unfused pipeline: norms, GEMM, eval pass, GEMV summation",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, true);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::GemmOptions gopts;
         gopts.mainloop.layout = options.layout;
         gpukernels::run_gemm_cudac(device, ws.a, ws.b, ws.c, kM, kN, kK,
                                    gopts);
         run_unfused_tail(device, ws, {});
       }});

  programs.push_back(
      {"unfused_ksum_checksum",
       "unfused pipeline with the ABFT column-sum audit and V checksum fork",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, true, /*with_checksums=*/true);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::GemmOptions gopts;
         gopts.mainloop.layout = options.layout;
         gpukernels::run_gemm_cudac(device, ws.a, ws.b, ws.c, kM, kN, kK,
                                    gopts);
         gpukernels::run_abft_colsum(device, ws);
         run_unfused_tail(device, ws, vsum_sink(ws));
       }});

  programs.push_back(
      {"fused_ksum", "fused Algorithm-2 kernel, atomic inter-CTA reduction",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, false);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::run_fused_ksum(device, ws, kernel_params(),
                                    fused_options(options));
       }});

  programs.push_back(
      {"fused_ksum_staged",
       "fused kernel with the two-pass staged reduction ablation",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, false);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::FusedOptions fopts = fused_options(options);
         fopts.atomic_reduction = false;
         gpukernels::run_fused_ksum(device, ws, kernel_params(), fopts);
       }});

  programs.push_back(
      {"fused_ksum_fuse_norms",
       "fused kernel computing the squared norms on the fly",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, false);
         gpukernels::FusedOptions fopts = fused_options(options);
         fopts.fuse_norms = true;
         gpukernels::run_fused_ksum(device, ws, kernel_params(), fopts);
       }});

  programs.push_back(
      {"fused_ksum_single_buffer",
       "fused kernel with the single-buffered smem ablation",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, false);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::FusedOptions fopts = fused_options(options);
         fopts.mainloop.double_buffer = false;
         gpukernels::run_fused_ksum(device, ws, kernel_params(), fopts);
       }});

  programs.push_back(
      {"fused_ksum_checksum",
       "fused kernel forking the ABFT block-checksum second path",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, false, /*with_checksums=*/true);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::FusedOptions fopts = fused_options(options);
         fopts.checksum = vsum_sink(ws);
         gpukernels::run_fused_ksum(device, ws, kernel_params(), fopts);
       }});

  programs.push_back(
      {"fused_ksum_faulted",
       "fused kernel with checksum fork under a deterministic fault plan "
       "(exercises the injection datapaths)",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, false, /*with_checksums=*/true);
         robust::FaultPlan plan(
             robust::FaultPlanConfig::uniform(/*seed=*/11, /*rate=*/1e-4));
         device.set_fault_injector(&plan);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::FusedOptions fopts = fused_options(options);
         fopts.checksum = vsum_sink(ws);
         gpukernels::run_fused_ksum(device, ws, kernel_params(), fopts);
         device.set_fault_injector(nullptr);
       }});

  programs.push_back(
      {"fused_knn", "fused k-nearest-neighbour kernel with merge pass",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, false);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::KnnResult out;
         gpukernels::MainloopConfig config;
         config.layout = options.layout;
         gpukernels::run_fused_knn(device, ws, kKnn, out, config);
       }});

  programs.push_back(
      {"unfused_knn",
       "unfused kNN baseline: GEMM, distance eval, selection scan",
       [](gpusim::Device& device, const ProgramOptions& options) {
         Workspace ws = prepare(device, true);
         gpukernels::run_norms_a(device, ws);
         gpukernels::run_norms_b(device, ws);
         gpukernels::GemmOptions gopts;
         gopts.mainloop.layout = options.layout;
         gpukernels::run_gemm_cudac(device, ws.a, ws.b, ws.c, kM, kN, kK,
                                    gopts);
         gpukernels::run_distance_eval(device, ws);
         gpukernels::KnnResult out;
         gpukernels::run_knn_select(device, ws, kKnn, out);
       }});

  return programs;
}

}  // namespace

const std::vector<RegisteredProgram>& registered_programs() {
  static const std::vector<RegisteredProgram> programs = build_registry();
  return programs;
}

const RegisteredProgram* find_program(const std::string& name) {
  for (const RegisteredProgram& program : registered_programs()) {
    if (program.name == name) return &program;
  }
  return nullptr;
}

std::size_t registry_device_bytes() {
  return std::size_t{64} << 20;
}

RegistryShape registry_shape() { return {kM, kN, kK}; }

}  // namespace ksum::analysis
