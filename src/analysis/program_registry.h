// Registry of analyzable tile programs.
//
// Each entry runs one kernel or pipeline configuration on a caller-provided
// device at a small fixed problem size (256×256, K=16 — two tile columns and
// rows, so inter-CTA interactions exist while a full lint run stays fast).
// The ksum-lint tool and the analysis tests iterate this list; adding a
// kernel to the library means adding it here so the linters see it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gpukernels/gemm_mainloop.h"
#include "gpusim/device.h"

namespace ksum::analysis {

struct ProgramOptions {
  gpukernels::TileLayout layout = gpukernels::TileLayout::kFig5;
};

struct RegisteredProgram {
  std::string name;
  std::string description;
  std::function<void(gpusim::Device&, const ProgramOptions&)> run;
};

/// All registered programs, in a stable order.
const std::vector<RegisteredProgram>& registered_programs();

/// Looks a program up by name; nullptr when absent.
const RegisteredProgram* find_program(const std::string& name);

/// Device heap size sufficient for every registered program.
std::size_t registry_device_bytes();

/// The fixed problem size every registered program runs at.
struct RegistryShape {
  std::size_t m = 0, n = 0, k = 0;
};
RegistryShape registry_shape();

}  // namespace ksum::analysis
