#include "analysis/bank_conflict_lint.h"

#include "gpusim/access_site.h"

namespace ksum::analysis {

void BankConflictLint::on_shared_access(
    const gpusim::SharedAccessEvent& event) {
  BankSiteStats& s = stats_[event.access.site];
  s.requests += 1;
  s.transactions += static_cast<std::uint64_t>(event.transactions);
  s.ideal_transactions +=
      static_cast<std::uint64_t>(event.ideal_transactions);
  if (event.transactions > s.worst_transactions) {
    s.worst_transactions = event.transactions;
  }
  if (event.kind == gpusim::AccessKind::kLoad) {
    s.any_load = true;
  } else {
    s.any_store = true;
  }
}

Diagnostics BankConflictLint::diagnostics() const {
  Diagnostics out;
  auto& registry = gpusim::SiteRegistry::instance();
  for (const auto& [site_id, s] : stats_) {
    if (s.conflicts() == 0) continue;
    const gpusim::AccessSite& site = registry.site(site_id);
    Diagnostic d;
    d.analyzer = "bank-conflict";
    d.site = site_id;
    d.message = "degree-" + std::to_string(s.worst_transactions) +
                " bank conflict: " + std::to_string(s.requests) +
                " requests cost " + std::to_string(s.transactions) +
                " transactions (minimum " +
                std::to_string(s.ideal_transactions) + ")";
    if (site.allows(gpusim::kSiteAllowBankConflicts)) {
      d.severity = Severity::kInfo;
      d.message += " (suppressed: " + std::string(site.rationale) + ")";
    } else {
      d.severity = Severity::kError;
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace ksum::analysis
