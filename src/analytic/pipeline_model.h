// Full-pipeline analytic estimates: the counts → timing → energy chain of
// pipelines::run_pipeline without functional execution, valid up to the
// paper's largest sweeps (M = 524288) in microseconds instead of hours.
// Every bench binary drives this; tests pin it against the functional
// simulator at small sizes.
#pragma once

#include <vector>

#include "analytic/calibration.h"
#include "analytic/dram_model.h"
#include "pipelines/pipeline.h"

namespace ksum::analytic {

struct KernelEstimate {
  std::string name;
  gpusim::CostInputs cost;      // includes modelled DRAM
  gpusim::Counters scalable;    // the exactly-scaled counter classes
  gpusim::LaunchShape shape;
  gpusim::TimingBreakdown timing;
  double useful_flops = 0;
};

struct PipelineEstimate {
  pipelines::Solution solution = pipelines::Solution::kFused;
  std::size_t m = 0, n = 0, k = 0;
  std::vector<KernelEstimate> kernels;
  gpusim::CostInputs total;
  double seconds = 0;
  double useful_flops = 0;
  double flop_efficiency = 0;
  gpusim::EnergyBreakdown energy;

  double l2_transactions() const { return total.l2_transactions; }
  double dram_transactions() const { return total.dram_transactions; }
};

class PipelineModel {
 public:
  explicit PipelineModel(pipelines::RunOptions options = {})
      : options_(std::move(options)) {}

  PipelineEstimate estimate(pipelines::Solution solution, std::size_t m,
                            std::size_t n, std::size_t k);

  /// Estimate for the GEMM kernel alone (Fig. 7).
  KernelEstimate estimate_gemm_only(bool cublas, std::size_t m, std::size_t n,
                                    std::size_t k);

  const pipelines::RunOptions& options() const { return options_; }

 private:
  KernelEstimate finish(const std::string& name,
                        const gpusim::Counters& scaled,
                        const DramTraffic& dram,
                        const gpusim::LaunchConfig& config,
                        std::size_t num_ctas, double mainloop_iters,
                        const config::KernelGrade& grade,
                        double useful_flops);

  pipelines::RunOptions options_;
  Calibrator calibrator_;
};

}  // namespace ksum::analytic
