// Closed-form DRAM transaction model.
//
// The functional simulator executes CTAs sequentially in (by, bx) row-major
// order; this model predicts the DRAM reads/writes that scheduling policy
// produces from working-set reasoning:
//
//  * an A panel (128×K) is fetched once per grid row and survives the whole
//    bx sweep (it is small and hot);
//  * whole-B residency decides whether B streams from DRAM once or once per
//    grid row: B stays cached iff B + one A panel + the row's write traffic
//    fit in the effective L2 capacity;
//  * the M×N intermediate streams (written by GEMM, read+written by the
//    eval pass, read by GEMV) and only avoids DRAM when the whole matrix
//    fits in L2 — the locality loss the paper's Fig. 8b quantifies;
//  * the fused pipeline writes no intermediate, so its DRAM traffic is the
//    inputs plus the tiny vector segments.
//
// Accuracy contract (tested): pipeline-total DRAM within ~35% of the
// functional simulator on mid-size problems, exact asymptotic shape at
// paper scale.
#pragma once

#include <cstddef>

#include "config/device_spec.h"

namespace ksum::analytic {

struct DramTraffic {
  double reads = 0;   // 32-byte transactions
  double writes = 0;

  double total() const { return reads + writes; }
  DramTraffic& operator+=(const DramTraffic& o) {
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
};

struct DramModelInputs {
  std::size_t m = 0, n = 0, k = 0;
  config::DeviceSpec device = config::DeviceSpec::gtx970();
  /// Fraction of L2 usable before conflict/pollution evictions bite.
  double l2_effective_fraction = 0.8;
};

/// Per-kernel traffic (reads/writes attributed to the kernel that performs
/// them; dirty-eviction writebacks are attributed to the producing kernel).
DramTraffic dram_norms_a(const DramModelInputs& in);
DramTraffic dram_norms_b(const DramModelInputs& in);
DramTraffic dram_gemm(const DramModelInputs& in);          // either GEMM
DramTraffic dram_kernel_eval(const DramModelInputs& in);
DramTraffic dram_gemv(const DramModelInputs& in);
/// Fused kernel traffic. With `fuse_norms` the norms kernels never ran, so
/// the fused kernel performs the cold first read of A and B itself and the
/// vecα/vecβ vector loads disappear.
DramTraffic dram_fused(const DramModelInputs& in, bool fuse_norms = false);
DramTraffic dram_fused_staged_extra(const DramModelInputs& in);  // staging IO

}  // namespace ksum::analytic
