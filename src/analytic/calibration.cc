#include "analytic/calibration.h"

#include "common/error.h"
#include "gpukernels/device_workspace.h"
#include "gpukernels/fused_ksum.h"
#include "gpukernels/gemm_cublas_model.h"
#include "gpukernels/gemm_cudac.h"
#include "gpukernels/gemv_summation.h"
#include "gpukernels/kernel_eval.h"
#include "gpukernels/norms.h"
#include "gpusim/device.h"

namespace ksum::analytic {
namespace {

using gpukernels::Workspace;

// Divides the grid-uniform counters by the CTA count (exact by
// construction: every CTA of these kernels issues a congruent access
// stream). Cache-state-dependent fields (hits/misses/DRAM) are dropped —
// the DRAM model owns them.
CalibrationResult from_launch(const gpusim::LaunchResult& launch) {
  const std::uint64_t ctas = launch.grid.count();
  KSUM_CHECK(ctas >= 1);
  const auto div = [ctas](std::uint64_t v, const char* what) {
    KSUM_CHECK_MSG(v % ctas == 0,
                   std::string("non-uniform per-CTA counter: ") + what);
    return v / ctas;
  };
  const gpusim::Counters& c = launch.counters;
  CalibrationResult out;
  gpusim::Counters& p = out.per_cta;
  p.fma_ops = div(c.fma_ops, "fma");
  p.alu_ops = div(c.alu_ops, "alu");
  p.sfu_ops = div(c.sfu_ops, "sfu");
  p.warp_instructions = div(c.warp_instructions, "warp_instructions");
  p.smem_load_requests = div(c.smem_load_requests, "smem_load_requests");
  p.smem_store_requests = div(c.smem_store_requests, "smem_store_requests");
  p.smem_load_transactions =
      div(c.smem_load_transactions, "smem_load_transactions");
  p.smem_store_transactions =
      div(c.smem_store_transactions, "smem_store_transactions");
  p.smem_bank_conflicts = div(c.smem_bank_conflicts, "smem_bank_conflicts");
  p.global_load_requests = div(c.global_load_requests, "global_loads");
  p.global_store_requests = div(c.global_store_requests, "global_stores");
  p.atomic_requests = div(c.atomic_requests, "atomics");
  p.l2_read_transactions = div(c.l2_read_transactions, "l2_reads");
  p.l2_write_transactions = div(c.l2_write_transactions, "l2_writes");
  p.barriers = div(c.barriers, "barriers");
  p.ctas_launched = 1;
  p.kernel_launches = 1;
  out.config = launch.config;
  return out;
}

CalibrationResult calibrate(const CalibrationKey& key) {
  gpusim::Device device(config::DeviceSpec::gtx970(), std::size_t{64} << 20);
  core::KernelParams params;  // Gaussian defaults; counts are data-blind

  switch (key.kind) {
    case KernelKind::kNorms: {
      Workspace ws = gpukernels::allocate_workspace(device, 128, 128, key.k,
                                                    /*with_intermediate=*/false);
      return from_launch(gpukernels::run_norms_a(device, ws));
    }
    case KernelKind::kGemmCudaC: {
      Workspace ws = gpukernels::allocate_workspace(device, 128, 128, key.k,
                                                    /*with_intermediate=*/true);
      gpukernels::GemmOptions opts;
      opts.mainloop.layout = key.layout;
      opts.mainloop.double_buffer = key.double_buffer;
      return from_launch(gpukernels::run_gemm_cudac(device, ws.a, ws.b, ws.c,
                                                    128, 128, key.k, opts));
    }
    case KernelKind::kGemmCublas: {
      Workspace ws = gpukernels::allocate_workspace(device, 128, 128, key.k,
                                                    /*with_intermediate=*/true);
      return from_launch(gpukernels::run_gemm_cublas_model(
          device, ws.a, ws.b, ws.c, 128, 128, key.k));
    }
    case KernelKind::kFused: {
      Workspace ws = gpukernels::allocate_workspace(device, 128, 128, key.k,
                                                    /*with_intermediate=*/false);
      gpukernels::FusedOptions opts;
      opts.mainloop.layout = key.layout;
      opts.mainloop.double_buffer = key.double_buffer;
      opts.fuse_norms = key.fuse_norms;
      return from_launch(
          gpukernels::run_fused_ksum(device, ws, params, opts).main);
    }
    case KernelKind::kFusedStaged: {
      // The staged variant's partial-vector stores stride by grid.x, so the
      // calibration must use the real column-grid width (key.n = N).
      Workspace ws = gpukernels::allocate_workspace(device, 128, key.n,
                                                    key.k,
                                                    /*with_intermediate=*/false);
      gpukernels::FusedOptions opts;
      opts.mainloop.layout = key.layout;
      opts.mainloop.double_buffer = key.double_buffer;
      opts.atomic_reduction = false;
      opts.fuse_norms = key.fuse_norms;
      return from_launch(
          gpukernels::run_fused_ksum(device, ws, params, opts).main);
    }
    case KernelKind::kPartialReduce: {
      // Run the staged fused pipeline on a one-CTA-row problem with the
      // real column-grid width (key.n = N), then calibrate its second pass.
      Workspace ws = gpukernels::allocate_workspace(device, 128, key.n, 8,
                                                    /*with_intermediate=*/false);
      gpukernels::FusedOptions opts;
      opts.atomic_reduction = false;
      const auto result =
          gpukernels::run_fused_ksum(device, ws, params, opts);
      KSUM_CHECK(result.extra.size() == 1);
      return from_launch(result.extra.front());
    }
    case KernelKind::kKernelEval: {
      Workspace ws = gpukernels::allocate_workspace(device, 8, key.n, 8,
                                                    /*with_intermediate=*/true);
      return from_launch(gpukernels::run_kernel_eval(device, ws, params));
    }
    case KernelKind::kGemv: {
      Workspace ws = gpukernels::allocate_workspace(device, 128, key.n, 8,
                                                    /*with_intermediate=*/true);
      return from_launch(gpukernels::run_gemv_summation(device, ws));
    }
  }
  KSUM_CHECK_MSG(false, "unhandled kernel kind");
  return {};
}

}  // namespace

gpusim::Counters scale_counters(const gpusim::Counters& per_cta,
                                std::size_t num_ctas) {
  gpusim::Counters out;
  const auto s = [num_ctas](std::uint64_t v) { return v * num_ctas; };
  out.fma_ops = s(per_cta.fma_ops);
  out.alu_ops = s(per_cta.alu_ops);
  out.sfu_ops = s(per_cta.sfu_ops);
  out.warp_instructions = s(per_cta.warp_instructions);
  out.smem_load_requests = s(per_cta.smem_load_requests);
  out.smem_store_requests = s(per_cta.smem_store_requests);
  out.smem_load_transactions = s(per_cta.smem_load_transactions);
  out.smem_store_transactions = s(per_cta.smem_store_transactions);
  out.smem_bank_conflicts = s(per_cta.smem_bank_conflicts);
  out.global_load_requests = s(per_cta.global_load_requests);
  out.global_store_requests = s(per_cta.global_store_requests);
  out.atomic_requests = s(per_cta.atomic_requests);
  out.l2_read_transactions = s(per_cta.l2_read_transactions);
  out.l2_write_transactions = s(per_cta.l2_write_transactions);
  out.barriers = s(per_cta.barriers);
  out.ctas_launched = num_ctas;
  out.kernel_launches = 1;
  return out;
}

const CalibrationResult& Calibrator::get(const CalibrationKey& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, calibrate(key)).first;
  }
  return it->second;
}

}  // namespace ksum::analytic
