// Unit-CTA calibration: the per-CTA event counts of every kernel.
//
// Each kernel's per-CTA work is identical across its grid (same access
// stream, shifted base addresses), so every counter except the DRAM-side
// ones scales exactly linearly in the CTA count. Rather than hand-deriving
// dozens of closed-form constants (and drifting from the implementation),
// we *measure* one CTA: run the real tile program on a minimal device and
// divide by the CTA count of that unit launch. Property tests then assert
// that scaled calibration equals full functional execution — exactly — for
// the scalable counter classes.
//
// DRAM transactions are cache-state dependent and come from
// analytic/dram_model.h instead.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "core/kernels.h"
#include "gpukernels/gemm_mainloop.h"
#include "gpusim/counters.h"
#include "gpusim/occupancy.h"

namespace ksum::analytic {

/// Which kernel to calibrate.
enum class KernelKind {
  kNorms,        // per-CTA: 128 points × K coordinates
  kGemmCudaC,    // per-CTA: one 128×128 tile over K
  kGemmCublas,   // per-CTA: one 128×128 tile over K (black-box model)
  kFused,        // per-CTA: tile + eval + reduction
  kFusedStaged,  // fused with the non-atomic two-pass reduction
  kPartialReduce,  // second pass of the staged reduction
  kKernelEval,   // per-CTA: 8 rows × N elements
  kGemv,         // per-CTA: 128 rows × N columns
};

struct CalibrationKey {
  KernelKind kind;
  std::size_t k = 0;        // geometric dimension (gemm-shaped kernels)
  std::size_t n = 0;        // row width (eval / gemv) or grid.x (reduce)
  gpukernels::TileLayout layout = gpukernels::TileLayout::kFig5;
  bool double_buffer = true;
  bool fuse_norms = false;  // fused kernels only

  auto operator<=>(const CalibrationKey&) const = default;
};

struct CalibrationResult {
  gpusim::Counters per_cta;     // counters divided by the unit CTA count
  gpusim::LaunchConfig config;  // resources of the launch
};

/// Caches unit runs; cheap to construct, heavier on first use of each key.
class Calibrator {
 public:
  const CalibrationResult& get(const CalibrationKey& key);

 private:
  std::map<CalibrationKey, CalibrationResult> cache_;
};

/// Scales per-CTA counters to `num_ctas` (kernel_launches stays 1).
gpusim::Counters scale_counters(const gpusim::Counters& per_cta,
                                std::size_t num_ctas);

}  // namespace ksum::analytic
