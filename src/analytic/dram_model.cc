#include "analytic/dram_model.h"

namespace ksum::analytic {
namespace {

constexpr double kSector = 32.0;

double sectors(double bytes) { return bytes / kSector; }

struct Sizes {
  double a, b, c, na, nb, w, v, panel_a, eff_l2;
  std::size_t grid_rows;
};

Sizes sizes_of(const DramModelInputs& in) {
  Sizes s{};
  s.a = 4.0 * double(in.m) * double(in.k);
  s.b = 4.0 * double(in.k) * double(in.n);
  s.c = 4.0 * double(in.m) * double(in.n);
  s.na = 4.0 * double(in.m);
  s.nb = 4.0 * double(in.n);
  s.w = 4.0 * double(in.n);
  s.v = 4.0 * double(in.m);
  s.panel_a = 4.0 * 128.0 * double(in.k);
  s.eff_l2 = in.l2_effective_fraction * double(in.device.l2_bytes);
  s.grid_rows = in.m / 128;
  return s;
}

}  // namespace

DramTraffic dram_norms_a(const DramModelInputs& in) {
  const Sizes s = sizes_of(in);
  // Cold read of A, plus the norm vector writeback.
  return {sectors(s.a), sectors(s.na)};
}

DramTraffic dram_norms_b(const DramModelInputs& in) {
  const Sizes s = sizes_of(in);
  return {sectors(s.b), sectors(s.nb)};
}

DramTraffic dram_gemm(const DramModelInputs& in) {
  const Sizes s = sizes_of(in);
  DramTraffic t;
  // A: each 128-row panel missed once, reused across its grid row. When the
  // whole input set fits (tiny problems) even that miss is absorbed by the
  // norms kernels' residual.
  const bool all_inputs_fit = s.a + s.b + s.c <= s.eff_l2;
  if (!all_inputs_fit) {
    t.reads += sectors(s.a);
  }
  // B: resident across grid rows iff it fits next to the hot panel and the
  // C write stream of one row (128 rows × N × 4).
  const double c_row = 4.0 * 128.0 * double(in.n);
  const bool b_resident = s.b + s.panel_a + c_row <= s.eff_l2;
  if (!all_inputs_fit) {
    t.reads += sectors(s.b) * (b_resident ? 1.0 : double(s.grid_rows));
  }
  // C: written once; every sector eventually drains to DRAM unless the
  // whole matrix fits.
  if (s.c > s.eff_l2) {
    t.writes += sectors(s.c);
  }
  return t;
}

DramTraffic dram_kernel_eval(const DramModelInputs& in) {
  const Sizes s = sizes_of(in);
  DramTraffic t;
  if (s.c > s.eff_l2) {
    t.reads += sectors(s.c);       // C streamed back in
    t.writes += sectors(s.c);      // kernel matrix streamed back out
    t.reads += sectors(s.nb + s.na);  // vectors were evicted by the stream
  } else {
    // C stays resident through the pipeline but its final (single) dirty
    // writeback still drains to DRAM at the end of the measurement window.
    t.writes += sectors(s.c);
  }
  return t;
}

DramTraffic dram_gemv(const DramModelInputs& in) {
  const Sizes s = sizes_of(in);
  DramTraffic t;
  if (s.c > s.eff_l2) {
    t.reads += sectors(s.c) + sectors(s.w);
  }
  t.writes += sectors(s.v);
  return t;
}

DramTraffic dram_fused(const DramModelInputs& in, bool fuse_norms) {
  const Sizes s = sizes_of(in);
  DramTraffic t;
  const bool b_resident = s.b + s.panel_a + s.nb + s.w <= s.eff_l2;
  if (fuse_norms) {
    // No norms kernels ran: the fused kernel performs the cold first read
    // of both operands, and the norm vectors never exist in global memory.
    t.reads += sectors(s.a);
    t.reads += sectors(s.b) * (b_resident ? 1.0 : double(s.grid_rows));
    t.reads += sectors(s.w);
  } else {
    const bool all_inputs_fit = s.a + s.b + s.na + s.nb + s.w <= s.eff_l2;
    if (!all_inputs_fit) {
      t.reads += sectors(s.a);  // one panel miss per grid row
      t.reads += sectors(s.b) * (b_resident ? 1.0 : double(s.grid_rows));
      t.reads += sectors(s.na + s.nb + s.w);
    }
  }
  // The atomic result vector: first touch misses, final state drains.
  t.reads += sectors(s.v);
  t.writes += sectors(s.v);
  return t;
}

DramTraffic dram_fused_staged_extra(const DramModelInputs& in) {
  const Sizes s = sizes_of(in);
  const double staging = 4.0 * double(in.m) * double(in.n / 128);
  DramTraffic t;
  // The staging matrix always drains once; if it outgrows L2 the second
  // pass also re-reads it from DRAM.
  t.writes += sectors(staging);
  if (staging > s.eff_l2) {
    t.reads += sectors(staging);
  }
  t.writes += sectors(s.v);
  return t;
}

}  // namespace ksum::analytic
