#include "analytic/pipeline_model.h"

#include "common/error.h"
#include "gpukernels/tile_geometry.h"

namespace ksum::analytic {

using pipelines::Solution;

KernelEstimate PipelineModel::finish(const std::string& name,
                                     const gpusim::Counters& scaled,
                                     const DramTraffic& dram,
                                     const gpusim::LaunchConfig& config,
                                     std::size_t num_ctas,
                                     double mainloop_iters,
                                     const config::KernelGrade& grade,
                                     double useful_flops) {
  KernelEstimate est;
  est.name = name;
  est.scalable = scaled;
  est.cost = gpusim::CostInputs::from_counters(scaled);
  est.cost.dram_transactions = dram.total();
  est.shape.num_ctas = num_ctas;
  est.shape.config = config;
  est.shape.occupancy = gpusim::compute_occupancy(options_.device, config);
  est.shape.mainloop_iters = mainloop_iters;
  est.shape.grade = grade;
  // Only the GEMM-structured kernels have a buffering choice; streaming
  // kernels always overlap.
  est.shape.overlapped_memory =
      mainloop_iters == 0 || options_.mainloop.double_buffer;
  est.useful_flops = useful_flops;
  est.timing = gpusim::estimate_kernel_time(options_.device, options_.timing,
                                            est.cost, est.shape);
  return est;
}

PipelineEstimate PipelineModel::estimate(Solution solution, std::size_t m,
                                         std::size_t n, std::size_t k) {
  KSUM_REQUIRE(m % 128 == 0 && n % 128 == 0 && k % 8 == 0,
               "analytic model needs M, N multiples of 128 and K of 8");
  PipelineEstimate out;
  out.solution = solution;
  out.m = m;
  out.n = n;
  out.k = k;

  const auto cuda_grade = options_.cuda_kernel_grade;
  const auto asm_grade = config::KernelGrade::assembly();
  const double mn = double(m) * double(n);
  const std::size_t tile_ctas = (m / 128) * (n / 128);
  const double iters = double(k) / gpukernels::kTileK;
  DramModelInputs dmi;
  dmi.m = m;
  dmi.n = n;
  dmi.k = k;
  dmi.device = options_.device;

  // Norms — absent when the fused kernel computes them on the fly.
  const bool fused_norms =
      solution == Solution::kFused && options_.fuse_norms;
  if (!fused_norms) {
    const auto& cal = calibrator_.get({KernelKind::kNorms, k, 0});
    out.kernels.push_back(finish(
        "norms_a", scale_counters(cal.per_cta, m / 128), dram_norms_a(dmi),
        cal.config, m / 128, 0, cuda_grade, 2.0 * double(m) * double(k)));
    out.kernels.push_back(finish(
        "norms_b", scale_counters(cal.per_cta, n / 128), dram_norms_b(dmi),
        cal.config, n / 128, 0, cuda_grade, 2.0 * double(n) * double(k)));
  }

  if (solution == Solution::kFused) {
    const KernelKind kind = options_.atomic_reduction
                                ? KernelKind::kFused
                                : KernelKind::kFusedStaged;
    CalibrationKey key{kind, k, n, options_.mainloop.layout,
                       options_.mainloop.double_buffer, options_.fuse_norms};
    const auto& cal = calibrator_.get(key);
    DramTraffic dram = dram_fused(dmi, options_.fuse_norms);
    if (!options_.atomic_reduction) {
      dram += dram_fused_staged_extra(dmi);
    }
    out.kernels.push_back(finish(
        "fused_ksum", scale_counters(cal.per_cta, tile_ctas), dram,
        cal.config, tile_ctas, iters, cuda_grade,
        2.0 * mn * double(k) + 8.0 * mn));
    if (!options_.atomic_reduction) {
      const auto& rcal =
          calibrator_.get({KernelKind::kPartialReduce, 8, n});
      out.kernels.push_back(finish(
          "fused_partial_reduce", scale_counters(rcal.per_cta, m / 128),
          DramTraffic{}, rcal.config, m / 128, 0, cuda_grade, 0.0));
    }
  } else {
    const bool cublas = solution == Solution::kCublasUnfused;
    const KernelKind kind =
        cublas ? KernelKind::kGemmCublas : KernelKind::kGemmCudaC;
    CalibrationKey key{kind, k, 0, options_.mainloop.layout,
                       options_.mainloop.double_buffer};
    const auto& cal = calibrator_.get(key);
    out.kernels.push_back(finish(
        cublas ? "gemm_cublas" : "gemm_cudac",
        scale_counters(cal.per_cta, tile_ctas), dram_gemm(dmi), cal.config,
        tile_ctas, iters, cublas ? asm_grade : cuda_grade,
        2.0 * mn * double(k)));

    const auto& ecal = calibrator_.get({KernelKind::kKernelEval, 8, n});
    out.kernels.push_back(finish(
        "kernel_eval", scale_counters(ecal.per_cta, m / 8),
        dram_kernel_eval(dmi), ecal.config, m / 8, 0, cuda_grade, 6.0 * mn));

    const auto& gcal = calibrator_.get({KernelKind::kGemv, 8, n});
    out.kernels.push_back(finish(
        "gemv_summation", scale_counters(gcal.per_cta, m / 128),
        dram_gemv(dmi), gcal.config, m / 128, 0, cuda_grade, 2.0 * mn));
  }

  for (const auto& kest : out.kernels) {
    out.total.fma_lane_ops += kest.cost.fma_lane_ops;
    out.total.alu_lane_ops += kest.cost.alu_lane_ops;
    out.total.sfu_lane_ops += kest.cost.sfu_lane_ops;
    out.total.warp_instructions += kest.cost.warp_instructions;
    out.total.smem_transactions += kest.cost.smem_transactions;
    out.total.l2_transactions += kest.cost.l2_transactions;
    out.total.dram_transactions += kest.cost.dram_transactions;
    out.seconds += kest.timing.seconds(options_.device);
  }
  out.useful_flops = pipelines::pipeline_useful_flops(m, n, k);
  out.flop_efficiency = gpusim::flop_efficiency(options_.device,
                                                out.useful_flops, out.seconds);
  out.energy =
      gpusim::compute_energy(options_.energy, out.total, out.seconds);
  return out;
}

KernelEstimate PipelineModel::estimate_gemm_only(bool cublas, std::size_t m,
                                                 std::size_t n,
                                                 std::size_t k) {
  KSUM_REQUIRE(m % 128 == 0 && n % 128 == 0 && k % 8 == 0,
               "analytic model needs M, N multiples of 128 and K of 8");
  const std::size_t tile_ctas = (m / 128) * (n / 128);
  const double iters = double(k) / gpukernels::kTileK;
  DramModelInputs dmi;
  dmi.m = m;
  dmi.n = n;
  dmi.k = k;
  dmi.device = options_.device;
  const KernelKind kind =
      cublas ? KernelKind::kGemmCublas : KernelKind::kGemmCudaC;
  CalibrationKey key{kind, k, 0, options_.mainloop.layout,
                     options_.mainloop.double_buffer};
  const auto& cal = calibrator_.get(key);
  return finish(cublas ? "gemm_cublas" : "gemm_cudac",
                scale_counters(cal.per_cta, tile_ctas), dram_gemm(dmi),
                cal.config, tile_ctas, iters,
                cublas ? config::KernelGrade::assembly()
                       : options_.cuda_kernel_grade,
                2.0 * double(m) * double(n) * double(k));
}

}  // namespace ksum::analytic
