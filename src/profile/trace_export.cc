#include "profile/trace_export.h"

namespace ksum::profile {
namespace {

constexpr int kPid = 1;
constexpr int kKernelRow = 1;  // tid of the kernel track
constexpr int kPhaseRow = 2;   // tid of the phase track

Json complete_event(const std::string& name, int tid, double ts_us,
                    double dur_us) {
  Json e = Json::object();
  e.set("name", name);
  e.set("ph", "X");
  e.set("pid", kPid);
  e.set("tid", tid);
  e.set("ts", ts_us);
  e.set("dur", dur_us);
  return e;
}

Json counter_event(const std::string& name, double ts_us, Json args) {
  Json e = Json::object();
  e.set("name", name);
  e.set("ph", "C");
  e.set("pid", kPid);
  e.set("tid", 0);
  e.set("ts", ts_us);
  e.set("args", std::move(args));
  return e;
}

Json thread_name_event(int tid, const char* name) {
  Json e = Json::object();
  e.set("name", "thread_name");
  e.set("ph", "M");
  e.set("pid", kPid);
  e.set("tid", tid);
  Json args = Json::object();
  args.set("name", name);
  e.set("args", std::move(args));
  return e;
}

}  // namespace

Json trace_events_json(const ProgramProfile& profile) {
  Json events = Json::array();
  events.push_back(thread_name_event(kKernelRow, "kernels"));
  events.push_back(thread_name_event(kPhaseRow, "phases"));

  double clock_us = 0;
  for (std::size_t i = 0; i < profile.launches.size(); ++i) {
    const LaunchProfile& launch = profile.launches[i];
    const double dur_us = launch.seconds * 1e6;

    Json kernel = complete_event(launch.launch.kernel_name, kKernelRow,
                                 clock_us, dur_us);
    Json args = Json::object();
    args.set("grid_x", launch.launch.grid_x);
    args.set("grid_y", launch.launch.grid_y);
    args.set("block_threads", launch.launch.block_threads);
    args.set("bound", launch.timing.bound);
    args.set("energy_j", profile.energies[i].aggregate.total());
    kernel.set("args", std::move(args));
    events.push_back(std::move(kernel));

    Json traffic = Json::object();
    traffic.set("l2_transactions",
                launch.counters.l2_total_transactions());
    traffic.set("dram_transactions",
                launch.counters.dram_total_transactions());
    events.push_back(counter_event("memory traffic", clock_us,
                                   std::move(traffic)));

    const double total_wi =
        static_cast<double>(launch.counters.warp_instructions);
    double phase_clock_us = clock_us;
    for (const auto& slice : launch.phases) {
      const double share =
          total_wi > 0
              ? static_cast<double>(slice.counters.warp_instructions) /
                    total_wi
              : 0.0;
      const double phase_dur_us = dur_us * share;
      Json phase = complete_event(slice.phase, kPhaseRow, phase_clock_us,
                                  phase_dur_us);
      Json phase_args = Json::object();
      phase_args.set("warp_instructions", slice.counters.warp_instructions);
      phase_args.set("smem_transactions",
                     slice.counters.smem_total_transactions());
      phase_args.set("l2_transactions",
                     slice.counters.l2_total_transactions());
      phase.set("args", std::move(phase_args));
      events.push_back(std::move(phase));
      phase_clock_us += phase_dur_us;
    }
    clock_us += dur_us;
  }

  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

}  // namespace ksum::profile
