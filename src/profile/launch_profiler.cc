#include "profile/launch_profiler.h"

#include "common/error.h"

namespace ksum::profile {

double SiteTraffic::weighted_sectors() const {
  // Atomic sectors are read-modify-written at the L2: one read + one write
  // transaction per sector, versus one for a plain load or store.
  return static_cast<double>(global_sectors) +
         static_cast<double>(atomic_sectors_);
}

const PhaseSlice* LaunchProfile::find_phase(const std::string& name) const {
  for (const auto& slice : phases) {
    if (slice.phase == name) return &slice;
  }
  return nullptr;
}

const SiteTraffic* LaunchProfile::find_site(gpusim::SiteId site) const {
  for (const auto& traffic : sites) {
    if (traffic.site == site) return &traffic;
  }
  return nullptr;
}

LaunchProfiler::LaunchProfiler(gpusim::Device& device) : device_(device) {
  KSUM_REQUIRE(device.access_observer() == nullptr,
               "device already has an observer attached; profile either "
               "with the analyzer or the profiler, not both");
  device_.set_access_observer(this);
}

LaunchProfiler::~LaunchProfiler() {
  if (device_.access_observer() == this) {
    device_.set_access_observer(nullptr);
  }
}

void LaunchProfiler::on_launch_begin(
    const gpusim::LaunchObservation& launch) {
  current_ = LaunchProfile{};
  current_.launch = launch;
  in_launch_ = true;
  last_snapshot_ = gpusim::Counters{};
  // Device::launch pre-counts the launch itself before the first CTA runs;
  // absorb it into the snapshot so the first phase slice starts clean.
  last_snapshot_.kernel_launches = 1;
  active_phase_ = "kernel";
}

void LaunchProfiler::flush_phase(const gpusim::Counters& upto) {
  const gpusim::Counters delta = upto - last_snapshot_;
  last_snapshot_ = upto;
  if (delta == gpusim::Counters{}) return;
  for (auto& slice : current_.phases) {
    if (slice.phase == active_phase_) {
      slice.counters += delta;
      return;
    }
  }
  current_.phases.push_back({active_phase_, delta});
}

void LaunchProfiler::on_phase(const gpusim::PhaseObservation& marker) {
  if (!in_launch_) return;
  flush_phase(marker.counters);
  active_phase_ = marker.phase;
}

SiteTraffic& LaunchProfiler::site_slot(gpusim::SiteId site) {
  for (auto& traffic : current_.sites) {
    if (traffic.site == site) return traffic;
  }
  current_.sites.emplace_back();
  current_.sites.back().site = site;
  return current_.sites.back();
}

void LaunchProfiler::on_shared_access(
    const gpusim::SharedAccessEvent& event) {
  if (!in_launch_) return;
  SiteTraffic& traffic = site_slot(event.access.site);
  traffic.smem_requests += 1;
  traffic.smem_transactions += static_cast<std::uint64_t>(event.transactions);
  traffic.smem_ideal_transactions +=
      static_cast<std::uint64_t>(event.ideal_transactions);
}

void LaunchProfiler::on_global_access(
    const gpusim::GlobalAccessEvent& event) {
  if (!in_launch_) return;
  SiteTraffic& traffic = site_slot(event.access.site);
  switch (event.kind) {
    case gpusim::AccessKind::kLoad:
      traffic.global_load_requests += 1;
      break;
    case gpusim::AccessKind::kStore:
      traffic.global_store_requests += 1;
      break;
    case gpusim::AccessKind::kAtomicAdd:
      traffic.atomic_requests += 1;
      traffic.atomic_sectors_ += static_cast<std::uint64_t>(event.sectors);
      break;
  }
  traffic.global_sectors += static_cast<std::uint64_t>(event.sectors);
  traffic.global_ideal_sectors +=
      static_cast<std::uint64_t>(event.ideal_sectors);
}

void LaunchProfiler::on_launch_end(const gpusim::Counters& launch_counters) {
  if (!in_launch_) return;
  flush_phase(launch_counters);
  current_.counters = launch_counters;
  // The pre-counted launch event belongs to the record even though it was
  // kept out of the phase slices.
  launches_.push_back(std::move(current_));
  current_ = LaunchProfile{};
  in_launch_ = false;
}

TimingHints default_timing_hints(const std::string& kernel_name,
                                 std::size_t k_total) {
  TimingHints hints;
  const double iters = static_cast<double>(k_total) / 8.0;
  if (kernel_name == "fused_ksum" || kernel_name == "gemm_cudac" ||
      kernel_name == "fused_knn") {
    hints.mainloop_iters = iters;
    hints.grade = config::KernelGrade::cuda_c();
  } else if (kernel_name == "gemm_cublas") {
    hints.mainloop_iters = iters;
    hints.grade = config::KernelGrade::assembly();
  } else {
    // Streaming passes (norms, eval, gemv, reductions, merges).
    hints.mainloop_iters = 0;
    hints.grade = config::KernelGrade::cuda_c();
  }
  return hints;
}

void finalize_profile(const config::DeviceSpec& device,
                      const config::TimingSpec& timing,
                      const TimingHints& hints, LaunchProfile& profile) {
  gpusim::LaunchShape shape;
  shape.num_ctas = static_cast<std::size_t>(profile.launch.grid_x) *
                   static_cast<std::size_t>(profile.launch.grid_y);
  shape.config = profile.launch.config;
  shape.occupancy = profile.launch.occupancy;
  shape.mainloop_iters = hints.mainloop_iters;
  shape.grade = hints.grade;
  shape.overlapped_memory = hints.overlapped_memory;
  profile.timing = gpusim::estimate_kernel_time(
      device, timing, gpusim::CostInputs::from_counters(profile.counters),
      shape);
  profile.seconds = profile.timing.seconds(device);
}

}  // namespace ksum::profile
