#include "profile/profile_json.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "gpusim/access_site.h"

namespace ksum::profile {

ProgramProfile build_program_profile(const std::string& program,
                                     std::size_t m, std::size_t n,
                                     std::size_t k,
                                     const config::DeviceSpec& device,
                                     const config::TimingSpec& timing,
                                     const config::EnergySpec& energy,
                                     std::vector<LaunchProfile> launches,
                                     const std::string& device_name) {
  ProgramProfile out;
  out.program = program;
  out.m = m;
  out.n = n;
  out.k = k;
  out.device_name = device_name;
  out.device = device;
  out.launches = std::move(launches);
  for (auto& launch : out.launches) {
    finalize_profile(device, timing,
                     default_timing_hints(launch.launch.kernel_name, k),
                     launch);
    out.energies.push_back(attribute_energy(energy, launch, launch.seconds));
    out.total_seconds += launch.seconds;
    out.total_counters += launch.counters;
  }
  out.total_energy = gpusim::compute_energy(
      energy, gpusim::CostInputs::from_counters(out.total_counters),
      out.total_seconds);
  return out;
}

Json counters_to_json(const gpusim::Counters& c) {
  // One member per counter; the assert ties this list to the struct so a
  // new counter cannot be added without extending the schema here.
  static_assert(sizeof(gpusim::Counters) == 29 * sizeof(std::uint64_t),
                "Counters changed: update counters_to_json and the "
                "ksum-prof-v1 schema docs");
  Json j = Json::object();
  j.set("fma_ops", c.fma_ops);
  j.set("alu_ops", c.alu_ops);
  j.set("sfu_ops", c.sfu_ops);
  j.set("warp_instructions", c.warp_instructions);
  j.set("smem_load_requests", c.smem_load_requests);
  j.set("smem_store_requests", c.smem_store_requests);
  j.set("smem_load_transactions", c.smem_load_transactions);
  j.set("smem_store_transactions", c.smem_store_transactions);
  j.set("smem_bank_conflicts", c.smem_bank_conflicts);
  j.set("global_load_requests", c.global_load_requests);
  j.set("global_store_requests", c.global_store_requests);
  j.set("atomic_requests", c.atomic_requests);
  j.set("l1_read_transactions", c.l1_read_transactions);
  j.set("l1_read_hits", c.l1_read_hits);
  j.set("l1_read_misses", c.l1_read_misses);
  j.set("l2_read_transactions", c.l2_read_transactions);
  j.set("l2_write_transactions", c.l2_write_transactions);
  j.set("l2_read_hits", c.l2_read_hits);
  j.set("l2_read_misses", c.l2_read_misses);
  j.set("dram_read_transactions", c.dram_read_transactions);
  j.set("dram_write_transactions", c.dram_write_transactions);
  j.set("barriers", c.barriers);
  j.set("ctas_launched", c.ctas_launched);
  j.set("kernel_launches", c.kernel_launches);
  j.set("faults_smem_bitflips", c.faults_smem_bitflips);
  j.set("faults_global_bitflips", c.faults_global_bitflips);
  j.set("faults_tile_corruptions", c.faults_tile_corruptions);
  j.set("faults_atomics_dropped", c.faults_atomics_dropped);
  j.set("faults_atomics_doubled", c.faults_atomics_doubled);
  return j;
}

Json energy_breakdown_json(const gpusim::EnergyBreakdown& e) {
  Json j = Json::object();
  j.set("compute", e.compute_j);
  j.set("smem", e.smem_j);
  j.set("l2", e.l2_j);
  j.set("dram", e.dram_j);
  j.set("static", e.static_j);
  j.set("total", e.total());
  return j;
}

namespace {

/// Maps process-global SiteIds (assigned in lazy intern order, which depends
/// on what ran earlier in the process — and, in batched profiling, on worker
/// scheduling) to record-local ids dense in order of first appearance, so a
/// record is a pure function of the profiled program. Built per record
/// across its launches in order.
class RecordSiteIds {
 public:
  std::uint64_t id_for(gpusim::SiteId site) {
    for (std::size_t i = 0; i < seen_.size(); ++i) {
      if (seen_[i] == site) return i + 1;  // 0 stays the untagged sentinel
    }
    seen_.push_back(site);
    return seen_.size();
  }

 private:
  std::vector<gpusim::SiteId> seen_;
};

Json launch_json(const LaunchProfile& launch,
                 const EnergyAttribution& energy, RecordSiteIds& site_ids) {
  Json j = Json::object();
  j.set("kernel", launch.launch.kernel_name);
  Json grid = Json::array();
  grid.push_back(launch.launch.grid_x);
  grid.push_back(launch.launch.grid_y);
  j.set("grid", std::move(grid));
  j.set("block_threads", launch.launch.block_threads);
  j.set("occupancy_blocks_per_sm", launch.launch.occupancy.blocks_per_sm);
  j.set("seconds", launch.seconds);
  j.set("bound", launch.timing.bound);
  j.set("counters", counters_to_json(launch.counters));

  Json phases = Json::array();
  const double total_wi =
      static_cast<double>(launch.counters.warp_instructions);
  for (const auto& slice : launch.phases) {
    Json p = Json::object();
    p.set("phase", slice.phase);
    // Phase wall time is apportioned by warp-instruction share — the
    // functional simulator has no intra-launch clock, and issue slots are
    // the one resource every phase consumes (see docs/PROFILING.md).
    const double share =
        total_wi > 0
            ? static_cast<double>(slice.counters.warp_instructions) / total_wi
            : 0.0;
    p.set("seconds", launch.seconds * share);
    p.set("counters", counters_to_json(slice.counters));
    phases.push_back(std::move(p));
  }
  j.set("phases", std::move(phases));

  Json sites = Json::array();
  const auto& registry = gpusim::SiteRegistry::instance();
  for (std::size_t i = 0; i < launch.sites.size(); ++i) {
    const SiteTraffic& traffic = launch.sites[i];
    const gpusim::AccessSite& info = registry.site(traffic.site);
    Json s = Json::object();
    s.set("site", traffic.site == 0 ? std::uint64_t{0}
                                    : site_ids.id_for(traffic.site));
    s.set("location", info.location());
    s.set("label", info.label);
    s.set("global_requests", traffic.global_requests());
    s.set("atomic_requests", traffic.atomic_requests);
    s.set("sectors", traffic.global_sectors);
    s.set("ideal_sectors", traffic.global_ideal_sectors);
    s.set("smem_requests", traffic.smem_requests);
    s.set("smem_transactions", traffic.smem_transactions);
    s.set("smem_ideal_transactions", traffic.smem_ideal_transactions);
    const SiteEnergy& se = energy.sites[i];
    Json ej = Json::object();
    ej.set("smem", se.smem_j);
    ej.set("l2", se.l2_j);
    ej.set("dram", se.dram_j);
    ej.set("total", se.total());
    s.set("energy_j", std::move(ej));
    sites.push_back(std::move(s));
  }
  j.set("sites", std::move(sites));

  Json launch_energy = energy_breakdown_json(energy.aggregate);
  Json residual = Json::object();
  residual.set("smem", energy.residual.smem_j);
  residual.set("l2", energy.residual.l2_j);
  residual.set("dram", energy.residual.dram_j);
  launch_energy.set("residual", std::move(residual));
  j.set("energy_j", std::move(launch_energy));
  return j;
}

}  // namespace

Json profile_to_json(const ProgramProfile& profile,
                     const std::string& timestamp) {
  KSUM_CHECK(profile.launches.size() == profile.energies.size());
  Json j = Json::object();
  j.set("schema", "ksum-prof-v1");
  j.set("program", profile.program);
  Json shape = Json::object();
  shape.set("m", profile.m);
  shape.set("n", profile.n);
  shape.set("k", profile.k);
  j.set("shape", std::move(shape));
  Json device = Json::object();
  device.set("name", profile.device_name);
  device.set("num_sms", profile.device.num_sms);
  device.set("core_clock_ghz", profile.device.core_clock_ghz);
  device.set("dram_bandwidth_gb_s", profile.device.dram_bandwidth_gb_s);
  j.set("device", std::move(device));
  Json launches = Json::array();
  RecordSiteIds site_ids;
  for (std::size_t i = 0; i < profile.launches.size(); ++i) {
    launches.push_back(
        launch_json(profile.launches[i], profile.energies[i], site_ids));
  }
  j.set("launches", std::move(launches));
  Json totals = Json::object();
  totals.set("seconds", profile.total_seconds);
  totals.set("counters", counters_to_json(profile.total_counters));
  totals.set("energy_j", energy_breakdown_json(profile.total_energy));
  j.set("totals", std::move(totals));
  if (!timestamp.empty()) j.set("timestamp", timestamp);
  return j;
}

namespace {

const Json& require_member(const Json& obj, const char* key,
                           Json::Type type, const char* where) {
  KSUM_REQUIRE(obj.is_object(), std::string(where) + " must be an object");
  const Json* member = obj.find(key);
  KSUM_REQUIRE(member != nullptr, std::string(where) + " is missing \"" +
                                      key + "\"");
  KSUM_REQUIRE(member->type() == type, std::string(where) + "." + key +
                                           " has the wrong type");
  return *member;
}

double require_number(const Json& obj, const char* key, const char* where) {
  return require_member(obj, key, Json::Type::kNumber, where).as_double();
}

bool close_rel(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

void validate_energy_object(const Json& energy, const char* where) {
  double sum = 0;
  for (const char* key : {"compute", "smem", "l2", "dram", "static"}) {
    sum += require_number(energy, key, where);
  }
  const double total = require_number(energy, "total", where);
  KSUM_REQUIRE(close_rel(sum, total, 1e-9),
               std::string(where) +
                   ".total does not equal the sum of its components");
}

void validate_launch(const Json& launch) {
  require_member(launch, "kernel", Json::Type::kString, "launch");
  const Json& grid = require_member(launch, "grid", Json::Type::kArray,
                                    "launch");
  KSUM_REQUIRE(grid.size() == 2, "launch.grid must be [x, y]");
  require_number(launch, "block_threads", "launch");
  require_number(launch, "seconds", "launch");
  require_member(launch, "counters", Json::Type::kObject, "launch");
  const Json& energy = require_member(launch, "energy_j",
                                      Json::Type::kObject, "launch");
  validate_energy_object(energy, "launch.energy_j");
  const Json& residual = require_member(energy, "residual",
                                        Json::Type::kObject,
                                        "launch.energy_j");

  // The attribution acceptance check: per-site energies + residual +
  // compute/static pseudo-buckets must recompose the aggregate total.
  double attributed = require_number(energy, "compute", "launch.energy_j") +
                      require_number(energy, "static", "launch.energy_j");
  for (const char* key : {"smem", "l2", "dram"}) {
    attributed += require_number(residual, key, "launch.energy_j.residual");
  }
  const Json& sites = require_member(launch, "sites", Json::Type::kArray,
                                     "launch");
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const Json& site = sites.at(i);
    require_number(site, "site", "site");
    require_member(site, "location", Json::Type::kString, "site");
    const Json& site_energy = require_member(site, "energy_j",
                                             Json::Type::kObject, "site");
    const double site_total = require_number(site_energy, "total", "site");
    KSUM_REQUIRE(
        close_rel(site_total,
                  require_number(site_energy, "smem", "site.energy_j") +
                      require_number(site_energy, "l2", "site.energy_j") +
                      require_number(site_energy, "dram", "site.energy_j"),
                  1e-9),
        "site.energy_j.total does not equal the sum of its components");
    attributed += site_total;
  }
  KSUM_REQUIRE(
      close_rel(attributed, require_number(energy, "total", "launch"), 1e-9),
      "per-site energies do not recompose launch.energy_j.total");

  const Json& phases = require_member(launch, "phases", Json::Type::kArray,
                                      "launch");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    require_member(phases.at(i), "phase", Json::Type::kString, "phase");
    require_number(phases.at(i), "seconds", "phase");
    require_member(phases.at(i), "counters", Json::Type::kObject, "phase");
  }
}

}  // namespace

void validate_profile_json(const Json& record) {
  const Json& schema = require_member(record, "schema", Json::Type::kString,
                                      "record");
  KSUM_REQUIRE(schema.as_string() == "ksum-prof-v1",
               "unknown profile schema \"" + schema.as_string() + "\"");
  require_member(record, "program", Json::Type::kString, "record");
  const Json& shape = require_member(record, "shape", Json::Type::kObject,
                                     "record");
  for (const char* key : {"m", "n", "k"}) {
    KSUM_REQUIRE(require_number(shape, key, "shape") > 0,
                 "shape dimensions must be positive");
  }
  require_member(record, "device", Json::Type::kObject, "record");
  const Json& launches = require_member(record, "launches",
                                        Json::Type::kArray, "record");
  KSUM_REQUIRE(launches.size() > 0, "record has no launches");
  for (std::size_t i = 0; i < launches.size(); ++i) {
    validate_launch(launches.at(i));
  }
  const Json& totals = require_member(record, "totals", Json::Type::kObject,
                                      "record");
  require_number(totals, "seconds", "totals");
  require_member(totals, "counters", Json::Type::kObject, "totals");
  validate_energy_object(
      require_member(totals, "energy_j", Json::Type::kObject, "totals"),
      "totals.energy_j");
}

Json batch_profiles_to_json(const std::vector<Json>& programs,
                            const std::string& timestamp) {
  Json record = Json::object();
  record.set("schema", "ksum-prof-batch-v1");
  double total_seconds = 0;
  double total_energy = 0;
  Json array = Json::array();
  for (const Json& program : programs) {
    const Json& totals = program.at("totals");
    total_seconds += totals.at("seconds").as_double();
    total_energy += totals.at("energy_j").at("total").as_double();
    array.push_back(program);
  }
  record.set("programs", std::move(array));
  Json totals = Json::object();
  totals.set("seconds", total_seconds);
  totals.set("energy_j_total", total_energy);
  record.set("totals", std::move(totals));
  if (!timestamp.empty()) record.set("timestamp", timestamp);
  return record;
}

Json shard_profiles_to_json(const std::string& axis, std::size_t m,
                            std::size_t n, std::size_t k,
                            const std::vector<ShardProfileEntry>& shards,
                            const std::string& timestamp) {
  KSUM_REQUIRE(axis == "m" || axis == "n",
               "shard record axis must be \"m\" or \"n\", got \"" + axis +
                   "\"");
  Json record = Json::object();
  record.set("schema", "ksum-prof-shard-v1");
  record.set("axis", axis);
  Json shape = Json::object();
  shape.set("m", std::uint64_t(m));
  shape.set("n", std::uint64_t(n));
  shape.set("k", std::uint64_t(k));
  record.set("shape", std::move(shape));
  double max_seconds = 0;
  double total_energy = 0;
  Json array = Json::array();
  for (const ShardProfileEntry& shard : shards) {
    const Json& totals = shard.profile.at("totals");
    max_seconds = std::max(max_seconds, totals.at("seconds").as_double());
    total_energy += totals.at("energy_j").at("total").as_double();
    Json entry = Json::object();
    entry.set("index", std::uint64_t(shard.index));
    entry.set("begin", std::uint64_t(shard.begin));
    entry.set("end", std::uint64_t(shard.end));
    entry.set("profile", shard.profile);
    array.push_back(std::move(entry));
  }
  record.set("shards", std::move(array));
  Json totals = Json::object();
  totals.set("seconds", max_seconds);
  totals.set("energy_j_total", total_energy);
  record.set("totals", std::move(totals));
  if (!timestamp.empty()) record.set("timestamp", timestamp);
  return record;
}

void validate_profile_shard_json(const Json& record) {
  const Json& schema = require_member(record, "schema", Json::Type::kString,
                                      "record");
  KSUM_REQUIRE(schema.as_string() == "ksum-prof-shard-v1",
               "unknown shard schema \"" + schema.as_string() + "\"");
  const Json& axis = require_member(record, "axis", Json::Type::kString,
                                    "record");
  KSUM_REQUIRE(axis.as_string() == "m" || axis.as_string() == "n",
               "shard record axis must be \"m\" or \"n\"");
  const Json& shape = require_member(record, "shape", Json::Type::kObject,
                                     "record");
  for (const char* key : {"m", "n", "k"}) {
    KSUM_REQUIRE(require_number(shape, key, "shape") > 0,
                 "shape dimensions must be positive");
  }
  const double dim = shape.at(axis.as_string()).as_double();
  const Json& shards = require_member(record, "shards", Json::Type::kArray,
                                      "record");
  KSUM_REQUIRE(shards.size() > 0, "shard record has no shards");
  double max_seconds = 0;
  double energy = 0;
  double cursor = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Json& shard = shards.at(i);
    KSUM_REQUIRE(require_number(shard, "index", "shard") == double(i),
                 "shard indexes must ascend from 0");
    const double begin = require_number(shard, "begin", "shard");
    const double end = require_number(shard, "end", "shard");
    KSUM_REQUIRE(begin == cursor && end > begin,
                 "shard ranges must tile the axis contiguously");
    cursor = end;
    const Json& profile = require_member(shard, "profile",
                                         Json::Type::kObject, "shard");
    validate_profile_json(profile);
    const Json& totals = profile.at("totals");
    max_seconds = std::max(max_seconds, totals.at("seconds").as_double());
    energy += totals.at("energy_j").at("total").as_double();
  }
  KSUM_REQUIRE(cursor == dim,
               "shard ranges must cover the whole axis dimension");
  const Json& totals = require_member(record, "totals", Json::Type::kObject,
                                      "record");
  KSUM_REQUIRE(close_rel(require_number(totals, "seconds", "totals"),
                         max_seconds, 1e-9),
               "shard totals.seconds does not recompose the shards");
  KSUM_REQUIRE(close_rel(require_number(totals, "energy_j_total", "totals"),
                         energy, 1e-9),
               "shard totals.energy_j_total does not recompose the shards");
}

void validate_profile_batch_json(const Json& record) {
  const Json& schema = require_member(record, "schema", Json::Type::kString,
                                      "record");
  KSUM_REQUIRE(schema.as_string() == "ksum-prof-batch-v1",
               "unknown batch schema \"" + schema.as_string() + "\"");
  const Json& programs = require_member(record, "programs",
                                        Json::Type::kArray, "record");
  KSUM_REQUIRE(programs.size() > 0, "batch record has no programs");
  double seconds = 0;
  double energy = 0;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    validate_profile_json(programs.at(i));
    const Json& totals = programs.at(i).at("totals");
    seconds += totals.at("seconds").as_double();
    energy += totals.at("energy_j").at("total").as_double();
  }
  const Json& totals = require_member(record, "totals", Json::Type::kObject,
                                      "record");
  KSUM_REQUIRE(close_rel(require_number(totals, "seconds", "totals"),
                         seconds, 1e-9),
               "batch totals.seconds does not recompose the programs");
  KSUM_REQUIRE(close_rel(require_number(totals, "energy_j_total", "totals"),
                         energy, 1e-9),
               "batch totals.energy_j_total does not recompose the programs");
}

void validate_bench_json(const Json& record) {
  const Json& schema = require_member(record, "schema", Json::Type::kString,
                                      "record");
  KSUM_REQUIRE(schema.as_string() == "ksum-bench-v1",
               "unknown bench schema \"" + schema.as_string() + "\"");
  require_member(record, "bench", Json::Type::kString, "record");
  const Json& points = require_member(record, "points", Json::Type::kArray,
                                      "record");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Json& point = points.at(i);
    for (const char* key : {"m", "n", "k"}) {
      KSUM_REQUIRE(require_number(point, key, "point") > 0,
                   "point dimensions must be positive");
    }
    const Json& pipelines = require_member(point, "pipelines",
                                           Json::Type::kObject, "point");
    KSUM_REQUIRE(pipelines.size() > 0, "point has no pipelines");
    for (const auto& member : pipelines.members()) {
      const Json& pipe = member.second;
      KSUM_REQUIRE(require_number(pipe, "seconds", "pipeline") >= 0,
                   "pipeline seconds must be non-negative");
      validate_energy_object(
          require_member(pipe, "energy_j", Json::Type::kObject, "pipeline"),
          "pipeline.energy_j");
      require_number(pipe, "l2_transactions", "pipeline");
      require_number(pipe, "dram_transactions", "pipeline");
    }
  }
  const Json& tables = require_member(record, "tables", Json::Type::kArray,
                                      "record");
  for (std::size_t i = 0; i < tables.size(); ++i) {
    require_member(tables.at(i), "name", Json::Type::kString, "table");
    require_member(tables.at(i), "csv", Json::Type::kString, "table");
  }
}

}  // namespace ksum::profile
