// Kernel-launch profiler built on the AccessObserver stream.
//
// A LaunchProfiler attaches to a Device for its lifetime and materialises one
// LaunchProfile per kernel launch: the launch structure, the final event
// counters, per-phase counter slices (delta-attributed between the
// BlockContext::phase markers the kernels carry), and per-access-site traffic
// aggregated from the observed request stream. Observation is strictly
// passive — the simulator's results, counters, timing, and energy are
// bit-identical with and without a profiler attached (the determinism tests
// pin this).
//
// Raw profiles carry events only. finalize_profile() folds in the analytic
// timing model and the per-site energy attribution, which need configuration
// (device/timing/energy specs and per-kernel shape hints) the observer
// stream does not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/timing_spec.h"
#include "gpusim/access_observer.h"
#include "gpusim/counters.h"
#include "gpusim/device.h"
#include "gpusim/timing.h"

namespace ksum::profile {

/// Counter slice of one kernel phase: every event that fired while the phase
/// was the active marker, summed across CTAs (CTAs execute sequentially, so
/// each CTA's "mainloop" delta lands in the same named slice).
struct PhaseSlice {
  std::string phase;
  gpusim::Counters counters;
};

/// Aggregate traffic of one static access site within one launch.
struct SiteTraffic {
  gpusim::SiteId site = 0;

  // Global-memory side (sector = 32 bytes, the L2 transaction unit).
  std::uint64_t global_load_requests = 0;
  std::uint64_t global_store_requests = 0;
  std::uint64_t atomic_requests = 0;
  std::uint64_t global_sectors = 0;        // achieved, as serviced
  std::uint64_t global_ideal_sectors = 0;  // if the touched bytes were packed

  // Shared-memory side.
  std::uint64_t smem_requests = 0;
  std::uint64_t smem_transactions = 0;        // after replay expansion
  std::uint64_t smem_ideal_transactions = 0;

  std::uint64_t global_requests() const {
    return global_load_requests + global_store_requests + atomic_requests;
  }
  /// Sector traffic weighted for energy attribution: an atomic request's
  /// sectors are read-modify-written at the L2, so they count twice.
  double weighted_sectors() const;

 private:
  friend class LaunchProfiler;
  std::uint64_t atomic_sectors_ = 0;  // subset of global_sectors from atomics
};

/// Everything observed about one kernel launch, plus the modelled timing
/// filled in by finalize_profile().
struct LaunchProfile {
  gpusim::LaunchObservation launch;
  gpusim::Counters counters;        // final per-launch counts
  std::vector<PhaseSlice> phases;   // order of first marker appearance
  std::vector<SiteTraffic> sites;   // order of first access appearance

  // Filled by finalize_profile(); zero in raw profiles.
  gpusim::TimingBreakdown timing;
  double seconds = 0;

  const PhaseSlice* find_phase(const std::string& name) const;
  const SiteTraffic* find_site(gpusim::SiteId site) const;
};

/// RAII observer: attaches to `device` on construction (which must not
/// already have an observer) and detaches on destruction.
class LaunchProfiler : public gpusim::AccessObserver {
 public:
  explicit LaunchProfiler(gpusim::Device& device);
  ~LaunchProfiler() override;

  LaunchProfiler(const LaunchProfiler&) = delete;
  LaunchProfiler& operator=(const LaunchProfiler&) = delete;

  /// Completed launches, in execution order.
  const std::vector<LaunchProfile>& launches() const { return launches_; }
  std::vector<LaunchProfile> take_launches() { return std::move(launches_); }

  // AccessObserver interface.
  void on_launch_begin(const gpusim::LaunchObservation& launch) override;
  void on_phase(const gpusim::PhaseObservation& marker) override;
  void on_shared_access(const gpusim::SharedAccessEvent& event) override;
  void on_global_access(const gpusim::GlobalAccessEvent& event) override;
  void on_launch_end(const gpusim::Counters& launch_counters) override;

 private:
  /// Adds `upto - last_snapshot_` to the slice of the phase currently in
  /// effect and advances the snapshot.
  void flush_phase(const gpusim::Counters& upto);
  SiteTraffic& site_slot(gpusim::SiteId site);

  gpusim::Device& device_;
  std::vector<LaunchProfile> launches_;
  LaunchProfile current_;
  bool in_launch_ = false;
  gpusim::Counters last_snapshot_;
  /// Phase the events since last_snapshot_ belong to. Kernels without
  /// markers profile as a single "kernel" slice.
  std::string active_phase_ = "kernel";
};

/// Per-kernel inputs the timing model needs beyond observed events. Derived
/// from the kernel name by default_timing_hints(): the GEMM-structured
/// kernels (fused_ksum, gemm_cudac, gemm_cublas, fused_knn) get K/8 mainloop
/// iterations and their code grade; everything else takes the streaming path.
struct TimingHints {
  double mainloop_iters = 0;
  config::KernelGrade grade = config::KernelGrade::cuda_c();
  bool overlapped_memory = true;
};

TimingHints default_timing_hints(const std::string& kernel_name,
                                 std::size_t k_total);

/// Fills `profile.timing`/`profile.seconds` from the analytic timing model.
void finalize_profile(const config::DeviceSpec& device,
                      const config::TimingSpec& timing,
                      const TimingHints& hints, LaunchProfile& profile);

}  // namespace ksum::profile
