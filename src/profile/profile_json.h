// The ksum-prof record: a profiled program run and its stable JSON schema.
//
// Schema "ksum-prof-v1" (all energies in joules, all times in seconds):
//
//   {
//     "schema": "ksum-prof-v1",
//     "program": "<registry name or pipeline label>",
//     "shape": {"m": M, "n": N, "k": K},
//     "device": {"name": "<device profile, e.g. gtx970>", "num_sms": ..,
//                "core_clock_ghz": .., "dram_bandwidth_gb_s": ..},
//     "launches": [ {
//         "kernel": "...", "grid": [x, y], "block_threads": T,
//         "occupancy_blocks_per_sm": B,
//         "seconds": t, "bound": "dram|compute|smem|l2",
//         "counters": { <every Counters field by name> },
//         "phases":  [ {"phase": "...", "seconds": t,
//                       "counters": {...}} ],
//         "sites":   [ {"site": id, "location": "file:line", "label": "...",
//                       "global_requests": .., "sectors": ..,
//                       "ideal_sectors": .., "smem_transactions": ..,
//                       "energy_j": {"smem":..,"l2":..,"dram":..,"total":..}}],
//         "energy_j": {"compute":..,"smem":..,"l2":..,"dram":..,"static":..,
//                      "total":.., "residual":{"smem":..,"l2":..,"dram":..}}
//     } ],
//     "totals": {"seconds": .., "counters": {...},
//                "energy_j": {"compute":..,..,"total":..}},
//     "timestamp": "<optional, set by the CLI; excluded from determinism
//                    comparisons>"
//   }
//
// validate_profile_json() is the schema's executable definition: it checks
// structure and that every launch's per-site energies (+ residual + the
// compute/static pseudo-buckets) recompose the aggregate within 1e-9
// relative tolerance. validate_bench_json() does the same for the
// "ksum-bench-v1" records bench/ emits.
#pragma once

#include <string>
#include <vector>

#include "config/device_spec.h"
#include "config/energy_spec.h"
#include "config/timing_spec.h"
#include "profile/energy_attribution.h"
#include "profile/json.h"
#include "profile/launch_profiler.h"

namespace ksum::profile {

/// A fully finalized profiled run: timing, per-launch energy attribution,
/// and totals over raw LaunchProfiles.
struct ProgramProfile {
  std::string program;
  std::size_t m = 0, n = 0, k = 0;
  /// Device-profile identity serialised as device.name (default: the
  /// paper's machine, keeping pre-profile records byte-identical).
  std::string device_name = "gtx970";
  config::DeviceSpec device;
  std::vector<LaunchProfile> launches;
  std::vector<EnergyAttribution> energies;  // parallel to launches
  double total_seconds = 0;
  gpusim::Counters total_counters;
  gpusim::EnergyBreakdown total_energy;
};

/// Finalizes raw profiler output: per-launch timing (hints derived from the
/// kernel name and `k`), per-launch energy attribution, and totals.
ProgramProfile build_program_profile(const std::string& program,
                                     std::size_t m, std::size_t n,
                                     std::size_t k,
                                     const config::DeviceSpec& device,
                                     const config::TimingSpec& timing,
                                     const config::EnergySpec& energy,
                                     std::vector<LaunchProfile> launches,
                                     const std::string& device_name =
                                         "gtx970");

/// Serialises to the ksum-prof-v1 schema. `timestamp` is emitted verbatim
/// when non-empty (the determinism tests compare records with it stripped).
Json profile_to_json(const ProgramProfile& profile,
                     const std::string& timestamp = "");

/// Serialises one Counters bag as a flat JSON object, one member per
/// counter. The field list is pinned against the struct size, so adding a
/// counter without extending the schema fails to compile.
Json counters_to_json(const gpusim::Counters& c);

/// Serializes an EnergyBreakdown as the schema's energy object (per-bucket
/// joules plus "total"); shared by the profile and bench records.
Json energy_breakdown_json(const gpusim::EnergyBreakdown& energy);

/// Merges per-program ksum-prof-v1 records into one "ksum-prof-batch-v1"
/// record: {"schema", "programs": [<ksum-prof-v1>...], "totals": {"seconds",
/// "energy_j_total"}}. Programs appear in the order given (submission order
/// in the batched profiler), and neither the worker count nor — unless
/// `timestamp` is non-empty — any clock reading is embedded, so same-seed
/// batches serialise byte-identically for any thread count.
Json batch_profiles_to_json(const std::vector<Json>& programs,
                            const std::string& timestamp = "");

/// One shard of a sharded profiling run: its index, half-open element range
/// along the shard axis, and the embedded (timestamp-free) ksum-prof-v1
/// record of that shard's kernels.
struct ShardProfileEntry {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  Json profile;
};

/// Merges per-shard ksum-prof-v1 records into one "ksum-prof-shard-v1"
/// record:
///
///   {"schema": "ksum-prof-shard-v1", "axis": "m"|"n",
///    "shape": {"m": M, "n": N, "k": K},
///    "shards": [{"index": i, "begin": b, "end": e,
///                "profile": <ksum-prof-v1>} ...],
///    "totals": {"seconds": .., "energy_j_total": ..}}
///
/// totals.seconds is the max over shards (each shard runs on its own
/// device, concurrently — matching the sharded pipeline report's modelled
/// wall time); totals.energy_j_total is the sum. Shards appear in index
/// order and no clock reading is embedded unless `timestamp` is non-empty,
/// so the record is a pure function of (shape, axis, shard plan).
Json shard_profiles_to_json(const std::string& axis, std::size_t m,
                            std::size_t n, std::size_t k,
                            const std::vector<ShardProfileEntry>& shards,
                            const std::string& timestamp = "");

/// Throws ksum::Error describing the first violation; returns normally on a
/// well-formed record.
void validate_profile_json(const Json& record);
/// Validates a ksum-prof-shard-v1 record: the axis must be "m" or "n", the
/// shard ranges must tile [0, shape.<axis>) contiguously in index order,
/// every embedded profile must validate as ksum-prof-v1, and the totals
/// must recompose (max of seconds, sum of energy).
void validate_profile_shard_json(const Json& record);
/// Validates a ksum-prof-batch-v1 record: every embedded program record must
/// validate, and the batch totals must recompose the per-program totals.
void validate_profile_batch_json(const Json& record);
void validate_bench_json(const Json& record);

}  // namespace ksum::profile
