// Minimal ordered JSON document model for the profiling exporters.
//
// The profiler emits machine-readable artifacts (ksum-prof records, Chrome
// trace files, BENCH_*.json) and the tests re-read them to validate the
// schema, so both directions live here: a builder that preserves insertion
// order (stable diffs, golden-friendly output) and a strict recursive-descent
// parser. This is deliberately not a general JSON library — numbers are
// doubles, no comments, no trailing commas — exactly the subset the schemas
// use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ksum::profile {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw ksum::Error when the value has another type.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Object member insertion (keeps insertion order; replaces an existing
  /// key in place). Returns *this for chaining.
  Json& set(std::string key, Json value);

  /// Array append.
  Json& push_back(Json value);

  /// Object lookup. `find` returns nullptr when absent; `at` throws
  /// ksum::Error naming the missing key.
  const Json* find(std::string_view key) const;
  const Json& at(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Array element access (throws ksum::Error when out of range).
  const Json& at(std::size_t index) const;

  /// Array length / object member count.
  std::size_t size() const;

  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serialises with 2-space indentation and '\n' line ends; numbers print
  /// as integers when exactly integral, %.17g otherwise (round-trip safe).
  std::string dump() const;

  /// Single-line serialisation (no whitespace, no trailing newline) for
  /// newline-delimited protocols (the ksum-serve wire format). Same number
  /// and escaping rules as dump(), so both forms parse back identically.
  std::string dump_compact() const;

  /// Strict parser; throws ksum::Error with byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent) const;
  void dump_compact_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;                             // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

/// Formats a double the way Json::dump does (shared with the CSV emitters
/// that want identical number text in both artifacts).
std::string json_number(double v);

}  // namespace ksum::profile
