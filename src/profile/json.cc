#include "profile/json.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace ksum::profile {

bool Json::as_bool() const {
  KSUM_REQUIRE(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_double() const {
  KSUM_REQUIRE(type_ == Type::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& Json::as_string() const {
  KSUM_REQUIRE(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

Json& Json::set(std::string key, Json value) {
  KSUM_REQUIRE(type_ == Type::kObject, "set() needs a JSON object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  KSUM_REQUIRE(type_ == Type::kArray, "push_back() needs a JSON array");
  items_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  KSUM_REQUIRE(found != nullptr,
               "JSON object has no member \"" + std::string(key) + "\"");
  return *found;
}

const Json& Json::at(std::size_t index) const {
  KSUM_REQUIRE(type_ == Type::kArray, "indexed access needs a JSON array");
  KSUM_REQUIRE(index < items_.size(), "JSON array index out of range");
  return items_[index];
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

std::string json_number(double v) {
  KSUM_REQUIRE(std::isfinite(v), "JSON numbers must be finite");
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

namespace {

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += json_number(number_);
      return;
    case Type::kString:
      escape_to(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(out, indent + 1);
        items_[i].dump_to(out, indent + 1);
      }
      newline_indent(out, indent);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(out, indent + 1);
        escape_to(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent + 1);
      }
      newline_indent(out, indent);
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

std::string Json::dump_compact() const {
  std::string out;
  dump_compact_to(out);
  return out;
}

void Json::dump_compact_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += json_number(number_);
      return;
    case Type::kString:
      escape_to(out, string_);
      return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        items_[i].dump_compact_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        escape_to(out, members_[i].first);
        out += ':';
        members_[i].second.dump_compact_to(out);
      }
      out += '}';
      return;
    }
  }
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }
  void require(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }
  void expect_word(std::string_view word) {
    require(text_.substr(pos_, word.size()) == word, "invalid literal");
    pos_ += word.size();
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        expect_word("true");
        return Json(true);
      case 'f':
        expect_word("false");
        return Json(false);
      case 'n':
        expect_word("null");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20,
                "unescaped control character in string");
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // The schemas are ASCII; keep non-ASCII escapes as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    require(pos_ > start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    require(end == token.c_str() + token.size() && std::isfinite(value),
            "malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ksum::profile
