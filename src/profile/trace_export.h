// Chrome trace_event export of a profiled run.
//
// Produces the JSON object format chrome://tracing, Perfetto, and speedscope
// load: complete ("X") events with microsecond timestamps. Launches lay out
// back-to-back on a modelled timeline (row "kernels"); each launch's phase
// slices nest underneath on row "phases", with wall time apportioned by
// warp-instruction share (the same rule the ksum-prof record uses). Counter
// ("C") events alongside chart the DRAM/L2 traffic per launch, so the
// memory-bound story of the paper is visible directly in the viewer.
#pragma once

#include "profile/json.h"
#include "profile/profile_json.h"

namespace ksum::profile {

/// Builds the {"traceEvents": [...], "displayTimeUnit": "ms"} document.
Json trace_events_json(const ProgramProfile& profile);

}  // namespace ksum::profile
