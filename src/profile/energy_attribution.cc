#include "profile/energy_attribution.h"

namespace ksum::profile {

double EnergyAttribution::attributed_total() const {
  double total = aggregate.compute_j + aggregate.static_j + residual.total();
  for (const auto& site : sites) total += site.total();
  return total;
}

EnergyAttribution attribute_energy(const config::EnergySpec& spec,
                                   const LaunchProfile& profile,
                                   double seconds) {
  EnergyAttribution out;
  out.aggregate = gpusim::compute_energy(
      spec, gpusim::CostInputs::from_counters(profile.counters), seconds);

  // Denominators come from the counters (the quantities the aggregate model
  // actually priced), not from the observed sums — black-box counter bumps
  // (count_smem_transactions) have no observer events, and their share must
  // land in the residual, not be smeared over the observed sites.
  const gpusim::Counters& c = profile.counters;
  const double smem_denom = static_cast<double>(c.smem_total_transactions());
  const double cache_denom = static_cast<double>(
      c.l1_read_transactions + c.l2_total_transactions());

  double assigned_smem = 0, assigned_l2 = 0, assigned_dram = 0;
  out.sites.reserve(profile.sites.size());
  for (const auto& traffic : profile.sites) {
    SiteEnergy site;
    site.site = traffic.site;
    if (smem_denom > 0) {
      site.smem_j = out.aggregate.smem_j *
                    static_cast<double>(traffic.smem_transactions) /
                    smem_denom;
    }
    if (cache_denom > 0) {
      const double weight = traffic.weighted_sectors() / cache_denom;
      site.l2_j = out.aggregate.l2_j * weight;
      site.dram_j = out.aggregate.dram_j * weight;
    }
    assigned_smem += site.smem_j;
    assigned_l2 += site.l2_j;
    assigned_dram += site.dram_j;
    out.sites.push_back(site);
  }

  // Residuals by subtraction, so the decomposition recomposes to the
  // aggregate exactly (up to float round-off) whatever the weights were.
  out.residual.site = 0;
  out.residual.smem_j = out.aggregate.smem_j - assigned_smem;
  out.residual.l2_j = out.aggregate.l2_j - assigned_l2;
  out.residual.dram_j = out.aggregate.dram_j - assigned_dram;
  return out;
}

}  // namespace ksum::profile
