// Per-access-site energy attribution.
//
// The aggregate energy model (gpusim/energy.h) prices a launch's counter
// totals; this module folds the same per-access costs over the observed
// per-site traffic so each static access site gets its share of the memory
// energy. The method is proportional with exact residuals:
//
//   smem_j  split ∝ per-site shared-memory transactions,
//   l2_j    split ∝ per-site sectors (atomic sectors weighted 2× — the L2
//           read-modify-writes them),
//   dram_j  split ∝ the same sector weights (DRAM traffic is L2 fill and
//           writeback of those sectors),
//
// with the unassigned remainder — traffic from black-box counter bumps
// (count_smem_transactions) or float imprecision — in an explicit residual
// bucket, and compute_j / static_j kept as launch-wide pseudo-buckets (they
// have no per-site meaning). By construction
//
//   Σ site.total() + residual.total() + compute_j + static_j
//     == compute_energy(spec, counters, seconds).total()
//
// to floating-point round-off; the acceptance tests pin this at 1e-9
// relative tolerance.
#pragma once

#include <vector>

#include "config/energy_spec.h"
#include "gpusim/energy.h"
#include "profile/launch_profiler.h"

namespace ksum::profile {

struct SiteEnergy {
  gpusim::SiteId site = 0;
  double smem_j = 0;
  double l2_j = 0;
  double dram_j = 0;
  double total() const { return smem_j + l2_j + dram_j; }
};

struct EnergyAttribution {
  /// The launch-wide model output the sites are a decomposition of.
  gpusim::EnergyBreakdown aggregate;
  /// One entry per observed site, launch-profile order.
  std::vector<SiteEnergy> sites;
  /// Memory energy not attributable to any observed request (site = the
  /// untagged sentinel 0 in the reports).
  SiteEnergy residual;

  /// Sites + residual + the launch-wide compute/static buckets; equals
  /// aggregate.total() by construction.
  double attributed_total() const;
};

EnergyAttribution attribute_energy(const config::EnergySpec& spec,
                                   const LaunchProfile& profile,
                                   double seconds);

}  // namespace ksum::profile
