// Shared vocabulary of the sharding layer (docs/SHARDING.md).
//
// A sharded run splits one kernel-summation request across several warm
// simulated Devices and merges the per-shard results back into the exact
// bits the single-device run would have produced:
//
//   kM — split the source points (rows of A / entries of V). Every shard
//        computes a disjoint row range of V; the merge is a concatenation,
//        byte-exact by construction for every backend.
//   kN — split the target points (columns of B / entries of W). Every
//        shard contributes partial sums for every row of V, so the merge
//        must reproduce the single-device reduction order bit-for-bit.
//        The fused kernel's staged (non-atomic) reduction makes that
//        possible: shards run with atomic_reduction=false, export their
//        per-column-CTA staging partials, and the host merge replays the
//        device's own ascending-column-CTA fold (see shard/merge.h).
//
// This header is included by pipelines/pipeline.h (RunOptions::shards), so
// it must stay dependency-light: no pipeline or device includes beyond the
// fault-injection interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/fault_injection.h"
#include "robust/recovery.h"

namespace ksum::shard {

enum class ShardAxis {
  kAuto,  // planner picks by replicated-operand traffic (plan.h)
  kM,     // split source rows — concatenation merge, any backend
  kN,     // split target columns — staged-partial merge, fused backend only
};

std::string to_string(ShardAxis axis);

/// Per-shard fault-injector source for sharded runs. Called once per
/// dispatch of a shard (dispatch 0 = first hand-out, 1.. = re-dispatches
/// after a shard gave up) from the worker thread that runs it; must be
/// thread-safe. Returning nullptr runs that dispatch fault-free — the
/// natural model for "the retry lands on a device without this fault".
/// The runner keeps the returned injector alive for exactly that one
/// pipeline execution.
using ShardInjectorFactory =
    std::function<std::shared_ptr<gpusim::FaultInjector>(std::size_t shard,
                                                         int dispatch)>;

/// Sharding request carried in pipelines::RunOptions. `count == 1` (the
/// default) means unsharded execution; the rest of the fields are ignored.
struct ShardSpec {
  /// Number of shards. 1 = off, 0 = auto (smallest count whose per-shard
  /// arena fits `max_device_bytes`). Explicit counts are clamped to the
  /// number of CTA-aligned blocks along the chosen axis.
  std::size_t count = 1;
  ShardAxis axis = ShardAxis::kAuto;
  /// Worker threads (each with its own warm Device). 0 = one per shard.
  /// Results are bit-identical for every worker count.
  int workers = 0;
  /// Per-device arena budget consulted by auto shard counts. 0 = the
  /// active device profile's arena (DeviceSpec::shard_arena_bytes; 512 MiB
  /// on the paper's gtx970).
  std::size_t max_device_bytes = 0;
  /// Total hand-outs allowed per shard: 1 initial dispatch plus
  /// re-dispatches after the shard's own recovery gave up. The re-dispatch
  /// preferentially lands on a different worker (straggler/fault
  /// tolerance); see shard/runner.h.
  int max_dispatches = 2;
  /// Optional per-(shard, dispatch) fault injectors. Sharded runs reject a
  /// plain RunOptions::fault_injector — one injector cannot describe which
  /// device the fault lives on.
  ShardInjectorFactory injector_factory;

  bool enabled() const { return count != 1; }
};

/// Host-side copy of the fused kernel's staging buffer: one partial V value
/// per (row, column-CTA) pair, row-major `rows × cols`, downloaded when
/// RunOptions::capture_staged_partials is set. The merge layer replays the
/// device's reduction fold over these (merge.h).
struct StagedPartials {
  std::size_t rows = 0;  // padded M of the run
  std::size_t cols = 0;  // grid.x — column CTAs
  std::vector<float> data;
};

/// What happened to one shard, for reports and the fault campaign.
struct ShardSliceReport {
  std::size_t index = 0;
  std::size_t begin = 0;  // element range along the shard axis
  std::size_t end = 0;
  /// Hand-outs this shard consumed (1 = clean single dispatch).
  int dispatches = 1;
  /// Recovery outcome of the *last* dispatch, with attempts/faults summed
  /// over every dispatch of this shard.
  robust::RecoveryReport recovery;
};

struct ShardReport {
  ShardAxis axis = ShardAxis::kM;
  std::vector<ShardSliceReport> slices;
  /// Workers the runner actually used.
  int workers = 0;
  std::size_t count() const { return slices.size(); }
  /// Total pipeline executions across all shards and dispatches.
  int total_attempts() const {
    int total = 0;
    for (const auto& s : slices) total += s.recovery.attempts;
    return total;
  }
};

/// Deterministic per-(shard, dispatch) seed derivation, splitmix-style like
/// pipelines::BatchRequest::derived_fault_seed — callers that build
/// ShardInjectorFactory instances from one base seed all use this, so a
/// shard's fault stream is a pure function of (base, shard, dispatch).
inline std::uint64_t shard_fault_seed(std::uint64_t base, std::size_t shard,
                                      int dispatch) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = base;
  z += kGolden * (2 * static_cast<std::uint64_t>(shard) + 1);
  z += kGolden * (static_cast<std::uint64_t>(dispatch) + 1) *
       std::uint64_t{0x10001};
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace ksum::shard
