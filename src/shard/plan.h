// Shard planning: which axis to split, how many shards, and where the cut
// points fall (docs/SHARDING.md §Planning).
//
// Cut points are constrained by the simulated kernels' CTA geometry: a
// shard boundary must coincide with a padding boundary of the *unsharded*
// run, i.e. a multiple of lcm(tile edge, 128) of the geometry the solver
// resolved for the full shape. With that alignment every shard sees exactly
// the CTA blocks the single-device run would have assigned to its range, so
// per-shard padding reproduces the unsharded padding bit-for-bit (the last,
// ragged shard pads itself with the same zero points the unsharded run
// appends).
#pragma once

#include <cstddef>
#include <vector>

#include "pipelines/pipeline.h"
#include "shard/types.h"

namespace ksum::shard {

/// Half-open element range [begin, end) along the shard axis.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

struct ShardPlan {
  ShardAxis axis = ShardAxis::kM;
  /// Contiguous, ascending partition of the axis dimension.
  std::vector<ShardRange> ranges;
  /// CTA-block alignment every interior boundary is a multiple of.
  std::size_t align = 0;
  std::size_t count() const { return ranges.size(); }
};

/// Replicated-operand traffic (bytes) a c-way split of the given axis adds
/// over the unsharded run — the planner's analytic cost model. Splitting M
/// re-reads B, its norms and W on every shard; splitting N re-reads A and
/// its norms and adds the staging write+read of the non-atomic reduction.
double replicated_bytes(ShardAxis axis, std::size_t m, std::size_t n,
                        std::size_t k, std::size_t tile_n, std::size_t count);

/// Builds the plan for a (m, n, k) problem under `options`:
///
///   axis  — `spec.axis`, or for kAuto: kM unless the backend is the fused
///           solution *and* the replicated-traffic model favours kN.
///   count — `spec.count`, or for 0 (auto) the smallest count whose
///           per-shard device arena fits `spec.max_device_bytes`; either
///           way clamped to the number of aligned blocks along the axis.
///   cuts  — blocks split as evenly as possible; when the count does not
///           divide the block count the earlier shards take one extra
///           block and the last shard carries the ragged tail.
///
/// `options.mainloop.geometry` must already be the geometry of the full
/// problem (the solver resolves it before planning). Throws ksum::Error
/// for unplannable requests (kN with a non-fused solution; auto counts
/// that cannot fit the budget even fully split).
ShardPlan plan_shards(std::size_t m, std::size_t n, std::size_t k,
                      const pipelines::RunOptions& options,
                      pipelines::Solution solution);

/// Smallest shard count whose largest shard has at most `limit` elements
/// along a `dim`-sized axis, given the admission-time block alignment.
/// Returns 0 when no count achieves it (limit < align). The serving layer
/// uses this to turn an oversized shape into a shard count before the
/// solver resolves the real geometry.
std::size_t min_shards_for_limit(std::size_t dim, std::size_t align,
                                 std::size_t limit);

}  // namespace ksum::shard
