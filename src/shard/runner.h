// Master/worker execution of a sharded solve (docs/SHARDING.md §Runner).
//
// The runner materialises the shard plan, slices the instance, and drives
// the shards through an exec::ThreadPool via a task queue: workers pull
// (shard, dispatch) tasks with next_task, run each shard as an ordinary
// pipelines::solve on their own warm Device, and report completion with
// task_done. A shard whose own recovery gave up (every retry and fallback
// still flagged by the ABFT checks) is re-dispatched — handed back to the
// queue with the failing worker banned, so the retry preferentially lands
// on a different worker/device (straggler and sticky-fault tolerance); the
// failing worker may only reclaim it when it is the only worker. After all
// shards complete, the per-shard results are merged with the fixed-order
// tree of shard/merge.h, so the output is bit-identical for every worker
// count and completion order.
#pragma once

#include "pipelines/solver.h"
#include "shard/plan.h"
#include "shard/types.h"

namespace ksum::shard {

/// Executes `instance` sharded per `options.shards` and returns a
/// SolveResult whose V is bit-identical to the unsharded run of the same
/// options; `result.shards` carries the per-shard report. Called by
/// pipelines::solve — `options.mainloop.geometry` must already be the
/// resolved geometry of the full problem, and `backend` must be one of the
/// simulated backends. Throws ksum::Error when `options.fault_injector` is
/// set (sharded runs take ShardSpec::injector_factory).
pipelines::SolveResult run_sharded(const workload::Instance& instance,
                                   const core::KernelParams& params,
                                   pipelines::Backend backend,
                                   const pipelines::RunOptions& options);

/// Copies the sub-instance covering `range` of `axis` out of `instance`:
/// kM slices rows of A (B and W are replicated), kN slices columns of B and
/// the matching W entries (A is replicated). Exposed for tests.
workload::Instance slice_instance(const workload::Instance& instance,
                                  ShardAxis axis, const ShardRange& range);

}  // namespace ksum::shard
