// Deterministic merge of per-shard results (docs/SHARDING.md §Merge).
//
// Pieces are merged pairwise in a fixed binary tree over the shard *index*
// order — never completion order — so the merged result is a pure function
// of the shard results, independent of worker count and scheduling:
//
//   round 0:  (0,1) (2,3) (4,5) ...
//   round 1:  (01,23) (45,67) ...          (odd piece carried unmerged)
//
// Both merge kinds are associative over adjacent ranges, so the tree shape
// cannot change the bits — pinned by the property tests anyway:
//
//   kM — pieces hold disjoint V row ranges; merging is concatenation.
//   kN — pieces hold columns of the fused kernel's staging matrix (one
//        partial V value per (row, column-CTA)); merging concatenates the
//        column ranges per row. finalize() then replays the device's own
//        partial-reduce fold — ascending column-CTA index, accumulator
//        starting from 0.0f, exactly run_partial_reduce's loop — so the
//        final V is bit-identical to the single-device run (whose atomic
//        reduction applies the same ascending-bx fold under the simulator's
//        sequential CTA execution).
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "shard/types.h"

namespace ksum::shard {

/// One shard's mergeable payload, covering [begin, end) of the shard axis.
struct ShardPiece {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// kM: the shard's V rows (already truncated to end - begin entries).
  std::vector<float> rows;
  /// kN: the shard's staging matrix, row-major staged_rows × staged_cols.
  /// staged_rows is the padded M (identical across shards); staged_cols the
  /// shard's column-CTA count.
  std::vector<float> staged;
  std::size_t staged_rows = 0;
  std::size_t staged_cols = 0;
};

/// Merges two adjacent pieces (left.end == right.begin). Throws ksum::Error
/// on non-adjacent or shape-inconsistent pieces.
ShardPiece merge_pair(ShardAxis axis, const ShardPiece& left,
                      const ShardPiece& right);

/// Folds `pieces` (sorted by index, contiguous ranges) with the fixed
/// binary tree above and returns the single root piece.
ShardPiece merge_tree(ShardAxis axis, std::vector<ShardPiece> pieces);

/// Turns the root piece into the final V of length `m`: kM moves the
/// concatenated rows out; kN replays the device partial-reduce fold over
/// the assembled staging matrix.
Vector finalize_merge(ShardAxis axis, const ShardPiece& root, std::size_t m);

}  // namespace ksum::shard
