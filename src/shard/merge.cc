#include "shard/merge.h"

#include <utility>

#include "common/error.h"

namespace ksum::shard {

ShardPiece merge_pair(ShardAxis axis, const ShardPiece& left,
                      const ShardPiece& right) {
  KSUM_REQUIRE(left.end == right.begin,
               "merge_pair: pieces are not adjacent");
  ShardPiece out;
  out.index = left.index;
  out.begin = left.begin;
  out.end = right.end;
  if (axis == ShardAxis::kM) {
    KSUM_REQUIRE(left.rows.size() == left.end - left.begin &&
                     right.rows.size() == right.end - right.begin,
                 "merge_pair: piece row counts do not match their ranges");
    out.rows.reserve(left.rows.size() + right.rows.size());
    out.rows.insert(out.rows.end(), left.rows.begin(), left.rows.end());
    out.rows.insert(out.rows.end(), right.rows.begin(), right.rows.end());
    return out;
  }
  KSUM_REQUIRE(axis == ShardAxis::kN, "merge_pair: unresolved shard axis");
  KSUM_REQUIRE(left.staged_rows == right.staged_rows && left.staged_rows > 0,
               "merge_pair: staged row counts differ between shards");
  KSUM_REQUIRE(
      left.staged.size() == left.staged_rows * left.staged_cols &&
          right.staged.size() == right.staged_rows * right.staged_cols,
      "merge_pair: staged matrix sizes do not match their shapes");
  out.staged_rows = left.staged_rows;
  out.staged_cols = left.staged_cols + right.staged_cols;
  out.staged.resize(out.staged_rows * out.staged_cols);
  for (std::size_t row = 0; row < out.staged_rows; ++row) {
    float* dst = out.staged.data() + row * out.staged_cols;
    const float* lsrc = left.staged.data() + row * left.staged_cols;
    const float* rsrc = right.staged.data() + row * right.staged_cols;
    std::copy(lsrc, lsrc + left.staged_cols, dst);
    std::copy(rsrc, rsrc + right.staged_cols, dst + left.staged_cols);
  }
  return out;
}

ShardPiece merge_tree(ShardAxis axis, std::vector<ShardPiece> pieces) {
  KSUM_REQUIRE(!pieces.empty(), "merge_tree: no pieces");
  for (std::size_t i = 0; i + 1 < pieces.size(); ++i) {
    KSUM_REQUIRE(pieces[i].index + 1 == pieces[i + 1].index &&
                     pieces[i].end == pieces[i + 1].begin,
                 "merge_tree: pieces must be index-sorted and contiguous");
  }
  while (pieces.size() > 1) {
    std::vector<ShardPiece> next;
    next.reserve((pieces.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < pieces.size(); i += 2) {
      next.push_back(merge_pair(axis, pieces[i], pieces[i + 1]));
    }
    if (pieces.size() % 2 == 1) {
      next.push_back(std::move(pieces.back()));
    }
    pieces = std::move(next);
  }
  return std::move(pieces.front());
}

Vector finalize_merge(ShardAxis axis, const ShardPiece& root, std::size_t m) {
  Vector v(m);
  if (axis == ShardAxis::kM) {
    KSUM_REQUIRE(root.rows.size() == m,
                 "finalize_merge: merged rows do not cover V");
    for (std::size_t i = 0; i < m; ++i) v[i] = root.rows[i];
    return v;
  }
  KSUM_REQUIRE(axis == ShardAxis::kN, "finalize_merge: unresolved axis");
  KSUM_REQUIRE(root.staged_rows >= m && root.staged_cols > 0,
               "finalize_merge: staged matrix does not cover V");
  // Replay of gpukernels::run_partial_reduce: per row, a scalar
  // accumulator starting at 0.0f folded over the column-CTA partials in
  // ascending global index — the identical float additions in the
  // identical order, hence bit-identical to the single-device second pass.
  for (std::size_t row = 0; row < m; ++row) {
    const float* partials = root.staged.data() + row * root.staged_cols;
    float sum = 0.0f;
    for (std::size_t j = 0; j < root.staged_cols; ++j) {
      sum += partials[j];
    }
    v[row] = sum;
  }
  return v;
}

}  // namespace ksum::shard
