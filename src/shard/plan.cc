#include "shard/plan.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "workload/padding.h"

namespace ksum::shard {
namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

std::string to_string(ShardAxis axis) {
  switch (axis) {
    case ShardAxis::kAuto:
      return "auto";
    case ShardAxis::kM:
      return "m";
    case ShardAxis::kN:
      return "n";
  }
  return "unknown";
}

double replicated_bytes(ShardAxis axis, std::size_t m, std::size_t n,
                        std::size_t k, std::size_t tile_n,
                        std::size_t count) {
  if (count <= 1) return 0.0;
  const double extra = double(count - 1);
  if (axis == ShardAxis::kM) {
    // Every additional M shard re-reads B (k×n), its norms (n) and W (n).
    return extra * 4.0 * (double(k) * double(n) + 2.0 * double(n));
  }
  // Every additional N shard re-reads A (m×k) and its norms (m); on top,
  // the staged (non-atomic) reduction writes and re-reads one partial per
  // (row, column-CTA) instead of the unsharded run's single atomic per
  // (row, column-CTA) — charge the staging round trip once.
  return extra * 4.0 * (double(m) * double(k) + double(m)) +
         2.0 * 4.0 * double(m) * double(ceil_div(n, tile_n));
}

ShardPlan plan_shards(std::size_t m, std::size_t n, std::size_t k,
                      const pipelines::RunOptions& options,
                      pipelines::Solution solution) {
  KSUM_REQUIRE(m > 0 && n > 0 && k > 0,
               "shard planning needs nonzero problem dimensions");
  const ShardSpec& spec = options.shards;
  const gpukernels::TileGeometry& geometry = options.mainloop.geometry;
  const std::size_t tile_n = static_cast<std::size_t>(geometry.tile_n);
  const std::size_t m_align =
      std::lcm(static_cast<std::size_t>(geometry.tile_m), std::size_t{128});
  const std::size_t n_align = std::lcm(tile_n, std::size_t{128});
  const std::size_t k_align =
      std::lcm(static_cast<std::size_t>(geometry.tile_k), std::size_t{8});

  ShardAxis axis = spec.axis;
  if (axis == ShardAxis::kAuto) {
    // M (concatenation merge, any backend) is the default; prefer N only
    // when the fused backend can replay its staged reduction and the
    // analytic model says the replicated-operand traffic is lower.
    axis = ShardAxis::kM;
    if (solution == pipelines::Solution::kFused) {
      const std::size_t probe = spec.count == 0 ? 2 : spec.count;
      if (replicated_bytes(ShardAxis::kN, m, n, k, tile_n, probe) <
          replicated_bytes(ShardAxis::kM, m, n, k, tile_n, probe)) {
        axis = ShardAxis::kN;
      }
    }
  } else if (axis == ShardAxis::kN) {
    KSUM_REQUIRE(solution == pipelines::Solution::kFused,
                 "target-axis (N) sharding requires the fused backend — the "
                 "unfused pipelines have no staged reduction to replay");
  }

  const std::size_t dim = axis == ShardAxis::kM ? m : n;
  const std::size_t align = axis == ShardAxis::kM ? m_align : n_align;
  const std::size_t blocks = ceil_div(dim, align);

  std::size_t count = 0;
  if (spec.count == 0) {
    // Auto: smallest count whose largest (padded) shard fits the budget —
    // the active profile's per-device arena unless the spec overrides it.
    const std::size_t budget = spec.max_device_bytes != 0
                                   ? spec.max_device_bytes
                                   : options.device.shard_arena_bytes;
    const bool unfused = solution != pipelines::Solution::kFused;
    for (std::size_t c = 1; c <= blocks && count == 0; ++c) {
      const std::size_t largest = ceil_div(blocks, c) * align;
      const std::size_t sm = axis == ShardAxis::kM
                                 ? largest
                                 : workload::round_up(m, m_align);
      const std::size_t sn = axis == ShardAxis::kM
                                 ? workload::round_up(n, n_align)
                                 : largest;
      if (pipelines::required_device_bytes(
              sm, sn, workload::round_up(k, k_align), unfused, tile_n) <=
          budget) {
        count = c;
      }
    }
    KSUM_REQUIRE(count != 0,
                 "auto shard count: even a single-CTA-block shard exceeds "
                 "the per-device budget");
  } else {
    count = std::min(spec.count, blocks);
  }

  ShardPlan plan;
  plan.axis = axis;
  plan.align = align;
  plan.ranges.reserve(count);
  // Even block partition: the first (blocks % count) shards take one extra
  // block; the last shard absorbs the ragged element tail.
  std::size_t start_block = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t nblocks = blocks / count + (i < blocks % count ? 1 : 0);
    ShardRange range;
    range.begin = start_block * align;
    range.end = std::min(dim, (start_block + nblocks) * align);
    plan.ranges.push_back(range);
    start_block += nblocks;
  }
  return plan;
}

std::size_t min_shards_for_limit(std::size_t dim, std::size_t align,
                                 std::size_t limit) {
  if (dim == 0 || align == 0) return 0;
  const std::size_t blocks = ceil_div(dim, align);
  for (std::size_t c = 1; c <= blocks; ++c) {
    const std::size_t largest = std::min(dim, ceil_div(blocks, c) * align);
    if (largest <= limit) return c;
  }
  return 0;
}

}  // namespace ksum::shard
