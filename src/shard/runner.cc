#include "shard/runner.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "common/error.h"
#include "exec/thread_pool.h"
#include "shard/merge.h"
#include "workload/padding.h"

namespace ksum::shard {
namespace {

using pipelines::RunOptions;
using pipelines::Solution;

Solution solution_of(pipelines::Backend backend) {
  switch (backend) {
    case pipelines::Backend::kSimFused:
      return Solution::kFused;
    case pipelines::Backend::kSimCudaUnfused:
      return Solution::kCudaUnfused;
    case pipelines::Backend::kSimCublasUnfused:
      return Solution::kCublasUnfused;
    default:
      throw Error("sharded execution requires a simulated backend");
  }
}

/// One (shard, dispatch) hand-out. `banned` is the worker that failed the
/// previous dispatch (-1 = none): the queue refuses to give the task back
/// to it unless it is the only worker, so a re-dispatch preferentially
/// lands on a different device.
struct Task {
  std::size_t shard = 0;
  int dispatch = 0;
  int banned = -1;
};

/// The master side of the runner: a monitor the workers pull tasks from.
/// Fresh shards are handed out in index order; re-dispatched shards are
/// queued separately and take priority for any non-banned worker. All
/// workers stay inside next_task until every shard completed (or the run
/// aborted), so a re-dispatch always finds a live worker to adopt it.
class TaskQueue {
 public:
  TaskQueue(std::size_t total, int workers)
      : total_(total), workers_(workers) {}

  std::optional<Task> next_task(int worker) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (abort_ || finished_ == total_) return std::nullopt;
      for (std::size_t i = 0; i < retries_.size(); ++i) {
        if (retries_[i].banned != worker || workers_ == 1) {
          Task task = retries_[i];
          retries_.erase(retries_.begin() + static_cast<std::ptrdiff_t>(i));
          return task;
        }
      }
      if (next_fresh_ < total_) {
        return Task{next_fresh_++, 0, -1};
      }
      // Nothing claimable: shards are in flight elsewhere, or the only
      // queued retry is banned for us — wait for a state change.
      cv_.wait(lock);
    }
  }

  void task_done(std::size_t /*shard*/) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++finished_;
    }
    cv_.notify_all();
  }

  void redispatch(std::size_t shard, int dispatch, int failed_worker) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      retries_.push_back(Task{shard, dispatch, failed_worker});
    }
    cv_.notify_all();
  }

  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      abort_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t total_;
  int workers_;
  std::size_t next_fresh_ = 0;
  std::size_t finished_ = 0;
  std::vector<Task> retries_;
  bool abort_ = false;
};

/// Completed state of one shard, filled by whichever worker finishes it.
struct ShardSlot {
  pipelines::SolveResult result;
  StagedPartials staged;
  ShardSliceReport slice;
  std::exception_ptr error;
  bool has_result = false;
};

}  // namespace

workload::Instance slice_instance(const workload::Instance& instance,
                                  ShardAxis axis, const ShardRange& range) {
  KSUM_REQUIRE(range.end > range.begin, "empty shard range");
  const std::size_t k = instance.spec.k;
  workload::Instance out;
  out.spec = instance.spec;
  if (axis == ShardAxis::kM) {
    KSUM_REQUIRE(range.end <= instance.spec.m, "shard range exceeds M");
    out.spec.m = range.size();
    out.a = Matrix(range.size(), k, Layout::kRowMajor);
    // A is row major: a row range is one contiguous block.
    std::memcpy(out.a.data(), instance.a.data() + range.begin * k,
                range.size() * k * sizeof(float));
    out.b = instance.b;
    out.w = instance.w;
    return out;
  }
  KSUM_REQUIRE(axis == ShardAxis::kN, "unresolved shard axis");
  KSUM_REQUIRE(range.end <= instance.spec.n, "shard range exceeds N");
  out.spec.n = range.size();
  out.a = instance.a;
  out.b = Matrix(k, range.size(), Layout::kColMajor);
  // B is col major: a column range is one contiguous block.
  std::memcpy(out.b.data(), instance.b.data() + range.begin * k,
              range.size() * k * sizeof(float));
  out.w = Vector(range.size());
  for (std::size_t j = 0; j < range.size(); ++j) {
    out.w[j] = instance.w[range.begin + j];
  }
  return out;
}

pipelines::SolveResult run_sharded(const workload::Instance& instance,
                                   const core::KernelParams& params,
                                   pipelines::Backend backend,
                                   const RunOptions& options) {
  const Solution solution = solution_of(backend);
  const ShardSpec& spec = options.shards;
  KSUM_REQUIRE(options.fault_injector == nullptr,
               "sharded runs cannot take a single fault_injector — one "
               "injector cannot say which device the fault lives on; use "
               "ShardSpec::injector_factory");
  const std::size_t m = instance.spec.m;
  const std::size_t n = instance.spec.n;
  const std::size_t k = instance.spec.k;
  const ShardPlan plan = plan_shards(m, n, k, options, solution);
  const std::size_t count = plan.count();
  const ShardAxis axis = plan.axis;

  int workers = spec.workers > 0 ? spec.workers : static_cast<int>(count);
  workers = std::min(workers, static_cast<int>(count));
  workers = std::min(workers, exec::ThreadPool::kMaxThreads);
  workers = std::max(workers, 1);
  const int max_dispatches = std::max(spec.max_dispatches, 1);

  // Slice once up front; dispatches of the same shard share the slice.
  std::vector<workload::Instance> slices;
  slices.reserve(count);
  for (const ShardRange& range : plan.ranges) {
    slices.push_back(slice_instance(instance, axis, range));
  }

  // Warm-device arena: large enough for the biggest shard of *this*
  // solution, so every dispatch reuses the worker's device (reset() makes
  // that bit-identical to a fresh one). A recovery fallback to the unfused
  // pipeline may need the intermediate matrix too — run_pipeline then
  // builds a one-off fresh device, which is the same bits, just colder.
  const gpukernels::TileGeometry& geometry = options.mainloop.geometry;
  const std::size_t tile_n = static_cast<std::size_t>(geometry.tile_n);
  const std::size_t m_align =
      std::lcm(static_cast<std::size_t>(geometry.tile_m), std::size_t{128});
  const std::size_t n_align = std::lcm(tile_n, std::size_t{128});
  const std::size_t k_align =
      std::lcm(static_cast<std::size_t>(geometry.tile_k), std::size_t{8});
  std::size_t arena_bytes = 0;
  for (const workload::Instance& slice : slices) {
    arena_bytes = std::max(
        arena_bytes,
        pipelines::required_device_bytes(
            workload::round_up(slice.spec.m, m_align),
            workload::round_up(slice.spec.n, n_align),
            workload::round_up(slice.spec.k, k_align),
            solution != Solution::kFused, tile_n));
  }

  std::vector<ShardSlot> slots(count);
  for (std::size_t i = 0; i < count; ++i) {
    slots[i].slice.index = i;
    slots[i].slice.begin = plan.ranges[i].begin;
    slots[i].slice.end = plan.ranges[i].end;
    slots[i].slice.dispatches = 0;
    slots[i].slice.recovery.attempts = 0;
  }
  std::mutex slots_mutex;
  TaskQueue queue(count, workers);

  const auto worker_body = [&](std::size_t worker_index) {
    std::optional<gpusim::Device> device;  // built on first task
    while (std::optional<Task> task =
               queue.next_task(static_cast<int>(worker_index))) {
      try {
        if (!device.has_value()) {
          device.emplace(options.device, arena_bytes);
        }
        RunOptions shard_options = options;
        shard_options.shards = ShardSpec{};
        shard_options.geometry_resolver = nullptr;
        shard_options.warm_device = &*device;
        shard_options.fault_injector = nullptr;
        std::shared_ptr<gpusim::FaultInjector> injector;
        if (spec.injector_factory) {
          injector = spec.injector_factory(task->shard, task->dispatch);
          shard_options.fault_injector = injector.get();
        }
        StagedPartials staged;
        if (axis == ShardAxis::kN) {
          // The merge replays the staged reduction, so the shard must run
          // it — and must not fall back to a pipeline that has none.
          shard_options.atomic_reduction = false;
          shard_options.capture_staged_partials = &staged;
          shard_options.recovery.fallback_to_unfused = false;
        }
        pipelines::SolveResult result = pipelines::solve(
            slices[task->shard], params, backend, shard_options);
        const bool gave_up = result.recovery.gave_up;
        const bool retry_left = task->dispatch + 1 < max_dispatches;
        {
          std::lock_guard<std::mutex> lock(slots_mutex);
          ShardSlot& slot = slots[task->shard];
          ++slot.slice.dispatches;
          slot.slice.recovery.attempts += result.recovery.attempts;
          slot.slice.recovery.faults_detected +=
              result.recovery.faults_detected;
          slot.slice.recovery.fallback_used |= result.recovery.fallback_used;
          if (!gave_up || !retry_left) {
            slot.slice.recovery.gave_up = gave_up;
            slot.result = std::move(result);
            slot.staged = std::move(staged);
            slot.has_result = true;
          }
        }
        if (gave_up && retry_left) {
          // The shard's own recovery budget is exhausted on this device;
          // hand it back for another worker to pick up.
          queue.redispatch(task->shard, task->dispatch + 1,
                           static_cast<int>(worker_index));
        } else {
          queue.task_done(task->shard);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(slots_mutex);
          slots[task->shard].error = std::current_exception();
        }
        queue.abort();
      }
    }
  };

  exec::ThreadPool pool(workers);
  pool.parallel_for(static_cast<std::size_t>(workers), worker_body);

  // Rethrow the lowest-indexed shard failure, so error reporting does not
  // depend on which worker hit it first.
  for (const ShardSlot& slot : slots) {
    if (slot.error) std::rethrow_exception(slot.error);
  }
  for (const ShardSlot& slot : slots) {
    KSUM_CHECK(slot.has_result);
  }

  // Fixed-order tree merge over shard indexes (never completion order).
  std::vector<ShardPiece> pieces;
  pieces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ShardPiece piece;
    piece.index = i;
    piece.begin = plan.ranges[i].begin;
    piece.end = plan.ranges[i].end;
    if (axis == ShardAxis::kM) {
      const Vector& v = slots[i].result.v;
      piece.rows.assign(v.data(), v.data() + v.size());
    } else {
      KSUM_CHECK(slots[i].staged.rows > 0 &&
                 slots[i].staged.rows == slots[0].staged.rows);
      piece.staged = std::move(slots[i].staged.data);
      piece.staged_rows = slots[i].staged.rows;
      piece.staged_cols = slots[i].staged.cols;
    }
    pieces.push_back(std::move(piece));
  }
  const ShardPiece root = merge_tree(axis, std::move(pieces));

  pipelines::SolveResult out;
  out.v = finalize_merge(axis, root, m);

  // Merged report: kernels concatenated in shard order (names prefixed
  // "s<i>/"), event counters and energy summed, modelled wall time the max
  // over shards (each shard has its own device), FLOP efficiency recomputed
  // for the whole problem.
  pipelines::PipelineReport merged;
  merged.solution = solution;
  merged.m = m;
  merged.n = n;
  merged.k = k;
  bool checks_enabled = true;
  for (std::size_t i = 0; i < count; ++i) {
    const ShardSlot& slot = slots[i];
    KSUM_CHECK(slot.result.report.has_value());
    const pipelines::PipelineReport& rep = *slot.result.report;
    for (const pipelines::KernelReport& kr : rep.kernels) {
      merged.kernels.push_back(kr);
      std::string name = "s";
      name += std::to_string(i);
      name += '/';
      name += kr.name;
      merged.kernels.back().name = std::move(name);
    }
    merged.total += rep.total;
    merged.energy += rep.energy;
    merged.seconds = std::max(merged.seconds, rep.seconds);
    checks_enabled = checks_enabled && rep.robustness.checks_enabled;
    for (const auto& check : rep.robustness.checks) {
      merged.robustness.checks.push_back(check);
    }
  }
  merged.robustness.checks_enabled = checks_enabled;
  merged.useful_flops = pipelines::pipeline_useful_flops(m, n, k);
  merged.flop_efficiency = gpusim::flop_efficiency(
      options.device, merged.useful_flops, merged.seconds);
  merged.result = out.v;
  out.report = std::move(merged);

  // Whole-request recovery summary: attempts are total pipeline executions
  // across shards and dispatches; gave_up if any shard exhausted every
  // dispatch still flagged.
  out.recovery.attempts = 0;
  ShardReport shard_report;
  shard_report.axis = axis;
  shard_report.workers = workers;
  for (std::size_t i = 0; i < count; ++i) {
    out.recovery.attempts += slots[i].slice.recovery.attempts;
    out.recovery.faults_detected += slots[i].slice.recovery.faults_detected;
    out.recovery.fallback_used |= slots[i].slice.recovery.fallback_used;
    out.recovery.gave_up |= slots[i].slice.recovery.gave_up;
    shard_report.slices.push_back(slots[i].slice);
  }
  out.shards = std::move(shard_report);
  return out;
}

}  // namespace ksum::shard
