// Cache-line-aligned owning float/byte buffers.
//
// All matrices in the library live in AlignedBuffer<float>; alignment keeps
// host BLAS micro-kernels on their fast path and makes the simulated global
// address space 128-byte-segment aligned, which the coalescer model assumes.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "common/error.h"

namespace ksum {

inline constexpr std::size_t kBufferAlignment = 128;

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { resize(n); }

  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      resize(other.size_);
      for (std::size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocates to exactly `n` elements; contents are NOT preserved and are
  /// zero-initialised.
  void resize(std::size_t n) {
    release();
    if (n == 0) return;
    void* p = std::aligned_alloc(kBufferAlignment,
                                 round_up_bytes(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) data_[i] = T{};
  }

  void fill(const T& v) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) {
    KSUM_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    KSUM_DCHECK(i < size_);
    return data_[i];
  }

  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  static std::size_t round_up_bytes(std::size_t bytes) {
    return (bytes + kBufferAlignment - 1) / kBufferAlignment *
           kBufferAlignment;
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ksum
