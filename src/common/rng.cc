#include "common/rng.h"

#include <cmath>

namespace ksum {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  have_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float Rng::normal(float mean, float stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

Rng Rng::split(std::uint64_t stream_index) const {
  // Mix the child's index into a fresh seed derived from this state.
  std::uint64_t seed = s_[0] ^ rotl(s_[2], 13) ^
                       (stream_index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(seed);
}

}  // namespace ksum
