// Error handling for the ksum library.
//
// Library code throws ksum::Error (a std::runtime_error) for conditions a
// caller can plausibly recover from (bad problem sizes, config parse errors).
// Internal invariants use KSUM_CHECK / KSUM_DCHECK, which throw
// ksum::InternalError with file/line context; a failed check is a bug in the
// library, never a user error.
#pragma once

#include <stdexcept>
#include <string>

namespace ksum {

/// Recoverable error caused by invalid input or configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated internal invariant: indicates a bug in ksum itself.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace ksum

/// Always-on invariant check. `msg` is any expression streamable to a string
/// via ksum::str_cat-style concatenation; keep it cheap, it is only evaluated
/// on failure.
#define KSUM_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ksum::detail::throw_check_failure("KSUM_CHECK", #cond, __FILE__,     \
                                          __LINE__, "");                     \
    }                                                                        \
  } while (0)

#define KSUM_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ksum::detail::throw_check_failure("KSUM_CHECK", #cond, __FILE__,     \
                                          __LINE__, (msg));                  \
    }                                                                        \
  } while (0)

/// Validates user-supplied arguments; throws ksum::Error.
#define KSUM_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::ksum::Error(std::string("ksum: ") + (msg));                    \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define KSUM_DCHECK(cond) KSUM_CHECK(cond)
#else
#define KSUM_DCHECK(cond) \
  do {                    \
  } while (0)
#endif
