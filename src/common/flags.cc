#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace ksum {

FlagParser& FlagParser::declare(const std::string& name,
                                const std::string& help, bool takes_value) {
  KSUM_REQUIRE(!name.empty() && name[0] != '-',
               "declare flags without leading dashes");
  KSUM_REQUIRE(decls_.emplace(name, Decl{help, takes_value}).second,
               "flag declared twice: " + name);
  return *this;
}

const FlagParser::Decl& FlagParser::decl_of(const std::string& name) const {
  const auto it = decls_.find(name);
  KSUM_REQUIRE(it != decls_.end(), "unknown flag: --" + name);
  return it->second;
}

void FlagParser::parse(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool have_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    const Decl& decl = decl_of(arg);
    if (decl.takes_value && !have_value) {
      KSUM_REQUIRE(i + 1 < argc, "flag --" + arg + " needs a value");
      value = argv[++i];
      have_value = true;
    }
    if (!decl.takes_value && !have_value) {
      value = "true";
    }
    values_[arg] = value;
  }
}

bool FlagParser::has(const std::string& name) const {
  decl_of(name);
  return values_.count(name) != 0;
}

std::string FlagParser::get_string(const std::string& name,
                                   const std::string& fallback) const {
  decl_of(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long long FlagParser::get_int(const std::string& name,
                              long long fallback) const {
  const auto it = values_.find(name);
  decl_of(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  KSUM_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" + name + " expects an integer, got '" + it->second +
                   "'");
  return v;
}

std::size_t FlagParser::get_size(const std::string& name,
                                 std::size_t fallback) const {
  const long long v = get_int(name, static_cast<long long>(fallback));
  KSUM_REQUIRE(v >= 0, "flag --" + name + " must be non-negative");
  return static_cast<std::size_t>(v);
}

double FlagParser::get_double(const std::string& name,
                              double fallback) const {
  const auto it = values_.find(name);
  decl_of(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  KSUM_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" + name + " expects a number, got '" + it->second +
                   "'");
  return v;
}

bool FlagParser::get_bool(const std::string& name) const {
  const auto it = values_.find(name);
  decl_of(name);
  if (it == values_.end()) return false;
  return it->second == "true" || it->second == "1" || it->second.empty();
}

std::string FlagParser::usage() const {
  std::ostringstream os;
  for (const auto& [name, decl] : decls_) {
    os << "  --" << name << (decl.takes_value ? "=<value>" : "") << "\n      "
       << decl.help << "\n";
  }
  return os.str();
}

}  // namespace ksum
