// Small integer/math helpers shared across the library.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/error.h"

namespace ksum {

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  KSUM_DCHECK(b > 0);
  KSUM_DCHECK(a >= 0);
  return (a + b - 1) / b;
}

/// Rounds `a` up to the nearest multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

template <typename T>
constexpr bool is_pow2(T x) {
  static_assert(std::is_integral_v<T>);
  return x > 0 && (x & (x - 1)) == 0;
}

/// Integer log2 of a power of two.
template <typename T>
constexpr int log2_exact(T x) {
  KSUM_DCHECK(is_pow2(x));
  int l = 0;
  while ((T{1} << l) < x) ++l;
  return l;
}

/// Saturating conversion of a double ratio into percent.
constexpr double as_percent(double ratio) { return ratio * 100.0; }

/// Relative error |a-b| / max(|b|, floor). Used by numerical tests.
inline double rel_err(double a, double b, double floor = 1e-30) {
  const double denom = std::abs(b) > floor ? std::abs(b) : floor;
  return std::abs(a - b) / denom;
}

}  // namespace ksum
