#include "common/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace ksum {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string format_fixed(double v, int digits) {
  return str_format("%.*f", digits, v);
}

std::string format_percent(double ratio, int digits) {
  return str_format("%.*f%%", digits, ratio * 100.0);
}

std::string format_si(double v, int digits) {
  static constexpr const char* kSuffix[] = {"", "K", "M", "G", "T", "P"};
  int tier = 0;
  double mag = std::fabs(v);
  while (mag >= 1000.0 && tier < 5) {
    mag /= 1000.0;
    v /= 1000.0;
    ++tier;
  }
  return str_format("%.*f%s", digits, v, kSuffix[tier]);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace ksum
