#include "common/status.h"

namespace ksum {

namespace {

constexpr struct {
  StatusCode code;
  const char* name;
} kSpellings[] = {
    {StatusCode::kOk, "ok"},
    {StatusCode::kInvalid, "invalid"},
    {StatusCode::kTimeout, "timeout"},
    {StatusCode::kOverloaded, "overloaded"},
    {StatusCode::kFaultUnrecovered, "fault_unrecovered"},
    {StatusCode::kInternal, "internal"},
};

}  // namespace

const char* to_string(StatusCode code) {
  for (const auto& entry : kSpellings) {
    if (entry.code == code) return entry.name;
  }
  return "internal";  // unreachable for valid enum values
}

std::optional<StatusCode> parse_status_code(std::string_view text) {
  for (const auto& entry : kSpellings) {
    if (text == entry.name) return entry.code;
  }
  return std::nullopt;
}

}  // namespace ksum
