#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ksum {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> columns) {
  KSUM_REQUIRE(!columns.empty(), "table header must have at least one column");
  header_ = std::move(columns);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  if (!header_.empty()) {
    KSUM_REQUIRE(cells.size() == header_.size(),
                 "table row width does not match header");
  }
  rows_.push_back({std::move(cells), /*is_separator=*/false});
  return *this;
}

Table& Table::separator() {
  rows_.push_back({{}, /*is_separator=*/true});
  return *this;
}

void Table::print(std::ostream& os) const {
  // Compute column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto absorb = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      width[c] = std::max(width[c], cells[c].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) {
    if (!r.is_separator) absorb(r.cells);
  }

  auto print_rule = [&] {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      os << std::string(width[c] + 2, '-') << '|';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << pad_right(v, width[c]) << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "### " << title_ << '\n';
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& r : rows_) {
    if (r.is_separator) {
      print_rule();
    } else {
      print_cells(r.cells);
    }
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::vector<std::vector<std::string>> Table::export_rows() const {
  std::vector<std::vector<std::string>> out;
  if (!header_.empty()) out.push_back(header_);
  for (const auto& r : rows_) {
    if (!r.is_separator) out.push_back(r.cells);
  }
  return out;
}

}  // namespace ksum
