// Dense single-precision matrix with explicit storage order.
//
// The paper fixes A (source points, M×K) in row-major order and B (target
// points, K×N) in column-major order; carrying the layout in the type keeps
// the kernel address-generation code honest.
#pragma once

#include <cstddef>
#include <span>

#include "common/aligned_buffer.h"
#include "common/error.h"

namespace ksum {

enum class Layout { kRowMajor, kColMajor };

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, Layout layout)
      : rows_(rows), cols_(cols), layout_(layout), data_(rows * cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  Layout layout() const { return layout_; }
  std::size_t size() const { return rows_ * cols_; }

  /// Linear index of element (r, c) in the backing buffer.
  std::size_t index(std::size_t r, std::size_t c) const {
    KSUM_DCHECK(r < rows_ && c < cols_);
    return layout_ == Layout::kRowMajor ? r * cols_ + c : c * rows_ + r;
  }

  float& at(std::size_t r, std::size_t c) { return data_[index(r, c)]; }
  float at(std::size_t r, std::size_t c) const { return data_[index(r, c)]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_.span(); }
  std::span<const float> span() const { return data_.span(); }

  void fill(float v) { data_.fill(v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Layout layout_ = Layout::kRowMajor;
  AlignedBuffer<float> data_;
};

/// Dense single-precision vector.
using Vector = AlignedBuffer<float>;

}  // namespace ksum
