// Minimal command-line flag parser for the CLI tool.
//
// Supported syntax: `--name=value`, `--name value`, bare `--name` for
// booleans, and positional arguments. Flags must be declared before
// parsing; unknown flags are an error (so typos fail loudly).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ksum {

class FlagParser {
 public:
  /// Declares a flag. `takes_value=false` makes it a boolean switch.
  FlagParser& declare(const std::string& name, const std::string& help,
                      bool takes_value = true);

  /// Parses argv after the program name (and optional subcommand). Throws
  /// ksum::Error on unknown flags or missing values.
  void parse(int argc, const char* const* argv, int first = 1);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  std::size_t get_size(const std::string& name, std::size_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// True when the switch was given (or --name=true/1).
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per declared flag, for --help output.
  std::string usage() const;

 private:
  struct Decl {
    std::string help;
    bool takes_value = true;
  };

  const Decl& decl_of(const std::string& name) const;

  std::map<std::string, Decl> decls_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ksum
