// Deterministic, seedable random number generation.
//
// xoshiro256** with a splitmix64 seeder; the same seed yields the same
// workload on every platform, which the reproduction harness relies on.
#pragma once

#include <cstdint>

namespace ksum {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal via Box–Muller (cached second variate).
  float normal();

  /// Normal with given mean / stddev.
  float normal(float mean, float stddev);

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  /// Derives an independent stream; children of distinct indices do not
  /// overlap for any practical draw count.
  Rng split(std::uint64_t stream_index) const;

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace ksum
