// ASCII table printer used by the reproduction harness to emit
// paper-style tables and figure series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ksum {

class Table {
 public:
  explicit Table(std::string title = {});

  /// Sets the header row. Column count is fixed from this call onward.
  Table& header(std::vector<std::string> columns);

  /// Appends a data row; must match the header width if one was set.
  Table& row(std::vector<std::string> cells);

  /// Appends a horizontal separator between row groups.
  Table& separator();

  /// Renders with column-aligned pipes, e.g.
  ///   | K   | M      | speedup |
  ///   |-----|--------|---------|
  ///   | 32  | 1024   | 1.78    |
  void print(std::ostream& os) const;

  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Header + data rows (separators skipped) for structured export (CSV).
  std::vector<std::vector<std::string>> export_rows() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace ksum
