// Wall-clock timer for host-side measurements (the simulated device has its
// own cycle model in gpusim/timing.h; this is only for host BLAS benches).
#pragma once

#include <chrono>

namespace ksum {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ksum
