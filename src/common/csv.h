// Minimal CSV writer; every bench can mirror its table into a CSV file so
// plots can be regenerated without re-running the sweep.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ksum {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws ksum::Error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// One escaped CSV line (no trailing newline) — for in-memory use.
  static std::string to_line(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace ksum
