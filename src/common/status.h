// Structured error taxonomy shared by every request-shaped surface.
//
// A StatusCode classifies the *outcome* of one request — a batch row, a
// serve reply, a CLI summary line — into the six buckets docs/SERVING.md
// specifies. The contract: every reply carries exactly one code, the code is
// a pure function of the request (given its seeds), and callers branch on
// the code instead of parsing error strings.
//
//   kOk               — result produced and trustworthy (possibly after
//                       recovery or a degraded fallback; those are flagged
//                       separately, the code stays ok).
//   kInvalid          — the request itself was malformed or violated
//                       admission bounds (ksum::Error class of failures).
//   kTimeout          — the request's deadline expired (in the queue or
//                       mid-execution via cooperative cancellation).
//   kOverloaded       — shed at admission: the bounded queue was full.
//   kFaultUnrecovered — every detect→retry→fallback attempt was still
//                       flagged by the ABFT checks and degradation was off.
//   kInternal         — a bug (ksum::InternalError or a foreign exception):
//                       the result, if any, must not be trusted.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace ksum {

enum class StatusCode {
  kOk = 0,
  kInvalid,
  kTimeout,
  kOverloaded,
  kFaultUnrecovered,
  kInternal,
};

/// Wire/report spelling: "ok", "invalid", "timeout", "overloaded",
/// "fault_unrecovered", "internal".
const char* to_string(StatusCode code);

/// Inverse of to_string; nullopt for unknown spellings.
std::optional<StatusCode> parse_status_code(std::string_view text);

}  // namespace ksum
