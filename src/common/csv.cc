#include "common/csv.h"

#include "common/error.h"

namespace ksum {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  KSUM_REQUIRE(out_.good(), "cannot open CSV output file: " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  out_ << to_line(cells) << '\n';
}

std::string CsvWriter::to_line(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line += ',';
    line += escape(cells[i]);
  }
  return line;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace ksum
