// String formatting helpers used by the report/table layer.
#pragma once

#include <string>
#include <vector>

namespace ksum {

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-point with `digits` decimals, e.g. format_fixed(1.8345, 2) == "1.83".
std::string format_fixed(double v, int digits);

/// "12.3%", one decimal by default.
std::string format_percent(double ratio, int digits = 1);

/// Human-readable large counts: 1234 → "1.23K", 5.2e9 → "5.20G".
std::string format_si(double v, int digits = 2);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left/right padding to a column width.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace ksum
