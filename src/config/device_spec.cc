#include "config/device_spec.h"

#include "common/error.h"
#include "common/math_util.h"

namespace ksum::config {

double DeviceSpec::peak_sp_flops() const {
  return static_cast<double>(fma_lanes_per_sm) * 2.0 * core_clock_ghz * 1e9 *
         static_cast<double>(num_sms);
}

double DeviceSpec::fma_slots_per_cycle() const {
  return static_cast<double>(fma_lanes_per_sm) *
         static_cast<double>(num_sms);
}

double DeviceSpec::dram_bytes_per_cycle() const {
  return dram_bandwidth_gb_s / core_clock_ghz;
}

double DeviceSpec::smem_bytes_per_cycle_per_sm() const {
  return static_cast<double>(smem_num_banks) *
         static_cast<double>(smem_bank_width_bytes);
}

void DeviceSpec::validate() const {
  KSUM_REQUIRE(num_sms > 0, "device must have at least one SM");
  KSUM_REQUIRE(warp_size > 0 && is_pow2(warp_size), "warp size must be 2^k");
  KSUM_REQUIRE(max_threads_per_block % warp_size == 0,
               "block limit must be warp aligned");
  KSUM_REQUIRE(max_threads_per_sm % warp_size == 0,
               "SM thread limit must be warp aligned");
  KSUM_REQUIRE(smem_num_banks > 0 && is_pow2(smem_num_banks),
               "bank count must be 2^k");
  KSUM_REQUIRE(l2_line_bytes % l2_sector_bytes == 0,
               "L2 line must be whole sectors");
  KSUM_REQUIRE(l2_bytes % static_cast<std::size_t>(l2_line_bytes) == 0,
               "L2 size must be whole lines");
  KSUM_REQUIRE((l2_bytes / static_cast<std::size_t>(l2_line_bytes)) %
                       static_cast<std::size_t>(l2_ways) ==
                   0,
               "L2 lines must divide evenly into ways");
  KSUM_REQUIRE(core_clock_ghz > 0.0, "clock must be positive");
  KSUM_REQUIRE(dram_bandwidth_gb_s > 0.0, "bandwidth must be positive");
  KSUM_REQUIRE(shard_arena_bytes > 0, "shard arena must be positive");
  if (cache_globals_in_l1) {
    KSUM_REQUIRE(l1_bytes % static_cast<std::size_t>(l2_line_bytes) == 0,
                 "L1 size must be whole lines");
    KSUM_REQUIRE((l1_bytes / static_cast<std::size_t>(l2_line_bytes)) %
                         static_cast<std::size_t>(l1_ways) ==
                     0,
                 "L1 lines must divide evenly into ways");
  }
}

DeviceSpec DeviceSpec::gtx970() {
  DeviceSpec spec;  // defaults are the GTX970 numbers
  spec.validate();
  return spec;
}

}  // namespace ksum::config
