#include "config/timing_spec.h"

#include "common/error.h"

namespace ksum::config {

KernelGrade KernelGrade::cuda_c() {
  KernelGrade g;
  g.base_issue_efficiency = 0.60;
  g.prologue_equiv_iters = 1.4;
  g.single_cta_penalty = 0.85;
  g.name = "cuda-c";
  return g;
}

KernelGrade KernelGrade::assembly() {
  KernelGrade g;
  g.base_issue_efficiency = 0.88;
  g.prologue_equiv_iters = 0.9;
  g.single_cta_penalty = 0.92;
  g.name = "assembly";
  return g;
}

void TimingSpec::validate() const {
  KSUM_REQUIRE(launch_overhead_cycles >= 0, "launch overhead >= 0");
  KSUM_REQUIRE(cta_dispatch_cycles >= 0, "dispatch cost >= 0");
  KSUM_REQUIRE(dram_efficiency > 0 && dram_efficiency <= 1.0,
               "dram efficiency in (0, 1]");
}

TimingSpec TimingSpec::gtx970() {
  TimingSpec spec;
  spec.validate();
  return spec;
}

}  // namespace ksum::config
