// Per-event energy model constants.
//
// The paper derives per-access energies from CACTI (shared memory modelled as
// a 32-bank SRAM with separate read/write ports) and McPAT (FPU, L2, DRAM;
// Intel Xeon template re-parameterised for Maxwell, following Lim et al.,
// "Power modeling for GPU architectures using McPAT"). We keep exactly that
// structure — energy = Σ count(event)·e(event) + P_static·T — with constants
// in the range those tools report for a 28 nm GDDR5 part, and calibrate the
// DRAM constant so the cuBLAS-unfused DRAM share lands in the paper's
// measured 10–30% band (Fig. 1).
#pragma once

namespace ksum::config {

struct EnergySpec {
  // Dynamic energy per event, picojoules.
  double fma_pj = 12.0;            // single-precision FMA datapath
  double sfu_pj = 40.0;            // special-function op (exp evaluation)
  double instruction_pj = 18.0;    // fetch/decode/schedule/RF per executed
                                   // warp instruction, amortised per lane
  double smem_access_pj = 2.0;     // one 4-byte bank read or write (CACTI)
  double l1_access_pj = 30.0;      // one 32-byte L1/tex sector access
  double l2_access_pj = 180.0;     // one 32-byte L2 sector access (McPAT)
  double dram_access_pj = 1200.0;  // one 32-byte DRAM transaction (McPAT,
                                   // ~37 pJ/B — GDDR5-class)

  // Constant (leakage + fixed-function) power, watts. Charged for the
  // modelled execution time; this is what converts a speedup into the
  // paper's "additional energy savings" beyond DRAM-traffic reduction.
  double static_power_w = 8.0;

  void validate() const;

  /// Constants used for all paper reproductions.
  static EnergySpec gtx970_mcpat();
};

}  // namespace ksum::config
