// Timing model constants.
//
// Kernel time on the simulated device is a bounded-resource estimate:
//
//   cycles = max(compute, smem bandwidth, L2 bandwidth, DRAM bandwidth)
//          + waves · cta_overhead + launch_overhead
//
// `compute` divides the kernel's FMA count by the device FMA slots, derated
// by (a) the code grade — hand-scheduled assembly (cuBLAS) dual-issues and
// hides latency better than compiler-scheduled CUDA-C, the paper measures the
// gap at 1.5–2.0× — (b) amortisation of the per-CTA prologue/epilogue over
// the K/8 main-loop iterations (this is what makes small-K GEMMs slow), and
// (c) the tail wave when the grid does not fill all CTA slots.
//
// Two grades are provided: `assembly()` for the modelled cuBLAS kernels and
// `cuda_c()` for our kernels, calibrated so the standalone GEMM gap matches
// the paper's Fig. 7 (1.5–2.0×) and the pipeline numbers match Table II.
#pragma once

namespace ksum::config {

/// Per-kernel code-quality parameters for the compute-throughput derating.
struct KernelGrade {
  /// Fraction of peak FMA issue achieved by the steady-state main loop at
  /// full occupancy (register bank conflicts, sync cost, address arithmetic).
  double base_issue_efficiency = 0.55;

  /// Prologue + epilogue cost expressed in equivalent main-loop iterations;
  /// the effective efficiency is scaled by iters / (iters + this).
  double prologue_equiv_iters = 2.0;

  /// Extra derating when only one CTA fits per SM (less latency hiding).
  double single_cta_penalty = 0.85;

  /// Name used in reports.
  const char* name = "cuda-c";

  /// Compiler-scheduled CUDA-C (our kernels).
  static KernelGrade cuda_c();

  /// Hand-scheduled SASS (the cuBLAS model).
  static KernelGrade assembly();
};

struct TimingSpec {
  /// Fixed host-side cost per kernel launch, in device cycles
  /// (≈ 5 µs at 1.05 GHz; dominates at tiny problem sizes).
  double launch_overhead_cycles = 5250.0;

  /// Per-CTA scheduling/drain cost beyond the prologue model, cycles.
  double cta_dispatch_cycles = 200.0;

  /// Fraction of spec DRAM bandwidth achievable with streaming access.
  double dram_efficiency = 0.88;

  void validate() const;

  static TimingSpec gtx970();
};

}  // namespace ksum::config
