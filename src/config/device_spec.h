// Device configuration for the simulated GPGPU.
//
// The default factory reproduces Table I of the paper (NVIDIA GTX970,
// Maxwell, compute capability 5.2) plus the public die/board figures the
// table omits but the timing model needs (clock, lane counts, bandwidths).
#pragma once

#include <cstddef>

namespace ksum::config {

struct DeviceSpec {
  // --- Table I of the paper -------------------------------------------------
  int num_sms = 13;
  int max_threads_per_block = 1024;
  int warp_size = 32;
  int max_threads_per_sm = 2048;
  int registers_per_sm = 64 * 1024;        // 32-bit registers
  int max_registers_per_thread = 255;
  std::size_t smem_per_sm_bytes = 96 * 1024;
  int smem_bank_width_bytes = 4;
  int smem_num_banks = 32;
  int num_warp_schedulers = 4;
  std::size_t l2_bytes = 1792 * 1024;      // 1.75 MB

  // --- Derived / public GTX970 figures used by the models -------------------
  int max_blocks_per_sm = 32;              // CC 5.2 hardware CTA slots
  std::size_t smem_per_block_limit = 48 * 1024;  // CUDA per-block default cap
  int l2_line_bytes = 128;
  int l2_sector_bytes = 32;                // Maxwell L2 is sectored
  int l2_ways = 16;
  int dram_transaction_bytes = 32;         // GDDR5 access granularity
  // Maxwell's unified L1/texture cache does not cache global loads unless
  // the program is compiled with -Xptxas -dlcm=ca (§II-C of the paper);
  // this flag models that compiler option.
  bool cache_globals_in_l1 = false;
  std::size_t l1_bytes = 24 * 1024;        // unified L1/tex per SM
  int l1_ways = 8;
  double core_clock_ghz = 1.05;            // base clock
  int fma_lanes_per_sm = 128;              // CUDA cores per Maxwell SM
  double dram_bandwidth_gb_s = 196.0;      // achievable (224 GB/s spec)
  double l2_bandwidth_bytes_per_cycle = 512.0;
  // Per-device arena the shard planner may fill when auto-fitting a shard
  // count (conservative: well under the board's 4 GB so a planned shard
  // always allocates; bigger boards raise it through their profile).
  std::size_t shard_arena_bytes = std::size_t{512} << 20;

  /// Peak single-precision FLOP/s: lanes × 2 (FMA) × clock × SMs.
  double peak_sp_flops() const;

  /// Total FMA issue slots per cycle across the device.
  double fma_slots_per_cycle() const;

  /// DRAM bytes deliverable per core cycle (device total).
  double dram_bytes_per_cycle() const;

  /// Shared memory bytes per cycle per SM (all banks busy).
  double smem_bytes_per_cycle_per_sm() const;

  /// Validates internal consistency; throws ksum::Error on nonsense.
  void validate() const;

  /// The configuration of the paper's test machine (Table I).
  static DeviceSpec gtx970();
};

}  // namespace ksum::config
