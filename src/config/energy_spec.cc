#include "config/energy_spec.h"

#include "common/error.h"

namespace ksum::config {

void EnergySpec::validate() const {
  KSUM_REQUIRE(fma_pj > 0 && sfu_pj > 0 && instruction_pj >= 0 &&
                   smem_access_pj > 0 && l2_access_pj > 0 &&
                   dram_access_pj > 0,
               "per-event energies must be positive");
  KSUM_REQUIRE(dram_access_pj > l2_access_pj,
               "DRAM access must cost more than an L2 access");
  KSUM_REQUIRE(l2_access_pj > smem_access_pj,
               "L2 access must cost more than a shared memory access");
  KSUM_REQUIRE(l1_access_pj > 0 && l1_access_pj < l2_access_pj,
               "L1 access must sit between shared memory and L2");
  KSUM_REQUIRE(static_power_w >= 0, "static power cannot be negative");
}

EnergySpec EnergySpec::gtx970_mcpat() {
  EnergySpec spec;  // defaults are the calibrated constants
  spec.validate();
  return spec;
}

}  // namespace ksum::config
