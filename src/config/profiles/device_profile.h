// Named, loadable device profiles — the multi-architecture face of the
// config layer.
//
// A DeviceProfile bundles the three specs a simulated run needs (DeviceSpec
// geometry/bandwidths, TimingSpec overheads, EnergySpec per-event table)
// under a name. Three built-ins ship:
//
//   gtx970         — the paper's Table I machine; bit-identical to the
//                    DeviceSpec::gtx970() / TimingSpec::gtx970() /
//                    EnergySpec::gtx970_mcpat() factories, so running with
//                    --profile=gtx970 (or no --profile at all) reproduces
//                    every pre-profile artifact byte for byte.
//   titanx-maxwell — a GM200-class big Maxwell: 24 SMs, 3 MB L2, 296 GB/s
//                    achievable DRAM, same 28 nm energy table with the
//                    bigger die's static power.
//   modern         — a modern high-SM part (Ada-class): 128 SMs, 48 MB L2,
//                    2.2 GHz, 900 GB/s, a 5 nm-class energy table scaled
//                    per Lim et al.'s McPAT re-parameterisation approach.
//
// Profiles also load from JSON files (schema "ksum-device-profile-v1").
// validate_device_profile_json() is the schema's executable definition:
// every field is required, every value is range- and consistency-checked
// through the specs' own validate() rules, and unknown keys are rejected —
// a profile that validates will run, and serialisation round-trips
// byte-identically (to_json ∘ from_json ∘ to_json is the identity on the
// dumped text; CI pins this for every shipped profile).
#pragma once

#include <string>
#include <vector>

#include "config/device_spec.h"
#include "config/energy_spec.h"
#include "config/timing_spec.h"
#include "profile/json.h"

namespace ksum::config::profiles {

struct DeviceProfile {
  std::string name;
  std::string description;
  DeviceSpec device;
  TimingSpec timing;
  EnergySpec energy;

  /// Validates the name (non-empty, [A-Za-z0-9._-]) and all three specs.
  void validate() const;
};

/// The paper's GTX 970 — bit-identical to the config factories.
DeviceProfile gtx970();
/// GM200-class big Maxwell (24 SMs, 3 MB L2).
DeviceProfile titanx_maxwell();
/// Modern high-SM configuration (128 SMs, 48 MB L2, 2.2 GHz).
DeviceProfile modern();

/// Built-in profile names, in the fixed order {gtx970, titanx-maxwell,
/// modern} the CI matrix iterates.
const std::vector<std::string>& builtin_names();

bool is_builtin(const std::string& name);

/// Returns the named built-in; throws ksum::Error listing the valid names.
DeviceProfile builtin(const std::string& name);

/// Resolves a --profile value: a built-in name, otherwise a path to a
/// ksum-device-profile-v1 JSON file. The error for an unknown name lists
/// the built-ins so CLI users see their options.
DeviceProfile resolve(const std::string& name_or_path);

/// Serialises to ksum-device-profile-v1 (validated before returning).
profile::Json to_json(const DeviceProfile& p);

/// Parses a validated record back into a profile.
DeviceProfile from_json(const profile::Json& record);

/// File round-trip (dump() text; load validates).
void save(const DeviceProfile& p, const std::string& path);
DeviceProfile load(const std::string& path);

/// Throws ksum::Error describing the first violation; the schema's
/// executable definition (strict: unknown keys are errors).
void validate_device_profile_json(const profile::Json& record);

}  // namespace ksum::config::profiles
