#include "config/profiles/device_profile.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace ksum::config::profiles {

using profile::Json;

namespace {

constexpr char kSchema[] = "ksum-device-profile-v1";

void check(bool cond, const std::string& what) {
  if (!cond) throw Error(std::string(kSchema) + ": " + what);
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

// Field readers: every field is required, typed, and (for the integer
// fields) exactly integral — 13.5 SMs is a schema error, not a truncation.
double read_double(const Json& obj, const char* key) {
  return obj.at(key).as_double();
}

int read_int(const Json& obj, const char* key) {
  const double v = read_double(obj, key);
  check(v == static_cast<double>(static_cast<std::int64_t>(v)) &&
            v >= std::numeric_limits<int>::min() &&
            v <= std::numeric_limits<int>::max(),
        std::string(key) + " must be an integer");
  return static_cast<int>(v);
}

std::size_t read_size(const Json& obj, const char* key) {
  const double v = read_double(obj, key);
  check(v >= 0 && v == static_cast<double>(static_cast<std::uint64_t>(v)),
        std::string(key) + " must be a non-negative integer");
  return static_cast<std::size_t>(v);
}

bool read_bool(const Json& obj, const char* key) {
  return obj.at(key).as_bool();
}

void check_keys(const Json& obj, const char* what,
                std::initializer_list<const char*> allowed) {
  check(obj.is_object(), std::string(what) + " must be an object");
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool known = false;
    for (const char* k : allowed) {
      if (key == k) {
        known = true;
        break;
      }
    }
    check(known, std::string(what) + " has unknown key \"" + key + "\"");
  }
}

DeviceProfile parse_profile(const Json& record) {
  check_keys(record, "record",
             {"schema", "name", "description", "device", "timing", "energy"});
  check(record.at("schema").as_string() == kSchema,
        "schema must be " + std::string(kSchema));

  DeviceProfile p;
  p.name = record.at("name").as_string();
  check(valid_name(p.name),
        "name must be non-empty [A-Za-z0-9._-]: \"" + p.name + "\"");
  p.description = record.at("description").as_string();

  const Json& d = record.at("device");
  check_keys(d, "device",
             {"num_sms", "max_threads_per_block", "warp_size",
              "max_threads_per_sm", "registers_per_sm",
              "max_registers_per_thread", "smem_per_sm_bytes",
              "smem_bank_width_bytes", "smem_num_banks",
              "num_warp_schedulers", "l2_bytes", "max_blocks_per_sm",
              "smem_per_block_limit", "l2_line_bytes", "l2_sector_bytes",
              "l2_ways", "dram_transaction_bytes", "cache_globals_in_l1",
              "l1_bytes", "l1_ways", "core_clock_ghz", "fma_lanes_per_sm",
              "dram_bandwidth_gb_s", "l2_bandwidth_bytes_per_cycle",
              "shard_arena_bytes"});
  DeviceSpec& dev = p.device;
  dev.num_sms = read_int(d, "num_sms");
  dev.max_threads_per_block = read_int(d, "max_threads_per_block");
  dev.warp_size = read_int(d, "warp_size");
  dev.max_threads_per_sm = read_int(d, "max_threads_per_sm");
  dev.registers_per_sm = read_int(d, "registers_per_sm");
  dev.max_registers_per_thread = read_int(d, "max_registers_per_thread");
  dev.smem_per_sm_bytes = read_size(d, "smem_per_sm_bytes");
  dev.smem_bank_width_bytes = read_int(d, "smem_bank_width_bytes");
  dev.smem_num_banks = read_int(d, "smem_num_banks");
  dev.num_warp_schedulers = read_int(d, "num_warp_schedulers");
  dev.l2_bytes = read_size(d, "l2_bytes");
  dev.max_blocks_per_sm = read_int(d, "max_blocks_per_sm");
  dev.smem_per_block_limit = read_size(d, "smem_per_block_limit");
  dev.l2_line_bytes = read_int(d, "l2_line_bytes");
  dev.l2_sector_bytes = read_int(d, "l2_sector_bytes");
  dev.l2_ways = read_int(d, "l2_ways");
  dev.dram_transaction_bytes = read_int(d, "dram_transaction_bytes");
  dev.cache_globals_in_l1 = read_bool(d, "cache_globals_in_l1");
  dev.l1_bytes = read_size(d, "l1_bytes");
  dev.l1_ways = read_int(d, "l1_ways");
  dev.core_clock_ghz = read_double(d, "core_clock_ghz");
  dev.fma_lanes_per_sm = read_int(d, "fma_lanes_per_sm");
  dev.dram_bandwidth_gb_s = read_double(d, "dram_bandwidth_gb_s");
  dev.l2_bandwidth_bytes_per_cycle =
      read_double(d, "l2_bandwidth_bytes_per_cycle");
  dev.shard_arena_bytes = read_size(d, "shard_arena_bytes");

  const Json& t = record.at("timing");
  check_keys(t, "timing",
             {"launch_overhead_cycles", "cta_dispatch_cycles",
              "dram_efficiency"});
  p.timing.launch_overhead_cycles = read_double(t, "launch_overhead_cycles");
  p.timing.cta_dispatch_cycles = read_double(t, "cta_dispatch_cycles");
  p.timing.dram_efficiency = read_double(t, "dram_efficiency");

  const Json& e = record.at("energy");
  check_keys(e, "energy",
             {"fma_pj", "sfu_pj", "instruction_pj", "smem_access_pj",
              "l1_access_pj", "l2_access_pj", "dram_access_pj",
              "static_power_w"});
  p.energy.fma_pj = read_double(e, "fma_pj");
  p.energy.sfu_pj = read_double(e, "sfu_pj");
  p.energy.instruction_pj = read_double(e, "instruction_pj");
  p.energy.smem_access_pj = read_double(e, "smem_access_pj");
  p.energy.l1_access_pj = read_double(e, "l1_access_pj");
  p.energy.l2_access_pj = read_double(e, "l2_access_pj");
  p.energy.dram_access_pj = read_double(e, "dram_access_pj");
  p.energy.static_power_w = read_double(e, "static_power_w");

  // Cross-field consistency comes from the specs' own rules — the schema
  // accepts exactly the profiles that can run.
  try {
    p.validate();
  } catch (const Error& err) {
    throw Error(std::string(kSchema) + ": " + err.what());
  }
  return p;
}

}  // namespace

void DeviceProfile::validate() const {
  KSUM_REQUIRE(valid_name(name),
               "profile name must be non-empty [A-Za-z0-9._-]");
  device.validate();
  timing.validate();
  energy.validate();
}

DeviceProfile gtx970() {
  DeviceProfile p;
  p.name = "gtx970";
  p.description =
      "NVIDIA GTX 970 (Maxwell GM204, Table I of the paper): 13 SMs, "
      "1.75 MB L2, 196 GB/s achievable DRAM at 1.05 GHz";
  p.device = DeviceSpec::gtx970();
  p.timing = TimingSpec::gtx970();
  p.energy = EnergySpec::gtx970_mcpat();
  p.validate();
  return p;
}

DeviceProfile titanx_maxwell() {
  DeviceProfile p;
  p.name = "titanx-maxwell";
  p.description =
      "GM200-class big Maxwell (Titan X): 24 SMs, 3 MB L2, 296 GB/s "
      "achievable DRAM at 1.0 GHz, same 28 nm energy table with the "
      "bigger die's static power";
  p.device = DeviceSpec::gtx970();  // same architecture generation...
  p.device.num_sms = 24;            // ...bigger die
  p.device.l2_bytes = std::size_t{3} * 1024 * 1024;
  p.device.core_clock_ghz = 1.0;
  p.device.dram_bandwidth_gb_s = 296.0;  // 336.5 GB/s spec, streaming share
  p.device.l2_bandwidth_bytes_per_cycle = 768.0;
  p.device.shard_arena_bytes = std::size_t{2} << 30;  // 12 GB board
  p.timing = TimingSpec::gtx970();  // same launch/dispatch silicon
  p.energy = EnergySpec::gtx970_mcpat();
  p.energy.static_power_w = 14.0;  // 250 W TDP die vs the 970's 145 W
  p.validate();
  return p;
}

DeviceProfile modern() {
  DeviceProfile p;
  p.name = "modern";
  p.description =
      "Modern high-SM configuration (Ada-class): 128 SMs at 2.2 GHz, "
      "48 MB L2, 900 GB/s achievable DRAM, 100 KB smem/SM with the 99 KB "
      "opt-in per-block limit, 5 nm-class energy table";
  DeviceSpec& d = p.device;
  d.num_sms = 128;
  d.max_threads_per_sm = 1536;
  d.smem_per_sm_bytes = std::size_t{100} * 1024;
  d.smem_per_block_limit = std::size_t{99} * 1024;
  d.l2_bytes = std::size_t{48} * 1024 * 1024;
  d.l1_bytes = std::size_t{128} * 1024;
  d.core_clock_ghz = 2.2;
  d.dram_bandwidth_gb_s = 900.0;  // 1008 GB/s spec, streaming share
  d.l2_bandwidth_bytes_per_cycle = 4096.0;
  d.shard_arena_bytes = std::size_t{8} << 30;  // 24 GB board
  p.timing = TimingSpec::gtx970();
  p.timing.launch_overhead_cycles = 11000.0;  // ~5 us at 2.2 GHz
  EnergySpec& e = p.energy;
  e.fma_pj = 4.0;  // 5 nm-class datapath, per the Lim-style re-scaling
  e.sfu_pj = 15.0;
  e.instruction_pj = 6.0;
  e.smem_access_pj = 0.8;
  e.l1_access_pj = 10.0;
  e.l2_access_pj = 60.0;
  e.dram_access_pj = 500.0;  // GDDR6X-class, ~15 pJ/B
  e.static_power_w = 60.0;
  p.validate();
  return p;
}

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> names = {"gtx970", "titanx-maxwell",
                                                 "modern"};
  return names;
}

bool is_builtin(const std::string& name) {
  for (const auto& n : builtin_names()) {
    if (n == name) return true;
  }
  return false;
}

DeviceProfile builtin(const std::string& name) {
  if (name == "gtx970") return gtx970();
  if (name == "titanx-maxwell") return titanx_maxwell();
  if (name == "modern") return modern();
  std::string names;
  for (const auto& n : builtin_names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  throw Error("unknown device profile: " + name + " (built-ins: " + names +
              "; or pass a ksum-device-profile-v1 JSON file path)");
}

DeviceProfile resolve(const std::string& name_or_path) {
  if (is_builtin(name_or_path)) return builtin(name_or_path);
  // Not a built-in: only a path makes sense. Require it to look like one
  // so a typo'd name gets the name error, not a file error.
  if (name_or_path.find('/') == std::string::npos &&
      name_or_path.find(".json") == std::string::npos) {
    return builtin(name_or_path);  // throws, listing the built-ins
  }
  return load(name_or_path);
}

Json to_json(const DeviceProfile& p) {
  p.validate();
  Json record = Json::object();
  record.set("schema", kSchema);
  record.set("name", p.name);
  record.set("description", p.description);

  Json d = Json::object();
  const DeviceSpec& dev = p.device;
  d.set("num_sms", dev.num_sms);
  d.set("max_threads_per_block", dev.max_threads_per_block);
  d.set("warp_size", dev.warp_size);
  d.set("max_threads_per_sm", dev.max_threads_per_sm);
  d.set("registers_per_sm", dev.registers_per_sm);
  d.set("max_registers_per_thread", dev.max_registers_per_thread);
  d.set("smem_per_sm_bytes", static_cast<std::uint64_t>(dev.smem_per_sm_bytes));
  d.set("smem_bank_width_bytes", dev.smem_bank_width_bytes);
  d.set("smem_num_banks", dev.smem_num_banks);
  d.set("num_warp_schedulers", dev.num_warp_schedulers);
  d.set("l2_bytes", static_cast<std::uint64_t>(dev.l2_bytes));
  d.set("max_blocks_per_sm", dev.max_blocks_per_sm);
  d.set("smem_per_block_limit",
        static_cast<std::uint64_t>(dev.smem_per_block_limit));
  d.set("l2_line_bytes", dev.l2_line_bytes);
  d.set("l2_sector_bytes", dev.l2_sector_bytes);
  d.set("l2_ways", dev.l2_ways);
  d.set("dram_transaction_bytes", dev.dram_transaction_bytes);
  d.set("cache_globals_in_l1", dev.cache_globals_in_l1);
  d.set("l1_bytes", static_cast<std::uint64_t>(dev.l1_bytes));
  d.set("l1_ways", dev.l1_ways);
  d.set("core_clock_ghz", dev.core_clock_ghz);
  d.set("fma_lanes_per_sm", dev.fma_lanes_per_sm);
  d.set("dram_bandwidth_gb_s", dev.dram_bandwidth_gb_s);
  d.set("l2_bandwidth_bytes_per_cycle", dev.l2_bandwidth_bytes_per_cycle);
  d.set("shard_arena_bytes", static_cast<std::uint64_t>(dev.shard_arena_bytes));
  record.set("device", std::move(d));

  Json t = Json::object();
  t.set("launch_overhead_cycles", p.timing.launch_overhead_cycles);
  t.set("cta_dispatch_cycles", p.timing.cta_dispatch_cycles);
  t.set("dram_efficiency", p.timing.dram_efficiency);
  record.set("timing", std::move(t));

  Json e = Json::object();
  e.set("fma_pj", p.energy.fma_pj);
  e.set("sfu_pj", p.energy.sfu_pj);
  e.set("instruction_pj", p.energy.instruction_pj);
  e.set("smem_access_pj", p.energy.smem_access_pj);
  e.set("l1_access_pj", p.energy.l1_access_pj);
  e.set("l2_access_pj", p.energy.l2_access_pj);
  e.set("dram_access_pj", p.energy.dram_access_pj);
  e.set("static_power_w", p.energy.static_power_w);
  record.set("energy", std::move(e));

  validate_device_profile_json(record);
  return record;
}

DeviceProfile from_json(const Json& record) { return parse_profile(record); }

void validate_device_profile_json(const Json& record) {
  (void)parse_profile(record);
}

void save(const DeviceProfile& p, const std::string& path) {
  const auto record = to_json(p);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write device profile: " + path);
  out << record.dump();
  out.close();
  if (!out) throw Error("failed writing device profile: " + path);
}

DeviceProfile load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open device profile: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(Json::parse(text.str()));
}

}  // namespace ksum::config::profiles
