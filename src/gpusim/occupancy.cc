#include "gpusim/occupancy.h"
#include <limits>

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace ksum::gpusim {

std::string to_string(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kThreads:
      return "threads";
    case OccupancyLimiter::kBlocks:
      return "blocks";
    case OccupancyLimiter::kRegisters:
      return "registers";
    case OccupancyLimiter::kSharedMemory:
      return "shared-memory";
  }
  return "unknown";
}

Occupancy compute_occupancy(const config::DeviceSpec& spec,
                            const LaunchConfig& cfg) {
  KSUM_REQUIRE(cfg.threads_per_block > 0 &&
                   cfg.threads_per_block <= spec.max_threads_per_block,
               "threads per block out of range");
  KSUM_REQUIRE(cfg.threads_per_block % spec.warp_size == 0,
               "block size must be a whole number of warps");
  KSUM_REQUIRE(cfg.regs_per_thread > 0 &&
                   cfg.regs_per_thread <= spec.max_registers_per_thread,
               "registers per thread out of range");
  KSUM_REQUIRE(cfg.smem_bytes_per_block <= spec.smem_per_block_limit,
               "shared memory request exceeds the per-block limit");

  const int by_threads = spec.max_threads_per_sm / cfg.threads_per_block;
  const int by_blocks = spec.max_blocks_per_sm;

  // Registers allocate per warp in granules of 256 on Maxwell.
  const int warps = cfg.threads_per_block / spec.warp_size;
  const int regs_per_warp =
      static_cast<int>(round_up(cfg.regs_per_thread * spec.warp_size, 256));
  const int by_regs = spec.registers_per_sm / (regs_per_warp * warps);

  int by_smem = std::numeric_limits<int>::max();
  if (cfg.smem_bytes_per_block > 0) {
    by_smem = static_cast<int>(spec.smem_per_sm_bytes /
                               cfg.smem_bytes_per_block);
  }

  Occupancy occ;
  occ.blocks_per_sm = std::min({by_threads, by_blocks, by_regs, by_smem});
  KSUM_REQUIRE(occ.blocks_per_sm >= 1,
               "kernel resources exceed one SM; launch impossible");
  // First binding constraint in a fixed priority order names the limiter.
  if (occ.blocks_per_sm == by_threads) {
    occ.limiter = OccupancyLimiter::kThreads;
  } else if (occ.blocks_per_sm == by_blocks) {
    occ.limiter = OccupancyLimiter::kBlocks;
  } else if (occ.blocks_per_sm == by_regs) {
    occ.limiter = OccupancyLimiter::kRegisters;
  } else {
    occ.limiter = OccupancyLimiter::kSharedMemory;
  }
  return occ;
}

}  // namespace ksum::gpusim
