#include "gpusim/fault_injection.h"

namespace ksum::gpusim {

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kSharedMemory:
      return "smem-bitflip";
    case FaultSite::kGlobalMemory:
      return "global-bitflip";
    case FaultSite::kTileLoad:
      return "tile-load";
    case FaultSite::kAtomicDrop:
      return "atomic-drop";
    case FaultSite::kAtomicDouble:
      return "atomic-double";
  }
  return "unknown";
}

}  // namespace ksum::gpusim
