// CTA occupancy calculator — mirrors the CUDA occupancy rules the paper's
// §III-A discusses (register file, shared memory, thread and CTA slots).
#pragma once

#include <cstdint>
#include <string>

#include "config/device_spec.h"

namespace ksum::gpusim {

/// Per-launch resource requirements of a kernel.
struct LaunchConfig {
  int threads_per_block = 256;
  int regs_per_thread = 96;
  std::uint32_t smem_bytes_per_block = 0;
};

enum class OccupancyLimiter { kThreads, kBlocks, kRegisters, kSharedMemory };

std::string to_string(OccupancyLimiter limiter);

struct Occupancy {
  int blocks_per_sm = 0;
  OccupancyLimiter limiter = OccupancyLimiter::kThreads;

  int active_threads_per_sm(const LaunchConfig& cfg) const {
    return blocks_per_sm * cfg.threads_per_block;
  }
  /// Fraction of the SM's thread slots occupied.
  double ratio(const config::DeviceSpec& spec, const LaunchConfig& cfg) const {
    return static_cast<double>(active_threads_per_sm(cfg)) /
           static_cast<double>(spec.max_threads_per_sm);
  }
};

/// Computes how many CTAs of `cfg` fit on one SM. Throws ksum::Error when
/// the kernel cannot launch at all (over a hard per-block limit).
Occupancy compute_occupancy(const config::DeviceSpec& spec,
                            const LaunchConfig& cfg);

}  // namespace ksum::gpusim
