// Simulated global memory: a flat byte-addressed arena with a bump
// allocator. Device buffers (the A/B matrices, vectors, intermediates) are
// carved out of it; kernels address it only through the coalescer/L2 path
// owned by Device.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "gpusim/address.h"

namespace ksum::gpusim {

/// A device allocation: base address + length, plus typed float accessors
/// for host-side staging (cudaMemcpy stand-ins).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(GlobalAddr base, std::size_t bytes) : base_(base), bytes_(bytes) {}

  GlobalAddr base() const { return base_; }
  std::size_t bytes() const { return bytes_; }
  std::size_t num_floats() const { return bytes_ / 4; }
  GlobalAddr addr_of_float(std::size_t index) const { return base_ + index * 4; }
  bool valid() const { return bytes_ != 0; }

 private:
  GlobalAddr base_ = 0;
  std::size_t bytes_ = 0;
};

class GlobalMemory {
 public:
  explicit GlobalMemory(std::size_t capacity_bytes);

  /// Allocates `bytes`, 128-byte aligned. Throws ksum::Error when the arena
  /// is exhausted.
  DeviceBuffer allocate(std::size_t bytes, const std::string& label);

  /// Host-side staging (not counted as device traffic, like cudaMemcpy in
  /// the paper's timing which excludes transfers).
  void upload(const DeviceBuffer& dst, std::span<const float> src);
  void download(const DeviceBuffer& src, std::span<float> dst) const;
  void upload_matrix(const DeviceBuffer& dst, const Matrix& src);
  void fill(const DeviceBuffer& dst, float value);

  /// Raw word access used by the memory pipeline after coalescing.
  float load_f32(GlobalAddr addr) const;
  void store_f32(GlobalAddr addr, float value);

  std::size_t bytes_allocated() const { return next_; }
  std::size_t capacity() const { return arena_.size() * 4; }

  /// Rewinds the bump allocator, invalidating every DeviceBuffer handed out
  /// so far (the warm-device reuse path; Device::reset calls this). The
  /// arena contents are *not* scrubbed — every pipeline buffer is uploaded
  /// or filled before first read (see gpukernels::upload_instance), so
  /// reuse stays bit-deterministic without a 512 MB memset per request.
  void reset() { next_ = 0; }

 private:
  void check_range(GlobalAddr addr, std::size_t bytes) const;

  std::vector<float> arena_;
  std::size_t next_ = 0;
};

}  // namespace ksum::gpusim
