// Address types and warp-access descriptors for the simulated device.
#pragma once

#include <array>
#include <cstdint>

namespace ksum::gpusim {

/// Byte address in the simulated global memory space.
using GlobalAddr = std::uint64_t;

/// Byte offset within a CTA's shared memory allocation.
using SharedAddr = std::uint32_t;

inline constexpr int kWarpSize = 32;

/// One warp-wide memory request: a byte address per lane plus an active mask.
/// `width_bytes` is the per-lane access width (4 for float, 16 for float4).
template <typename Addr>
struct WarpAccess {
  std::array<Addr, kWarpSize> addr{};
  std::uint32_t active_mask = 0xffffffffu;
  int width_bytes = 4;

  bool lane_active(int lane) const {
    return (active_mask >> lane) & 1u;
  }
  void set_lane(int lane, Addr a) {
    addr[static_cast<std::size_t>(lane)] = a;
  }
};

using GlobalWarpAccess = WarpAccess<GlobalAddr>;
using SharedWarpAccess = WarpAccess<SharedAddr>;

}  // namespace ksum::gpusim
