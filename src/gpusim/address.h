// Address types and warp-access descriptors for the simulated device.
#pragma once

#include <array>
#include <cstdint>

namespace ksum::gpusim {

/// Byte address in the simulated global memory space.
using GlobalAddr = std::uint64_t;

/// Byte offset within a CTA's shared memory allocation.
using SharedAddr = std::uint32_t;

/// Identifier of a static access site (a KSUM_ACCESS_SITE expansion in a
/// kernel body). 0 means "untagged"; see gpusim/access_site.h.
using SiteId = std::uint32_t;

inline constexpr int kWarpSize = 32;

/// One warp-wide memory request: a byte address per lane plus an active mask.
/// `width_bytes` is the per-lane access width (4 for float, 16 for float4).
///
/// `site` and `warp` exist for the static-analysis layer: `site` attributes
/// the request to the source line that built it, and `warp` is the issuing
/// warp's index within the CTA so lane ↦ thread identity survives into the
/// race detector. Neither affects functional execution or the counters.
template <typename Addr>
struct WarpAccess {
  std::array<Addr, kWarpSize> addr{};
  std::uint32_t active_mask = 0xffffffffu;
  int width_bytes = 4;
  SiteId site = 0;
  int warp = -1;

  bool lane_active(int lane) const {
    return (active_mask >> lane) & 1u;
  }
  void set_lane(int lane, Addr a) {
    addr[static_cast<std::size_t>(lane)] = a;
  }
  /// CTA-relative thread id of `lane` (lane itself when the kernel did not
  /// model a warp index).
  int thread_of_lane(int lane) const {
    return (warp < 0 ? 0 : warp * kWarpSize) + lane;
  }
};

using GlobalWarpAccess = WarpAccess<GlobalAddr>;
using SharedWarpAccess = WarpAccess<SharedAddr>;

}  // namespace ksum::gpusim
