#include "gpusim/access_site.h"

#include <string_view>

#include "common/error.h"

namespace ksum::gpusim {

namespace {

// Trims an absolute __FILE__ down to the repo-relative path so diagnostics
// stay stable across build directories.
const char* trim_path(const char* file) {
  std::string_view view(file);
  const std::size_t pos = view.rfind("src/");
  if (pos != std::string_view::npos) return file + pos;
  const std::size_t tests = view.rfind("tests/");
  if (tests != std::string_view::npos) return file + tests;
  const std::size_t slash = view.rfind('/');
  return slash == std::string_view::npos ? file : file + slash + 1;
}

}  // namespace

std::string AccessSite::location() const {
  return std::string(trim_path(file)) + ":" + std::to_string(line);
}

SiteRegistry::SiteRegistry() {
  sites_.push_back(AccessSite{0, "", 0, "<untagged>", kSiteNone, ""});
}

SiteRegistry& SiteRegistry::instance() {
  static SiteRegistry registry;
  return registry;
}

SiteId SiteRegistry::intern(const char* file, int line, const char* label,
                            std::uint32_t flags, const char* rationale) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(AccessSite{id, file, line, label, flags, rationale});
  return id;
}

const AccessSite& SiteRegistry::site(SiteId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  KSUM_CHECK_MSG(id < sites_.size(), "unknown access site id");
  return sites_[id];
}

std::size_t SiteRegistry::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sites_.size();
}

}  // namespace ksum::gpusim
