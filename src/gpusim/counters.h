// Architectural event counters — the simulator's `nvprof`.
//
// Every model component increments these; the timing and energy models
// consume them; the analytic module predicts them in closed form.
#pragma once

#include <cstdint>
#include <string>

namespace ksum::gpusim {

struct Counters {
  // Compute (counted per active lane).
  std::uint64_t fma_ops = 0;        // fused multiply-add datapath ops
  std::uint64_t alu_ops = 0;        // other integer/FP ALU ops
  std::uint64_t sfu_ops = 0;        // special-function ops (exp, rsqrt)

  // Executed warp instructions (all classes, per warp not per lane) — the
  // denominator of MPKI-style metrics.
  std::uint64_t warp_instructions = 0;

  // Shared memory.
  std::uint64_t smem_load_requests = 0;    // warp-level requests
  std::uint64_t smem_store_requests = 0;
  std::uint64_t smem_load_transactions = 0;   // after replay expansion
  std::uint64_t smem_store_transactions = 0;
  std::uint64_t smem_bank_conflicts = 0;      // replays beyond the ideal

  // Global memory front end.
  std::uint64_t global_load_requests = 0;  // warp-level requests
  std::uint64_t global_store_requests = 0;
  std::uint64_t atomic_requests = 0;

  // Optional per-SM L1/texture cache (only ticks when the device enables
  // cache_globals_in_l1, the -Xptxas -dlcm=ca configuration of §II-C).
  std::uint64_t l1_read_transactions = 0;
  std::uint64_t l1_read_hits = 0;
  std::uint64_t l1_read_misses = 0;

  // L2 (32-byte sector granularity, like nvprof's l2_read_transactions).
  std::uint64_t l2_read_transactions = 0;
  std::uint64_t l2_write_transactions = 0;
  std::uint64_t l2_read_hits = 0;
  std::uint64_t l2_read_misses = 0;

  // DRAM (32-byte transactions).
  std::uint64_t dram_read_transactions = 0;
  std::uint64_t dram_write_transactions = 0;

  // Control.
  std::uint64_t barriers = 0;
  std::uint64_t ctas_launched = 0;
  std::uint64_t kernel_launches = 0;

  // Injected faults, per site (see gpusim/fault_injection.h). Always zero
  // unless a FaultInjector is attached to the Device; campaigns read these
  // to know exactly how many faults each run absorbed.
  std::uint64_t faults_smem_bitflips = 0;
  std::uint64_t faults_global_bitflips = 0;
  std::uint64_t faults_tile_corruptions = 0;
  std::uint64_t faults_atomics_dropped = 0;
  std::uint64_t faults_atomics_doubled = 0;

  Counters& operator+=(const Counters& other);
  friend Counters operator+(Counters lhs, const Counters& rhs) {
    lhs += rhs;
    return lhs;
  }

  /// Element-wise difference, saturating at zero. The profiler subtracts
  /// launch-counter snapshots taken at phase markers to attribute events to
  /// the kernel phase that generated them.
  Counters& operator-=(const Counters& other);
  friend Counters operator-(Counters lhs, const Counters& rhs) {
    lhs -= rhs;
    return lhs;
  }

  /// Bit-exact equality over every counter field (the determinism tests
  /// assert observed runs match unobserved ones through this).
  friend bool operator==(const Counters& lhs, const Counters& rhs);

  std::uint64_t l2_total_transactions() const {
    return l2_read_transactions + l2_write_transactions;
  }
  std::uint64_t dram_total_transactions() const {
    return dram_read_transactions + dram_write_transactions;
  }
  std::uint64_t smem_total_transactions() const {
    return smem_load_transactions + smem_store_transactions;
  }
  std::uint64_t faults_injected_total() const {
    return faults_smem_bitflips + faults_global_bitflips +
           faults_tile_corruptions + faults_atomics_dropped +
           faults_atomics_doubled;
  }

  /// L2 misses per kilo *thread* instructions (warp instructions × 32, the
  /// nvprof inst_executed convention) — the metric of the paper's Fig. 2.
  double l2_mpki() const;

  /// Multi-line human-readable dump (used by examples and debugging).
  std::string to_string() const;
};

}  // namespace ksum::gpusim
