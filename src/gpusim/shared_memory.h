// Shared-memory model: storage plus the Maxwell bank-conflict rules.
//
// The paper's §II-C model: 32 banks × 4 bytes, one row select shared by all
// banks, so a single transaction services lanes that fall in the same
// 128-byte row (with broadcast when lanes read the same word). A warp access
// therefore costs one transaction per *distinct 128-byte row* it touches;
// replays beyond the minimum possible for the access width are bank
// conflicts. A 4-byte access can always be serviced in 1 transaction when
// conflict-free; a 16-byte (float4) access needs at least 4.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/access_observer.h"
#include "gpusim/address.h"
#include "gpusim/counters.h"
#include "gpusim/fault_injection.h"

namespace ksum::gpusim {

class SharedMemory {
 public:
  /// `size_bytes` is the CTA's static allocation; contents zero-initialised
  /// (matching CUDA's undefined-but-we-want-determinism; kernels must not
  /// rely on it and tests poison it). When `injector` is non-null every
  /// stored word is an injection opportunity for the kSharedMemory site.
  SharedMemory(std::uint32_t size_bytes, Counters* counters,
               FaultInjector* injector = nullptr);

  std::uint32_t size_bytes() const {
    return static_cast<std::uint32_t>(data_.size() * sizeof(float));
  }

  /// Warp-wide 4-byte loads. Returns per-lane values (inactive lanes get 0).
  std::array<float, kWarpSize> load_warp(const SharedWarpAccess& access);

  /// Warp-wide 4-byte stores.
  void store_warp(const SharedWarpAccess& access,
                  const std::array<float, kWarpSize>& values);

  /// Counts the transactions a warp access costs under the row-select model
  /// (also used standalone by unit tests and the analytic layer).
  static int transactions_for(const SharedWarpAccess& access);

  /// Minimum transactions possible for the access width (1 for 4-byte,
  /// width/4 for wider vector accesses, assuming any lane is active).
  static int ideal_transactions_for(const SharedWarpAccess& access);

  /// Overwrites every word with a NaN-ish poison pattern; tests use this to
  /// prove kernels never read uninitialised shared memory.
  void poison();

  float peek(SharedAddr byte_offset) const;

  /// Attaches the analysis observer; events fire after the request has been
  /// serviced and counted. Null detaches.
  void set_observer(AccessObserver* observer) { observer_ = observer; }

 private:
  void check_access(const SharedWarpAccess& access) const;

  std::vector<float> data_;
  Counters* counters_;
  FaultInjector* injector_;
  AccessObserver* observer_ = nullptr;
};

}  // namespace ksum::gpusim
