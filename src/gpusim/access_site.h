// Static access-site registry.
//
// Every warp-wide memory request a kernel builds can carry a SiteId tagging
// the source line that issued it. The registry maps ids back to file:line
// and a human label, so the analysis layer (src/analysis/) can attribute
// hazards, bank conflicts, and coalescing behaviour to the exact access in
// the kernel body instead of an aggregate counter.
//
// Sites register lazily through KSUM_ACCESS_SITE: the first execution of the
// expansion interns the site and every later execution reuses the id.
// Annotated variants record analyzer suppressions reviewed in code — e.g. a
// scratch layout whose bank conflicts are an accepted design trade-off.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "gpusim/address.h"

namespace ksum::gpusim {

/// Per-site analyzer suppressions (bitmask). An annotation never hides the
/// measurement — the analyzers still quantify the behaviour — it only stops
/// the finding from being a lint failure, and it must carry a rationale.
enum SiteFlags : std::uint32_t {
  kSiteNone = 0,
  /// Shared-memory bank conflicts at this site are an accepted trade-off.
  kSiteAllowBankConflicts = 1u << 0,
  /// Partially-filled sectors on this site's requests are accepted.
  kSiteAllowUncoalesced = 1u << 1,
  /// Same-epoch conflicts involving this site are known to be benign.
  kSiteAllowRace = 1u << 2,
};

struct AccessSite {
  SiteId id = 0;
  const char* file = "";
  int line = 0;
  const char* label = "";
  std::uint32_t flags = kSiteNone;
  const char* rationale = "";  // why the flags are justified (annotated sites)

  bool allows(SiteFlags flag) const { return (flags & flag) != 0; }
  /// "src/gpukernels/tile_loader.cc:41" — path trimmed to the repo-relative
  /// part when recognisable.
  std::string location() const;
};

/// Process-wide site table. Interning is cheap and happens once per site
/// (guarded by a function-local static at the macro expansion); lookups are
/// index reads. Guarded by a mutex so OpenMP'd hosts stay safe.
class SiteRegistry {
 public:
  static SiteRegistry& instance();

  SiteId intern(const char* file, int line, const char* label,
                std::uint32_t flags = kSiteNone, const char* rationale = "");

  /// Site 0 is the reserved "<untagged>" entry.
  const AccessSite& site(SiteId id) const;

  /// Number of registered sites, including the untagged sentinel.
  std::size_t count() const;

 private:
  SiteRegistry();

  mutable std::mutex mutex_;
  std::deque<AccessSite> sites_;  // deque: interning never invalidates refs
};

}  // namespace ksum::gpusim

/// Tags the enclosing access-building statement with a static site. The
/// label should read like the access means something: "tile track scatter
/// store", "gemv kernel-matrix load".
#define KSUM_ACCESS_SITE(label)                                             \
  ([]() -> ::ksum::gpusim::SiteId {                                         \
    static const ::ksum::gpusim::SiteId ksum_site_id =                      \
        ::ksum::gpusim::SiteRegistry::instance().intern(__FILE__, __LINE__, \
                                                        (label));           \
    return ksum_site_id;                                                    \
  }())

/// Tagged site with reviewed analyzer suppressions. `flags` is a SiteFlags
/// mask; `rationale` documents why the behaviour is accepted — it is printed
/// next to the suppressed finding by ksum-lint.
#define KSUM_ACCESS_SITE_ANNOTATED(label, flags, rationale)                 \
  ([]() -> ::ksum::gpusim::SiteId {                                         \
    static const ::ksum::gpusim::SiteId ksum_site_id =                      \
        ::ksum::gpusim::SiteRegistry::instance().intern(                    \
            __FILE__, __LINE__, (label), (flags), (rationale));             \
    return ksum_site_id;                                                    \
  }())
