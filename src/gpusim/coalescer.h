// Global-load/store coalescing unit.
//
// A warp request is broken into the set of distinct 32-byte sectors the
// active lanes touch — that set is exactly the stream of L2 transactions the
// request generates (nvprof's gld/gst transaction counters work the same
// way). Fully coalesced float accesses produce 4 sectors per warp; float4
// accesses produce 16.
#pragma once

#include <vector>

#include "gpusim/address.h"

namespace ksum::gpusim {

class Coalescer {
 public:
  explicit Coalescer(int sector_bytes) : sector_bytes_(sector_bytes) {}

  /// Distinct sector base addresses touched by the access, sorted ascending.
  std::vector<GlobalAddr> sectors_for(const GlobalWarpAccess& access) const;

  /// Minimum sectors that could service the access if its distinct bytes
  /// were densely packed — the coalescing lint's per-request ideal. A fully
  /// coalesced float access needs 4, a float4 access 16; a 128-byte-strided
  /// scalar access still needs only 4 under this ideal but generates 32
  /// sectors, which is exactly the gap the lint reports.
  int ideal_sectors_for(const GlobalWarpAccess& access) const;

  int sector_bytes() const { return sector_bytes_; }

 private:
  int sector_bytes_;
};

}  // namespace ksum::gpusim
