// Global-load/store coalescing unit.
//
// A warp request is broken into the set of distinct 32-byte sectors the
// active lanes touch — that set is exactly the stream of L2 transactions the
// request generates (nvprof's gld/gst transaction counters work the same
// way). Fully coalesced float accesses produce 4 sectors per warp; float4
// accesses produce 16.
#pragma once

#include <vector>

#include "gpusim/address.h"

namespace ksum::gpusim {

class Coalescer {
 public:
  explicit Coalescer(int sector_bytes) : sector_bytes_(sector_bytes) {}

  /// Distinct sector base addresses touched by the access, sorted ascending.
  std::vector<GlobalAddr> sectors_for(const GlobalWarpAccess& access) const;

  int sector_bytes() const { return sector_bytes_; }

 private:
  int sector_bytes_;
};

}  // namespace ksum::gpusim
