// Bounded-resource kernel timing model.
//
// Inputs are architectural event counts (from the functional simulator's
// Counters, or from the analytic closed forms for large sweeps) plus the
// launch geometry. Output is a cycle estimate with a per-resource breakdown:
//
//   cycles = max(compute, smem, l2, dram) + launch + waves·dispatch
//
// where `compute` derates peak FMA issue by the code grade, the
// prologue-amortisation factor iters/(iters+prologue_equiv), the tail-wave
// fill, and a penalty when occupancy allows only one CTA per SM. See
// config/timing_spec.h for the grade constants and DESIGN.md §5 for the
// calibration story.
#pragma once

#include <string>

#include "config/device_spec.h"
#include "config/timing_spec.h"
#include "gpusim/counters.h"
#include "gpusim/occupancy.h"

namespace ksum::gpusim {

/// Event totals as doubles so analytic sweeps (M up to 524288) can feed the
/// same model as functional runs.
struct CostInputs {
  double fma_lane_ops = 0;
  double alu_lane_ops = 0;
  double sfu_lane_ops = 0;
  double warp_instructions = 0;
  double smem_transactions = 0;
  double l1_transactions = 0;  // only non-zero with cache_globals_in_l1
  double l2_transactions = 0;
  double dram_transactions = 0;

  static CostInputs from_counters(const Counters& c);
};

/// Launch geometry the model needs beyond raw event counts.
struct LaunchShape {
  std::size_t num_ctas = 1;
  LaunchConfig config;
  Occupancy occupancy;
  /// Main-loop iterations per CTA (K/8 for the GEMM-structured kernels);
  /// amortises the prologue/epilogue. Use 0 for kernels with no main loop
  /// (pure streaming passes) — they take the grade's streaming path.
  double mainloop_iters = 0;
  config::KernelGrade grade;
  /// Double buffering (paper §III-A) lets tile loads overlap the rank-8
  /// updates; without it the compute and memory phases serialise and the
  /// kernel pays max → sum on the bound resources.
  bool overlapped_memory = true;
};

struct TimingBreakdown {
  double compute_cycles = 0;
  double smem_cycles = 0;
  double l2_cycles = 0;
  double dram_cycles = 0;
  double overhead_cycles = 0;
  double total_cycles = 0;
  std::string bound;  // which resource was the max

  double seconds(const config::DeviceSpec& spec) const {
    return total_cycles / (spec.core_clock_ghz * 1e9);
  }
};

TimingBreakdown estimate_kernel_time(const config::DeviceSpec& device,
                                     const config::TimingSpec& timing,
                                     const CostInputs& cost,
                                     const LaunchShape& shape);

/// FLOP efficiency the way the paper's Table II reports it: useful FLOPs
/// over peak × time.
double flop_efficiency(const config::DeviceSpec& device, double useful_flops,
                       double seconds);

}  // namespace ksum::gpusim
