#include "gpusim/timing.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace ksum::gpusim {

CostInputs CostInputs::from_counters(const Counters& c) {
  CostInputs in;
  in.fma_lane_ops = static_cast<double>(c.fma_ops);
  in.alu_lane_ops = static_cast<double>(c.alu_ops);
  in.sfu_lane_ops = static_cast<double>(c.sfu_ops);
  in.warp_instructions = static_cast<double>(c.warp_instructions);
  in.smem_transactions = static_cast<double>(c.smem_total_transactions());
  in.l1_transactions = static_cast<double>(c.l1_read_transactions);
  in.l2_transactions = static_cast<double>(c.l2_total_transactions());
  in.dram_transactions = static_cast<double>(c.dram_total_transactions());
  return in;
}

TimingBreakdown estimate_kernel_time(const config::DeviceSpec& device,
                                     const config::TimingSpec& timing,
                                     const CostInputs& cost,
                                     const LaunchShape& shape) {
  KSUM_REQUIRE(shape.num_ctas > 0, "timing needs at least one CTA");
  KSUM_REQUIRE(shape.occupancy.blocks_per_sm > 0, "occupancy must be >= 1");

  const double slots = static_cast<double>(shape.occupancy.blocks_per_sm) *
                       static_cast<double>(device.num_sms);
  const double waves =
      std::ceil(static_cast<double>(shape.num_ctas) / slots);
  // Fraction of CTA slots doing useful work over the whole launch; the tail
  // wave runs partially empty.
  const double wave_fill = static_cast<double>(shape.num_ctas) /
                           (waves * slots);

  // --- Compute bound ---------------------------------------------------------
  double issue_eff = shape.grade.base_issue_efficiency * wave_fill;
  if (shape.mainloop_iters > 0) {
    issue_eff *= shape.mainloop_iters /
                 (shape.mainloop_iters + shape.grade.prologue_equiv_iters);
  }
  if (shape.occupancy.blocks_per_sm == 1) {
    issue_eff *= shape.grade.single_cta_penalty;
  }
  issue_eff = std::max(issue_eff, 1e-6);

  // Maxwell per-SM pipes: 128 FMA lanes, 32 SFU lanes; plain ALU work shares
  // the FMA pipes.
  const double fma_slots = device.fma_slots_per_cycle();
  const double sfu_slots = 32.0 * static_cast<double>(device.num_sms);
  const double compute_cycles =
      (cost.fma_lane_ops / fma_slots + cost.alu_lane_ops / fma_slots +
       cost.sfu_lane_ops / sfu_slots) /
      issue_eff;

  // --- Memory bounds ---------------------------------------------------------
  // Shared memory: one transaction per cycle per SM; only SMs hosting work
  // contribute, approximated by the wave fill.
  const double active_sms =
      std::min(static_cast<double>(device.num_sms),
               static_cast<double>(shape.num_ctas));
  const double smem_cycles =
      cost.smem_transactions / std::max(active_sms * wave_fill, 1.0);

  const double sector = static_cast<double>(device.l2_sector_bytes);
  const double l2_cycles =
      cost.l2_transactions * sector / device.l2_bandwidth_bytes_per_cycle;
  const double dram_cycles =
      cost.dram_transactions * sector /
      (device.dram_bytes_per_cycle() * timing.dram_efficiency);

  // --- Overheads -------------------------------------------------------------
  const double overhead_cycles =
      timing.launch_overhead_cycles + waves * timing.cta_dispatch_cycles;

  TimingBreakdown out;
  out.compute_cycles = compute_cycles;
  out.smem_cycles = smem_cycles;
  out.l2_cycles = l2_cycles;
  out.dram_cycles = dram_cycles;
  out.overhead_cycles = overhead_cycles;

  const double memory_body = std::max({smem_cycles, l2_cycles, dram_cycles});
  const double body = shape.overlapped_memory
                          ? std::max(compute_cycles, memory_body)
                          : compute_cycles + memory_body;
  out.total_cycles = body + overhead_cycles;
  if (body == compute_cycles) {
    out.bound = "compute";
  } else if (body == smem_cycles) {
    out.bound = "smem";
  } else if (body == l2_cycles) {
    out.bound = "l2";
  } else {
    out.bound = "dram";
  }
  return out;
}

double flop_efficiency(const config::DeviceSpec& device, double useful_flops,
                       double seconds) {
  KSUM_REQUIRE(seconds > 0, "efficiency needs positive time");
  return useful_flops / (device.peak_sp_flops() * seconds);
}

}  // namespace ksum::gpusim
