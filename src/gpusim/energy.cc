#include "gpusim/energy.h"

namespace ksum::gpusim {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
  compute_j += other.compute_j;
  smem_j += other.smem_j;
  l2_j += other.l2_j;
  dram_j += other.dram_j;
  static_j += other.static_j;
  return *this;
}

EnergyBreakdown compute_energy(const config::EnergySpec& spec,
                               const CostInputs& cost, double seconds) {
  constexpr double kPj = 1e-12;
  EnergyBreakdown out;
  out.compute_j = (cost.fma_lane_ops * spec.fma_pj +
                   cost.alu_lane_ops * spec.fma_pj +
                   cost.sfu_lane_ops * spec.sfu_pj +
                   cost.warp_instructions * 32.0 * spec.instruction_pj) *
                  kPj;
  // One shared-memory transaction moves up to 32 words through 32 banks;
  // charge per bank port activation.
  out.smem_j = cost.smem_transactions * 32.0 * spec.smem_access_pj * kPj;
  // L1 sector accesses are folded into the cache bucket with the L2.
  out.l2_j = (cost.l1_transactions * spec.l1_access_pj +
              cost.l2_transactions * spec.l2_access_pj) *
             kPj;
  out.dram_j = cost.dram_transactions * spec.dram_access_pj * kPj;
  out.static_j = spec.static_power_w * seconds;
  return out;
}

}  // namespace ksum::gpusim
