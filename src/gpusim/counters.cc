#include "gpusim/counters.h"

#include <array>
#include <cstring>
#include <sstream>
#include <type_traits>

#include "common/string_util.h"

namespace ksum::gpusim {
namespace {

// Counters is a pure bag of uint64_t event counts (the unit tests pin this
// with static_asserts), so element-wise arithmetic can run over the raw
// words instead of a hand-maintained field list that silently rots when a
// counter is added.
constexpr std::size_t kWords = sizeof(Counters) / sizeof(std::uint64_t);
static_assert(std::is_trivially_copyable_v<Counters>);
static_assert(sizeof(Counters) % sizeof(std::uint64_t) == 0,
              "Counters must stay a pure array of 64-bit counts");

template <typename Op>
Counters& combine(Counters& lhs, const Counters& rhs, Op op) {
  std::array<std::uint64_t, kWords> a{}, b{};
  std::memcpy(a.data(), &lhs, sizeof(lhs));
  std::memcpy(b.data(), &rhs, sizeof(rhs));
  for (std::size_t i = 0; i < kWords; ++i) a[i] = op(a[i], b[i]);
  std::memcpy(static_cast<void*>(&lhs), a.data(), sizeof(lhs));
  return lhs;
}

}  // namespace

Counters& Counters::operator+=(const Counters& other) {
  return combine(*this, other,
                 [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

Counters& Counters::operator-=(const Counters& other) {
  // Counters are monotone within a launch, so a snapshot delta never
  // underflows; the subtraction saturates at zero anyway so a misuse shows
  // up as a zero delta instead of a 2^64-ish garbage count.
  return combine(*this, other, [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : 0;
  });
}

bool operator==(const Counters& lhs, const Counters& rhs) {
  return std::memcmp(&lhs, &rhs, sizeof(Counters)) == 0;
}

double Counters::l2_mpki() const {
  if (warp_instructions == 0) return 0.0;
  return 1000.0 * static_cast<double>(l2_read_misses) /
         (32.0 * static_cast<double>(warp_instructions));
}

std::string Counters::to_string() const {
  std::ostringstream os;
  os << "counters{\n"
     << "  fma=" << fma_ops << " alu=" << alu_ops << " sfu=" << sfu_ops
     << " warp_instr=" << warp_instructions << "\n"
     << "  smem: load_req=" << smem_load_requests
     << " store_req=" << smem_store_requests
     << " load_txn=" << smem_load_transactions
     << " store_txn=" << smem_store_transactions
     << " conflicts=" << smem_bank_conflicts << "\n"
     << "  global: load_req=" << global_load_requests
     << " store_req=" << global_store_requests
     << " atomics=" << atomic_requests << "\n"
     << "  l1: read=" << l1_read_transactions << " hits=" << l1_read_hits
     << " misses=" << l1_read_misses << "\n"
     << "  l2: read=" << l2_read_transactions
     << " write=" << l2_write_transactions << " hits=" << l2_read_hits
     << " misses=" << l2_read_misses
     << str_format(" mpki=%.2f", l2_mpki()) << "\n"
     << "  dram: read=" << dram_read_transactions
     << " write=" << dram_write_transactions << "\n"
     << "  barriers=" << barriers << " ctas=" << ctas_launched
     << " launches=" << kernel_launches << "\n";
  if (faults_injected_total() != 0) {
    os << "  faults: smem=" << faults_smem_bitflips
       << " global=" << faults_global_bitflips
       << " tile=" << faults_tile_corruptions
       << " atomic_drop=" << faults_atomics_dropped
       << " atomic_double=" << faults_atomics_doubled << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace ksum::gpusim
