#include "gpusim/counters.h"

#include <sstream>

#include "common/string_util.h"

namespace ksum::gpusim {

Counters& Counters::operator+=(const Counters& other) {
  fma_ops += other.fma_ops;
  alu_ops += other.alu_ops;
  sfu_ops += other.sfu_ops;
  warp_instructions += other.warp_instructions;
  smem_load_requests += other.smem_load_requests;
  smem_store_requests += other.smem_store_requests;
  smem_load_transactions += other.smem_load_transactions;
  smem_store_transactions += other.smem_store_transactions;
  smem_bank_conflicts += other.smem_bank_conflicts;
  global_load_requests += other.global_load_requests;
  global_store_requests += other.global_store_requests;
  atomic_requests += other.atomic_requests;
  l1_read_transactions += other.l1_read_transactions;
  l1_read_hits += other.l1_read_hits;
  l1_read_misses += other.l1_read_misses;
  l2_read_transactions += other.l2_read_transactions;
  l2_write_transactions += other.l2_write_transactions;
  l2_read_hits += other.l2_read_hits;
  l2_read_misses += other.l2_read_misses;
  dram_read_transactions += other.dram_read_transactions;
  dram_write_transactions += other.dram_write_transactions;
  barriers += other.barriers;
  ctas_launched += other.ctas_launched;
  kernel_launches += other.kernel_launches;
  faults_smem_bitflips += other.faults_smem_bitflips;
  faults_global_bitflips += other.faults_global_bitflips;
  faults_tile_corruptions += other.faults_tile_corruptions;
  faults_atomics_dropped += other.faults_atomics_dropped;
  faults_atomics_doubled += other.faults_atomics_doubled;
  return *this;
}

double Counters::l2_mpki() const {
  if (warp_instructions == 0) return 0.0;
  return 1000.0 * static_cast<double>(l2_read_misses) /
         (32.0 * static_cast<double>(warp_instructions));
}

std::string Counters::to_string() const {
  std::ostringstream os;
  os << "counters{\n"
     << "  fma=" << fma_ops << " alu=" << alu_ops << " sfu=" << sfu_ops
     << " warp_instr=" << warp_instructions << "\n"
     << "  smem: load_req=" << smem_load_requests
     << " store_req=" << smem_store_requests
     << " load_txn=" << smem_load_transactions
     << " store_txn=" << smem_store_transactions
     << " conflicts=" << smem_bank_conflicts << "\n"
     << "  global: load_req=" << global_load_requests
     << " store_req=" << global_store_requests
     << " atomics=" << atomic_requests << "\n"
     << "  l1: read=" << l1_read_transactions << " hits=" << l1_read_hits
     << " misses=" << l1_read_misses << "\n"
     << "  l2: read=" << l2_read_transactions
     << " write=" << l2_write_transactions << " hits=" << l2_read_hits
     << " misses=" << l2_read_misses
     << str_format(" mpki=%.2f", l2_mpki()) << "\n"
     << "  dram: read=" << dram_read_transactions
     << " write=" << dram_write_transactions << "\n"
     << "  barriers=" << barriers << " ctas=" << ctas_launched
     << " launches=" << kernel_launches << "\n";
  if (faults_injected_total() != 0) {
    os << "  faults: smem=" << faults_smem_bitflips
       << " global=" << faults_global_bitflips
       << " tile=" << faults_tile_corruptions
       << " atomic_drop=" << faults_atomics_dropped
       << " atomic_double=" << faults_atomics_doubled << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace ksum::gpusim
