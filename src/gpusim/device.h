// The simulated device and the tile-program execution interface.
//
// Kernels are "tile programs": a functor invoked once per CTA with a
// BlockContext that exposes exactly the operations a CUDA kernel has —
// warp-wide global loads/stores (through the coalescer and L2), warp-wide
// shared memory accesses (through the bank model), barriers, atomics, and
// per-lane arithmetic counting. Functional execution is sequential
// (CTA-by-CTA, warp-by-warp), which is semantically equivalent for the
// barrier-synchronised programs in gpukernels/; concurrency only affects
// *timing*, which is modelled separately in timing.h from the counted events.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "config/device_spec.h"
#include "gpusim/access_observer.h"
#include "gpusim/cache.h"
#include "gpusim/coalescer.h"
#include "gpusim/counters.h"
#include "gpusim/fault_injection.h"
#include "gpusim/global_memory.h"
#include "gpusim/occupancy.h"
#include "gpusim/shared_memory.h"

namespace ksum::gpusim {

struct GridDim {
  int x = 1;
  int y = 1;
  std::size_t count() const {
    return static_cast<std::size_t>(x) * static_cast<std::size_t>(y);
  }
};

struct BlockDim {
  int x = 16;
  int y = 16;
  int count() const { return x * y; }
};

class Device;

/// Per-CTA execution context handed to tile programs.
class BlockContext {
 public:
  BlockContext(Device& device, GridDim grid, BlockDim block, int bx, int by,
               int sm_index, SharedMemory& smem, Counters& counters);

  int bx() const { return bx_; }
  int by() const { return by_; }
  GridDim grid() const { return grid_; }
  BlockDim block_dim() const { return block_; }

  SharedMemory& smem() { return smem_; }

  // --- Global memory (coalesced, through L2) -------------------------------
  std::array<float, kWarpSize> global_load(const GlobalWarpAccess& access);
  void global_store(const GlobalWarpAccess& access,
                    const std::array<float, kWarpSize>& values);

  /// 16-byte (float4) per-lane load: one warp instruction, one request,
  /// sectors deduplicated across the 4 words of each lane. `access.addr`
  /// must be 16-byte aligned and `width_bytes` must be 16.
  std::array<std::array<float, 4>, kWarpSize> global_load_vec4(
      const GlobalWarpAccess& access);

  /// 16-byte (float4) per-lane store.
  void global_store_vec4(
      const GlobalWarpAccess& access,
      const std::array<std::array<float, 4>, kWarpSize>& values);

  /// Warp-wide atomicAdd on float words. Performed at the L2 (Maxwell
  /// semantics); lanes apply in lane order, and lanes hitting the same
  /// address serialise (both functionally and in the counted transactions).
  void global_atomic_add(const GlobalWarpAccess& access,
                         const std::array<float, kWarpSize>& values);

  // --- Intra-CTA control ----------------------------------------------------
  /// __syncthreads(). Functionally a no-op under sequential execution but
  /// counted, used by tests to validate the barrier structure, and the
  /// epoch boundary the race detector keys shadow memory on.
  void barrier();

  /// Barrier epoch of this CTA: 0 until the first barrier(), then +1 per
  /// barrier. The race detector treats two accesses to the same word as
  /// ordered iff their epochs differ.
  int barrier_epoch() const { return barrier_epoch_; }

  /// Phase marker: declares that subsequent events belong to kernel phase
  /// `name` ("prologue", "mainloop", "epilogue", "reduction") until the next
  /// marker. Pure observation — it counts nothing and is a no-op without an
  /// attached observer, so marked and unmarked runs are bit-identical.
  /// `name` must have static storage duration.
  void phase(const char* name);

  // --- Arithmetic accounting (per active lane) ------------------------------
  void count_fma(std::uint64_t lane_ops);
  void count_alu(std::uint64_t lane_ops);
  void count_sfu(std::uint64_t lane_ops);
  /// Additional warp instructions not covered by the memory/compute helpers
  /// (address arithmetic, predicate setup) — kernels call this with small
  /// constants so MPKI has a realistic denominator.
  void count_warp_instructions(std::uint64_t n);

  /// Conflict-free shared-memory traffic attributed by black-box kernel
  /// models (the cuBLAS stand-in) whose smem behaviour is not simulated
  /// access by access.
  void count_smem_transactions(std::uint64_t loads, std::uint64_t stores);

  /// Offers `value` to the device's fault injector as one opportunity of
  /// `site` (identity when no injector is attached). Kernels route loaded
  /// operands through this to model datapath corruption — see
  /// gpukernels/tile_loader.cc for the kTileLoad channel.
  float filter_fault(FaultSite site, float value);

 private:
  /// Reports a serviced global request (with achieved/ideal sector counts)
  /// to the device's observer, if one is attached.
  void notify_global(const GlobalWarpAccess& access, AccessKind kind);

  Device& device_;
  GridDim grid_;
  BlockDim block_;
  int bx_;
  int by_;
  int sm_index_;  // which SM hosts this CTA (routes L1 accesses)
  SharedMemory& smem_;
  Counters& counters_;
  int barrier_epoch_ = 0;
};

using TileProgram = std::function<void(BlockContext&)>;

struct LaunchResult {
  std::string kernel_name;
  GridDim grid;
  BlockDim block;
  LaunchConfig config;
  Occupancy occupancy;
  Counters counters;  // events of this launch only
};

class Device {
 public:
  explicit Device(config::DeviceSpec spec,
                  std::size_t memory_capacity_bytes = std::size_t{512} << 20);

  const config::DeviceSpec& spec() const { return spec_; }
  GlobalMemory& memory() { return memory_; }
  SectoredCache& l2() { return l2_; }

  /// Cumulative counters across all launches.
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }

  /// Snapshot of the launch currently in flight (zeroed at every launch
  /// boundary). Profilers read this between phase markers; outside a launch
  /// it holds the counts of the last launch/flush.
  const Counters& in_flight_counters() const { return launch_counters_; }

  /// Attaches (or detaches, with nullptr) a fault injector. The memory and
  /// atomic datapaths consult it for every stored word and atomic request;
  /// injected faults tick the `faults_*` counters. The injector must
  /// outlive the device or be detached first.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Attaches (or detaches, with nullptr) the analysis observer. Every
  /// launch then reports its structure and every serviced memory request —
  /// see access_observer.h. The observer must outlive the device or be
  /// detached first; it never changes functional results or counters.
  ///
  /// Thread-safety contract (docs/PARALLELISM.md): a Device is single-
  /// threaded — the batch engine gives every worker its own. Attaching an
  /// observer while a launch is in flight on another thread throws
  /// ksum::Error immediately, and Device::launch throws at the launch
  /// boundary if the attached observer changed mid-launch (even from the
  /// launching thread), so a torn observation stream can never pass
  /// silently.
  void set_access_observer(AccessObserver* observer);
  AccessObserver* access_observer() const { return observer_; }

  /// Runs `program` for every CTA of `grid`. Validates `config` against the
  /// device limits (throws ksum::Error if the kernel cannot launch) and
  /// returns the per-launch event counts and occupancy.
  LaunchResult launch(const std::string& name, GridDim grid, BlockDim block,
                      const LaunchConfig& config, const TileProgram& program);

  /// Writes every dirty L2 sector back to DRAM and returns the write
  /// transactions it generated (folded into the cumulative counters).
  /// Pipelines call this once at the end so streaming intermediates are
  /// charged their final writeback, like a real measurement window would.
  Counters flush_l2();

  /// Returns the device to its just-constructed state without reallocating
  /// the arena: counters zeroed, caches dropped (no writeback traffic),
  /// allocator rewound, injector/observer detached. This is the warm-device
  /// path the serving layer uses to reuse one per-worker Device across
  /// requests (docs/SERVING.md) — a reset+rerun is bit-identical to a run
  /// on a freshly constructed Device. Throws ksum::Error if a launch is in
  /// flight.
  void reset();

 private:
  friend class BlockContext;

  /// Routes a sector read through the (optional) per-SM L1 and the L2,
  /// counting DRAM reads on L2 misses.
  void read_global_sector(GlobalAddr sector, int sm_index);
  /// Stores bypass the L1 (Maxwell global-store semantics) and land in L2.
  void write_global_sector(GlobalAddr sector);

  config::DeviceSpec spec_;
  GlobalMemory memory_;
  Counters counters_;         // cumulative across launches
  Counters launch_counters_;  // events of the launch in flight (the caches
                              // count here too; folded into counters_ at
                              // the end of each launch)
  SectoredCache l2_;
  std::vector<SectoredCache> l1s_;  // per SM, when cache_globals_in_l1
  Coalescer coalescer_;
  FaultInjector* injector_ = nullptr;   // optional, not owned
  AccessObserver* observer_ = nullptr;  // optional, not owned

  // Guard state for the observer attach contract: the launching thread is
  // recorded before launch_in_flight_ is published (release) so a foreign
  // set_access_observer (acquire) reads a consistent pair.
  std::atomic<bool> launch_in_flight_{false};
  std::thread::id launch_thread_;
};

}  // namespace ksum::gpusim
