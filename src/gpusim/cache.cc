#include "gpusim/cache.h"

#include <bit>

#include "common/error.h"
#include "common/math_util.h"

namespace ksum::gpusim {

void CacheGeometry::validate() const {
  KSUM_REQUIRE(line_bytes > 0 && sector_bytes > 0 && ways > 0,
               "cache geometry fields must be positive");
  KSUM_REQUIRE(line_bytes % sector_bytes == 0, "line must be whole sectors");
  KSUM_REQUIRE(sectors_per_line() <= 8,
               "sector masks are 8 bits; enlarge Line::valid for more");
  KSUM_REQUIRE(capacity_bytes % static_cast<std::size_t>(line_bytes) == 0,
               "capacity must be whole lines");
  KSUM_REQUIRE(num_lines() % static_cast<std::size_t>(ways) == 0,
               "lines must divide into ways");
  // Set indexing is plain modulo, so non-power-of-two set counts (the
  // GTX970's 1.75 MB partitioning) are fine.
}

SectoredCache::SectoredCache(const CacheGeometry& geometry,
                             CacheCounters counters)
    : geometry_(geometry), counters_(counters) {
  geometry_.validate();
  lines_.resize(geometry_.num_lines());
}

SectoredCache::Line* SectoredCache::find_line(GlobalAddr line_addr) {
  const std::size_t set =
      (line_addr / static_cast<GlobalAddr>(geometry_.line_bytes)) %
      geometry_.num_sets();
  Line* base = lines_.data() + set * static_cast<std::size_t>(geometry_.ways);
  for (int w = 0; w < geometry_.ways; ++w) {
    if (base[w].allocated && base[w].tag == line_addr) return &base[w];
  }
  return nullptr;
}

SectoredCache::Line& SectoredCache::allocate_line(GlobalAddr line_addr) {
  const std::size_t set =
      (line_addr / static_cast<GlobalAddr>(geometry_.line_bytes)) %
      geometry_.num_sets();
  Line* base = lines_.data() + set * static_cast<std::size_t>(geometry_.ways);
  Line* victim = &base[0];
  for (int w = 0; w < geometry_.ways; ++w) {
    if (!base[w].allocated) {
      victim = &base[w];
      break;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }
  if (victim->allocated && victim->dirty != 0) {
    // Write back every dirty sector of the evicted line.
    bump(counters_.writebacks,
         static_cast<std::uint64_t>(
             std::popcount(static_cast<unsigned>(victim->dirty))));
  }
  victim->allocated = true;
  victim->tag = line_addr;
  victim->valid = 0;
  victim->dirty = 0;
  victim->last_use = ++tick_;
  return *victim;
}

bool SectoredCache::read_sector(GlobalAddr sector_addr) {
  KSUM_DCHECK(sector_addr %
                  static_cast<GlobalAddr>(geometry_.sector_bytes) ==
              0);
  bump(counters_.read_accesses);
  const GlobalAddr line_addr =
      sector_addr / static_cast<GlobalAddr>(geometry_.line_bytes) *
      static_cast<GlobalAddr>(geometry_.line_bytes);
  const int sector_idx = static_cast<int>(
      (sector_addr - line_addr) / static_cast<GlobalAddr>(geometry_.sector_bytes));
  const std::uint8_t bit = static_cast<std::uint8_t>(1u << sector_idx);

  Line* line = find_line(line_addr);
  if (line != nullptr && (line->valid & bit) != 0) {
    line->last_use = ++tick_;
    bump(counters_.read_hits);
    return true;
  }
  bump(counters_.read_misses);
  if (line == nullptr) line = &allocate_line(line_addr);
  line->valid = static_cast<std::uint8_t>(line->valid | bit);
  line->last_use = ++tick_;
  return false;
}

void SectoredCache::write_sector(GlobalAddr sector_addr) {
  KSUM_DCHECK(sector_addr %
                  static_cast<GlobalAddr>(geometry_.sector_bytes) ==
              0);
  bump(counters_.write_accesses);
  const GlobalAddr line_addr =
      sector_addr / static_cast<GlobalAddr>(geometry_.line_bytes) *
      static_cast<GlobalAddr>(geometry_.line_bytes);
  const int sector_idx = static_cast<int>(
      (sector_addr - line_addr) / static_cast<GlobalAddr>(geometry_.sector_bytes));
  const std::uint8_t bit = static_cast<std::uint8_t>(1u << sector_idx);

  Line* line = find_line(line_addr);
  if (line == nullptr) line = &allocate_line(line_addr);
  line->valid = static_cast<std::uint8_t>(line->valid | bit);
  line->dirty = static_cast<std::uint8_t>(line->dirty | bit);
  line->last_use = ++tick_;
}

void SectoredCache::flush_dirty() {
  for (auto& line : lines_) {
    if (line.allocated && line.dirty != 0) {
      bump(counters_.writebacks,
           static_cast<std::uint64_t>(
               std::popcount(static_cast<unsigned>(line.dirty))));
      line.dirty = 0;
    }
  }
}

void SectoredCache::reset() {
  for (auto& line : lines_) line = Line{};
  tick_ = 0;
}

std::size_t SectoredCache::resident_sectors() const {
  std::size_t total = 0;
  for (const auto& line : lines_) {
    if (line.allocated) {
      total += static_cast<std::size_t>(
          std::popcount(static_cast<unsigned>(line.valid)));
    }
  }
  return total;
}

}  // namespace ksum::gpusim
